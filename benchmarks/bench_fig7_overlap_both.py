"""Fig. 7 — overlap with computation on both sides (32 KB, 1 MB).

Asserted shape: with both ranks computing, the baselines inherit the
receiver-side stall (their rendezvous waits for the receiver's MPI_Wait),
while PIOMan overlaps on both sides.
"""

from repro.bench.overlap import compute_grid, run_overlap_figure
from repro.bench.reporting import format_overlap


def test_fig7_overlap_both(once, bench_scale):
    series = once(
        run_overlap_figure,
        "both",
        npoints=bench_scale["overlap_points"],
        reps=bench_scale["overlap_reps"],
        seed=0,
    )
    print()
    print(format_overlap(series))

    for size in sorted({s.size_bytes for s in series}):
        group = {s.impl: s for s in series if s.size_bytes == size}
        grid = compute_grid(size, bench_scale["overlap_points"])
        tail = grid[-1]
        pioman_tail = group["PIOMan"].ratio_at(tail)
        assert pioman_tail > 0.8
        for base in ("MVAPICH", "OpenMPI"):
            assert pioman_tail >= group[base].ratio_at(tail) - 0.02, (
                f"{base} should not beat PIOMan with computation on both sides"
            )
        # and somewhere along the curve PIOMan opens a clear gap
        gaps = [
            group["PIOMan"].ratio_at(x) - group["MVAPICH"].ratio_at(x)
            for x in grid[1:]
        ]
        assert max(gaps) > 0.1
