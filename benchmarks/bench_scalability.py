"""Extension — global-queue cost vs core count (the paper's §I trend).

Scales kwak-calibrated NUMA machines from 8 to 64 cores and asserts what
the paper predicts: the hierarchical per-core/per-chip costs stay put
while the global queue's blow-up keeps growing with the core count.
"""

from repro.bench.scalability import run_scalability


def test_scalability_study(once, bench_scale):
    reps = max(60, bench_scale["microbench_reps"] // 2)
    study = once(run_scalability, reps=reps)
    print()
    print(study.format())

    pts = study.points
    assert [p.ncores for p in pts] == [8, 16, 32, 64]
    # local queues are essentially flat across machine sizes
    locals_ = [p.local_ns for p in pts]
    assert max(locals_) < 1.3 * min(locals_)
    # per-chip cost tracks the chip *width* (racers per L3), not the
    # machine size: the two 4-wide machines match, the two 8-wide match,
    # and every chip queue stays far below the global queue
    chips = [p.chip_ns for p in pts]
    assert abs(chips[0] - chips[1]) < 0.3 * chips[0]   # both 4-wide
    assert abs(chips[2] - chips[3]) < 0.3 * chips[2]   # both 8-wide
    for p in pts:
        assert p.chip_ns < 0.5 * p.global_ns
    # the global queue keeps deteriorating with the core count
    assert pts[-1].global_ns > 2.5 * pts[0].global_ns
    assert pts[-1].global_blowup > pts[0].global_blowup
    # monotone growth along the sweep (some tolerance for seed noise)
    for a, b in zip(pts, pts[1:]):
        assert b.global_ns > 0.9 * a.global_ns
