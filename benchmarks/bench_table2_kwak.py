"""Table II — task-scheduling microbenchmark on kwak (4x4 cores, NUMA).

Regenerates every row of the paper's Table II.  Asserted shape: local L3
rows ~0.7 us, remote-NUMA rows ~1 us above them, the global queue an
order of magnitude up (paper: 13.6 us), a NUMA-unbalanced execution
distribution on the global queue, and the kwak/borderline global ratio.
"""

from repro.bench.paper_targets import targets_for
from repro.bench.reporting import format_microbench
from repro.bench.task_microbench import run_task_microbench
from repro.topology import borderline, kwak


def test_table2_kwak(once, bench_scale):
    res = once(
        run_task_microbench, kwak(), reps=bench_scale["microbench_reps"], seed=1
    )
    print()
    print(format_microbench(res, paper=targets_for("kwak")))

    ref = res.reference_ns()
    local = [res.row_by_label(f"core#{c}").mean_ns for c in range(4)]
    remote = [res.row_by_label(f"core#{c}").mean_ns for c in range(4, 16)]
    # remote NUMA adds on the order of a microsecond (paper: ~1 us)
    gap = min(remote) - max(local)
    assert 500 < gap < 2_500, f"remote-NUMA gap {gap} outside expected band"
    assert max(remote) - min(remote) < 0.15 * ref, "remote rows should be flat"
    # the global queue collapses hard (paper: 13.6 us vs 0.72 us ~ 19x)
    g = res.global_row.mean_ns
    assert g > 8 * ref
    assert g > max(r.mean_ns for rows in res.per_level.values() for r in rows)
    # unbalanced pickup at the NUMA level (the paper: "most of the tasks
    # are executed by cores located on NUMA node #2"): the busiest node
    # clearly exceeds its uniform expectation
    shares = res.global_row.shares
    node_share = {n: 0.0 for n in range(4)}
    for core, share in shares.items():
        node_share[core // 4] += share
    expected = {n: len([c for c in range(n * 4, n * 4 + 4) if c != 0]) / 15.0
                for n in range(4)}
    skew = max(node_share[n] / expected[n] for n in range(4))
    print(f"NUMA pickup shares: { {n: round(v, 2) for n, v in node_share.items()} } "
          f"(max skew {skew:.2f}x uniform)")
    assert skew > 1.15


def test_global_queue_scales_with_cores(once, bench_scale):
    """The paper: global-queue overhead 'appears to grow quickly with the
    number of cores' — kwak (16) costs ~2.9x borderline (8)."""

    def both():
        r8 = run_task_microbench(borderline(), reps=bench_scale["microbench_reps"] // 2, seed=3)
        r16 = run_task_microbench(kwak(), reps=bench_scale["microbench_reps"] // 2, seed=3)
        return r8, r16

    r8, r16 = once(both)
    ratio = r16.global_row.mean_ns / r8.global_row.mean_ns
    print(f"\nglobal-queue cost: 8 cores {r8.global_row.mean_ns:.0f} ns, "
          f"16 cores {r16.global_row.mean_ns:.0f} ns, ratio {ratio:.2f} (paper: 2.88)")
    assert ratio > 1.5, "global queue must get worse with more cores"
