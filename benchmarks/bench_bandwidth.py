"""Extension — OSU-style streaming bandwidth (companion to Fig. 4's
latency test; the paper cites the OSU suite [14]).

Sanity anchors for the whole nmad/NIC stack: bandwidth grows with message
size, and at 1 MB every implementation approaches the ConnectX wire rate
(~1.5 GB/s in this model).
"""

from repro.bench.bandwidth import format_bandwidth, run_bandwidth
from repro.net.driver import IB_CONNECTX


def test_bandwidth_curves(once, bench_scale):
    series = once(run_bandwidth, iters=3)
    print()
    print(format_bandwidth(series))

    wire_mb_s = IB_CONNECTX.bytes_per_us  # B/us == MB/s
    for s in series:
        rates = [p.mb_per_s for p in s.points]
        # monotone growth with size (small tolerance)
        for a, b in zip(rates, rates[1:]):
            assert b > 0.8 * a, f"{s.impl}: bandwidth dropped {a}->{b}"
        # large messages approach the wire rate
        assert rates[-1] > 0.75 * wire_mb_s, f"{s.impl} too far from wire rate"
        assert rates[-1] < 1.05 * wire_mb_s, f"{s.impl} exceeds the wire"
        # small messages are overhead-bound, clearly under the wire rate
        assert rates[0] < 0.8 * wire_mb_s
        assert rates[0] < rates[-1]
