"""Ablation A2 — spinlocks vs blocking mutexes on the task queues.

Paper §IV-A: a thread "enters the corresponding critical section for a
very short period, less than the time required to perform a context
switch.  Using a classical mutex ... would imply a risk of costly context
switches."  Swapping the queue lock for a mutex must cost more per
operation whenever there is any contention.
"""

from repro.bench.ablations import run_affinity_burst
from repro.core.variants import MutexTaskQueue
from repro.topology import kwak


def test_ablation_spinlock_vs_mutex(once, bench_scale):
    bursts = max(30, bench_scale["microbench_reps"] // 4)

    def both():
        spin = run_affinity_burst(
            kwak(), hierarchical=False, bursts=bursts, label="spinlock"
        )
        mutex = run_affinity_burst(
            kwak(),
            hierarchical=False,
            queue_factory=MutexTaskQueue,
            bursts=bursts,
            label="mutex",
        )
        return spin, mutex

    spin, mutex = once(both)
    print(
        f"\nflat-queue affinity burst on kwak: spinlock "
        f"{spin.mean_burst_ns / 1000:.1f} us vs mutex "
        f"{mutex.mean_burst_ns / 1000:.1f} us "
        f"({mutex.mean_burst_ns / spin.mean_burst_ns:.2f}x)"
    )
    # Blocking on queue-length critical sections costs context switches.
    assert mutex.mean_burst_ns > 1.2 * spin.mean_burst_ns
