"""Fig. 4 — multi-threaded latency test (OSU-style) on the BORDERLINE
cluster over InfiniBand.

Asserted shape: the MVAPICH-like baseline's latency grows with the number
of receiving threads (global-lock polling + scheduling queueing past the
core count) while PIOMan stays nearly constant, "even when this number
exceeds the number of CPUs".
"""

from repro.bench.latency import run_fig4
from repro.bench.reporting import format_latency


def test_fig4_latency(once, bench_scale):
    series = once(
        run_fig4,
        thread_counts=bench_scale["fig4_threads"],
        iters_per_thread=bench_scale["fig4_iters"],
        seed=0,
    )
    print()
    print(format_latency(series))

    by_name = {s.impl: s for s in series}
    pioman = by_name["PIOMan"]
    mvapich = by_name["MVAPICH"]
    assert "OpenMPI" not in by_name, "OpenMPI must be skipped (mt-unstable, as in the paper)"

    counts = [p.threads for p in pioman.points]
    lo, hi = counts[0], counts[-1]
    # PIOMan: flat — within 40% across the whole sweep, incl. past 8 cores
    base = pioman.latency_at(lo)
    for n in counts:
        assert pioman.latency_at(n) < 1.4 * base, f"PIOMan not flat at {n} threads"
    # MVAPICH: grows, and ends up well above PIOMan
    assert mvapich.latency_at(hi) > 3 * mvapich.latency_at(lo)
    assert mvapich.latency_at(hi) > 2 * pioman.latency_at(hi)
