"""Ablation A4 — lock-free (CAS) queues: the paper's future work (§VI).

"We plan to study the opportunity to use lock-free algorithms to reduce
contention on task queues and to decrease the overhead of the task
mechanism."  The CAS-queue variant removes the lock word entirely; each
operation is one RMW on the head line with a retry penalty under bursts.
Expected: cheaper than the spinlock queue on the contended global queue,
comparable on uncontended per-core queues.
"""

from repro.bench.task_microbench import measure_queue
from repro.core.variants import LockFreeTaskQueue
from repro.topology import CpuSet, kwak


def test_ablation_lockfree_global(once, bench_scale):
    reps = bench_scale["microbench_reps"]
    machine = kwak()

    def both():
        locked = measure_queue(
            machine, machine.all_cores(), label="global", reps=reps, seed=13
        )
        lockfree = measure_queue(
            machine,
            machine.all_cores(),
            label="global-lockfree",
            reps=reps,
            seed=13,
            queue_factory=LockFreeTaskQueue,
        )
        return locked, lockfree

    locked, lockfree = once(both)
    print(
        f"\nglobal-queue round-trip on kwak: spinlock "
        f"{locked.mean_ns / 1000:.2f} us vs lock-free "
        f"{lockfree.mean_ns / 1000:.2f} us "
        f"({locked.mean_ns / lockfree.mean_ns:.2f}x improvement)"
    )
    assert lockfree.mean_ns < locked.mean_ns


def test_ablation_lockfree_local(once, bench_scale):
    """On an uncontended per-core queue the two designs are comparable."""
    reps = bench_scale["microbench_reps"]
    machine = kwak()

    def both():
        locked = measure_queue(
            machine, CpuSet.single(0), label="core#0", reps=reps, seed=13
        )
        lockfree = measure_queue(
            machine,
            CpuSet.single(0),
            label="core#0-lockfree",
            reps=reps,
            seed=13,
            queue_factory=LockFreeTaskQueue,
        )
        return locked, lockfree

    locked, lockfree = once(both)
    print(
        f"\nper-core round-trip on kwak: spinlock {locked.mean_ns:.0f} ns "
        f"vs lock-free {lockfree.mean_ns:.0f} ns"
    )
    assert abs(locked.mean_ns - lockfree.mean_ns) < 0.3 * locked.mean_ns
