"""Ablation A1 — hierarchical queues vs one flat global list (paper §III).

"A naive solution consists in maintaining a global list of tasks ...
this big-lock technique is likely not to scale up."  The affinity-burst
workload (one task per core, submitted back-to-back) runs through the
hierarchy and through a single global queue; the flat organisation must
cost more per burst and contend more on its lock.
"""

from repro.bench.ablations import run_affinity_burst
from repro.topology import kwak


def test_ablation_hierarchy(once, bench_scale):
    bursts = max(30, bench_scale["microbench_reps"] // 4)

    def both():
        hier = run_affinity_burst(kwak(), hierarchical=True, bursts=bursts)
        flat = run_affinity_burst(kwak(), hierarchical=False, bursts=bursts)
        return hier, flat

    hier, flat = once(both)
    print(
        f"\naffinity burst on kwak (15 tasks): hierarchical "
        f"{hier.mean_burst_ns / 1000:.1f} us vs flat {flat.mean_burst_ns / 1000:.1f} us "
        f"({flat.mean_burst_ns / hier.mean_burst_ns:.2f}x); "
        f"contended lock acquisitions {hier.lock_contended} vs {flat.lock_contended}"
    )
    assert flat.mean_burst_ns > 1.5 * hier.mean_burst_ns
    assert flat.lock_contended > hier.lock_contended
