"""Fig. 5 — overlap with computation on the sender side (32 KB, 1 MB).

Asserted shape: *every* implementation overlaps on the sender side — the
baselines via their RDMA-read rendezvous (the receiver pulls the body
without sender CPU), PIOMan via tasks on idle cores.
"""

from repro.bench.overlap import compute_grid, run_overlap_figure
from repro.bench.reporting import format_overlap


def test_fig5_overlap_sender(once, bench_scale):
    series = once(
        run_overlap_figure,
        "sender",
        npoints=bench_scale["overlap_points"],
        reps=bench_scale["overlap_reps"],
        seed=0,
    )
    print()
    print(format_overlap(series))

    for s in series:
        grid = compute_grid(s.size_bytes, bench_scale["overlap_points"])
        # past the wire time, every implementation reaches a high ratio
        tail = grid[-1]
        assert s.ratio_at(tail) > 0.85, f"{s.impl} fails sender-side overlap"
        # ratio is monotonically non-decreasing along the curve
        ratios = [p.ratio for p in s.points]
        assert all(b >= a - 0.05 for a, b in zip(ratios, ratios[1:]))
