"""Shared configuration for the benchmark suite.

Every benchmark runs a complete simulation once (``benchmark.pedantic``
with one round — the simulation's *virtual* measurements are the result;
pytest-benchmark tracks the host-side cost of regenerating them), prints
the paper-shaped table to stdout, and asserts the qualitative shape the
paper reports.

Set ``REPRO_BENCH_FULL=1`` for paper-scale parameters (slower: full
repetition counts, 128 fig-4 threads, 9-point overlap curves).
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def bench_scale():
    """Benchmark sizing knobs, reduced by default for CI-friendly runs."""
    if FULL:
        return {
            "microbench_reps": 300,
            "fig4_threads": (1, 2, 4, 8, 16, 32, 64, 128),
            "fig4_iters": 4,
            "overlap_points": 9,
            "overlap_reps": 3,
        }
    return {
        "microbench_reps": 120,
        "fig4_threads": (1, 2, 4, 8, 16, 32),
        "fig4_iters": 3,
        "overlap_points": 6,
        "overlap_reps": 2,
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _once
