"""Fig. 6 — overlap with computation on the receiver side (32 KB, 1 MB).

The paper's headline separation: the baselines do not progress the
rendezvous while the receiver computes (their ratio degrades to the
no-overlap hyperbola Tcomp/(Tcomp+Tcomm)); Mad-MPI/PIOMan keeps the
handshake moving on idle cores and saturates.
"""

from repro.bench.overlap import compute_grid, run_overlap_figure
from repro.bench.reporting import format_overlap


def test_fig6_overlap_receiver(once, bench_scale):
    series = once(
        run_overlap_figure,
        "receiver",
        npoints=bench_scale["overlap_points"],
        reps=bench_scale["overlap_reps"],
        seed=0,
    )
    print()
    print(format_overlap(series))

    for size in sorted({s.size_bytes for s in series}):
        group = {s.impl: s for s in series if s.size_bytes == size}
        grid = compute_grid(size, bench_scale["overlap_points"])
        # probe around the communication time, where the gap is widest
        mid = grid[len(grid) // 2]
        pioman = group["PIOMan"].ratio_at(mid)
        for base in ("MVAPICH", "OpenMPI"):
            assert pioman > group[base].ratio_at(mid) + 0.15, (
                f"PIOMan must beat {base} on receiver-side overlap at {size}B"
            )
        # PIOMan saturates near full overlap by the end of the sweep
        assert group["PIOMan"].ratio_at(grid[-1]) > 0.9
