"""Ablation A3 — Algorithm 2's double-checked locking vs always-lock.

"The content of the queue is first evaluated without holding the mutex
... This technique permits to avoid race conditions with a minimal
overhead since the mutex is only held when the list contains tasks."
With the pre-check removed, every scan of an empty queue takes its lock,
so the scan paths of all polling cores generate constant lock traffic.
"""

from repro.bench.task_microbench import measure_queue
from repro.core.queues import AlwaysLockTaskQueue
from repro.topology import CpuSet, kwak


def test_ablation_double_check(once, bench_scale):
    reps = bench_scale["microbench_reps"]
    machine = kwak()

    def both():
        normal = measure_queue(
            machine, machine.all_cores(), label="global", reps=reps, seed=9
        )
        always = measure_queue(
            machine,
            machine.all_cores(),
            label="global-alwayslock",
            reps=reps,
            seed=9,
            queue_factory=AlwaysLockTaskQueue,
        )
        return normal, always

    normal, always = once(both)
    print(
        f"\nglobal-queue round-trip on kwak: double-checked "
        f"{normal.mean_ns / 1000:.2f} us vs always-lock "
        f"{always.mean_ns / 1000:.2f} us ({always.mean_ns / normal.mean_ns:.2f}x)"
    )
    # Removing the lock-free pre-check can only hurt.
    assert always.mean_ns > normal.mean_ns
