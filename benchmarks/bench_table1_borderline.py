"""Table I — task-scheduling microbenchmark on borderline (4x2 cores).

Regenerates every row of the paper's Table I and asserts the shape the
paper reports: flat per-core rows with a local/remote split, per-chip
rows above per-core, and a global queue an order of magnitude above the
local reference.
"""

from repro.bench.paper_targets import targets_for
from repro.bench.reporting import format_microbench
from repro.bench.task_microbench import run_task_microbench
from repro.topology import borderline


def test_table1_borderline(once, bench_scale):
    res = once(
        run_task_microbench,
        borderline(),
        reps=bench_scale["microbench_reps"],
        seed=1,
    )
    print()
    print(format_microbench(res, paper=targets_for("borderline")))

    ref = res.reference_ns()
    # level 1: per-core rows are tight and ordered local <= sibling <= remote
    sibling = res.row_by_label("core#1").mean_ns
    remotes = [res.row_by_label(f"core#{c}").mean_ns for c in range(2, 8)]
    assert ref <= sibling <= min(remotes)
    assert max(remotes) - min(remotes) < 0.15 * ref, "remote rows should be flat"
    # remote overhead is sub-microsecond on this machine (paper: ~100 ns)
    assert max(remotes) - ref < 600
    # level 2: per-chip queues sit between per-core and global
    chips = [r.mean_ns for r in res.per_level["chip"]]
    assert min(chips) >= ref
    # level 3: the global queue collapses (paper: 4.7 us vs 0.77 us)
    assert res.global_row.mean_ns > 2.5 * ref
    assert res.global_row.mean_ns > max(chips)
    # execution spreads over the other cores, none starves completely
    assert len(res.global_row.shares) >= 5
