"""Spinlock with NUMA-aware contention model.

PIOMan protects each task queue with a spinlock (paper §IV-A): critical
sections are shorter than a context switch, so blocking mutexes would only
add scheduling latency.  The simulated lock reproduces the two phenomena
the paper measures:

* **handoff cost scales with distance** — transferring the lock word is a
  cache-line move between the previous and the next holder, so the cost of
  a contended acquisition depends on where the contenders sit in the
  topology;
* **NUMA capture** — when the lock is released, nearby spinners observe the
  release first and win the race.  The paper reports exactly this on the
  kwak global queue ("most of the tasks are executed by cores located on
  NUMA node #2"); here it emerges from choosing the minimum-transfer-cost
  waiter, with FIFO order only breaking ties.

Contended handoffs are multiplied by ``MachineSpec.contended_factor`` to
account for the CAS-retry storm a real test-and-set spin generates while
several cores hammer the same line.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.mem.cacheline import CacheLine, MemStats
from repro.sim.trace import NULL_TRACER, Tracer
from repro.sync.stats import LockStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine


class _Waiter:
    __slots__ = ("core", "grant_cb", "enqueue_time", "seq", "owner")

    def __init__(
        self,
        core: int,
        grant_cb: Callable[[], None],
        t: int,
        seq: int,
        owner=None,
    ) -> None:
        self.core = core
        self.grant_cb = grant_cb
        self.enqueue_time = t
        self.seq = seq
        #: the SimThread that will own the lock once granted (may be None
        #: for raw callers; the scheduler passes it for priority inheritance)
        self.owner = owner


class SpinLock:
    """A test-and-test-and-set spinlock over a modeled cache line."""

    __slots__ = (
        "machine",
        "engine",
        "line",
        "name",
        "held",
        "holder",
        "_waiters",
        "_seq",
        "stats",
        "tracer",
        "_acquired_at",
        "faults",
        "holder_thread",
    )

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        home: int = 0,
        name: str = "",
        stats: Optional[LockStats] = None,
        mem_stats: Optional[MemStats] = None,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.line = CacheLine(machine, home=home, name=name or "spinlock", stats=mem_stats)
        self.name = name
        self.held = False
        self.holder: Optional[int] = None
        self._waiters: list[_Waiter] = []
        self._seq = 0
        self.stats = stats if stats is not None else LockStats()
        #: set by owners (PIOMan) that want contended handoffs on the trace
        self.tracer: Tracer = NULL_TRACER
        #: when the current holder's grant landed (hold-time span start)
        self._acquired_at = 0
        #: fault injector (repro.faults): lock-holder preemption windows
        self.faults = None
        #: owning SimThread while held (None for raw callers); lets the
        #: scheduler apply priority inheritance when a descheduled holder
        #: would starve behind a higher-priority spinner on its core
        self.holder_thread = None

    # ------------------------------------------------------------------
    def acquire(
        self, core: int, grant_cb: Callable[[], None], owner=None
    ) -> Optional[_Waiter]:
        """Request the lock for ``core``; ``grant_cb`` fires when granted.

        The caller's core is assumed to busy-spin meanwhile (the scheduler
        keeps the thread in the RUNNING state); the elapsed time until the
        grant *is* the spin time.  Returns the waiter entry when the lock
        was contended (so the scheduler can cancel the spin on a timer
        preemption), or None when the grant is already scheduled.
        """
        now = self.engine.now
        if not self.held:
            # Uncontended path: one RMW on the lock word.
            cost = self.line.rmw(core)
            self.held = True
            self.holder = core
            self.holder_thread = owner
            self._acquired_at = now + cost
            self.stats.note_acquire(core, contended=False)
            fi = self.faults
            if fi is not None:
                # lock-holder preemption: the winner is descheduled right
                # after taking the word — the grant (and the critical
                # section everyone else is spinning on) slips by the
                # window, which note_hold then counts as hold time
                cost += fi.hold_preempt_ns(core)
            self.engine.post(cost, grant_cb)
            return None
        # Contended: pay the failed CAS, then spin until handed off.
        self.line.rmw(core)  # mutates coherence state; latency folded into spin
        waiter = _Waiter(core, grant_cb, now, self._seq, owner)
        self._waiters.append(waiter)
        self._seq += 1
        self.stats.note_waiters(len(self._waiters))
        return waiter

    def cancel_waiter(self, waiter: _Waiter) -> bool:
        """Deregister a spinning waiter (timer preemption).

        Returns False when the waiter was already selected for a handoff —
        its grant is in flight and cannot be cancelled."""
        try:
            self._waiters.remove(waiter)
            return True
        except ValueError:
            return False

    def release(self, core: int) -> int:
        """Release by the holder; returns the releaser's store cost in ns.

        If spinners are queued the lock is handed directly to the one with
        the cheapest line transfer from the releaser (NUMA capture), after
        a delay of that transfer cost — scaled by the contended factor when
        several cores are fighting for the line.
        """
        if not self.held or self.holder != core:
            raise RuntimeError(
                f"release of {self.name!r} by core {core}, holder={self.holder}"
            )
        cost = self.line.write(core)
        self.stats.note_hold(max(self.engine.now - self._acquired_at, 0))
        if not self._waiters:
            self.held = False
            self.holder = None
            self.holder_thread = None
            return cost

        # NUMA capture: the nearest waiter usually observes the release
        # first and wins — but hardware arbitration is eventually fair, so
        # a waiter older than the starvation bound takes priority (without
        # this, two nearby cores can ping-pong the lock forever while
        # remote spinners starve).
        ws = self._waiters
        xfer_row = self.machine.xfer_row(core)
        if len(ws) == 1:
            # single waiter: oldest == nearest == winner, no CAS storm
            winner = ws.pop()
            xfer = xfer_row[winner.core]
        else:
            # appends happen in ascending seq order and removals preserve
            # relative order, so the oldest waiter is always at index 0
            oldest = ws[0]
            starved = (
                self.engine.now - oldest.enqueue_time
                >= self.machine.spec.lock_starvation_ns
            )
            if starved:
                winner = oldest
                del ws[0]
                xfer = xfer_row[winner.core]
            else:
                # min(ws, key=(xfer, seq)) without a lambda per element;
                # track the index so the removal is O(1) bookkeeping on
                # top of the scan instead of a second identity pass
                winner = ws[0]
                wi = 0
                bx = xfer_row[winner.core]
                bs = winner.seq
                for i, w in enumerate(ws):
                    x = xfer_row[w.core]
                    if x < bx or (x == bx and w.seq < bs):
                        winner = w
                        wi = i
                        bx = x
                        bs = w.seq
                del ws[wi]
                xfer = bx
            if ws:  # others still hammering the line (CAS storm)
                xfer = int(xfer * self.machine.spec.contended_factor)
        delay = cost + xfer + self.machine.spec.cas_ns
        fi = self.faults
        if fi is not None:
            # lock-holder preemption on the handoff: the winner is
            # descheduled as ownership transfers; every remaining spinner
            # burns the window too (their spin spans it)
            delay += fi.hold_preempt_ns(winner.core)
        self.holder = winner.core  # ownership transfers at release time
        self.holder_thread = winner.owner
        grant_time = self.engine.now + delay
        self._acquired_at = grant_time
        spin_ns = grant_time - winner.enqueue_time
        self.stats.note_acquire(winner.core, contended=True, spin_ns=spin_ns)
        self.stats.handoffs += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "lock", f"core{winner.core}",
                f"contended {self.name or 'spinlock'}",
                phase="lock", lock=self.name or "spinlock", core=winner.core,
                wait_ns=spin_ns, start=winner.enqueue_time,
            )
            lk = self.name or "spinlock"
            self.tracer.edge(
                grant_time, f"core{winner.core}", "lock_wait",
                f"K:{lk}/req@{winner.enqueue_time}", f"K:{lk}/grant@{grant_time}",
                winner.enqueue_time,
            )
        self.engine.post(delay, winner.grant_cb)
        return cost

    # -- observability --------------------------------------------------
    def register_into(self, registry, path: Optional[str] = None) -> None:
        """Expose this lock's counters (and its line's coherence traffic)
        under ``path`` in a :class:`repro.obs.MetricsRegistry`."""
        base = path or self.name or f"spinlock@{id(self):x}"
        registry.register(base, self.stats)
        registry.register(f"{base}.mem", self.line.stats)

    # -- inspection -----------------------------------------------------
    def waiter_count(self) -> int:
        return len(self._waiters)

    def waiter_cores(self) -> list[int]:
        return [w.core for w in self._waiters]

    def __repr__(self) -> str:
        state = f"held by {self.holder}" if self.held else "free"
        return f"<SpinLock {self.name or id(self)} {state} waiters={len(self._waiters)}>"
