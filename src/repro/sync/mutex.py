"""Blocking mutex.

The counter-model to :class:`~repro.sync.spinlock.SpinLock`: a waiter is
descheduled instead of spinning, which frees the core but costs a context
switch on each side of the wait.  The paper argues (§IV-A) that for
queue-length critical sections this trade is a clear loss; ablation A2
reproduces that comparison.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.mem.cacheline import CacheLine, MemStats
from repro.sim.trace import NULL_TRACER, Tracer
from repro.sync.stats import LockStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine
    from repro.threads.thread import SimThread


class Mutex:
    """FIFO blocking mutex; waiters are parked threads."""

    __slots__ = (
        "machine",
        "engine",
        "line",
        "name",
        "held",
        "holder",
        "_waiters",
        "stats",
        "tracer",
        "_acquired_at",
        "faults",
    )

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        home: int = 0,
        name: str = "",
        stats: Optional[LockStats] = None,
        mem_stats: Optional[MemStats] = None,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.line = CacheLine(machine, home=home, name=name or "mutex", stats=mem_stats)
        self.name = name
        self.held = False
        self.holder: Optional["SimThread"] = None
        self._waiters: deque[tuple["SimThread", int]] = deque()
        self.stats = stats if stats is not None else LockStats()
        #: set by owners that want contended handoffs on the trace
        self.tracer: Tracer = NULL_TRACER
        #: when the current holder's grant landed (hold-time span start)
        self._acquired_at = 0
        #: fault injector (repro.faults): lock-holder preemption windows
        self.faults = None

    def acquire(self, thread: "SimThread") -> Optional[int]:
        """Try to take the mutex for ``thread``.

        Returns the acquisition cost in ns on success, or ``None`` if the
        thread must block (the scheduler deschedules it; :meth:`release`
        will wake it with ownership already transferred).
        """
        if not self.held:
            cost = self.line.rmw(thread.core_id)
            self.held = True
            self.holder = thread
            self._acquired_at = self.engine.now + cost
            self.stats.note_acquire(thread.core_id, contended=False)
            fi = self.faults
            if fi is not None:
                # lock-holder preemption: the new holder stalls for the
                # window before its critical section starts
                cost += fi.hold_preempt_ns(thread.core_id)
            return cost
        self._waiters.append((thread, self.engine.now))
        self.stats.note_waiters(len(self._waiters))
        return None

    def release(self, thread: "SimThread") -> int:
        """Release; wakes the first waiter (FIFO). Returns store cost."""
        if not self.held or self.holder is not thread:
            raise RuntimeError(f"mutex {self.name!r} released by non-holder")
        cost = self.line.write(thread.core_id)
        self.stats.note_hold(max(self.engine.now - self._acquired_at, 0))
        if not self._waiters:
            self.held = False
            self.holder = None
            return cost
        waiter, t_enq = self._waiters.popleft()
        self.holder = waiter
        delay = cost + self.machine.xfer(thread.core_id, waiter.core_id)
        fi = self.faults
        if fi is not None:
            # lock-holder preemption on the handoff (see SpinLock.release)
            delay += fi.hold_preempt_ns(waiter.core_id)
        grant_time = self.engine.now + delay
        self._acquired_at = grant_time
        wait_ns = grant_time - t_enq
        self.stats.note_acquire(waiter.core_id, contended=True, spin_ns=wait_ns)
        self.stats.handoffs += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "lock", f"core{waiter.core_id}",
                f"contended {self.name or 'mutex'}",
                phase="lock", lock=self.name or "mutex", core=waiter.core_id,
                wait_ns=wait_ns, start=t_enq,
            )
            lk = self.name or "mutex"
            self.tracer.edge(
                grant_time, f"core{waiter.core_id}", "lock_wait",
                f"K:{lk}/req@{t_enq}", f"K:{lk}/grant@{grant_time}",
                t_enq,
            )
        # The scheduler charges the context-switch cost when re-dispatching.
        self.engine.post(delay, waiter.scheduler.wake, waiter)
        return cost

    def register_into(self, registry, path: Optional[str] = None) -> None:
        """Expose this mutex's counters (and its line's coherence traffic)
        under ``path`` in a :class:`repro.obs.MetricsRegistry`."""
        base = path or self.name or f"mutex@{id(self):x}"
        registry.register(base, self.stats)
        registry.register(f"{base}.mem", self.line.stats)

    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        state = "held" if self.held else "free"
        return f"<Mutex {self.name or id(self)} {state} waiters={len(self._waiters)}>"
