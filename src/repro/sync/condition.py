"""Condition variable and atomic counter over the simulated substrate.

:class:`Condition` is the classic monitor primitive (Mesa semantics) built
on a :class:`~repro.sync.mutex.Mutex`: waiters release the mutex, sleep,
and re-acquire it before returning, so user code always re-checks its
predicate in a loop.  Mad-MPI-style blocking receives use the lighter
:class:`~repro.threads.flag.Flag` directly; the condition variable exists
for library clients that need shared-state monitors (e.g. bounded queues
between application threads).

:class:`AtomicCounter` models a fetch-and-add cell: one RMW on a hot line,
with the same coherence pricing as every other word in the system.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.mem.cacheline import CacheLine, MemStats
from repro.sync.mutex import Mutex
from repro.threads.instructions import Compute, Instr, MutexAcquire, MutexRelease

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.threads.thread import SimThread
    from repro.topology.machine import Machine


class Condition:
    """Mesa-semantics condition variable bound to a mutex."""

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        mutex: Optional[Mutex] = None,
        home: int = 0,
        name: str = "",
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.mutex = mutex if mutex is not None else Mutex(machine, engine, home=home, name=f"{name}.m")
        self.name = name or "cond"
        self._waiters: deque["SimThread"] = deque()
        self._wake_flags: dict = {}
        self.signals = 0
        self.broadcasts = 0

    # -- generators used from thread context ------------------------------
    def acquire(self) -> Instr:
        return MutexAcquire(self.mutex)

    def release(self) -> Instr:
        return MutexRelease(self.mutex)

    def wait(self, thread_ctx) -> Generator[Instr, Any, None]:
        """Release the mutex, sleep until signalled, re-acquire.

        Must be called with the mutex held; callers re-check their
        predicate afterwards (Mesa semantics — a signal is a hint).
        """
        thread = thread_ctx.thread
        if self.mutex.holder is not thread:
            raise RuntimeError(f"{self.name}: wait() without holding the mutex")
        from repro.threads.instructions import BlockOn
        from repro.threads.flag import Flag

        # Register the wake flag BEFORE releasing the mutex: a notifier
        # running in the release-to-block window must find it, or its
        # signal would be lost and this thread would sleep forever.
        flag = Flag(self.machine, self.engine, home=thread.core_id, name=f"{self.name}.w")
        self._waiters.append(thread)
        self._wake_flags[thread] = flag
        yield MutexRelease(self.mutex)
        yield BlockOn(flag)
        yield MutexAcquire(self.mutex)

    def _notify_one(self, core: int) -> bool:
        while self._waiters:
            thread = self._waiters.popleft()
            flag = self._wake_flags.pop(thread, None)
            if flag is not None:
                flag.set(core)
                return True
        return False

    def notify(self, thread_ctx) -> Generator[Instr, Any, None]:
        """Wake one waiter (caller should hold the mutex)."""
        self.signals += 1
        yield Compute(self.machine.spec.local_ns)
        self._notify_one(thread_ctx.core_id)

    def notify_all(self, thread_ctx) -> Generator[Instr, Any, None]:
        """Wake every waiter."""
        self.broadcasts += 1
        yield Compute(self.machine.spec.local_ns)
        while self._notify_one(thread_ctx.core_id):
            pass

    def waiter_count(self) -> int:
        return len(self._waiters)


class AtomicCounter:
    """Fetch-and-add cell with coherence-priced RMWs."""

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        home: int = 0,
        name: str = "",
        initial: int = 0,
        stats: Optional[MemStats] = None,
    ) -> None:
        self.machine = machine
        self.line = CacheLine(machine, home=home, name=name or "atomic", stats=stats)
        self.value = initial

    def fetch_add(self, core: int, delta: int = 1) -> Generator[Instr, Any, int]:
        """Atomically add ``delta``; returns the previous value."""
        cost = self.line.rmw(core)
        yield Compute(cost)
        old = self.value
        self.value += delta
        return old

    def load(self, core: int) -> Generator[Instr, Any, int]:
        cost = self.line.read(core)
        yield Compute(cost)
        return self.value
