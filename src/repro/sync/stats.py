"""Lock statistics.

Separated out so spinlocks, mutexes and the lock-free queue variant all
report through the same structure, letting benchmarks and tests compare
them uniformly (ablations A2/A4 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.histogram import Histogram


@dataclass
class LockStats:
    """Counters for one lock (or one family of locks)."""

    acquires: int = 0
    uncontended: int = 0
    contended: int = 0
    handoffs: int = 0
    total_spin_ns: int = 0
    max_waiters: int = 0
    #: acquisitions per core id — exposes the NUMA-capture imbalance the
    #: paper observes on the global queue
    per_core_acquires: dict[int, int] = field(default_factory=dict)
    #: wait-to-acquire distribution (0 for uncontended acquisitions, the
    #: spin/park span for contended ones) — registry paths ``wait_ns.p99``…
    wait_ns: Histogram = field(default_factory=Histogram)
    #: hold-time distribution, acquire-grant to release — the paper's
    #: "critical sections shorter than a context switch" claim, measured
    hold_ns: Histogram = field(default_factory=Histogram)

    def note_acquire(self, core: int, contended: bool, spin_ns: int = 0) -> None:
        self.acquires += 1
        if contended:
            self.contended += 1
            self.total_spin_ns += spin_ns
        else:
            self.uncontended += 1
        self.wait_ns.record(spin_ns if contended else 0)
        self.per_core_acquires[core] = self.per_core_acquires.get(core, 0) + 1

    def note_hold(self, hold_ns: int) -> None:
        self.hold_ns.record(hold_ns)

    def note_waiters(self, n: int) -> None:
        if n > self.max_waiters:
            self.max_waiters = n

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to wait."""
        return self.contended / self.acquires if self.acquires else 0.0

    def mean_spin_ns(self) -> float:
        return self.total_spin_ns / self.contended if self.contended else 0.0
