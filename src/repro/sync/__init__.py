"""Synchronization primitives over the simulated memory model."""

from repro.sync.spinlock import SpinLock
from repro.sync.mutex import Mutex
from repro.sync.condition import AtomicCounter, Condition
from repro.sync.stats import LockStats

__all__ = ["SpinLock", "Mutex", "Condition", "AtomicCounter", "LockStats"]
