"""Order-independent merging of per-job observability outputs.

When ``repro.par`` fans scenario runs out over worker processes, each job
comes back with its own flat :meth:`~repro.obs.MetricsRegistry.snapshot`
and (optionally) its own Chrome-trace document.  Jobs complete in host
scheduler order — these helpers fold any completion order into one
canonical artifact, so a parallel run's merged output is byte-identical
to the serial run's.

Three snapshot merges exist because the shards mean different things:

* :func:`merge_snapshots` — *heterogeneous* jobs (different scenarios):
  each shard is namespaced under its job name, nothing is added up;
* :func:`sum_snapshots` — *homogeneous* shards of one logical run (e.g.
  the same scenario sharded by repetition range): counters with the same
  path are summed;
* :func:`union_snapshots` — *partitioned* shards of one logical world
  (node-sharded cluster simulation): every path belongs to exactly one
  shard, so the merge is a strict disjoint union — a duplicate path is a
  partitioning bug and raises rather than silently summing.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, Union

Number = Union[int, float]


def merge_snapshots(
    named: Sequence[tuple[str, Mapping[str, Number]]]
) -> dict[str, Number]:
    """Fold ``(job_name, snapshot)`` shards into one namespaced snapshot.

    Every counter path becomes ``"{job_name}.{path}"``; the result is
    key-sorted, so any permutation of ``named`` yields the same dict.
    Duplicate job names are rejected — they would silently shadow.
    """
    names = [name for name, _ in named]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate snapshot names: {names}")
    flat: dict[str, Number] = {}
    for name, snap in named:
        for path, value in snap.items():
            flat[f"{name}.{path}"] = value
    return dict(sorted(flat.items()))


def sum_snapshots(
    snapshots: Sequence[Mapping[str, Number]]
) -> dict[str, Number]:
    """Sum homogeneous shards path-wise (missing paths count as 0).

    Addition is commutative, so the result is independent of shard
    order; keys are sorted for stable serialization.
    """
    total: dict[str, Number] = {}
    for snap in snapshots:
        for path, value in snap.items():
            total[path] = total.get(path, 0) + value
    return dict(sorted(total.items()))


def union_snapshots(
    snapshots: Sequence[Mapping[str, Number]]
) -> dict[str, Number]:
    """Disjoint-union merge for node-partitioned shards of one world.

    The cluster sharder scopes every registry path to a node
    (``sched.node3``, ``nmad.node3.gate1`` ...), so shard snapshots
    partition the path space; their union *is* the single-process
    snapshot.  A path appearing in two shards means the partitioning
    leaked — that is a :class:`ValueError`, never a silent sum.  Keys
    are sorted, so any shard order yields the same dict.
    """
    merged: dict[str, Number] = {}
    for i, snap in enumerate(snapshots):
        for path, value in snap.items():
            if path in merged:
                raise ValueError(
                    f"counter path {path!r} appears in more than one shard "
                    f"(second occurrence in shard {i})"
                )
            merged[path] = value
    return dict(sorted(merged.items()))


def _event_key(event: Mapping[str, Any]):
    """Deterministic total order for trace events: time, then process,
    thread, phase and name break ties identically in any input order."""
    return (
        event.get("ts", 0),
        event.get("pid", 0),
        event.get("tid", 0),
        str(event.get("ph", "")),
        str(event.get("name", "")),
        str(event.get("cat", "")),
    )


def merge_trace_docs(
    named: Sequence[tuple[str, Mapping[str, Any]]]
) -> dict[str, Any]:
    """Combine per-job Chrome-trace documents into one timeline.

    Each job's events are moved onto their own ``pid`` (the job's index
    in *name-sorted* order — stable under any completion order) with the
    job name recorded in ``otherData.jobs``; the combined event list is
    re-sorted by :func:`_event_key`.  Per-job ``recorded``/``dropped``
    tallies are summed; other metadata is kept under the job's entry.
    """
    names = [name for name, _ in named]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate trace names: {names}")
    events: list[dict[str, Any]] = []
    jobs_meta: dict[str, Any] = {}
    recorded = dropped = 0
    for name, doc in sorted(named, key=lambda nd: nd[0]):
        pid = len(jobs_meta)
        other = dict(doc.get("otherData", {}))
        recorded += other.pop("recorded", 0)
        dropped += other.pop("dropped", 0)
        jobs_meta[name] = {"pid": pid, **other}
        for event in doc.get("traceEvents", []):
            moved = dict(event)
            moved["pid"] = pid
            events.append(moved)
    events.sort(key=_event_key)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "recorded": recorded,
            "dropped": dropped,
            "jobs": jobs_meta,
        },
    }
