"""Critical-path extraction over causal trace edges.

The instrumented subsystems (queues, manager, scheduler doorbells, locks,
NIC, fault injector, nmad) emit causal edges ``cause -> effect`` via
:meth:`repro.sim.trace.Tracer.edge`, each spanning the virtual-time
interval ``[start, end]``.  This module walks those edges *backward* from
the last task completion to recover the chain of events that determined
the run's makespan, then attributes every nanosecond of that chain to a
subsystem bucket:

* ``compute``       — task functions executing (and submission work);
* ``queue_wait``    — submitted work sitting in a task queue;
* ``lock_wait``     — waiting on a contended queue lock (overlay, below);
* ``nic``           — TX serialization + wire latency;
* ``retransmit``    — loss-detection timeouts (fault worlds);
* ``wakeup``        — doorbell propagation, idle-loop wake and re-poll
  gaps of repeat tasks;
* ``untraced``      — trace start up to the first explained event (work
  before the first causal edge, e.g. thread spawn-up).

At a node with several incoming edges the walker picks the one whose
cause is *latest* — the classic critical-dependency rule: the last thing
you were waiting for is the thing that made you late.  By construction
the attributed nanoseconds sum exactly to the makespan (trace start to
terminal completion).

Lock waits are not on the task chain itself (a queue lock delays the
*poller*, which the task sees as queue wait), so they are applied as an
**overlay**: lock-wait intervals overlapping a ``queue_wait``/``wakeup``/
``untraced`` segment reallocate that overlap to ``lock_wait`` — a
deliberate heuristic that keeps the sum invariant while naming the lock
storms the paper measures on the global queue.

``python -m repro.bench analyze --trace t.json --critical-path`` renders
the path; :mod:`repro.obs.gantt` overlays it on the Gantt chart.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.obs.analyze import (
    _Edge,
    _events_from_doc,
    _events_from_tracer,
    queue_level,
)

#: edge kind -> attribution bucket
_CATEGORY = {
    "submit": "compute",
    "compute": "compute",
    "queue_wait": "queue_wait",
    "poll": "wakeup",
    "dispatch": "wakeup",
    "wakeup": "wakeup",
    "post": "nic",
    "nic": "nic",
    "retransmit": "retransmit",
    "lock_wait": "lock_wait",
}

#: every attribution bucket, display order
CATEGORIES = (
    "compute",
    "queue_wait",
    "lock_wait",
    "nic",
    "retransmit",
    "wakeup",
    "untraced",
)


@dataclass
class PathSegment:
    """One hop of the critical path: ``[start, end]`` explained by one edge."""

    kind: str
    category: str
    start: int
    end: int
    cause: str
    effect: str
    queue: str = ""
    #: ns of this segment reallocated to lock_wait by the overlay
    lock_overlap_ns: int = 0

    @property
    def duration_ns(self) -> int:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The extracted path plus its subsystem/level attribution."""

    t_start: int = 0
    terminal_time: int = 0
    terminal: str = ""
    segments: list[PathSegment] = field(default_factory=list)
    #: attributed ns per bucket; sums exactly to ``makespan_ns``
    totals: dict[str, int] = field(default_factory=dict)
    #: queue-wait ns per topology level (subset of totals["queue_wait"])
    level_ns: dict[str, int] = field(default_factory=dict)
    edge_count: int = 0

    @property
    def makespan_ns(self) -> int:
        return self.terminal_time - self.t_start

    def shares(self) -> dict[str, float]:
        """Bucket shares of the makespan (empty path -> empty dict)."""
        span = self.makespan_ns
        if span <= 0:
            return {}
        return {k: v / span for k, v in self.totals.items()}

    def to_jsonable(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["makespan_ns"] = self.makespan_ns
        out["shares"] = self.shares()
        return out


# ---------------------------------------------------------------------------
# ingestion
# ---------------------------------------------------------------------------
def _edges_from_merged_doc(doc: dict) -> list[_Edge]:
    """Doc-path edge ingest with per-job node namespacing.

    A ``--jobs N`` merged trace interleaves independent simulations whose
    task names collide (every job has a ``perf0``); prefixing node ids
    with the merged pid keeps each job's causal graph separate."""
    edges: list[_Edge] = []
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != "i":
            continue
        args = ev.get("args") or {}
        if "edge" not in args:
            continue
        t = int(round(ev.get("ts", 0) * 1000))
        pfx = f"p{ev.get('pid', 0)}:"
        edges.append(
            _Edge(
                kind=str(args.get("edge", "")),
                cause=pfx + str(args.get("cause", "")),
                effect=pfx + str(args.get("effect", "")),
                start=min(int(args.get("start", t)), t),
                end=t,
                queue=str(args.get("queue", "")),
            )
        )
    return edges


def _ingest(source) -> tuple[list[_Edge], list, int, int]:
    """Return (edges, lock_waits, t_start, t_end) for a tracer or doc."""
    if hasattr(source, "records"):
        runs, submits, locks, faults, edges = _events_from_tracer(source)
    else:
        runs, submits, locks, faults, edges = _events_from_doc(source)
        jobs = (source.get("otherData") or {}).get("jobs")
        if jobs and len(jobs) > 1:
            edges = _edges_from_merged_doc(source)
    times = (
        [r.start for r in runs]
        + [r.end for r in runs]
        + [s.time for s in submits]
        + [lk.start for lk in locks]
        + [lk.end for lk in locks]
        + [f.time for f in faults]
        + [e.start for e in edges]
        + [e.end for e in edges]
    )
    t_start = min(times) if times else 0
    t_end = max(times) if times else 0
    return edges, locks, t_start, t_end


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------
def extract_critical_path(source: Union["Tracer", dict]) -> CriticalPath:  # noqa: F821
    """Walk causal edges backward from the last completion.

    Accepts a live ``Tracer`` or a loaded Chrome-trace document.  A trace
    with no causal edges yields a single ``untraced`` segment spanning the
    whole trace (or an empty path for an empty trace)."""
    edges, locks, t_start, t_end = _ingest(source)
    cp = CriticalPath(t_start=t_start, edge_count=len(edges))
    cp.totals = {c: 0 for c in CATEGORIES}

    if not edges:
        cp.terminal_time = t_end
        cp.terminal = ""
        if t_end > t_start:
            cp.segments = [
                PathSegment("untraced", "untraced", t_start, t_end, "", "")
            ]
            cp.totals["untraced"] = t_end - t_start
        return cp

    # terminal: the last task completion; fall back to the last edge at all
    done = [e for e in edges if e.effect.endswith("/done")]
    pool = done or edges
    terminal_edge = max(pool, key=lambda e: (e.end, e.effect))
    cp.terminal = terminal_edge.effect
    cp.terminal_time = terminal_edge.end

    incoming: dict[str, list[_Edge]] = {}
    for e in edges:
        incoming.setdefault(e.effect, []).append(e)

    # -- backward walk --------------------------------------------------
    node = cp.terminal
    cursor = cp.terminal_time
    raw: list[PathSegment] = []
    visited: set[tuple[str, int]] = set()
    for _ in range(len(edges) + 2):
        cands = incoming.get(node)
        if not cands:
            break
        # latest cause wins; kind/cause break timestamp ties deterministically
        e = max(cands, key=lambda e: (e.start, e.kind, e.cause))
        start = min(e.start, cursor)
        raw.append(
            PathSegment(
                kind=e.kind,
                category=_CATEGORY.get(e.kind, "compute"),
                start=start,
                end=cursor,
                cause=e.cause,
                effect=node,
                queue=e.queue,
            )
        )
        key = (e.cause, start)
        if key in visited:
            break  # cycle guard (malformed trace)
        visited.add(key)
        node, cursor = e.cause, start
    raw.reverse()

    # everything before the first explained event is untraced makespan
    if cursor > t_start:
        raw.insert(
            0, PathSegment("untraced", "untraced", t_start, cursor, "", node)
        )
    cp.segments = raw

    # -- attribution ----------------------------------------------------
    for seg in cp.segments:
        cp.totals[seg.category] += seg.duration_ns

    # lock overlay: reallocate lock-wait overlap out of wait-ish buckets
    intervals = _merge_intervals([(lk.start, lk.end) for lk in locks])
    if intervals:
        for seg in cp.segments:
            if seg.category not in ("queue_wait", "wakeup", "untraced"):
                continue
            ov = _overlap_ns(seg.start, seg.end, intervals)
            if ov > 0:
                seg.lock_overlap_ns = ov
                cp.totals[seg.category] -= ov
                cp.totals["lock_wait"] += ov

    # queue-level attribution of the (post-overlay) queue waits
    for seg in cp.segments:
        if seg.category == "queue_wait" and seg.queue:
            ns = seg.duration_ns - seg.lock_overlap_ns
            if ns > 0:
                lvl = queue_level(seg.queue)
                cp.level_ns[lvl] = cp.level_ns.get(lvl, 0) + ns
    return cp


def _merge_intervals(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of possibly-overlapping [start, end] intervals, sorted."""
    out: list[tuple[int, int]] = []
    for s, e in sorted(spans):
        if e <= s:
            continue
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1] = (out[-1][0], e)
        else:
            out.append((s, e))
    return out


def _overlap_ns(start: int, end: int, intervals: list[tuple[int, int]]) -> int:
    """Total ns of [start, end] covered by the (merged) intervals."""
    total = 0
    for s, e in intervals:
        if s >= end:
            break
        lo, hi = max(s, start), min(e, end)
        if hi > lo:
            total += hi - lo
    return total


def extract_critical_path_file(path: str) -> CriticalPath:
    """Load a ``--trace-out`` JSON file and extract its critical path."""
    with open(path) as fh:
        return extract_critical_path(json.load(fh))


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def format_critical_path(cp: CriticalPath, max_segments: int = 40) -> str:
    """Text report: attribution summary, then the path hop by hop."""
    lines = [
        f"== critical path: {len(cp.segments)} segments over "
        f"{cp.makespan_ns} ns makespan "
        f"({cp.edge_count} causal edges"
        + (f", terminal {cp.terminal}" if cp.terminal else "")
        + ") =="
    ]
    span = cp.makespan_ns
    if span <= 0:
        lines.append("  (no traced makespan)")
        return "\n".join(lines)
    parts = []
    for cat in CATEGORIES:
        ns = cp.totals.get(cat, 0)
        if ns:
            parts.append(f"{cat} {100 * ns / span:.1f}% ({ns} ns)")
    lines.append("   attribution: " + (", ".join(parts) or "none"))
    if cp.level_ns:
        lv = ", ".join(
            f"{level} {100 * ns / span:.1f}% ({ns} ns)"
            for level, ns in sorted(cp.level_ns.items())
        )
        lines.append(f"   queue wait by level: {lv}")
    segs = cp.segments
    shown = segs
    elided = 0
    if len(segs) > max_segments:
        head = max_segments // 2
        tail = max_segments - head
        shown = segs[:head] + segs[-tail:]
        elided = len(segs) - len(shown)
    for i, seg in enumerate(shown):
        if elided and i == max_segments // 2:
            lines.append(f"   ... ({elided} segments elided) ...")
        note = f" (q:{seg.queue})" if seg.queue else ""
        if seg.lock_overlap_ns:
            note += f" [lock overlay {seg.lock_overlap_ns} ns]"
        arrow = f"{seg.cause} -> {seg.effect}" if seg.cause else seg.effect
        lines.append(
            f"   t+{seg.start - cp.t_start:<10} {seg.category:<10} "
            f"{seg.duration_ns:>8} ns  {seg.kind:<10} {arrow}{note}"
        )
    return "\n".join(lines)
