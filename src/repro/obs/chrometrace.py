"""Chrome-trace (chrome://tracing / Perfetto) export of a Tracer.

Converts :class:`repro.sim.trace.TraceRecord` streams into the Trace Event
Format JSON that ``chrome://tracing`` and https://ui.perfetto.dev load
directly, putting the scheduler's behaviour on a zoomable timeline — the
same debugging leverage Thibault's topology-aware trace views give for
hierarchical thread schedulers.

Mapping:

* records carrying structured task-lifetime data (``phase="run"`` with a
  ``start`` timestamp, emitted by :class:`repro.core.manager.PIOMan`)
  become **complete** (``"ph": "X"``) duration slices on the executing
  core's track, with the queue name and completion verdict in ``args``;
* ``phase="submit"`` records become instant events on the submitting
  core's track (so submit→run latency is visible as the gap between the
  marker and the slice);
* every other record becomes an instant event on its actor's track.

Tracks: one synthetic process ("repro-sim"), one thread per distinct
actor (``core0``, ``node1``, ``ib@node0.0`` ...), named via metadata
events.  Timestamps are the simulator's integer nanoseconds divided by
1000 — the format's ``ts``/``dur`` unit is microseconds.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer

#: JSON-safe scalar types allowed into an event's ``args``
_ARG_TYPES = (str, int, float, bool, type(None))


def _safe_args(data: dict, *, drop: tuple[str, ...] = ()) -> dict[str, Any]:
    return {
        k: v
        for k, v in data.items()
        if k not in drop and isinstance(v, _ARG_TYPES)
    }


def chrome_trace(
    tracer: "Tracer", *, meta: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Render every record of ``tracer`` as a Trace Event Format document.

    ``meta`` entries are merged into ``otherData`` — the bench CLI stamps
    the simulated machine's name and core count there so the offline
    analyzer (:mod:`repro.obs.analyze`) can report on cores that emitted
    no events at all.
    """
    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 0, "args": {"name": "repro-sim"}}
    ]
    tids: dict[str, int] = {}

    def tid_for(actor: str) -> int:
        tid = tids.get(actor)
        if tid is None:
            tid = tids[actor] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": actor},
                }
            )
        return tid
    for rec in tracer.records:
        data = rec.data or {}
        phase = data.get("phase")
        if phase == "run" and "start" in data:
            start = data["start"]
            if start > rec.time:
                # Malformed record (clock went backwards / bad producer):
                # Perfetto rejects negative durations outright, so emit a
                # zero-length slice at the record's end time instead.
                start = rec.time
            events.append(
                {
                    "name": data.get("task") or rec.message,
                    "cat": rec.category,
                    "ph": "X",
                    "ts": start / 1000.0,
                    "dur": (rec.time - start) / 1000.0,
                    "pid": 0,
                    "tid": tid_for(rec.actor),
                    "args": _safe_args(data, drop=("phase", "start", "task")),
                }
            )
        else:
            name = rec.message
            if phase == "submit" and data.get("task"):
                name = f"submit {data['task']}"
            events.append(
                {
                    "name": name,
                    "cat": rec.category,
                    "ph": "i",
                    "s": "t",
                    "ts": rec.time / 1000.0,
                    "pid": 0,
                    "tid": tid_for(rec.actor),
                    "args": _safe_args(data, drop=("phase",)),
                }
            )
    other: dict[str, Any] = {
        "recorded": len(tracer.records),
        "dropped": tracer.dropped,
    }
    if meta:
        other.update(meta)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def write_chrome_trace(
    path: str,
    tracer: "Tracer",
    *,
    compact: bool = True,
    meta: Optional[dict[str, Any]] = None,
) -> int:
    """Write ``tracer`` to ``path`` as loadable JSON; returns event count.

    ``compact=True`` (the default) writes single-line minimal-separator
    JSON — pretty-printing with ``indent`` roughly triples file size on
    large traces, and every consumer (Perfetto, chrome://tracing, the
    analyzer) parses compact JSON just as happily.
    """
    doc = chrome_trace(tracer, meta=meta)
    with open(path, "w") as fh:
        if compact:
            json.dump(doc, fh, separators=(",", ":"))
        else:
            json.dump(doc, fh, indent=1)
    return len(doc["traceEvents"])
