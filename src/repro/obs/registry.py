"""The metrics registry — one place to see every counter.

The paper's argument is carried by measured scheduler internals: lock
contention on the global queue, empty-check traffic, per-core execution
shares (§IV-A, Tables I/II).  Those counters already exist — ``QueueStats``,
``LockStats``, ``MemStats``, ``PIOManStats``, ``NicStats`` ... — but each
lives on its own object.  A :class:`MetricsRegistry` gives them a common
address space:

* stats-bearing objects **register** under a dot-path at construction
  (``pioman.q:core#0``, ``sched.node0``, ``nic.ib@node0.0``);
* :meth:`snapshot` scrapes every source into a flat
  ``{"pioman.q:core#0.lost_races": 3, ...}`` mapping, ready for JSON;
* :meth:`diff` subtracts two snapshots and keeps only the counters that
  moved — the regression-gate primitive for perf PRs;
* :meth:`report` renders a topology-grouped human view.

Sources may be plain stats objects (dataclasses or ``__slots__`` classes),
mappings, or zero-argument callables returning a mapping (used for derived
metrics such as :meth:`repro.core.manager.PIOMan.execution_shares`).
Numeric ``property`` descriptors on a stats class (e.g.
``LockStats.contention_ratio``) are scraped too, so derived ratios appear
next to their raw counters.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Callable, Mapping, Optional, Union

Number = Union[int, float]
MetricSource = Union[object, Mapping[str, Any], Callable[[], Mapping[str, Any]]]


def _is_summarizable(value: Any) -> bool:
    """Distribution objects (histograms) summarize themselves via
    ``to_metrics()`` — duck-typed so any HDR-style sketch plugs in."""
    return callable(getattr(value, "to_metrics", None))


def _iter_slots(obj: object):
    """Attribute names declared via ``__slots__`` anywhere in the MRO."""
    seen: set[str] = set()
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name.startswith("_") or name in seen:
                continue
            seen.add(name)
            yield name


def _numeric_properties(obj: object):
    """(name, value) for numeric ``property`` descriptors on the class."""
    for klass in type(obj).__mro__:
        for name, descr in vars(klass).items():
            if name.startswith("_") or not isinstance(descr, property):
                continue
            try:
                value = getattr(obj, name)
            except Exception:  # pragma: no cover - defensive
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                yield name, value


def _scrape(source: MetricSource) -> dict[str, Any]:
    """Turn one registered source into a (possibly nested) mapping."""
    if _is_summarizable(source):
        return dict(source.to_metrics())
    if callable(source) and not isinstance(source, type):
        source = source()
    if isinstance(source, Mapping):
        return dict(source)
    out: dict[str, Any] = {}
    if dataclasses.is_dataclass(source) and not isinstance(source, type):
        for f in dataclasses.fields(source):
            if not f.name.startswith("_"):
                out[f.name] = getattr(source, f.name)
    elif hasattr(type(source), "__slots__"):
        for name in _iter_slots(source):
            out[name] = getattr(source, name)
    else:
        for name, value in vars(source).items():
            if not name.startswith("_"):
                out[name] = value
    for name, value in _numeric_properties(source):
        out.setdefault(name, value)
    return out


def _flatten(prefix: str, value: Any, into: dict[str, Number]) -> None:
    if isinstance(value, bool):
        into[prefix] = int(value)
    elif isinstance(value, (int, float)):
        into[prefix] = value
    elif isinstance(value, Mapping):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}", sub, into)
    elif _is_summarizable(value):
        # Histograms nested in stats objects/mappings expand to their
        # stable summary suffixes (<prefix>.count/.p50/.p99/...).
        for key, sub in value.to_metrics().items():
            _flatten(f"{prefix}.{key}", sub, into)
    # non-numeric leaves (names, strings, objects) are not metrics: skip


#: topology level tokens appearing in metric paths, innermost first —
#: drives the report's paper-Fig.-2 ordering (core < cache < chip <
#: numa/node < machine/global)
_LEVEL_RANK = {
    "core": 0,
    "cache": 1,
    "chip": 2,
    "numa": 3,
    "node": 3,
    "machine": 4,
    "global": 4,
}
_LEVEL_TOKEN = re.compile(r"(core|cache|chip|numa|node|machine|global)#?(\d+)?")


def _topo_key(path: str):
    """Sort key rendering paths in topology order, lexicographic fallback.

    Every level token in the path contributes ``(rank, index)``, so
    ``q:core#2`` < ``q:chip#0`` < ``q:machine`` and ``core2`` < ``core10``;
    paths with no level tokens keep their plain lexicographic position.
    """
    tokens = tuple(
        (_LEVEL_RANK[m.group(1)], int(m.group(2) or 0))
        for m in _LEVEL_TOKEN.finditer(path)
    )
    return (tokens, path)


class MetricsRegistry:
    """A tree of named metric sources with flat dot-path export.

    Paths are stable identifiers: tooling (regression gates, dashboards,
    tests) keys on them, so renaming a path is an API change.
    """

    def __init__(self) -> None:
        self._sources: dict[str, MetricSource] = {}

    # -- registration ---------------------------------------------------
    def register(self, path: str, source: MetricSource, *, replace: bool = False) -> None:
        """Register ``source`` under ``path`` (raises on duplicates)."""
        if (
            not path
            or path != path.strip()
            or any(not seg or seg != seg.strip() for seg in path.split("."))
        ):
            raise ValueError(f"invalid metrics path {path!r}")
        if path in self._sources and not replace:
            raise ValueError(f"metrics path {path!r} already registered")
        self._sources[path] = source

    def unregister(self, path: str) -> None:
        self._sources.pop(path, None)

    def paths(self) -> list[str]:
        return sorted(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, path: str) -> bool:
        return path in self._sources

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict[str, Number]:
        """Flat ``{dot.path.counter: value}`` view of every source, sorted."""
        flat: dict[str, Number] = {}
        for path, source in self._sources.items():
            for name, value in _scrape(source).items():
                _flatten(f"{path}.{name}", value, flat)
        return dict(sorted(flat.items()))

    @staticmethod
    def diff(before: Mapping[str, Number], after: Mapping[str, Number]) -> dict[str, Number]:
        """Counters that moved between two snapshots (missing keys = 0).

        Returns ``{path: after - before}`` for every path whose value
        changed; unchanged counters are omitted, so an empty dict means
        "nothing happened between the snapshots".
        """
        out: dict[str, Number] = {}
        for key in sorted(set(before) | set(after)):
            delta = after.get(key, 0) - before.get(key, 0)
            if delta:
                out[key] = delta
        return out

    def report(self, snapshot: Optional[Mapping[str, Number]] = None) -> str:
        """Topology-grouped human-readable rendering of a snapshot.

        Group headers and the entries within each group render in
        *topology* order — per-core entries first, then cache / chip /
        NUMA, the machine/global level last — so the report reads like
        paper Fig. 2 instead of a lexicographic jumble (where ``chip``
        would sort before ``core``).  Paths themselves are unchanged.
        """
        snap = self.snapshot() if snapshot is None else snapshot
        groups: dict[str, list[tuple[str, Number]]] = {}
        for path, value in snap.items():
            top, _, rest = path.partition(".")
            groups.setdefault(top, []).append((rest, value))
        lines: list[str] = []
        for top in sorted(groups, key=_topo_key):
            lines.append(f"== {top} ==")
            width = max(len(name) for name, _ in groups[top])
            for name, value in sorted(groups[top], key=lambda nv: _topo_key(nv[0])):
                if isinstance(value, float):
                    lines.append(f"  {name:<{width}}  {value:.4f}")
                else:
                    lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines) if lines else "(no metrics registered)"

    def __repr__(self) -> str:
        return f"<MetricsRegistry sources={len(self._sources)}>"
