"""Log-bucketed latency histograms.

The paper's scalability argument (§IV-A, Tables I/II) is about
*distributions*: how long a keypoint poll takes, how long a task waits in
a queue before a core picks it up, how lock hold times stretch as core
counts grow.  Plain counters (sums, means) hide exactly the tail behaviour
those tables are about, so the distribution layer records every sample
into a :class:`Histogram` with power-of-two buckets (HDR-histogram style):

* bucket ``i`` holds samples whose ``bit_length`` is ``i`` — i.e. the
  value range ``[2**(i-1), 2**i - 1]`` (bucket 0 holds exactly 0);
* recording is O(1) and allocation-free after the first sample;
* percentiles are resolved to the bucket upper bound, clamped into the
  exact observed ``[min, max]``, which bounds the relative error of any
  quantile by 2x — plenty for nanosecond latency work;
* :meth:`merge` folds another histogram in (per-core collection, global
  report).

A histogram is *scrape-aware*: :meth:`to_metrics` renders the stable
summary mapping (``count/min/max/mean/p50/p90/p99/p999``) that
:class:`repro.obs.MetricsRegistry` flattens into dot-paths, so
``pioman.latency.submit_to_complete.p99`` sits right next to the raw
counters it explains.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]

#: the summary quantiles exported to the metrics registry — stable paths.
#: labels drop the decimal point: 99.9 scrapes as ``<path>.p999``
PERCENTILES = (50, 90, 99, 99.9)


class Histogram:
    """Power-of-two log-bucketed histogram of non-negative integers."""

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max")

    #: buckets preallocated at construction: covers values up to
    #: ``2**_PREALLOC - 1`` without a bounds check on the hot record path
    #: (68 bits > any nanosecond quantity a simulation can produce)
    _PREALLOC = 68

    def __init__(self) -> None:
        self._buckets: list[int] = [0] * self._PREALLOC
        self._count = 0
        self._sum = 0
        self._min = 0
        self._max = 0

    # -- recording ------------------------------------------------------
    def record(self, value: Number) -> None:
        """Record one sample (floats are truncated, negatives clamped)."""
        v = int(value)
        if v < 0:
            v = 0
        try:
            self._buckets[v.bit_length()] += 1
        except IndexError:  # beyond the preallocated range: grow once
            buckets = self._buckets
            buckets.extend([0] * (v.bit_length() + 1 - len(buckets)))
            buckets[v.bit_length()] += 1
        count = self._count
        if count:
            # a sample is outside [min, max] on at most one side
            if v > self._max:
                self._max = v
            elif v < self._min:
                self._min = v
        else:
            self._min = v
            self._max = v
        self._count = count + 1
        self._sum += v

    def record_many(self, value: Number, count: int) -> None:
        """Record ``count`` identical samples in O(1).

        Snapshot-identical to calling :meth:`record` ``count`` times with
        the same ``value`` — same buckets, count, sum, min/max, and hence
        the same percentiles — but one bucket increment regardless of
        ``count``.  This is what lets the quiescence leap replay thousands
        of elided idle-pass latency samples without a per-sample loop.
        """
        k = int(count)
        if k <= 0:
            return
        v = int(value)
        if v < 0:
            v = 0
        try:
            self._buckets[v.bit_length()] += k
        except IndexError:  # beyond the preallocated range: grow once
            buckets = self._buckets
            buckets.extend([0] * (v.bit_length() + 1 - len(buckets)))
            buckets[v.bit_length()] += k
        if self._count:
            if v > self._max:
                self._max = v
            elif v < self._min:
                self._min = v
        else:
            self._min = v
            self._max = v
        self._count += k
        self._sum += v * k

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        if other._count == 0:
            return
        if len(other._buckets) > len(self._buckets):
            self._buckets.extend([0] * (len(other._buckets) - len(self._buckets)))
        for i, n in enumerate(other._buckets):
            self._buckets[i] += n
        if self._count == 0 or other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._count += other._count
        self._sum += other._sum

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def min(self) -> int:
        return self._min

    @property
    def max(self) -> int:
        return self._max

    @property
    def total(self) -> int:
        """Sum of all recorded samples."""
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> int:
        """Value at percentile ``p`` (0..100], bucket-resolution.

        Returns the upper bound of the bucket holding the target rank,
        clamped into the exact observed ``[min, max]`` so ``percentile(100)
        == max`` and low percentiles never under-shoot the true minimum.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        if self._count == 0:
            return 0
        target = max(1, -(-self._count * p // 100))  # ceil(count * p / 100)
        seen = 0
        for i, n in enumerate(self._buckets):
            seen += n
            if seen >= target:
                upper = (1 << i) - 1 if i else 0
                return min(max(upper, self._min), self._max)
        return self._max  # pragma: no cover - target <= count always hits

    def buckets(self) -> list[tuple[int, int, int]]:
        """Non-empty buckets as ``(lo, hi, count)`` triples (for docs/tests)."""
        out = []
        for i, n in enumerate(self._buckets):
            if n:
                lo = (1 << (i - 1)) if i else 0
                hi = (1 << i) - 1 if i else 0
                out.append((lo, hi, n))
        return out

    # -- registry integration -------------------------------------------
    def to_metrics(self) -> dict[str, Number]:
        """Stable summary mapping scraped by :class:`MetricsRegistry`.

        The keys below are dot-path suffixes (``<path>.p99`` ...): renaming
        any of them is an API change.
        """
        out: dict[str, Number] = {
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "mean": self.mean(),
        }
        for p in PERCENTILES:
            label = "p" + format(p, "g").replace(".", "")
            out[label] = self.percentile(p)
        return out

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        if not self._count:
            return "<Histogram empty>"
        return (
            f"<Histogram n={self._count} min={self._min} "
            f"p50={self.percentile(50)} p99={self.percentile(99)} max={self._max}>"
        )
