"""Dependency-free Gantt/utilization rendering over a trace.

Closes the renderer remainder of ROADMAP item 5: turn a trace (live
``Tracer`` or ``--trace-out`` document) into

* an **SVG** Gantt chart — one lane per core with task slices colored by
  state (completing runs vs repeat polls), fault markers, per-lane busy
  percentages, and an optional critical-path overlay lane colored by
  attribution bucket (:mod:`repro.obs.critpath`);
* a **terminal** chart — the same lanes as block characters, plus a
  critical-path row spelled in category letters.

Both renderers are pure string builders: no matplotlib, no external
anything — CI uploads the SVG as an artifact next to the JSON trace.

``python -m repro.bench render --trace t.json --gantt-out g.svg [--term]``
"""

from __future__ import annotations

import html
import json
from typing import Optional, Union

from repro.obs.analyze import _events_from_doc, _events_from_tracer
from repro.obs.critpath import CriticalPath, extract_critical_path

#: critical-path bucket colors (shared by SVG and legend)
CATEGORY_COLORS = {
    "compute": "#59a14f",
    "queue_wait": "#f28e2b",
    "lock_wait": "#e15759",
    "nic": "#76b7b2",
    "retransmit": "#b07aa1",
    "wakeup": "#edc948",
    "untraced": "#bab0ac",
}

#: one-letter codes for the terminal critical-path row
CATEGORY_LETTERS = {
    "compute": "C",
    "queue_wait": "Q",
    "lock_wait": "L",
    "nic": "N",
    "retransmit": "R",
    "wakeup": "W",
    "untraced": ".",
}

_RUN_COLOR = "#4e79a7"  # completing run slice
_POLL_COLOR = "#a0cbe8"  # repeat poll slice
_FAULT_COLOR = "#e15759"


def _ingest(source):
    """(runs, faults, t_start, t_end, ncores) from a tracer or doc."""
    ncores = None
    if hasattr(source, "records"):
        runs, submits, locks, faults, edges = _events_from_tracer(source)
    else:
        runs, submits, locks, faults, edges = _events_from_doc(source)
        meta_n = (source.get("otherData") or {}).get("ncores")
        ncores = int(meta_n) if meta_n else None
    times = (
        [r.start for r in runs]
        + [r.end for r in runs]
        + [s.time for s in submits]
        + [lk.start for lk in locks]
        + [lk.end for lk in locks]
        + [f.time for f in faults]
        + [e.start for e in edges]
        + [e.end for e in edges]
    )
    t0 = min(times) if times else 0
    t1 = max(times) if times else 0
    max_core = max((r.core for r in runs), default=-1)
    n = max(ncores or 0, max_core + 1)
    return runs, faults, t0, t1, n


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000:
        return f"{ns / 1_000_000:g} ms"
    if ns >= 1_000:
        return f"{ns / 1_000:g} µs"
    return f"{ns} ns"


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------
def render_gantt_svg(
    source: Union["Tracer", dict],  # noqa: F821 - duck-typed
    *,
    critical_path: Optional[CriticalPath] = None,
    width: int = 1000,
    lane_height: int = 22,
    title: str = "",
) -> str:
    """Render the trace as a self-contained SVG string."""
    runs, faults, t0, t1, ncores = _ingest(source)
    if critical_path is None:
        critical_path = extract_critical_path(source)
    span = max(t1 - t0, 1)
    left, top, right = 80, 34, 16
    plot_w = max(width - left - right, 100)

    def x(t: int) -> float:
        return left + (t - t0) * plot_w / span

    lanes = []  # (label, y) rows: critical path, faults (if any), cores
    y = top
    has_cp = bool(critical_path.segments)
    if has_cp:
        lanes.append(("critpath", y))
        y += lane_height + 4
    if faults:
        lanes.append(("faults", y))
        y += lane_height + 4
    core_y = {}
    for c in range(ncores):
        lanes.append((f"core{c}", y))
        core_y[c] = y
        y += lane_height + 4
    legend_y = y + 10
    height = legend_y + 40

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    head = title or f"gantt: {len(runs)} slices over {_fmt_ns(span)}"
    out.append(f'<text x="{left}" y="16" font-size="13">{html.escape(head)}</text>')

    # time axis: 6 ticks
    for i in range(7):
        t = t0 + span * i // 6
        xi = x(t)
        out.append(
            f'<line x1="{xi:.1f}" y1="{top - 4}" x2="{xi:.1f}" '
            f'y2="{legend_y - 6}" stroke="#eee"/>'
        )
        out.append(
            f'<text x="{xi:.1f}" y="{top - 8}" text-anchor="middle" '
            f'fill="#888">{html.escape(_fmt_ns(t - t0))}</text>'
        )

    # lane labels + backgrounds
    for label, ly in lanes:
        out.append(
            f'<text x="{left - 8}" y="{ly + lane_height - 7}" '
            f'text-anchor="end">{html.escape(label)}</text>'
        )
        out.append(
            f'<rect x="{left}" y="{ly}" width="{plot_w}" '
            f'height="{lane_height}" fill="#f7f7f7"/>'
        )

    # critical-path overlay lane, colored by bucket
    if has_cp:
        cp_y = lanes[0][1]
        for seg in critical_path.segments:
            if seg.duration_ns <= 0:
                continue
            color = CATEGORY_COLORS.get(seg.category, "#999")
            x0, x1 = x(seg.start), x(seg.end)
            w = max(x1 - x0, 0.5)
            label = html.escape(f"{seg.category} {seg.duration_ns} ns {seg.kind}")
            out.append(
                f'<rect x="{x0:.1f}" y="{cp_y + 2}" width="{w:.1f}" '
                f'height="{lane_height - 4}" fill="{color}">'
                f"<title>{label}</title></rect>"
            )

    # fault markers
    if faults:
        f_y = lanes[1][1] if has_cp else lanes[0][1]
        for f in faults:
            xi = x(f.time)
            out.append(
                f'<line x1="{xi:.1f}" y1="{f_y + 2}" x2="{xi:.1f}" '
                f'y2="{f_y + lane_height - 2}" stroke="{_FAULT_COLOR}" '
                f'stroke-width="1.5"><title>{html.escape(f.kind)}</title></line>'
            )

    # per-core run slices + utilization
    busy = {c: 0 for c in range(ncores)}
    for r in runs:
        if r.core not in core_y:
            continue
        busy[r.core] += r.end - r.start
        color = _RUN_COLOR if r.complete else _POLL_COLOR
        x0, x1 = x(r.start), x(r.end)
        w = max(x1 - x0, 0.5)
        ly = core_y[r.core]
        label = html.escape(f"{r.task} {r.end - r.start} ns ({r.queue})")
        out.append(
            f'<rect x="{x0:.1f}" y="{ly + 2}" width="{w:.1f}" '
            f'height="{lane_height - 4}" fill="{color}">'
            f"<title>{label}</title></rect>"
        )
    for c in range(ncores):
        util = 100 * busy[c] / span
        ly = core_y[c]
        out.append(
            f'<text x="{left + plot_w + 4}" y="{ly + lane_height - 7}" '
            f'fill="#666">{util:.1f}%</text>'
        )

    # legend
    lx = left
    entries = [("run", _RUN_COLOR), ("poll", _POLL_COLOR)]
    if has_cp:
        entries += [
            (cat, col)
            for cat, col in CATEGORY_COLORS.items()
            if critical_path.totals.get(cat)
        ]
    if faults:
        entries.append(("fault", _FAULT_COLOR))
    for name, color in entries:
        out.append(
            f'<rect x="{lx}" y="{legend_y}" width="10" height="10" fill="{color}"/>'
        )
        out.append(
            f'<text x="{lx + 14}" y="{legend_y + 9}">{html.escape(name)}</text>'
        )
        lx += 24 + 7 * len(name)
    out.append("</svg>")
    return "\n".join(out)


def write_gantt_svg(
    path: str,
    source: Union["Tracer", dict],  # noqa: F821
    *,
    critical_path: Optional[CriticalPath] = None,
    width: int = 1000,
    title: str = "",
) -> str:
    """Render and write; returns the path for chaining."""
    svg = render_gantt_svg(
        source, critical_path=critical_path, width=width, title=title
    )
    with open(path, "w") as fh:
        fh.write(svg)
    return path


# ---------------------------------------------------------------------------
# terminal
# ---------------------------------------------------------------------------
def render_gantt_term(
    source: Union["Tracer", dict],  # noqa: F821
    *,
    critical_path: Optional[CriticalPath] = None,
    width: int = 72,
) -> str:
    """Block-character Gantt chart for a terminal.

    Per-core rows use ``█`` for completing runs and ``░`` for repeat
    polls; the ``cpath`` row spells the dominant attribution bucket of
    each time bin (C=compute Q=queue L=lock N=nic R=retransmit W=wakeup
    .=untraced)."""
    runs, faults, t0, t1, ncores = _ingest(source)
    if critical_path is None:
        critical_path = extract_critical_path(source)
    span = max(t1 - t0, 1)
    cols = max(width, 10)

    def col_span(start: int, end: int) -> range:
        c0 = (start - t0) * cols // span
        c1 = max((end - t0) * cols // span, c0 + 1)
        return range(max(c0, 0), min(c1, cols))

    lines = [
        f"gantt over {_fmt_ns(span)} ({len(runs)} slices, {ncores} cores)"
    ]
    if critical_path.segments:
        # dominant bucket per column, latest-starting segment wins ties
        row = [" "] * cols
        fill = {c: {} for c in range(cols)}
        for seg in critical_path.segments:
            for c in col_span(seg.start, seg.end):
                fill[c][seg.category] = (
                    fill[c].get(seg.category, 0) + seg.duration_ns
                )
        for c in range(cols):
            if fill[c]:
                cat = max(sorted(fill[c]), key=lambda k: fill[c][k])
                row[c] = CATEGORY_LETTERS.get(cat, "?")
        lines.append(f"  cpath |{''.join(row)}|")
    for core in range(ncores):
        row = [" "] * cols
        busy = 0
        for r in runs:
            if r.core != core:
                continue
            busy += r.end - r.start
            ch = "█" if r.complete else "░"
            for c in col_span(r.start, r.end):
                if row[c] != "█":
                    row[c] = ch
        util = 100 * busy / span
        lines.append(f"  core{core:<2}|{''.join(row)}| {util:5.1f}%")
    if faults:
        row = [" "] * cols
        for f in faults:
            for c in col_span(f.time, f.time + 1):
                row[c] = "!"
        lines.append(f"  fault |{''.join(row)}|")
    lines.append(
        "  key: █ run  ░ poll  ! fault   cpath: C=compute Q=queue "
        "L=lock N=nic R=retransmit W=wakeup .=untraced"
    )
    return "\n".join(lines)


def render_gantt_file(
    path: str, *, width: int = 1000, term: bool = False, term_width: int = 72
) -> str:
    """Load a trace JSON and render (SVG string, or terminal when ``term``)."""
    with open(path) as fh:
        doc = json.load(fh)
    if term:
        return render_gantt_term(doc, width=term_width)
    return render_gantt_svg(doc, width=width)
