"""Regression blame: ranked diffs between two recorded documents.

``python -m repro.bench diff A.json B.json`` compares two runs and says
*what got slower and why*, instead of the bare ratio the CI gate used to
print.  Three document kinds are understood (detected automatically):

* **hostperf reports** (``bench perf --out``): per-scenario events/sec
  ratios ranked worst-first, each with the fingerprint counters that
  moved and the subsystem the dominant mover belongs to —
  ``fault_net  -12.3% ev/s  dominant: nic/retransmit (retransmits +8.1%)``;
* **analysis documents** (``bench analyze --analysis-out``): makespan,
  completion percentiles, per-level queue waits, lock waits and fault
  impacts diffed head to head;
* **metrics snapshots** (``--metrics-out``): every counter that moved,
  ranked by relative change.

A Chrome-trace document is accepted too — it is analyzed on the fly and
diffed as an analysis.  ``repro.bench.hostperf`` calls :func:`diff_docs`
from its regression gate so a perf-smoke failure ships its own blame
report.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: hostperf fingerprint counter -> subsystem named in the blame line
_FP_SUBSYSTEM = {
    "drops": "nic/retransmit",
    "retransmits": "nic/retransmit",
    "reorders": "nic/retransmit",
    "messages": "net",
    "exchanges": "net",
    "round_trips": "latency",
    "sum_latency_ns": "latency",
    "lock_preemptions": "lock wait",
    "cancel_attempts": "faults",
    "cancel_hits": "faults",
    "slow_cores": "faults",
    "submits": "scheduler",
    "executions": "scheduler",
    "schedule_passes": "scheduler",
    "summary_hits": "scheduler",
    "virtual_ns": "makespan",
    "fired": "engine",
}


@dataclass
class BlameItem:
    """One counter/metric that moved between the two documents."""

    name: str
    a: Optional[float]
    b: Optional[float]
    #: relative change (b-a)/a; None when a is 0/absent (rendered "new")
    rel: Optional[float] = None
    subsystem: str = ""

    @property
    def magnitude(self) -> float:
        if self.rel is None:
            return float("inf")
        return abs(self.rel)


@dataclass
class DiffEntry:
    """One compared unit (a scenario, or the whole analysis/snapshot)."""

    name: str
    #: B-over-A throughput ratio (<1 = regressed); None when unmeasurable
    ratio: Optional[float]
    headline: str
    dominant: str = ""
    items: list[BlameItem] = field(default_factory=list)


@dataclass
class DiffReport:
    kind: str
    entries: list[DiffEntry] = field(default_factory=list)
    headline: str = ""
    #: scenario names present only in B / only in A.  The matrix grows
    #: over time, so a baseline recorded before a new scenario existed is
    #: the *common* case for the perf-smoke blame report — disjoint sets
    #: are reported, never an error.
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)

    def to_jsonable(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# kind detection / loading
# ---------------------------------------------------------------------------
def doc_kind(doc: dict) -> str:
    """Classify a loaded JSON document; raises on unknown shapes."""
    meta = doc.get("meta")
    if (isinstance(meta, dict) and meta.get("kind") == "host_perf") or (
        "scenarios" in doc and "aggregate" in doc
    ):
        return "host_perf"
    if "traceEvents" in doc:
        return "trace"
    if "metrics" in doc:
        return "metrics"
    if "cores" in doc and "levels" in doc:
        return "analysis"
    raise ValueError(
        "unrecognized document: expected a hostperf report, analysis, "
        "metrics snapshot, or Chrome trace"
    )


def load_doc(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _rel(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None or b is None or a == 0:
        return None
    return (b - a) / a


def _fmt_rel(item: BlameItem) -> str:
    if item.rel is None:
        return "new" if item.a in (None, 0) else "gone"
    return f"{100 * item.rel:+.1f}%"


# ---------------------------------------------------------------------------
# hostperf reports
# ---------------------------------------------------------------------------
def _diff_hostperf(a: dict, b: dict) -> DiffReport:
    a_by = {s["name"]: s for s in a.get("scenarios", [])}
    b_by = {s["name"]: s for s in b.get("scenarios", [])}
    entries: list[DiffEntry] = []
    added = sorted(set(b_by) - set(a_by))
    removed = sorted(set(a_by) - set(b_by))
    for name in sorted(set(a_by) | set(b_by)):
        sa, sb = a_by.get(name), b_by.get(name)
        if sa is None or sb is None:
            entries.append(
                DiffEntry(
                    name=name,
                    ratio=None,
                    headline="added (only in B)" if sa is None
                    else "removed (only in A)",
                )
            )
            continue
        ea, eb = sa.get("events_per_sec"), sb.get("events_per_sec")
        ratio = (eb / ea) if ea and eb else None
        items: list[BlameItem] = []
        fa = dict(sa.get("fingerprint") or {})
        fb = dict(sb.get("fingerprint") or {})
        fa.setdefault("virtual_ns", sa.get("virtual_ns"))
        fb.setdefault("virtual_ns", sb.get("virtual_ns"))
        for key in sorted(set(fa) | set(fb)):
            va, vb = fa.get(key), fb.get(key)
            if va == vb:
                continue
            items.append(
                BlameItem(
                    name=key,
                    a=va,
                    b=vb,
                    rel=_rel(va, vb),
                    subsystem=_FP_SUBSYSTEM.get(key, "other"),
                )
            )
        items.sort(key=lambda it: -it.magnitude)
        dominant = ""
        if items:
            top = items[0]
            dominant = f"{top.subsystem} ({top.name} {_fmt_rel(top)})"
        if ratio is None:
            headline = "ev/s n/a"
        else:
            headline = f"{100 * (ratio - 1):+.1f}% ev/s"
        entries.append(
            DiffEntry(
                name=name, ratio=ratio, headline=headline,
                dominant=dominant, items=items,
            )
        )
    # worst regression first; unmeasurable entries last
    entries.sort(key=lambda e: e.ratio if e.ratio is not None else float("inf"))
    agg_a = (a.get("aggregate") or {}).get("events_per_sec")
    agg_b = (b.get("aggregate") or {}).get("events_per_sec")
    agg = _rel(agg_a, agg_b)
    headline = (
        f"aggregate {100 * agg:+.1f}% ev/s" if agg is not None else "aggregate n/a"
    )
    if added or removed:
        # disjoint scenario sets are normal (the matrix grows); say so in
        # the headline instead of letting the aggregate ratio mislead
        bits = []
        if added:
            bits.append(f"{len(added)} scenario{'s' if len(added) > 1 else ''} added")
        if removed:
            bits.append(
                f"{len(removed)} scenario{'s' if len(removed) > 1 else ''} removed"
            )
        headline += " (" + ", ".join(bits) + " — compared on the overlap)"
    return DiffReport(
        kind="host_perf", entries=entries, headline=headline,
        added=added, removed=removed,
    )


# ---------------------------------------------------------------------------
# analysis documents
# ---------------------------------------------------------------------------
def _analysis_items(a: dict, b: dict) -> list[BlameItem]:
    def meta_makespan(doc: dict) -> Optional[float]:
        return (doc.get("meta") or {}).get("makespan_ns") or doc.get("span_ns")

    pairs: list[tuple[str, Optional[float], Optional[float], str]] = [
        ("makespan_ns", meta_makespan(a), meta_makespan(b), "makespan"),
        ("completion_p50_ns", a.get("completion_p50_ns"),
         b.get("completion_p50_ns"), "latency"),
        ("completion_p99_ns", a.get("completion_p99_ns"),
         b.get("completion_p99_ns"), "latency"),
        ("completion_p999_ns", a.get("completion_p999_ns"),
         b.get("completion_p999_ns"), "latency tail"),
    ]
    la = {lv["level"]: lv for lv in a.get("levels", [])}
    lb = {lv["level"]: lv for lv in b.get("levels", [])}
    for level in sorted(set(la) | set(lb)):
        va = (la.get(level) or {}).get("mean_ns")
        vb = (lb.get(level) or {}).get("mean_ns")
        pairs.append((f"queue_wait.{level}.mean_ns", va, vb, "queue wait"))
    ka = {lk["lock"]: lk for lk in a.get("locks", [])}
    kb = {lk["lock"]: lk for lk in b.get("locks", [])}
    for lock in sorted(set(ka) | set(kb)):
        va = (ka.get(lock) or {}).get("total_wait_ns")
        vb = (kb.get(lock) or {}).get("total_wait_ns")
        pairs.append((f"lock_wait.{lock}.total_ns", va, vb, "lock wait"))
    fa = {f["kind"]: f for f in a.get("faults", [])}
    fb = {f["kind"]: f for f in b.get("faults", [])}
    for kind in sorted(set(fa) | set(fb)):
        va = (fa.get(kind) or {}).get("events")
        vb = (fb.get(kind) or {}).get("events")
        sub = "nic/retransmit" if kind in ("drop", "retransmit", "reorder") else "faults"
        pairs.append((f"fault.{kind}.events", va, vb, sub))
    items = [
        BlameItem(name=n, a=va, b=vb, rel=_rel(va, vb), subsystem=sub)
        for n, va, vb, sub in pairs
        if not (va is None and vb is None) and va != vb
    ]
    items.sort(key=lambda it: -it.magnitude)
    return items


def _diff_analysis(a: dict, b: dict) -> DiffReport:
    items = _analysis_items(a, b)
    name = (
        (b.get("meta") or {}).get("scenario")
        or (a.get("meta") or {}).get("scenario")
        or "analysis"
    )
    ma = (a.get("meta") or {}).get("makespan_ns") or a.get("span_ns")
    mb = (b.get("meta") or {}).get("makespan_ns") or b.get("span_ns")
    # throughput convention (<1 regressed): makespan growing = regression
    ratio = (ma / mb) if ma and mb else None
    rel = _rel(ma, mb)
    headline = f"makespan {100 * rel:+.1f}%" if rel is not None else "makespan n/a"
    dominant = ""
    if items:
        top = items[0]
        dominant = f"{top.subsystem} ({top.name} {_fmt_rel(top)})"
    entry = DiffEntry(
        name=name, ratio=ratio, headline=headline, dominant=dominant, items=items
    )
    return DiffReport(kind="analysis", entries=[entry], headline=headline)


# ---------------------------------------------------------------------------
# metrics snapshots
# ---------------------------------------------------------------------------
def _diff_metrics(a: dict, b: dict) -> DiffReport:
    ma = a.get("metrics") or {}
    mb = b.get("metrics") or {}
    items: list[BlameItem] = []
    for key in sorted(set(ma) | set(mb)):
        va, vb = ma.get(key), mb.get(key)
        if va == vb:
            continue
        if va is not None and not isinstance(va, (int, float)):
            continue
        if vb is not None and not isinstance(vb, (int, float)):
            continue
        items.append(
            BlameItem(name=key, a=va, b=vb, rel=_rel(va, vb),
                      subsystem=key.split(".", 1)[0])
        )
    items.sort(key=lambda it: -it.magnitude)
    moved = len(items)
    headline = f"{moved} metrics moved"
    entry = DiffEntry(name="metrics", ratio=None, headline=headline, items=items)
    if items:
        top = items[0]
        entry.dominant = f"{top.subsystem} ({top.name} {_fmt_rel(top)})"
    return DiffReport(kind="metrics", entries=[entry], headline=headline)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def diff_docs(a: dict, b: dict) -> DiffReport:
    """Diff two loaded documents (A = baseline, B = new)."""
    ka, kb = doc_kind(a), doc_kind(b)
    if ka == "trace":
        from repro.obs.analyze import analyze_trace

        a, ka = analyze_trace(a).to_jsonable(), "analysis"
    if kb == "trace":
        from repro.obs.analyze import analyze_trace

        b, kb = analyze_trace(b).to_jsonable(), "analysis"
    if ka != kb:
        raise ValueError(f"cannot diff {ka} against {kb}")
    if ka == "host_perf":
        return _diff_hostperf(a, b)
    if ka == "analysis":
        return _diff_analysis(a, b)
    return _diff_metrics(a, b)


def diff_files(path_a: str, path_b: str) -> DiffReport:
    return diff_docs(load_doc(path_a), load_doc(path_b))


def format_diff(report: DiffReport, top_items: int = 4) -> str:
    """Ranked text blame report, worst regression first."""
    lines = [f"== bench diff ({report.kind}): B vs A — {report.headline} =="]
    for i, e in enumerate(report.entries, 1):
        dom = f"  dominant: {e.dominant}" if e.dominant else ""
        lines.append(f" {i:>2}. {e.name:<22} {e.headline}{dom}")
        for it in e.items[:top_items]:
            lines.append(
                f"       {it.name}: {it.a} -> {it.b} ({_fmt_rel(it)})"
            )
        extra = len(e.items) - top_items
        if extra > 0:
            lines.append(f"       ... {extra} more")
    if report.added:
        lines.append(f"  added in B: {', '.join(report.added)}")
    if report.removed:
        lines.append(f"  removed in B: {', '.join(report.removed)}")
    if not report.entries:
        lines.append("  (nothing to compare)")
    return "\n".join(lines)
