"""Unified observability: metrics registry, latency histograms,
Chrome-trace export, and offline trace analysis.

Complementary views of one simulation run:

* :class:`MetricsRegistry` — every stats-bearing object (task queues,
  spinlocks, cache lines, PIOMan, scheduler cores, NICs, nmad gates)
  registered under a stable dot-path; ``snapshot()``/``diff()`` give the
  machine-readable counters the paper's tables are built from.
* :class:`Histogram` — power-of-two log-bucketed latency distributions
  (queue wait, submit→complete, lock wait/hold, keypoint pass duration),
  scraped into stable ``….p50/.p90/.p99`` registry paths.
* :func:`chrome_trace` / :func:`write_chrome_trace` — convert a
  :class:`repro.sim.trace.Tracer` into a chrome://tracing / Perfetto
  timeline with task lifetimes as per-core slices.
* :func:`analyze_trace` / :func:`format_analysis` — offline analysis of a
  live tracer or an exported trace file: per-core utilization, per-level
  submit→run percentiles, lock contention, slowest tasks.
* :func:`merge_snapshots` / :func:`sum_snapshots` /
  :func:`union_snapshots` / :func:`merge_trace_docs` — order-independent
  folding of per-job / per-shard
  snapshots and trace documents from ``repro.par`` fan-out runs back
  into one canonical artifact.
* :func:`extract_critical_path` / :func:`format_critical_path` — walk
  the causal edges backward from the last completion and attribute the
  makespan to subsystems and topology levels.
* :func:`diff_docs` / :func:`format_diff` — ranked blame report between
  two hostperf/analysis/metrics documents (``bench diff``).
* :func:`render_gantt_svg` / :func:`render_gantt_term` — dependency-free
  Gantt/utilization charts with the critical path overlaid.

All are wired through the bench CLI (``--metrics-out`` / ``--trace-out`` /
``analyze``) so every benchmark run can emit and inspect its internals
next to its paper-shaped table.
"""

from repro.obs.analyze import (
    TraceAnalysis,
    analyze_trace,
    analyze_trace_file,
    format_analysis,
)
from repro.obs.chrometrace import chrome_trace, write_chrome_trace
from repro.obs.critpath import (
    CriticalPath,
    extract_critical_path,
    extract_critical_path_file,
    format_critical_path,
)
from repro.obs.diff import DiffReport, diff_docs, diff_files, format_diff
from repro.obs.gantt import (
    render_gantt_svg,
    render_gantt_term,
    write_gantt_svg,
)
from repro.obs.histogram import Histogram
from repro.obs.merge import (
    merge_snapshots,
    merge_trace_docs,
    sum_snapshots,
    union_snapshots,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "CriticalPath",
    "DiffReport",
    "Histogram",
    "MetricsRegistry",
    "TraceAnalysis",
    "analyze_trace",
    "analyze_trace_file",
    "chrome_trace",
    "diff_docs",
    "diff_files",
    "extract_critical_path",
    "extract_critical_path_file",
    "format_analysis",
    "format_critical_path",
    "format_diff",
    "merge_snapshots",
    "merge_trace_docs",
    "union_snapshots",
    "render_gantt_svg",
    "render_gantt_term",
    "sum_snapshots",
    "write_chrome_trace",
    "write_gantt_svg",
]
