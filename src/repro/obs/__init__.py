"""Unified observability: metrics registry, latency histograms,
Chrome-trace export, and offline trace analysis.

Complementary views of one simulation run:

* :class:`MetricsRegistry` — every stats-bearing object (task queues,
  spinlocks, cache lines, PIOMan, scheduler cores, NICs, nmad gates)
  registered under a stable dot-path; ``snapshot()``/``diff()`` give the
  machine-readable counters the paper's tables are built from.
* :class:`Histogram` — power-of-two log-bucketed latency distributions
  (queue wait, submit→complete, lock wait/hold, keypoint pass duration),
  scraped into stable ``….p50/.p90/.p99`` registry paths.
* :func:`chrome_trace` / :func:`write_chrome_trace` — convert a
  :class:`repro.sim.trace.Tracer` into a chrome://tracing / Perfetto
  timeline with task lifetimes as per-core slices.
* :func:`analyze_trace` / :func:`format_analysis` — offline analysis of a
  live tracer or an exported trace file: per-core utilization, per-level
  submit→run percentiles, lock contention, slowest tasks.
* :func:`merge_snapshots` / :func:`sum_snapshots` /
  :func:`merge_trace_docs` — order-independent folding of per-job
  snapshots and trace documents from ``repro.par`` fan-out runs back
  into one canonical artifact.

All are wired through the bench CLI (``--metrics-out`` / ``--trace-out`` /
``analyze``) so every benchmark run can emit and inspect its internals
next to its paper-shaped table.
"""

from repro.obs.analyze import (
    TraceAnalysis,
    analyze_trace,
    analyze_trace_file,
    format_analysis,
)
from repro.obs.chrometrace import chrome_trace, write_chrome_trace
from repro.obs.histogram import Histogram
from repro.obs.merge import merge_snapshots, merge_trace_docs, sum_snapshots
from repro.obs.registry import MetricsRegistry

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "TraceAnalysis",
    "analyze_trace",
    "analyze_trace_file",
    "chrome_trace",
    "format_analysis",
    "merge_snapshots",
    "merge_trace_docs",
    "sum_snapshots",
    "write_chrome_trace",
]
