"""Unified observability: metrics registry + Chrome-trace export.

Two complementary views of one simulation run:

* :class:`MetricsRegistry` — every stats-bearing object (task queues,
  spinlocks, cache lines, PIOMan, scheduler cores, NICs, nmad gates)
  registered under a stable dot-path; ``snapshot()``/``diff()`` give the
  machine-readable counters the paper's tables are built from.
* :func:`chrome_trace` / :func:`write_chrome_trace` — convert a
  :class:`repro.sim.trace.Tracer` into a chrome://tracing / Perfetto
  timeline with task lifetimes as per-core slices.

Both are wired through the bench CLI (``--metrics-out`` / ``--trace-out``)
so every benchmark run can emit its internals next to its paper-shaped
table.
"""

from repro.obs.chrometrace import chrome_trace, write_chrome_trace
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsRegistry", "chrome_trace", "write_chrome_trace"]
