"""Offline trace analysis — turn a trace into the paper's numbers.

The Chrome-trace export (:mod:`repro.obs.chrometrace`) is write-only: you
need a browser to learn anything from it.  This module closes the loop —
it ingests either a live :class:`repro.sim.trace.Tracer` or a previously
written ``--trace-out`` JSON file and computes the distributions the
paper's scalability argument is made of (§IV-A, Tables I/II):

* **per-core busy/idle utilization** — task-execution time per core over
  the traced span (the execution-share tables, as time instead of counts);
* **submit→run latency percentiles per queue level** — how long a task
  submitted to a core/cache/chip/NUMA/global queue waited before any core
  picked it up, the quantity Table I/II's level analysis is about;
* **lock-contention intervals** — contended acquisitions per lock with
  wait-time percentiles (the level-3 global-queue storms);
* **top-N slowest tasks** — the tail, named, so a regression has a
  concrete task to look at.

``python -m repro.bench analyze --trace t.json`` renders the result as a
topology-grouped text report (cores first, then queue levels innermost to
outermost) and optionally as JSON (``--analysis-out``) for regression
gates.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Union

#: queue-level display names, innermost first — "node" is the paper's name
#: for the NUMA level, "global" for the machine-spanning root queue
LEVEL_ORDER = ("core", "cache", "chip", "node", "global")

_LEVEL_ALIASES = {
    "core": "core",
    "cache": "cache",
    "chip": "chip",
    "numa": "node",
    "node": "node",
    "machine": "global",
    "global": "global",
}


def queue_level(queue_name: str) -> str:
    """Map a queue name (``q:core#3``, ``q:machine``) to its level name."""
    name = queue_name
    if name.startswith("q:"):
        name = name[2:]
    token = name.split("#", 1)[0]
    return _LEVEL_ALIASES.get(token, token or "unknown")


def _percentile(sorted_vals: list[int], p: float) -> int:
    """Exact nearest-rank percentile of a pre-sorted sample list."""
    if not sorted_vals:
        return 0
    rank = max(1, -(-len(sorted_vals) * p // 100))  # ceil
    return sorted_vals[int(rank) - 1]


# ---------------------------------------------------------------------------
# normalized events (the common denominator of both ingest paths)
# ---------------------------------------------------------------------------
@dataclass
class _Run:
    task: str
    core: int
    queue: str
    start: int
    end: int
    complete: bool


@dataclass
class _Submit:
    task: str
    core: int
    queue: str
    time: int


@dataclass
class _LockWait:
    lock: str
    core: int
    wait_ns: int
    start: int
    end: int


@dataclass
class _FaultEvent:
    kind: str
    time: int


@dataclass
class _Edge:
    """One causal edge ``cause -> effect`` spanning ``[start, end]``.

    Emitted by the instrumented subsystems via :meth:`Tracer.edge`;
    consumed by :mod:`repro.obs.critpath` to extract the critical path.
    """

    kind: str
    cause: str
    effect: str
    start: int
    end: int
    queue: str = ""


# ---------------------------------------------------------------------------
# analysis result
# ---------------------------------------------------------------------------
@dataclass
class CoreReport:
    core: int
    busy_ns: int = 0
    runs: int = 0
    completions: int = 0
    #: busy fraction of the traced span; None (rendered "n/a") when the
    #: trace has no time span to divide by — 0.0 would claim a measured
    #: idle core where nothing was actually measured
    utilization: Optional[float] = None

    @property
    def idle_fraction(self) -> Optional[float]:
        return None if self.utilization is None else 1.0 - self.utilization


@dataclass
class LevelLatency:
    """Submit→first-run latency distribution for one queue level."""

    level: str
    count: int
    p50_ns: int
    p99_ns: int
    p999_ns: int
    max_ns: int
    mean_ns: float


@dataclass
class FaultImpact:
    """Tail impact of one injected fault type (repro.faults).

    Completions whose [submit, complete] window contains at least one
    fault event of this kind are "impacted"; the rest of the same trace
    are the in-situ control group.  ``tail_ratio`` is impacted p999 over
    clean p999 — how much the fault stretched the far tail — and is None
    when either side has no samples.
    """

    kind: str
    events: int
    impacted_tasks: int
    clean_tasks: int
    impacted_p99_ns: Optional[int]
    impacted_p999_ns: Optional[int]
    clean_p99_ns: Optional[int]
    clean_p999_ns: Optional[int]
    tail_ratio: Optional[float]


@dataclass
class LockReport:
    lock: str
    contended: int
    total_wait_ns: int
    p50_wait_ns: int
    max_wait_ns: int


@dataclass
class SlowTask:
    task: str
    latency_ns: int
    core: int
    queue: str


@dataclass
class TraceAnalysis:
    """Everything the offline analyzer derives from one trace."""

    t_start: int = 0
    t_end: int = 0
    submits: int = 0
    runs: int = 0
    completions: int = 0
    #: submits with no observed run slice (trace truncated / task pending)
    unmatched_submits: int = 0
    cores: list[CoreReport] = field(default_factory=list)
    levels: list[LevelLatency] = field(default_factory=list)
    locks: list[LockReport] = field(default_factory=list)
    slowest: list[SlowTask] = field(default_factory=list)
    #: overall submit→complete latency percentiles; None ("n/a") when the
    #: trace contains no completed tasks
    completion_p50_ns: Optional[int] = None
    completion_p99_ns: Optional[int] = None
    completion_p999_ns: Optional[int] = None
    #: injected-fault events seen on the trace, and per-kind tail impact
    fault_events: int = 0
    faults: list[FaultImpact] = field(default_factory=list)
    #: top-line header (makespan ns, total trace events, events per
    #: simulated second, scenario name when known) — the stable surface
    #: ``bench diff`` attributes against
    meta: dict = field(default_factory=dict)

    @property
    def span_ns(self) -> int:
        return self.t_end - self.t_start

    def level(self, name: str) -> Optional[LevelLatency]:
        for lv in self.levels:
            if lv.level == name:
                return lv
        return None

    def to_jsonable(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["span_ns"] = self.span_ns
        for core in out["cores"]:
            util = core["utilization"]
            core["idle_fraction"] = None if util is None else 1.0 - util
        return out


# ---------------------------------------------------------------------------
# ingestion
# ---------------------------------------------------------------------------
def _events_from_tracer(
    tracer,
) -> tuple[list[_Run], list[_Submit], list[_LockWait], list[_FaultEvent], list[_Edge]]:
    runs: list[_Run] = []
    submits: list[_Submit] = []
    locks: list[_LockWait] = []
    faults: list[_FaultEvent] = []
    edges: list[_Edge] = []
    for rec in tracer.records:
        data = rec.data or {}
        phase = data.get("phase")
        if phase == "edge":
            end = rec.time
            edges.append(
                _Edge(
                    kind=str(data.get("edge", "")),
                    cause=str(data.get("cause", "")),
                    effect=str(data.get("effect", "")),
                    start=min(int(data.get("start", end)), end),
                    end=end,
                    queue=str(data.get("queue", "")),
                )
            )
        elif phase == "run" and "start" in data:
            start = min(data["start"], rec.time)
            runs.append(
                _Run(
                    task=str(data.get("task") or rec.message),
                    core=int(data.get("core", -1)),
                    queue=str(data.get("queue", "")),
                    start=start,
                    end=rec.time,
                    complete=bool(data.get("complete")),
                )
            )
        elif phase == "submit":
            submits.append(
                _Submit(
                    task=str(data.get("task") or rec.message),
                    core=int(data.get("core", -1)),
                    queue=str(data.get("queue", "")),
                    time=rec.time,
                )
            )
        elif phase == "lock":
            start = min(data.get("start", rec.time), rec.time)
            locks.append(
                _LockWait(
                    lock=str(data.get("lock", "")),
                    core=int(data.get("core", -1)),
                    wait_ns=int(data.get("wait_ns", rec.time - start)),
                    start=start,
                    end=rec.time,
                )
            )
        elif phase == "fault":
            faults.append(
                _FaultEvent(kind=str(data.get("fault", "unknown")), time=rec.time)
            )
    return runs, submits, locks, faults, edges


def _events_from_doc(
    doc: dict,
) -> tuple[list[_Run], list[_Submit], list[_LockWait], list[_FaultEvent], list[_Edge]]:
    runs: list[_Run] = []
    submits: list[_Submit] = []
    locks: list[_LockWait] = []
    faults: list[_FaultEvent] = []
    edges: list[_Edge] = []
    for ev in doc.get("traceEvents", ()):
        ph = ev.get("ph")
        args = ev.get("args") or {}
        if ph == "X":
            start = int(round(ev["ts"] * 1000))
            runs.append(
                _Run(
                    task=str(ev.get("name", "")),
                    core=int(args.get("core", -1)),
                    queue=str(args.get("queue", "")),
                    start=start,
                    end=start + int(round(ev.get("dur", 0) * 1000)),
                    complete=bool(args.get("complete")),
                )
            )
        elif ph == "i":
            t = int(round(ev.get("ts", 0) * 1000))
            if "edge" in args:
                edges.append(
                    _Edge(
                        kind=str(args.get("edge", "")),
                        cause=str(args.get("cause", "")),
                        effect=str(args.get("effect", "")),
                        start=min(int(args.get("start", t)), t),
                        end=t,
                        queue=str(args.get("queue", "")),
                    )
                )
            elif "fault" in args:
                faults.append(
                    _FaultEvent(kind=str(args.get("fault", "unknown")), time=t)
                )
            elif "wait_ns" in args and "lock" in args:
                start = int(args.get("start", t))
                locks.append(
                    _LockWait(
                        lock=str(args["lock"]),
                        core=int(args.get("core", -1)),
                        wait_ns=int(args["wait_ns"]),
                        start=min(start, t),
                        end=t,
                    )
                )
            elif str(ev.get("name", "")).startswith("submit ") or (
                "task" in args and "queue" in args
            ):
                task = args.get("task") or str(ev["name"])[len("submit "):]
                submits.append(
                    _Submit(
                        task=str(task),
                        core=int(args.get("core", -1)),
                        queue=str(args.get("queue", "")),
                        time=t,
                    )
                )
    return runs, submits, locks, faults, edges


# ---------------------------------------------------------------------------
# the analysis itself
# ---------------------------------------------------------------------------
TraceSource = Union["Tracer", dict]  # noqa: F821 - Tracer duck-typed


def analyze_trace(
    source: TraceSource,
    *,
    ncores: Optional[int] = None,
    top_n: int = 10,
    scenario: Optional[str] = None,
) -> TraceAnalysis:
    """Analyze a live ``Tracer`` or a loaded Chrome-trace document.

    ``ncores`` forces the per-core report to cover cores that emitted no
    events (an idle core is a result, not a gap); when the source is a
    ``--trace-out`` file written by the bench CLI, the core count stamped
    into ``otherData`` is used automatically.  ``scenario`` names the run
    in the ``meta`` header (falls back to ``otherData.scenario``).
    """
    if hasattr(source, "records"):
        runs, submits, locks, faults, edges = _events_from_tracer(source)
        total_events = len(source.records)
    else:
        runs, submits, locks, faults, edges = _events_from_doc(source)
        total_events = sum(
            1 for ev in source.get("traceEvents", ()) if ev.get("ph") != "M"
        )
        other = source.get("otherData") or {}
        if ncores is None:
            meta_n = other.get("ncores")
            ncores = int(meta_n) if meta_n else None
        if scenario is None:
            scenario = other.get("scenario") or None

    out = TraceAnalysis(submits=len(submits), runs=len(runs))
    out.fault_events = len(faults)
    times = (
        [r.start for r in runs]
        + [r.end for r in runs]
        + [s.time for s in submits]
        + [lk.start for lk in locks]
        + [lk.end for lk in locks]
        + [f.time for f in faults]
        + [e.start for e in edges]
        + [e.end for e in edges]
    )
    if times:
        out.t_start, out.t_end = min(times), max(times)
    span = out.span_ns  # 0 on empty/degenerate traces: report n/a, not 0%
    out.meta = {
        "makespan_ns": span,
        "events": total_events,
        "events_per_sec": (
            round(total_events / (span / 1e9), 1) if span > 0 else None
        ),
        "scenario": scenario,
    }

    # -- per-core busy/idle utilization --------------------------------
    max_core = max(
        [r.core for r in runs] + [s.core for s in submits] + [lk.core for lk in locks],
        default=-1,
    )
    n = max(ncores or 0, max_core + 1)
    cores = [CoreReport(core=c) for c in range(n)]
    for r in runs:
        if 0 <= r.core < n:
            rep = cores[r.core]
            rep.busy_ns += r.end - r.start
            rep.runs += 1
            if r.complete:
                rep.completions += 1
    for rep in cores:
        rep.utilization = rep.busy_ns / span if span > 0 else None
    out.cores = cores
    out.completions = sum(c.completions for c in cores)

    # -- submit→run latency per queue level ----------------------------
    runs_by_task: dict[str, list[tuple[int, _Run]]] = {}
    for r in sorted(runs, key=lambda r: r.start):
        runs_by_task.setdefault(r.task, []).append((r.start, r))
    per_level: dict[str, list[int]] = {}
    slow: list[SlowTask] = []
    #: (submit_time, complete_time, latency) per completed task — feeds the
    #: overall completion percentiles and the fault-impact windows
    comp_windows: list[tuple[int, int, int]] = []
    for sub in submits:
        entries = runs_by_task.get(sub.task)
        if not entries:
            out.unmatched_submits += 1
            continue
        starts = [t for t, _ in entries]
        i = bisect.bisect_left(starts, sub.time)
        if i >= len(entries):
            out.unmatched_submits += 1
            continue
        first = entries[i][1]
        per_level.setdefault(queue_level(sub.queue), []).append(
            first.start - sub.time
        )
        # completion = the first completing run at/after the submit
        for _, r in entries[i:]:
            if r.complete:
                slow.append(
                    SlowTask(
                        task=sub.task,
                        latency_ns=r.end - sub.time,
                        core=r.core,
                        queue=sub.queue,
                    )
                )
                comp_windows.append((sub.time, r.end, r.end - sub.time))
                break
    rank = {lv: i for i, lv in enumerate(LEVEL_ORDER)}
    for level in sorted(per_level, key=lambda lv: rank.get(lv, len(rank))):
        vals = sorted(per_level[level])
        out.levels.append(
            LevelLatency(
                level=level,
                count=len(vals),
                p50_ns=_percentile(vals, 50),
                p99_ns=_percentile(vals, 99),
                p999_ns=_percentile(vals, 99.9),
                max_ns=vals[-1],
                mean_ns=sum(vals) / len(vals),
            )
        )
    slow.sort(key=lambda s: -s.latency_ns)
    out.slowest = slow[:top_n]

    # -- overall completion latency (n/a when nothing completed) --------
    if comp_windows:
        lats = sorted(lat for (_, _, lat) in comp_windows)
        out.completion_p50_ns = _percentile(lats, 50)
        out.completion_p99_ns = _percentile(lats, 99)
        out.completion_p999_ns = _percentile(lats, 99.9)

    # -- per-fault-kind tail impact -------------------------------------
    fault_times: dict[str, list[int]] = {}
    for f in faults:
        fault_times.setdefault(f.kind, []).append(f.time)
    for kind in sorted(fault_times):
        ts = sorted(fault_times[kind])
        impacted: list[int] = []
        clean: list[int] = []
        for t0, t1, lat in comp_windows:
            i = bisect.bisect_left(ts, t0)
            (impacted if i < len(ts) and ts[i] <= t1 else clean).append(lat)
        impacted.sort()
        clean.sort()
        imp999 = _percentile(impacted, 99.9) if impacted else None
        cln999 = _percentile(clean, 99.9) if clean else None
        ratio = (
            imp999 / cln999
            if imp999 is not None and cln999 is not None and cln999 > 0
            else None
        )
        out.faults.append(
            FaultImpact(
                kind=kind,
                events=len(ts),
                impacted_tasks=len(impacted),
                clean_tasks=len(clean),
                impacted_p99_ns=_percentile(impacted, 99) if impacted else None,
                impacted_p999_ns=imp999,
                clean_p99_ns=_percentile(clean, 99) if clean else None,
                clean_p999_ns=cln999,
                tail_ratio=ratio,
            )
        )

    # -- lock contention ------------------------------------------------
    by_lock: dict[str, list[int]] = {}
    for lk in locks:
        by_lock.setdefault(lk.lock, []).append(lk.wait_ns)
    for lock in sorted(by_lock):
        waits = sorted(by_lock[lock])
        out.locks.append(
            LockReport(
                lock=lock,
                contended=len(waits),
                total_wait_ns=sum(waits),
                p50_wait_ns=_percentile(waits, 50),
                max_wait_ns=waits[-1],
            )
        )
    return out


def analyze_trace_file(
    path: str,
    *,
    ncores: Optional[int] = None,
    top_n: int = 10,
    scenario: Optional[str] = None,
) -> TraceAnalysis:
    """Load a ``--trace-out`` JSON file and analyze it."""
    with open(path) as fh:
        doc = json.load(fh)
    return analyze_trace(doc, ncores=ncores, top_n=top_n, scenario=scenario)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def _pct(v: Optional[float]) -> str:
    return "   n/a" if v is None else f"{100 * v:6.2f}%"


def _ns(v: Optional[int]) -> str:
    return "n/a" if v is None else str(v)


def format_analysis(a: TraceAnalysis) -> str:
    """Topology-grouped text report (cores, then levels inner→outer)."""
    lines = [
        f"== trace analysis: span {a.span_ns} ns, {a.submits} submits, "
        f"{a.runs} runs, {a.completions} completions =="
    ]
    if a.meta:
        eps = a.meta.get("events_per_sec")
        scen = a.meta.get("scenario")
        lines.append(
            f"   meta: makespan={a.meta.get('makespan_ns', a.span_ns)} ns  "
            f"events={a.meta.get('events', 0)}  "
            f"events/sim-sec={'n/a' if eps is None else f'{eps:g}'}"
            + (f"  scenario={scen}" if scen else "")
        )
    if a.unmatched_submits:
        lines.append(f"   ({a.unmatched_submits} submits had no run slice)")
    lines.append(
        f"   submit→complete p50={_ns(a.completion_p50_ns)} "
        f"p99={_ns(a.completion_p99_ns)} p999={_ns(a.completion_p999_ns)} ns"
    )
    lines.append("== per-core utilization ==")
    for c in a.cores:
        lines.append(
            f"  core{c.core:<3} busy {_pct(c.utilization)}  "
            f"idle {_pct(c.idle_fraction)}  "
            f"({c.runs} runs, {c.completions} completions, {c.busy_ns} ns)"
        )
    if not a.cores:
        lines.append("  (no core activity traced)")
    lines.append("== submit→run latency by queue level ==")
    for lv in a.levels:
        lines.append(
            f"  {lv.level:<6} n={lv.count:<5} p50={lv.p50_ns:<8} "
            f"p99={lv.p99_ns:<8} p999={lv.p999_ns:<8} max={lv.max_ns:<8} "
            f"mean={lv.mean_ns:.1f} ns"
        )
    if not a.levels:
        lines.append("  (no submit/run pairs traced)")
    if a.fault_events or a.faults:
        lines.append("== injected-fault tail impact ==")
        for fi in a.faults:
            ratio = "n/a" if fi.tail_ratio is None else f"{fi.tail_ratio:.2f}x"
            lines.append(
                f"  {fi.kind:<12} events={fi.events:<5} "
                f"impacted={fi.impacted_tasks:<5} clean={fi.clean_tasks:<5} "
                f"p999 {_ns(fi.impacted_p999_ns)} vs {_ns(fi.clean_p999_ns)} ns "
                f"(tail {ratio}; p99 {_ns(fi.impacted_p99_ns)} vs "
                f"{_ns(fi.clean_p99_ns)})"
            )
        if not a.faults:
            lines.append(
                f"  ({a.fault_events} fault events, no completed tasks to "
                f"attribute them to)"
            )
    lines.append("== lock contention ==")
    for lk in a.locks:
        lines.append(
            f"  {lk.lock:<20} contended={lk.contended:<5} "
            f"p50 wait={lk.p50_wait_ns:<8} max wait={lk.max_wait_ns:<8} "
            f"total={lk.total_wait_ns} ns"
        )
    if not a.locks:
        lines.append("  (no contended lock handoffs traced)")
    lines.append(f"== top {len(a.slowest)} slowest tasks (submit→complete) ==")
    for s in a.slowest:
        lines.append(
            f"  {s.task:<20} {s.latency_ns:>8} ns  core{s.core}  {s.queue}"
        )
    if not a.slowest:
        lines.append("  (no completed tasks traced)")
    return "\n".join(lines)
