"""The NewMadeleine communication engine over PIOMan.

Wiring (paper §IV-B):

* **Polling offload** — each NIC with pending operations has one *repeat*
  polling ltask; its CPU set is the set of cores sharing a cache with the
  core that started the communication, preserving polling affinity.  The
  task's function drains the NIC completion queue and runs the protocol
  machine; it reports "complete" when no operation is pending, removing
  itself.
* **Submission offload** — ``isend`` does not touch the NIC: it creates a
  packet wrapper (whose embedded ltask is reused, no allocation) and
  submits a task for the *nearest idle core* — or to the global queue if
  every core is busy.  Whoever executes it runs the collect+optimize
  layers and posts frames.
* **Protocols** — eager below ``rdv_threshold``; a three-way rendezvous
  (RTS -> CTS -> DATA -> FIN) above it.  The handshake steps all happen in
  polling tasks, which is why they progress while application threads
  compute (Figs. 5-7) — no RDMA read needed.
* **Strategies** — the optimization layer packs aggregates and splits
  large bodies across rails (:mod:`repro.nmad.strategies`).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.task import LTask, TaskOption
from repro.net.frame import Completion, Frame
from repro.net.nic import Nic
from repro.nmad.gate import Gate
from repro.nmad.requests import (
    ANY,
    PacketWrapper,
    PwKind,
    RecvRequest,
    ReqState,
    SendRequest,
)
from repro.nmad.filters import DataFilter
from repro.nmad.strategies import Strategy, StratAggregSplit
from repro.threads.flag import Flag
from repro.threads.instructions import Compute, Instr, SetFlag
from repro.topology.cpuset import CpuSet
from repro.topology.machine import Level

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Node

#: retired process-wide rendezvous id stream, kept only so old pickles /
#: forks referencing it keep importing.  Live ids are per-NMad (see
#: ``NMad._msg_ids``): a process-wide counter would make a node's message
#: ids depend on how many *other* nodes share its process, which breaks
#: the sharded-vs-single-process fingerprint identity contract — each
#: shard hosts a subset of the nodes.  Rendezvous state is therefore
#: keyed ``(src_node, msg_id)`` on the receive side.
_msg_ids = itertools.count(1)


class NMadStats:
    __slots__ = (
        "sends",
        "recvs",
        "eager_sends",
        "rdv_sends",
        "frames_posted",
        "poll_task_submits",
        "submit_offloads_idle",
        "submit_offloads_global",
        "unexpected_hits",
    )

    def __init__(self) -> None:
        self.sends = 0
        self.recvs = 0
        self.eager_sends = 0
        self.rdv_sends = 0
        self.frames_posted = 0
        self.poll_task_submits = 0
        self.submit_offloads_idle = 0
        self.submit_offloads_global = 0
        self.unexpected_hits = 0


class NMad:
    """One NewMadeleine instance per node."""

    def __init__(
        self,
        node: "Node",
        *,
        rdv_threshold: int = 16 * 1024,
        strategy: Optional[Strategy] = None,
        poll_affinity_level: Level = Level.CHIP,
        offload_submission: bool = True,
        data_filter: "Optional[DataFilter]" = None,
        registry=None,
    ) -> None:
        self.node = node
        self.machine = node.machine
        self.engine = node.engine
        self.pioman = node.pioman
        self.scheduler = node.scheduler
        self.rdv_threshold = rdv_threshold
        self.strategy = strategy if strategy is not None else StratAggregSplit()
        self.poll_affinity_level = poll_affinity_level
        self.offload_submission = offload_submission
        #: optional slow-network data filter (paper §IV-B closing idea)
        self.data_filter = data_filter
        self.tracer = node.pioman.tracer
        node.comm = self

        self.gates: dict[int, Gate] = {}
        self.expected: list[RecvRequest] = []
        #: metas of frames nobody was expecting yet (eager bodies / RTS)
        self.unexpected: list[dict] = []
        #: local rendezvous ids are unique per *this* node, so sends key
        #: by bare msg_id; inbound state keys by (src node, msg_id)
        self.rdv_out: dict[int, SendRequest] = {}
        self.rdv_in: dict[tuple[int, int], RecvRequest] = {}
        #: per-node id/seq streams — never process-global (see _msg_ids)
        self._msg_ids = itertools.count(1)
        self._req_seq = itertools.count()
        self.pending_ops = 0
        self.stats = NMadStats()
        #: metrics registry (defaults to the node's PIOMan registry, so one
        #: cluster-wide registry sees the whole stack without re-plumbing)
        self.registry = registry if registry is not None else node.pioman.registry
        if self.registry is not None:
            self.registry.register(f"nmad.node{node.id}", self.stats)
        #: live polling ltask per NIC name (None when self-completed)
        self._poll_tasks: dict[str, Optional[LTask]] = {n.name: None for n in node.nics}
        #: affinity set for polling tasks (fixed at first use)
        self._poll_cpuset: Optional[CpuSet] = None
        for nic in node.nics:
            nic.on_cq_write = self._on_cq_write

    # ------------------------------------------------------------------
    # public API (thread-context generators)
    # ------------------------------------------------------------------
    def isend(
        self, core: int, peer: int, tag: int, size: int, payload: Any = None
    ) -> Generator[Instr, Any, SendRequest]:
        """Post a non-blocking send from ``core``; returns the request."""
        req = SendRequest(peer, tag, size, payload, seq=next(self._req_seq))
        req.flag = Flag(self.machine, self.engine, home=core, name=f"snd{req.seq}")
        req.t_post = self.engine.now
        self.stats.sends += 1
        self.pending_ops += 1
        gate = self._gate(peer)
        if size <= self.rdv_threshold:
            req.protocol = "eager"
            self.stats.eager_sends += 1
            pw = PacketWrapper(
                PwKind.EAGER,
                peer,
                size,
                meta={
                    "tag": tag,
                    "seq": gate.next_send_seq(tag),
                    "size": size,
                    "payload": payload,
                    "src": self.node.id,
                },
                request=req,
            )
        else:
            req.protocol = "rdv"
            self.stats.rdv_sends += 1
            msg_id = next(self._msg_ids)
            self.rdv_out[msg_id] = req
            req.state = ReqState.RTS_SENT
            pw = PacketWrapper(
                PwKind.RTS,
                peer,
                64,
                meta={
                    "tag": tag,
                    "seq": gate.next_send_seq(tag),
                    "size": size,
                    "src": self.node.id,
                    "msg_id": msg_id,
                },
                request=req,
            )
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "nmad", f"node{self.node.id}",
                f"isend #{req.seq} -> {peer} tag={tag} {size}B ({req.protocol})",
            )
        yield from self._submit_pw(core, gate, pw)
        yield from self._ensure_polling(core)
        return req

    def irecv(
        self, core: int, peer: int = ANY, tag: int = ANY
    ) -> Generator[Instr, Any, RecvRequest]:
        """Post a non-blocking receive; wildcards allowed."""
        req = RecvRequest(peer, tag, seq=next(self._req_seq))
        req.flag = Flag(self.machine, self.engine, home=core, name=f"rcv{req.seq}")
        req.t_post = self.engine.now
        self.stats.recvs += 1
        self.pending_ops += 1
        # Check the unexpected queue first (lowest sequence wins so the
        # MPI non-overtaking rule holds per (source, tag) flow).
        match = self._match_unexpected(req)
        if match is not None:
            self.stats.unexpected_hits += 1
            if match["kind"] == "eager":
                self._complete_recv(core, req, match, via_thread=True)
                yield SetFlag(req.flag)
                self.pending_ops -= 1
            else:  # RTS: reply CTS, stay pending until DATA lands
                self.rdv_in[(match["src"], match["msg_id"])] = req
                req.state = ReqState.CTS_SENT
                req.src = match["src"]
                req.recv_tag = match["tag"]
                req.size = match["size"]
                gate = self._gate(match["src"])
                cts = PacketWrapper(
                    PwKind.CTS, match["src"], 32, meta={"msg_id": match["msg_id"]}
                )
                yield from self._submit_pw(core, gate, cts)
        else:
            self.expected.append(req)
        yield from self._ensure_polling(core)
        return req

    def wait(
        self, core: int, req, mode: str = "block"
    ) -> Generator[Instr, Any, None]:
        """Wait for a request.

        ``block`` (default) deschedules the thread on the request's flag —
        Mad-MPI's blocking condition (paper §V-B); progression happens on
        idle cores.  ``active`` drives PIOMan from this thread meanwhile,
        and ``spin`` busy-waits on the flag.
        """
        from repro.core.progress import piom_wait
        from repro.threads.instructions import BlockOn, SpinOn

        if req.done or req.flag.is_set:
            return
        if mode == "block":
            yield BlockOn(req.flag)
        elif mode == "spin":
            yield SpinOn(req.flag)
        elif mode == "active":
            # Reuse piom_wait by treating the request like a task handle.
            class _Shim:
                completion = req.flag
                name = "req"

            yield from piom_wait(self.pioman, core, _Shim, mode="active")
        else:
            raise ValueError(f"unknown wait mode {mode!r}")

    def test(self, core: int, req) -> Generator[Instr, Any, bool]:
        """Non-blocking completion check (MPI_Test shape)."""
        yield Compute(self.machine.spec.spin_check_ns)
        return req.done or req.flag.is_set

    def waitall(self, core: int, reqs, mode: str = "block") -> Generator[Instr, Any, None]:
        """Wait for every request (order irrelevant)."""
        for req in reqs:
            yield from self.wait(core, req, mode=mode)

    def waitany(self, core: int, reqs) -> Generator[Instr, Any, int]:
        """Block until any request completes; returns its index.

        Spurious wake-ups are absorbed by re-checking (Mesa style).
        """
        from repro.threads.instructions import BlockOnAny

        if not reqs:
            raise ValueError("waitany needs at least one request")
        while True:
            for i, req in enumerate(reqs):
                if req.done or req.flag.is_set:
                    return i
            yield BlockOnAny([req.flag for req in reqs])

    def send(self, core, peer, tag, size, payload=None, mode="block"):
        """Blocking send (generator)."""
        req = yield from self.isend(core, peer, tag, size, payload)
        yield from self.wait(core, req, mode=mode)
        return req

    def recv(self, core, peer=ANY, tag=ANY, mode="block"):
        """Blocking receive (generator); returns the completed request."""
        req = yield from self.irecv(core, peer, tag)
        yield from self.wait(core, req, mode=mode)
        return req

    # ------------------------------------------------------------------
    # submission offload (§IV-B)
    # ------------------------------------------------------------------
    def _submit_pw(
        self, core: int, gate: Gate, pw: PacketWrapper
    ) -> Generator[Instr, Any, None]:
        gate.collect(pw)
        if not self.offload_submission:
            yield Compute(self.machine.spec.submit_route_ns)
            self._pump(core, gate)
            return
        target = self.pioman.find_idle_core(core, self.machine.all_cores())
        if target is not None:
            cpuset = CpuSet.single(target)
            self.stats.submit_offloads_idle += 1
        else:
            cpuset = self.machine.all_cores()
            self.stats.submit_offloads_global += 1
        task = pw.arm(self._pw_submit_fn, cpuset, cost_ns=self._rail_post_cost(gate))
        task.arg = (gate, pw)
        yield from self.pioman.submit(core, task)

    def _rail_post_cost(self, gate: Gate) -> int:
        return max(nic.driver.post_cost_ns for nic in gate.rails)

    def _pw_submit_fn(self, task: LTask) -> bool:
        gate, pw = task.arg
        core = task.current_core if task.current_core is not None else 0
        self._pump(core, gate)
        return True

    def _pump(self, core: int, gate: Gate) -> None:
        """Run the optimization layer: pack outbox wrappers onto idle
        rails and post the resulting frames (host-instant)."""
        for rail_idx, kind, size, pws in self.strategy.pack(gate):
            nic = gate.rails[rail_idx]
            if self._maybe_filter(core, gate, rail_idx, kind, size, pws):
                continue  # deferred: an idle core is encoding the body
            meta = self._frame_meta(kind, size, pws)
            frame = Frame(kind, self.node.id, gate.peer_node, size, meta=meta)
            nic.post_send(frame)
            if self.tracer.enabled:
                self.tracer.emit(
                    self.engine.now, "wire", nic.name,
                    f"tx {kind} {size}B -> node{gate.peer_node}",
                )
            gate.stats.frames_out += 1
            self.stats.frames_posted += 1
            for pw in pws:
                pw.rail = rail_idx
                self._on_pw_posted(core, pw, kind)

    def _maybe_filter(
        self, core: int, gate: Gate, rail_idx: int, kind: str, size: int,
        pws: list[PacketWrapper],
    ) -> bool:
        """§IV-B data filters: encode large bodies for slow rails on an
        idle core.  Returns True when the descriptor was deferred."""
        f = self.data_filter
        if f is None or kind not in ("data", "eager") or len(pws) != 1:
            return False
        pw = pws[0]
        if pw.meta.get("filtered") or size != pw.size:  # never re/split-filter
            return False
        nic = gate.rails[rail_idx]
        if not f.applies(size, nic.driver.bytes_per_us):
            return False

        def encode(task: LTask) -> bool:
            pw.meta["filtered"] = f.name
            pw.meta["orig_bytes"] = pw.size
            pw.size = f.encoded_size(pw.size)
            gate.collect(pw)
            runner = task.current_core if task.current_core is not None else core
            self._pump(runner, gate)
            return True

        task = LTask(
            encode,
            cpuset=self.machine.all_cores(),
            cost_ns=f.encode_cost_ns(size),
            name=f"filter:{f.name}:{pw.kind.value}",
        )
        target = self.pioman.find_idle_core(core, self.machine.all_cores())
        if target is not None:
            task.cpuset = CpuSet.single(target)
        self.pioman.submit_nowait(core, task)
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "nmad", f"node{self.node.id}",
                f"filter {f.name}: {size}B -> {f.encoded_size(size)}B deferred",
            )
        return True

    def _frame_meta(self, kind: str, size: int, pws: list[PacketWrapper]) -> dict:
        if kind == "pack":
            return {"subs": [dict(pw.meta, kind=pw.kind.value) for pw in pws]}
        if kind == "data" and len(pws) == 1 and pws[0].kind is PwKind.DATA:
            # may be one chunk of a split body
            meta = dict(pws[0].meta)
            meta["chunk_bytes"] = size
            return meta
        return dict(pws[0].meta, kind=kind)

    def _on_pw_posted(self, core: int, pw: PacketWrapper, kind: str) -> None:
        req = pw.request
        if pw.kind is PwKind.EAGER and isinstance(req, SendRequest):
            # Eager sends complete locally once buffered on the wire.
            self._complete_send(core, req)

    # ------------------------------------------------------------------
    # polling offload
    # ------------------------------------------------------------------
    def _ensure_polling(self, core: int) -> Generator[Instr, Any, None]:
        """Make sure each NIC has a live polling task (thread context)."""
        if self._poll_cpuset is None:
            self._poll_cpuset = self.machine.siblings_sharing(
                core, self.poll_affinity_level
            )
        for nic in self.node.nics:
            if self._poll_tasks[nic.name] is not None:
                continue
            if self.pending_ops == 0:
                continue
            task = LTask(
                self._poll_fn,
                arg=nic,
                cpuset=self._poll_cpuset,
                options=TaskOption.REPEAT,
                cost_ns=nic.driver.poll_cost_ns,
                name=f"poll:{nic.name}",
            )
            self._poll_tasks[nic.name] = task
            self.stats.poll_task_submits += 1
            yield from self.pioman.submit(core, task)

    def _poll_fn(self, task: LTask) -> bool:
        """The repeat polling task body (host-instant).

        Returns True ("poll succeeded, task complete") when nothing is
        pending any more; the next operation will submit a fresh task.
        """
        nic: Nic = task.arg
        core = task.current_core if task.current_core is not None else 0
        for comp in nic.poll():
            self._handle_completion(core, comp)
        self._pump_all(core)
        if self.pending_ops == 0:
            self._poll_tasks[nic.name] = None
            return True
        return False

    def _pump_all(self, core: int) -> None:
        for gate in self.gates.values():
            if gate.outbox:
                self._pump(core, gate)

    def _on_cq_write(self, nic: Nic, comp: Completion) -> None:
        """NIC wrote its CQ: wake the cores that can run the poll task."""
        if self._poll_cpuset is None:
            return
        origin = self._poll_cpuset.first()
        cause = None
        if (
            self.tracer.enabled
            and comp.frame is not None
            and comp.frame.trace_rx is not None
        ):
            cause = (comp.frame.trace_rx, comp.frame.trace_rx_time)
        self.scheduler.ring_cpuset(
            self._poll_cpuset, origin, extra_ns=nic.driver.poll_cost_ns, cause=cause
        )

    # ------------------------------------------------------------------
    # protocol machine (host-instant, runs inside polling tasks)
    # ------------------------------------------------------------------
    def _handle_completion(self, core: int, comp: Completion) -> None:
        if comp.kind == "send_done":
            return
        if comp.kind in ("rdma_done", "rdma_served"):
            return  # nmad's rendezvous never uses RDMA reads
        frame = comp.frame
        assert frame is not None
        tracer = self.tracer
        if tracer.enabled and tracer.cursor is not None and frame.trace_rx is not None:
            # The delivered frame is what this poll run is reacting to:
            # edge from the wire arrival into the current run node.
            tracer.edge(
                self.engine.now, f"node{self.node.id}", "wakeup",
                frame.trace_rx, tracer.cursor, frame.trace_rx_time,
            )
        if frame.kind == "pack":
            for sub in frame.meta["subs"]:
                self._dispatch_msg(core, sub)
        else:
            self._dispatch_msg(core, dict(frame.meta, kind=frame.kind))

    def _dispatch_msg(self, core: int, meta: dict) -> None:
        kind = meta["kind"]
        if meta.get("filtered") and self.data_filter is not None:
            f = self.data_filter
            clean = dict(meta)
            clean.pop("filtered", None)
            orig = clean.pop("orig_bytes", clean.get("size", 0))
            if "chunk_bytes" in clean:
                # the wire chunk was the encoded body; after decoding the
                # receiver has the full original bytes
                clean["chunk_bytes"] = orig
            decode_cost = f.decode_cost_ns(f.encoded_size(orig))

            def decode(task: LTask) -> bool:
                runner = task.current_core if task.current_core is not None else core
                self._dispatch_msg(runner, clean)
                return True

            task = LTask(
                decode,
                cpuset=self._poll_cpuset or self.machine.all_cores(),
                cost_ns=decode_cost,
                name=f"unfilter:{f.name}",
            )
            self.pioman.submit_nowait(core, task)
            return
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "nmad", f"node{self.node.id}",
                f"rx {kind} from node{meta.get('src', '?')}",
            )
        if kind == "eager":
            self._arrive_eager(core, meta)
        elif kind == "rts":
            self._arrive_rts(core, meta)
        elif kind == "cts":
            self._arrive_cts(core, meta)
        elif kind == "data":
            self._arrive_data(core, meta)
        elif kind == "fin":
            self._arrive_fin(core, meta)
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"unknown message kind {kind!r}")

    def _arrive_eager(self, core: int, meta: dict) -> None:
        req = self._match_expected(meta["src"], meta["tag"])
        if req is None:
            self.unexpected.append(meta)
            return
        self._complete_recv(core, req, meta, via_thread=False)
        self.pending_ops -= 1

    def _arrive_rts(self, core: int, meta: dict) -> None:
        req = self._match_expected(meta["src"], meta["tag"])
        if req is None:
            self.unexpected.append(meta)
            return
        self.rdv_in[(meta["src"], meta["msg_id"])] = req
        req.state = ReqState.CTS_SENT
        req.src = meta["src"]
        req.recv_tag = meta["tag"]
        req.size = meta["size"]
        gate = self._gate(meta["src"])
        cts = PacketWrapper(PwKind.CTS, meta["src"], 32, meta={"msg_id": meta["msg_id"]})
        gate.collect(cts)
        self._pump(core, gate)

    def _arrive_cts(self, core: int, meta: dict) -> None:
        req = self.rdv_out.get(meta["msg_id"])
        if req is None or req.state is not ReqState.RTS_SENT:
            return  # duplicate CTS
        req.state = ReqState.DATA_INFLIGHT
        gate = self._gate(req.peer)
        data = PacketWrapper(
            PwKind.DATA,
            req.peer,
            req.size,
            meta={
                "msg_id": meta["msg_id"],
                "src": self.node.id,
                "payload": req.payload,
                "total": req.size,
            },
            request=req,
        )
        gate.collect(data)
        self._pump(core, gate)

    def _arrive_data(self, core: int, meta: dict) -> None:
        rdv_key = (meta["src"], meta["msg_id"])
        req = self.rdv_in.get(rdv_key)
        if req is None:  # pragma: no cover - protocol guard
            raise ValueError(f"DATA for unknown rendezvous {rdv_key}")
        chunk = meta.get("chunk_bytes", meta["total"])
        req.bytes_seen += chunk
        req.chunks_seen += 1
        if "payload" in meta and meta["payload"] is not None:
            req.payload = meta["payload"]
        if req.bytes_seen < meta["total"]:
            return  # more chunks on other rails
        req.size = meta["total"]
        del self.rdv_in[rdv_key]
        gate = self._gate(req.src)
        fin = PacketWrapper(PwKind.FIN, req.src, 16, meta={"msg_id": meta["msg_id"]})
        gate.collect(fin)
        self._pump(core, gate)
        req.state = ReqState.COMPLETE
        req.t_complete = self.engine.now
        req.flag.set(core)
        self.pending_ops -= 1

    def _arrive_fin(self, core: int, meta: dict) -> None:
        req = self.rdv_out.pop(meta["msg_id"], None)
        if req is None:  # pragma: no cover - protocol guard
            raise ValueError(f"FIN for unknown rendezvous {meta['msg_id']}")
        self._complete_send(core, req)

    # ------------------------------------------------------------------
    # matching & completion helpers
    # ------------------------------------------------------------------
    def _gate(self, peer: int) -> Gate:
        gate = self.gates.get(peer)
        if gate is None:
            gate = Gate(self.node.id, peer, list(self.node.nics))
            self.gates[peer] = gate
            if self.registry is not None:
                self.registry.register(
                    f"nmad.node{self.node.id}.gate{peer}", gate.stats
                )
        return gate

    def _match_expected(self, src: int, tag: int) -> Optional[RecvRequest]:
        for req in self.expected:
            if req.matches(src, tag):
                self.expected.remove(req)
                return req
        return None

    def _match_unexpected(self, req: RecvRequest) -> Optional[dict]:
        best = None
        for meta in self.unexpected:
            if req.matches(meta["src"], meta["tag"]):
                if best is None or meta["seq"] < best["seq"]:
                    best = meta
        if best is not None:
            self.unexpected.remove(best)
        return best

    def _complete_recv(
        self, core: int, req: RecvRequest, meta: dict, via_thread: bool
    ) -> None:
        req.src = meta["src"]
        req.recv_tag = meta["tag"]
        req.size = meta["size"]
        req.payload = meta.get("payload")
        req.state = ReqState.COMPLETE
        req.t_complete = self.engine.now
        if not via_thread:
            req.flag.set(core)
            # via_thread callers yield SetFlag themselves and adjust
            # pending_ops at the call site.

    def _complete_send(self, core: int, req: SendRequest) -> None:
        if req.state is ReqState.COMPLETE:
            return
        req.state = ReqState.COMPLETE
        req.t_complete = self.engine.now
        req.flag.set(core)
        self.pending_ops -= 1

    def __repr__(self) -> str:
        return f"<NMad node{self.node.id} pending={self.pending_ops}>"
