"""Data filters for slow networks — paper §IV-B's closing idea.

"Idle cores could also be used to exploit efficiently slow networks or
grid configurations: tasks could be created to apply data filters such
as data compression, encryption or encoding/decoding."

A :class:`DataFilter` trades CPU time (spent by an idle core, as a
PIOMan task) for bytes on the wire.  NewMadeleine applies it to large
bodies headed for rails slower than ``min_rail_bytes_per_us``; the
receiving side pays the decode cost before delivery.  On a fast rail the
filter never engages — burning a core to halve a message that the wire
moves in microseconds is a loss, which is why the paper scopes the idea
to "slow networks or grid configurations".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DataFilter:
    """One transformation: size ratio vs CPU cost."""

    name: str
    #: output bytes per input byte (0 < ratio <= 1 for compression)
    ratio: float
    #: encode CPU cost per input KiB (ns)
    encode_ns_per_kb: int
    #: decode CPU cost per *output* KiB (ns)
    decode_ns_per_kb: int
    #: bodies smaller than this are never worth filtering
    min_bytes: int = 64 * 1024
    #: rails at least this fast ship raw data (B/us)
    min_rail_bytes_per_us: int = 500

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")

    def applies(self, size_bytes: int, rail_bytes_per_us: int) -> bool:
        return (
            size_bytes >= self.min_bytes
            and rail_bytes_per_us < self.min_rail_bytes_per_us
        )

    def encoded_size(self, size_bytes: int) -> int:
        return max(1, int(size_bytes * self.ratio))

    def encode_cost_ns(self, size_bytes: int) -> int:
        return size_bytes * self.encode_ns_per_kb // 1024

    def decode_cost_ns(self, encoded_bytes: int) -> int:
        return encoded_bytes * self.decode_ns_per_kb // 1024


#: LZO-class fast compressor: halves typical payloads at ~0.35 ns/B
LZO_FAST = DataFilter(
    name="lzo-fast", ratio=0.5, encode_ns_per_kb=360, decode_ns_per_kb=180
)

#: zlib-class compressor: better ratio, ~3x the CPU
ZLIB = DataFilter(
    name="zlib", ratio=0.35, encode_ns_per_kb=1_100, decode_ns_per_kb=420
)

FILTERS = {f.name: f for f in (LZO_FAST, ZLIB)}
