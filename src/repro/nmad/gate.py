"""Gates: per-peer connections and the collect layer.

A :class:`Gate` is NewMadeleine's connection object to one peer.  Its
outbox is the *collect layer* of paper Fig. 1: packet wrappers from all
application flows to that peer pool here, giving the optimization layer a
global view (aggregation, reordering, multirail distribution) before
anything touches a NIC.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.nmad.requests import PacketWrapper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.nic import Nic


class GateStats:
    __slots__ = (
        "pw_collected",
        "frames_out",
        "aggregated_pw",
        "split_chunks",
        "reordered",
        "max_outbox",
    )

    def __init__(self) -> None:
        self.pw_collected = 0
        self.frames_out = 0
        self.aggregated_pw = 0
        self.split_chunks = 0
        self.reordered = 0
        self.max_outbox = 0


class Gate:
    """Connection to one peer node over one or more rails."""

    def __init__(self, local_node: int, peer_node: int, rails: list["Nic"]) -> None:
        self.local_node = local_node
        self.peer_node = peer_node
        self.rails = rails
        #: the collect layer: wrappers awaiting NIC submission
        self.outbox: deque[PacketWrapper] = deque()
        #: per-direction sequence counters (per tag for ordered matching)
        self._send_seq: dict[int, int] = {}
        self._recv_seq: dict[int, int] = {}
        self.stats = GateStats()

    def collect(self, pw: PacketWrapper) -> None:
        """Add a wrapper to the outbox (collect layer)."""
        self.outbox.append(pw)
        self.stats.pw_collected += 1
        if len(self.outbox) > self.stats.max_outbox:
            self.stats.max_outbox = len(self.outbox)

    def next_send_seq(self, tag: int) -> int:
        s = self._send_seq.get(tag, 0)
        self._send_seq[tag] = s + 1
        return s

    def idle_rails(self) -> list["Nic"]:
        return [nic for nic in self.rails if nic.tx_idle()]

    def __repr__(self) -> str:
        return f"<Gate {self.local_node}->{self.peer_node} outbox={len(self.outbox)} rails={len(self.rails)}>"
