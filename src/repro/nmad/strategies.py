"""Optimization strategies — the optimization layer of paper Fig. 1.

A strategy decides, each time a rail becomes available, which packet
wrappers leave a gate's outbox and how: one-by-one FIFO
(:class:`StratDefault`), packed into aggregates (:class:`StratAggreg`,
"messages can be grouped into pools of packets that have to be sent to
the same destination"), or split across rails for large bodies
(:class:`StratSplit`, multirail distribution [5]).
:class:`StratAggregSplit` composes both and is NewMadeleine's default
behaviour in this reproduction.

``pack`` returns a list of ``(rail_index, frame_meta, size, pw_list)``
descriptors; the library turns them into frames.  Strategies never touch
NICs directly, so they are unit-testable in isolation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.nmad.requests import PacketWrapper, PwKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nmad.gate import Gate

#: descriptor: (rail_index, kind, size_bytes, wrappers)
PackOut = tuple[int, str, int, list[PacketWrapper]]


class Strategy:
    """Base class: FIFO, first idle rail."""

    name = "base"

    def pack(self, gate: "Gate") -> list[PackOut]:
        raise NotImplementedError


class StratDefault(Strategy):
    """One wrapper per frame, first idle rail, strict FIFO."""

    name = "default"

    def pack(self, gate: "Gate") -> list[PackOut]:
        out: list[PackOut] = []
        idle = [i for i, nic in enumerate(gate.rails) if nic.tx_idle()]
        while gate.outbox and idle:
            rail = idle.pop(0)
            pw = gate.outbox.popleft()
            out.append((rail, pw.kind.value, pw.size, [pw]))
        return out


class StratAggreg(Strategy):
    """Aggregate small same-destination wrappers into one frame.

    Control messages (RTS/CTS/FIN) and eager bodies under
    ``max_small_bytes`` are packed together up to ``max_aggr_bytes`` or
    ``max_aggr_count``; anything bigger goes out alone.
    """

    name = "aggreg"

    def __init__(
        self,
        max_aggr_bytes: int = 8 * 1024,
        max_aggr_count: int = 16,
        max_small_bytes: int = 4 * 1024,
    ) -> None:
        self.max_aggr_bytes = max_aggr_bytes
        self.max_aggr_count = max_aggr_count
        self.max_small_bytes = max_small_bytes

    def _aggregatable(self, pw: PacketWrapper) -> bool:
        if pw.kind in (PwKind.RTS, PwKind.CTS, PwKind.FIN):
            return True
        return pw.kind is PwKind.EAGER and pw.size <= self.max_small_bytes

    def pack(self, gate: "Gate") -> list[PackOut]:
        out: list[PackOut] = []
        idle = [i for i, nic in enumerate(gate.rails) if nic.tx_idle()]
        while gate.outbox and idle:
            rail = idle.pop(0)
            head = gate.outbox.popleft()
            if not self._aggregatable(head):
                out.append((rail, head.kind.value, head.size, [head]))
                continue
            batch = [head]
            total = head.size
            while (
                gate.outbox
                and len(batch) < self.max_aggr_count
                and self._aggregatable(gate.outbox[0])
                and total + gate.outbox[0].size <= self.max_aggr_bytes
            ):
                pw = gate.outbox.popleft()
                batch.append(pw)
                total += pw.size
            if len(batch) > 1:
                gate.stats.aggregated_pw += len(batch)
                out.append((rail, "pack", total, batch))
            else:
                out.append((rail, head.kind.value, head.size, batch))
        return out


class StratSplit(Strategy):
    """Split large DATA bodies across every rail, proportional to rail
    bandwidth (multirail distribution)."""

    name = "split"

    def __init__(self, min_split_bytes: int = 64 * 1024) -> None:
        self.min_split_bytes = min_split_bytes

    def pack(self, gate: "Gate") -> list[PackOut]:
        out: list[PackOut] = []
        if not gate.outbox:
            return out
        nrails = len(gate.rails)
        head = gate.outbox[0]
        if (
            head.kind is PwKind.DATA
            and head.size >= self.min_split_bytes
            and nrails > 1
            and all(nic.tx_idle() for nic in gate.rails)
        ):
            gate.outbox.popleft()
            total_bw = sum(nic.driver.bytes_per_us for nic in gate.rails)
            remaining = head.size
            for i, nic in enumerate(gate.rails):
                if i == nrails - 1:
                    chunk = remaining
                else:
                    chunk = head.size * nic.driver.bytes_per_us // total_bw
                    chunk = min(chunk, remaining)
                if chunk <= 0:
                    continue
                remaining -= chunk
                gate.stats.split_chunks += 1
                out.append((i, "data", chunk, [head]))
            return out
        # fall back to FIFO on the idle rails
        idle = [i for i, nic in enumerate(gate.rails) if nic.tx_idle()]
        while gate.outbox and idle:
            rail = idle.pop(0)
            pw = gate.outbox.popleft()
            out.append((rail, pw.kind.value, pw.size, [pw]))
        return out


class StratReorder(Strategy):
    """Reorder the outbox before packing (paper Fig. 1: packets "2 1"
    leave the wire as "1 2"; §II-A lists *messages reordering* among the
    cross-flow optimizations).

    Control messages (RTS/CTS/FIN) overtake data bodies: a rendezvous
    handshake stuck behind a fat eager body would add a full frame
    serialization delay to another flow's latency.  The sort is *stable*
    and keyed only on control-vs-data, so messages of one application
    flow never overtake each other — anything finer (e.g.
    shortest-job-first on bodies) would break the MPI non-overtaking rule
    for same-tag messages of different sizes.
    """

    name = "reorder"

    def __init__(self, inner: Strategy | None = None) -> None:
        self._inner = inner if inner is not None else StratDefault()

    @staticmethod
    def _key(pw: PacketWrapper) -> int:
        return 0 if pw.kind in (PwKind.RTS, PwKind.CTS, PwKind.FIN) else 1

    def pack(self, gate: "Gate") -> list[PackOut]:
        if len(gate.outbox) > 1:
            ordered = sorted(gate.outbox, key=self._key)  # stable
            if list(gate.outbox) != ordered:
                gate.stats.reordered += 1
                gate.outbox.clear()
                gate.outbox.extend(ordered)
        return self._inner.pack(gate)


class StratLatencyAware(Strategy):
    """Route by message class: small/control wrappers take the
    lowest-*latency* idle rail, bodies take the highest-*bandwidth* one.

    This is NewMadeleine's actual multirail sampling policy in spirit: on
    a BORDERLINE node the Myri-10G and ConnectX rails have different
    latency/bandwidth trade-offs, and a 4-byte ping should never queue
    behind the rail chosen for a 1 MB body.
    """

    name = "latency_aware"

    def __init__(self, small_bytes: int = 4 * 1024) -> None:
        self.small_bytes = small_bytes

    def _is_small(self, pw: PacketWrapper) -> bool:
        if pw.kind in (PwKind.RTS, PwKind.CTS, PwKind.FIN):
            return True
        return pw.size <= self.small_bytes

    def pack(self, gate: "Gate") -> list[PackOut]:
        out: list[PackOut] = []
        idle = {i for i, nic in enumerate(gate.rails) if nic.tx_idle()}
        while gate.outbox and idle:
            pw = gate.outbox[0]
            if self._is_small(pw):
                rail = min(idle, key=lambda i: gate.rails[i].driver.latency_ns)
            else:
                rail = max(idle, key=lambda i: gate.rails[i].driver.bytes_per_us)
            idle.remove(rail)
            gate.outbox.popleft()
            out.append((rail, pw.kind.value, pw.size, [pw]))
        return out


class StratAggregSplit(Strategy):
    """Compose aggregation (small) and multirail splitting (large)."""

    name = "aggreg_split"

    def __init__(
        self,
        max_aggr_bytes: int = 8 * 1024,
        max_aggr_count: int = 16,
        min_split_bytes: int = 64 * 1024,
    ) -> None:
        self._aggreg = StratAggreg(max_aggr_bytes, max_aggr_count)
        self._split = StratSplit(min_split_bytes)

    def pack(self, gate: "Gate") -> list[PackOut]:
        head = gate.outbox[0] if gate.outbox else None
        if (
            head is not None
            and head.kind is PwKind.DATA
            and head.size >= self._split.min_split_bytes
            and len(gate.rails) > 1
        ):
            return self._split.pack(gate)
        return self._aggreg.pack(gate)


STRATEGIES = {
    s.name: s
    for s in (
        StratDefault(),
        StratAggreg(),
        StratSplit(),
        StratReorder(),
        StratLatencyAware(),
        StratAggregSplit(),
    )
}
