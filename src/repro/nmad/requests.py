"""Send/receive requests and the packet wrapper.

The :class:`PacketWrapper` mirrors NewMadeleine's ``nm_pkt_wrap``: the unit
the optimization layer schedules onto NICs.  Crucially it *embeds* its
:class:`~repro.core.task.LTask` (paper §IV-B: "the task structure does not
require an allocation since it is included in the packet wrapper") — the
task is constructed once with the wrapper and reset/reused on resubmission.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Optional

from repro.core.task import LTask, TaskOption
from repro.topology.cpuset import CpuSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.threads.flag import Flag

#: wildcard for peer/tag matching
ANY = -1


class ReqState(enum.Enum):
    PENDING = "pending"
    RTS_SENT = "rts_sent"
    CTS_SENT = "cts_sent"
    DATA_INFLIGHT = "data_inflight"
    COMPLETE = "complete"


#: process-wide fallback request numbering.  Requests created through an
#: :class:`~repro.nmad.library.NMad` carry a *per-library* seq instead
#: (passed in explicitly): the seq leaks into observable state (flag
#: names like ``snd{seq}`` reach trace records via scheduler block
#: reasons), so it must not depend on how many other nodes share this
#: process — a sharded run builds fewer nodes per process and would
#: otherwise diverge from the single-process fingerprint.
_req_seq = itertools.count()


class SendRequest:
    """One outgoing message."""

    __slots__ = (
        "peer",
        "tag",
        "size",
        "payload",
        "seq",
        "flag",
        "state",
        "protocol",
        "t_post",
        "t_complete",
        "rail_chunks",
    )

    def __init__(
        self,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        seq: Optional[int] = None,
    ) -> None:
        if peer < 0:
            raise ValueError("send needs an explicit peer")
        if tag < 0:
            raise ValueError("send needs a non-wildcard tag")
        self.peer = peer
        self.tag = tag
        self.size = size
        self.payload = payload
        self.seq = next(_req_seq) if seq is None else seq
        self.flag: Optional["Flag"] = None
        self.state = ReqState.PENDING
        self.protocol = ""  # "eager" | "rdv"
        self.t_post: Optional[int] = None
        self.t_complete: Optional[int] = None
        #: multirail bookkeeping: chunks not yet acknowledged
        self.rail_chunks = 0

    @property
    def done(self) -> bool:
        return self.state is ReqState.COMPLETE

    def __repr__(self) -> str:
        return f"<SendReq #{self.seq} ->{self.peer} tag={self.tag} {self.size}B {self.state.value}>"


class RecvRequest:
    """One posted receive (peer/tag may be wildcards)."""

    __slots__ = (
        "peer",
        "tag",
        "seq",
        "flag",
        "state",
        "t_post",
        "t_complete",
        "src",
        "recv_tag",
        "size",
        "payload",
        "chunks_expected",
        "chunks_seen",
        "bytes_seen",
    )

    def __init__(
        self, peer: int = ANY, tag: int = ANY, seq: Optional[int] = None
    ) -> None:
        self.peer = peer
        self.tag = tag
        self.seq = next(_req_seq) if seq is None else seq
        self.flag: Optional["Flag"] = None
        self.state = ReqState.PENDING
        self.t_post: Optional[int] = None
        self.t_complete: Optional[int] = None
        #: filled at completion
        self.src: Optional[int] = None
        self.recv_tag: Optional[int] = None
        self.size = 0
        self.payload: Any = None
        #: multirail reassembly
        self.chunks_expected = 0
        self.chunks_seen = 0
        self.bytes_seen = 0

    @property
    def done(self) -> bool:
        return self.state is ReqState.COMPLETE

    def matches(self, src: int, tag: int) -> bool:
        return (self.peer in (ANY, src)) and (self.tag in (ANY, tag))

    def __repr__(self) -> str:
        peer = "*" if self.peer == ANY else self.peer
        tag = "*" if self.tag == ANY else self.tag
        return f"<RecvReq #{self.seq} <-{peer} tag={tag} {self.state.value}>"


class PwKind(enum.Enum):
    EAGER = "eager"
    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    FIN = "fin"


class PacketWrapper:
    """The schedulable unit handed to the strategy/NIC layer.

    The embedded task is built once; resubmissions call :meth:`arm` which
    resets and retargets it (no allocation on the hot path).
    """

    __slots__ = ("kind", "dst_node", "size", "meta", "ltask", "rail", "request")

    def __init__(
        self,
        kind: PwKind,
        dst_node: int,
        size: int,
        meta: Optional[dict] = None,
        request: Any = None,
    ) -> None:
        self.kind = kind
        self.dst_node = dst_node
        self.size = size
        self.meta = meta if meta is not None else {}
        self.request = request
        self.rail: Optional[int] = None
        #: embedded ltask (func/cpuset filled by arm)
        self.ltask = LTask(
            None,
            arg=self,
            cpuset=CpuSet.single(0),
            options=TaskOption.NONE,
            name=f"pw:{kind.value}->{dst_node}",
            owner=self,
        )

    def arm(self, func, cpuset: CpuSet, cost_ns: int) -> LTask:
        """Reset and retarget the embedded task for (re)submission."""
        self.ltask.reset()
        self.ltask.func = func
        self.ltask.cpuset = cpuset
        self.ltask.cost_ns = cost_ns
        return self.ltask

    def __repr__(self) -> str:
        return f"<pw {self.kind.value} ->{self.dst_node} {self.size}B rail={self.rail}>"
