"""NewMadeleine: the communication engine built on PIOMan."""

from repro.nmad.filters import FILTERS, LZO_FAST, ZLIB, DataFilter
from repro.nmad.gate import Gate, GateStats
from repro.nmad.library import NMad, NMadStats
from repro.nmad.requests import (
    ANY,
    PacketWrapper,
    PwKind,
    RecvRequest,
    ReqState,
    SendRequest,
)
from repro.nmad.strategies import (
    STRATEGIES,
    StratAggreg,
    StratAggregSplit,
    StratDefault,
    StratLatencyAware,
    StratReorder,
    StratSplit,
    Strategy,
)

__all__ = [
    "NMad",
    "DataFilter",
    "LZO_FAST",
    "ZLIB",
    "FILTERS",
    "NMadStats",
    "Gate",
    "GateStats",
    "ANY",
    "PacketWrapper",
    "PwKind",
    "SendRequest",
    "RecvRequest",
    "ReqState",
    "Strategy",
    "StratDefault",
    "StratAggreg",
    "StratLatencyAware",
    "StratReorder",
    "StratSplit",
    "StratAggregSplit",
    "STRATEGIES",
]
