"""Deterministic, seeded fault injection for the simulator.

Public surface:

* :class:`FaultPlan` and the per-fault specs (:class:`NetFaults`,
  :class:`SlowCores`, :class:`LockPreemption`, :class:`CancelStorm`) —
  frozen, picklable descriptions of what should go wrong;
* :class:`FaultInjector` — the runtime that attaches a plan to live
  components (``install(scheduler=..., pioman=..., nics=...)``);
* :class:`FaultStats` — the aggregate counters registered under
  ``faults.*``.

``Cluster(..., faults=FaultPlan(...))`` wires a whole cluster in one
line.  See ``docs/FAULTS.md`` for the fault model and the seeding
discipline that keeps every faulty run bit-reproducible.
"""

from repro.faults.inject import FaultInjector, FaultStats
from repro.faults.plan import (
    CANCEL_STREAM,
    LOCK_STREAM,
    NET_STREAM,
    CancelStorm,
    FaultPlan,
    LockPreemption,
    NetFaults,
    SlowCores,
)

__all__ = [
    "FaultPlan",
    "NetFaults",
    "SlowCores",
    "LockPreemption",
    "CancelStorm",
    "FaultInjector",
    "FaultStats",
    "NET_STREAM",
    "LOCK_STREAM",
    "CANCEL_STREAM",
]
