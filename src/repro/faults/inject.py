"""The fault injector: runtime hooks that make a FaultPlan happen.

One :class:`FaultInjector` per run.  It owns the per-fault-type RNG
streams (derived from the plan seed, see :mod:`repro.faults.plan`), the
aggregate :class:`FaultStats` counters the metrics registry scrapes
under ``faults.*``, and the attach points:

* **net** — ``Nic.post_send`` routes deliveries through
  :meth:`FaultInjector.deliver`, which may drop a transmission (arming
  the driver's :class:`~repro.net.driver.RetransmitPath` timeout) or
  delay it past its natural arrival (reorder);
* **slow cores** — the scheduler's ``core_skew`` table stretches every
  fresh ``Compute`` on the listed cores;
* **lock-holder preemption** — attached ``SpinLock``/``Mutex`` objects
  call :meth:`hold_preempt_ns` on each grant;
* **cancel storms** — engine-driven ticks pick queued victims and fire
  ``PIOMan.cancel`` at them half an interval later (racing in-flight
  execution on purpose).

Every hook is guarded by the owning object's ``faults``/``core_skew``
attribute being non-None, so a run without an injector executes exactly
the pre-fault instruction stream — bit-identical, not merely equivalent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.faults.plan import (
    CANCEL_STREAM,
    LOCK_STREAM,
    NET_STREAM,
    FaultPlan,
)
from repro.net.driver import RetransmitPath, default_retransmit_timeout_ns
from repro.sim.rng import Rng
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import PIOMan
    from repro.net.frame import Frame
    from repro.net.nic import Nic
    from repro.threads.scheduler import Scheduler


class FaultStats:
    """Aggregate fault counters, scraped under ``faults.*``."""

    __slots__ = (
        "drops",
        "retransmits",
        "reorders",
        "forced_deliveries",
        "lock_preemptions",
        "preempt_ns_total",
        "cancel_attempts",
        "cancel_hits",
        "slow_cores",
    )

    def __init__(self) -> None:
        self.drops = 0
        self.retransmits = 0
        self.reorders = 0
        #: drops suppressed by the per-frame retry cap (progress guarantee)
        self.forced_deliveries = 0
        self.lock_preemptions = 0
        self.preempt_ns_total = 0
        self.cancel_attempts = 0
        self.cancel_hits = 0
        #: how many cores run with a frequency-skew multiplier
        self.slow_cores = 0


class FaultInjector:
    """Runtime for one :class:`~repro.faults.plan.FaultPlan`."""

    def __init__(self, plan: FaultPlan, *, tracer: Tracer = NULL_TRACER) -> None:
        self.plan = plan
        self.tracer = tracer
        self.stats = FaultStats()
        self.engine = None  # bound at install time
        base = Rng(plan.seed)
        # One independent stream per fault type: enabling one fault never
        # perturbs another's draw sequence (docs/FAULTS.md).
        self._net_rng = base.fork(NET_STREAM) if plan.net is not None else None
        self._lock_rng = (
            base.fork(LOCK_STREAM) if plan.lock_preemption is not None else None
        )
        self._cancel_rng = (
            base.fork(CANCEL_STREAM) if plan.cancel_storm is not None else None
        )
        #: nic name -> RetransmitPath (timeout derived per NIC driver)
        self._retx: dict[str, RetransmitPath] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(
        self,
        *,
        scheduler: Optional["Scheduler"] = None,
        pioman: Optional["PIOMan"] = None,
        nics: Iterable["Nic"] = (),
        registry=None,
        tracer: Optional[Tracer] = None,
    ) -> "FaultInjector":
        """Attach this injector's enabled faults to live components.

        Call once per node (or once for a single-machine world); only
        the plan's non-None fault types hook anything.  Returns self for
        chaining."""
        if tracer is not None:
            self.tracer = tracer
        if scheduler is not None:
            if self.engine is None:
                self.engine = scheduler.engine
            # the quiescence leap consults this before crossing virtual
            # time in one step (see FaultPlan.leap_barrier)
            scheduler.leap_barriers.append(self.leap_barrier)
            if self.plan.slow_cores is not None:
                table = self._skew_table(len(scheduler.cores))
                scheduler.core_skew = table
                self.stats.slow_cores += sum(1 for f in table if f is not None)
        if pioman is not None:
            if self.engine is None:
                self.engine = pioman.engine
            if self.plan.lock_preemption is not None:
                for queue in pioman.hierarchy.queues():
                    queue.lock.faults = self
                    mutex = getattr(queue, "mutex", None)
                    if mutex is not None:  # MutexTaskQueue variant
                        mutex.faults = self
            self.start_cancel_storm(pioman)
        if self.plan.net is not None:
            for nic in nics:
                if self.engine is None:
                    self.engine = nic.fabric.engine
                nic.faults = self
        if registry is not None:
            registry.register("faults", self.stats)
        return self

    def leap_barrier(self, now: int):
        """Quiescence-leap lookahead barrier (delegates to the plan)."""
        return self.plan.leap_barrier(now)

    # ------------------------------------------------------------------
    # (a) NIC drop / reorder + timeout retransmit
    # ------------------------------------------------------------------
    def deliver(self, nic: "Nic", frame: "Frame", arrive_at: int) -> None:
        """Fault-aware stand-in for ``fabric.deliver`` (called by the NIC
        transmit path when this injector is attached)."""
        nf = self.plan.net
        rng = self._net_rng
        path = self._retx.get(nic.name)
        if path is None:
            timeout = nf.retransmit_timeout_ns or default_retransmit_timeout_ns(
                nic.driver
            )
            path = RetransmitPath(timeout, nf.max_retries)
            self._retx[nic.name] = path
        if nf.drop_p > 0.0 and rng.random() < nf.drop_p:
            if path.may_drop(frame):
                timeout = path.note_drop(frame)
                nic.stats.drops += 1
                self.stats.drops += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        nic.fabric.engine.now, "fault", nic.name,
                        f"drop {frame.kind}", phase="fault", fault="drop",
                    )
                nic.fabric.engine.post(timeout, self._retransmit, nic, frame)
                return
            # retry budget exhausted: force the delivery through
            self.stats.forced_deliveries += 1
        path.clear(frame)
        if nf.reorder_p > 0.0 and rng.random() < nf.reorder_p:
            extra = rng.randint(nf.reorder_ns // 2, max(nf.reorder_ns, 1))
            arrive_at += extra
            nic.stats.reorders += 1
            self.stats.reorders += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    nic.fabric.engine.now, "fault", nic.name,
                    f"reorder {frame.kind} +{extra}ns", phase="fault",
                    fault="reorder",
                )
        nic.fabric.deliver(nic, frame, arrive_at)

    def _retransmit(self, nic: "Nic", frame: "Frame") -> None:
        """Loss-detection timeout fired: re-post the frame.

        Goes back through ``post_send`` so the retransmission pays TX
        serialization and wire time again (and may itself be dropped,
        bounded by the retry cap)."""
        nic.stats.retransmits += 1
        self.stats.retransmits += 1
        if self.tracer.enabled:
            now = nic.fabric.engine.now
            self.tracer.emit(
                now, "fault", nic.name,
                f"retransmit {frame.kind}", phase="fault", fault="retransmit",
            )
            if frame.trace_tx is not None:
                # Edge from the lost post to the timeout firing, then make
                # the retransmit node the causal cursor so the re-post's
                # own edge chains off it.
                retx = f"F:{frame.trace_fid}/retx{frame.trace_txn}"
                self.tracer.edge(now, nic.name, "retransmit",
                                 frame.trace_tx, retx, frame.trace_tx_time)
                prev = self.tracer.cursor
                self.tracer.cursor = retx
                try:
                    nic.post_send(frame)
                finally:
                    self.tracer.cursor = prev
                return
        nic.post_send(frame)

    # ------------------------------------------------------------------
    # (b) slow cores
    # ------------------------------------------------------------------
    def _skew_table(self, ncores: int):
        """Per-core ``(num, den)`` compute multipliers (None = nominal)."""
        sc = self.plan.slow_cores
        num = max(1, round(sc.factor * 1024))
        table: list = [None] * ncores
        for core in sc.cores:
            if 0 <= core < ncores:
                table[core] = (num, 1024)
        return table

    # ------------------------------------------------------------------
    # (c) lock-holder preemption
    # ------------------------------------------------------------------
    def hold_preempt_ns(self, core: int) -> int:
        """Descheduling window to add to a lock grant (0 = not this time)."""
        lp = self.plan.lock_preemption
        if self._lock_rng.random() >= lp.p:
            return 0
        window = lp.window_ns
        self.stats.lock_preemptions += 1
        self.stats.preempt_ns_total += window
        if self.tracer.enabled and self.engine is not None:
            self.tracer.emit(
                self.engine.now, "fault", f"core{core}",
                f"lock-holder preempted {window}ns", phase="fault",
                fault="lock_preempt", core=core,
            )
        return window

    # ------------------------------------------------------------------
    # (d) cancellation storms
    # ------------------------------------------------------------------
    def start_cancel_storm(self, pioman: "PIOMan") -> None:
        """Arm the storm ticks against ``pioman`` (no-op if not planned)."""
        cs = self.plan.cancel_storm
        if cs is None or cs.count <= 0:
            return
        pioman.engine.post(
            cs.start_ns + cs.interval_ns, self._storm_tick, pioman, cs.count
        )

    def _storm_tick(self, pioman: "PIOMan", remaining: int) -> None:
        victims = [t for q in pioman.hierarchy.queues() for t in q._tasks]
        cs = self.plan.cancel_storm
        if victims:
            task = self._cancel_rng.choice(victims)
            # Fire the cancel half an interval later: by then the victim
            # may have been dequeued and be mid-run — the in-flight race
            # the manager must survive without resurrecting the task.
            pioman.engine.post(cs.interval_ns // 2, self._storm_fire, pioman, task)
        if remaining > 1:
            pioman.engine.post(cs.interval_ns, self._storm_tick, pioman, remaining - 1)

    def _storm_fire(self, pioman: "PIOMan", task) -> None:
        self.stats.cancel_attempts += 1
        if pioman.cancel(task):
            self.stats.cancel_hits += 1
            if self.tracer.enabled and self.engine is not None:
                self.tracer.emit(
                    self.engine.now, "fault", "storm",
                    f"cancelled {task.name or id(task)}", phase="fault",
                    fault="cancel",
                )
