"""Fault plans: what to break, how hard, and under which seed.

A :class:`FaultPlan` is a frozen, picklable description of the hostile
world a run should simulate.  Every fault type is **opt-in**: a ``None``
field means that fault's machinery is never touched — no RNG stream is
created, no hook fires, and the run is bit-identical to a plan-less run
(the golden determinism suite enforces this).

Seeding discipline (see ``docs/FAULTS.md``): the plan's single ``seed``
derives one independent :class:`repro.sim.rng.Rng` stream *per fault
type* via the same ``fork(salt)`` rule the cluster uses for its fabric
and nodes.  Enabling one fault therefore never perturbs the draw
sequence of another, and the salts below are part of the reproducibility
contract — changing one changes every faulty golden run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: ``Rng(plan.seed).fork(salt)`` salts, one per fault type.  Stable API:
#: renaming or renumbering these invalidates recorded faulty runs.
NET_STREAM = 11
LOCK_STREAM = 13
CANCEL_STREAM = 17


@dataclass(frozen=True)
class NetFaults:
    """Packet drop and reorder on every NIC the injector is attached to.

    A dropped frame is *not* duplicated: the send is forgotten on the
    wire and the driver's timeout-based retransmit path re-posts the
    same frame ``retransmit_timeout_ns`` later (see
    :class:`repro.net.driver.RetransmitPath`).  Exactly-once delivery is
    preserved — the protocol layers above (nmad rendezvous) tolerate
    arbitrary delay but not duplicate DATA/FIN frames.
    """

    #: probability a transmission is lost on the wire
    drop_p: float = 0.0
    #: probability a delivered frame is delayed past its natural arrival
    reorder_p: float = 0.0
    #: reorder delay bound: a reordered frame arrives between half this
    #: and this much later than it would have
    reorder_ns: int = 20_000
    #: sender-side loss-detection timeout before a retransmit; 0 derives
    #: a per-NIC default from the driver spec (a few frame round-trips)
    retransmit_timeout_ns: int = 0
    #: drops per frame before delivery is forced (progress guarantee)
    max_retries: int = 4


@dataclass(frozen=True)
class SlowCores:
    """Frequency skew: the listed cores run all compute slower.

    Applied in the scheduler's ``_advance`` cost accounting: every fresh
    ``Compute`` instruction interpreted on a skewed core is stretched by
    ``factor`` (integer arithmetic, deterministic).  Models a thermally
    throttled / power-capped straggler core.
    """

    #: core ids to slow down
    cores: Tuple[int, ...] = ()
    #: compute-time multiplier (2.0 = half speed); quantized to 1/1024
    factor: float = 2.0


@dataclass(frozen=True)
class LockPreemption:
    """Lock-holder preemption: the OS deschedules a core *while it holds
    a queue lock* (or just as a handoff grants it one).

    Each grant of an attached :class:`~repro.sync.spinlock.SpinLock` /
    :class:`~repro.sync.mutex.Mutex` is stretched by ``window_ns`` with
    probability ``p`` — spinners burn the whole window, which is exactly
    the pathology the paper's double-checked-locking fallback (Algorithm
    2's lock-free first check) is designed to sidestep.
    """

    #: per-grant preemption probability
    p: float = 0.0
    #: descheduling window added to the grant (ns)
    window_ns: int = 30_000


@dataclass(frozen=True)
class CancelStorm:
    """Bursts of ``PIOMan.cancel`` calls against queued tasks.

    Every ``interval_ns`` a victim is picked from the currently queued
    tasks; the actual cancel fires **half an interval later**, so by
    then the victim may have been dequeued and be mid-run — the exact
    in-flight race the manager's cancellation path must survive without
    resurrecting the task or corrupting the occupancy summary.
    """

    #: total cancel attempts to fire (0 disables the storm)
    count: int = 0
    #: virtual time between victim picks
    interval_ns: int = 100_000
    #: virtual-time offset of the first pick
    start_ns: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """One seeded description of everything that goes wrong in a run."""

    seed: int = 0
    net: Optional[NetFaults] = None
    slow_cores: Optional[SlowCores] = None
    lock_preemption: Optional[LockPreemption] = None
    cancel_storm: Optional[CancelStorm] = None

    def enabled(self) -> bool:
        """Does this plan inject anything at all?"""
        return (
            self.net is not None
            or self.slow_cores is not None
            or self.lock_preemption is not None
            or self.cancel_storm is not None
        )

    def leap_barrier(self, now: int) -> Optional[int]:
        """Earliest future time an enabled fault stream could act
        *outside* the event queue, or None if there is no such time.

        The quiescence leap (:mod:`repro.core.leap`) never advances
        virtual time across a returned barrier.  Every fault type in
        this plan is **event-carried**: net draws happen inside NIC
        transmit events, lock-preemption draws inside lock-grant events,
        cancel storms post their own tick events, and slow-core skew is
        a static table applied per interpreted Compute (no draw at all).
        Event-carried activity already bounds the leap through
        ``Engine.next_external_time``, so the honest answer is None —
        but the hook is the contract point: a future fault type that
        samples on a wall-clock cadence rather than riding an event MUST
        surface its next sample time here or it would silently vanish
        inside leaps.
        """
        return None
