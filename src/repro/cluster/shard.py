"""Sharded cluster simulation with conservative-lookahead time sync.

The single-process interpreter is the scaling wall: one Python event
loop advances every node of the simulated cluster.  This module
partitions a :class:`~repro.cluster.cluster.Cluster`'s nodes across
long-lived forked shard processes (a :class:`~repro.par.ShardPool`),
each running its own :class:`~repro.sim.engine.Engine` over its nodes'
share of the fabric, synchronized by the classic conservative
("CMB-style") window protocol:

* **Lookahead** ``L`` — the fabric's minimum possible wire time: a frame
  transmitted at time *t* cannot arrive before ``t + L``
  (:meth:`repro.net.fabric.Fabric.min_lookahead_ns`; fault reordering
  only *adds* delay, and a dropped frame's retransmit departs later
  still, so faults never shrink it).
* **Window** — the coordinator computes ``T_min`` = the minimum over
  every shard's next local event time (PR 9's
  ``Engine.next_external_time``) and every in-flight cross-shard frame's
  arrival time, then grants the horizon ``H = T_min + L``.  Every shard
  injects the frames addressed to it, runs ``engine.run(until=H)``, and
  returns the frames it emitted (captured by the fabric's
  ``remote_sink`` instead of being scheduled locally).
* **Safety** — any event fired inside the window happens at ``>= T_min``,
  so any frame it transmits arrives at ``>= T_min + L = H``: strictly
  inside the *next* window.  No shard ever receives an event in its
  past; there is no rollback, and the execution is deterministic by
  construction.

Identity, not just determinism: with per-entity RNG streams
(``jitter_mode="per_link"``, ``fault_scope="node"``, per-NMad message
ids) every node computes exactly the same event sequence regardless of
which process hosts it, so the union of the shards' metric snapshots and
the multiset of their trace records are **bit-identical** to the
single-process run at any shard count — ``run_sharded(..., nshards=1)``
is the single-process reference, and the test suite and CI gate compare
fingerprints across shard counts.

Blocked actors: a shard whose queue drains while threads wait on
cross-shard receives is *not* deadlocked — the wake-up frame is in
flight.  The shard runner therefore masks the engine's per-window
deadlock check and the coordinator re-asserts it globally: if the whole
cluster drains with blocked actors somewhere, that is a real
:class:`~repro.sim.engine.DeadlockError`.
"""

from __future__ import annotations

import hashlib
import json
import resource
import time as _time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.par import JobSpec, ShardPool
from repro.par.jobs import resolve_target
from repro.sim.engine import DeadlockError

#: tag for workload builders: positional signature is fn(shard=..., **kwargs)
BuilderRef = str


@dataclass(frozen=True)
class ShardSpec:
    """This process's slice of the node space: ``id % count == index``.

    Round-robin ownership (rather than contiguous blocks) balances
    neighbor-heavy patterns — a ring of N nodes splits its links evenly
    across shards instead of giving each shard one boundary link.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1 or not (0 <= self.index < self.count):
            raise ValueError(f"bad shard spec {self.index}/{self.count}")

    def owns(self, node_id: int) -> bool:
        return node_id % self.count == self.index


def shard_of(node_id: int, count: int) -> int:
    """Which shard index owns ``node_id`` under round-robin ownership."""
    return node_id % count


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class ShardRunner:
    """In-worker harness: one cluster shard advanced window by window.

    Lives inside a :class:`~repro.par.ShardPool` worker (or in-process in
    serial mode).  The coordinator talks to it exclusively through the
    public methods, all of which return picklable data.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.fabric = cluster.fabric
        self.windows = 0
        #: frames leaving this shard in the current window:
        #: (arrive_at, dst_node, driver_name, rail_index, frame)
        self._outbox: list[tuple] = []
        self.fabric.remote_sink = self._capture
        #: deadlock reporters are masked per window and re-checked
        #: globally by the coordinator (module docstring)
        self._reporters = self.engine.blocked_reporters

    def _capture(self, src_nic, frame, arrive_at: int) -> None:
        self._outbox.append(
            (arrive_at, frame.dst_node, src_nic.driver.name, src_nic.index, frame)
        )

    # -- protocol -------------------------------------------------------
    def lookahead_ns(self) -> Optional[int]:
        """This shard's lower bound on cross-shard latency (None: no NICs)."""
        return self.fabric.min_lookahead_ns()

    def next_time(self) -> Optional[int]:
        """Earliest live local event, or None when locally drained."""
        return self.engine.next_external_time(set())

    def window(self, frames: Sequence[tuple], hi: int):
        """Inject inbound cross-shard frames, advance to ``hi``.

        Returns ``(outbox, next_time, now, fired)``.  Injection uses
        ``post_at`` — an arrival below ``engine.now`` would raise, which
        is exactly the lookahead-violation alarm we want.
        """
        for arrive_at, dst_node, driver_name, rail, frame in frames:
            nic = self.fabric.nic_of(dst_node, driver_name, rail)
            self.engine.post_at(arrive_at, nic._deliver, frame)
        self.engine.blocked_reporters = []
        try:
            self.engine.run(until=hi)
        finally:
            self.engine.blocked_reporters = self._reporters
        self.windows += 1
        outbox, self._outbox = self._outbox, []
        return outbox, self.next_time(), self.engine.now, self.engine.fired

    def finalize(self) -> dict:
        """End-of-run report: metrics, trace records, liveness, peak RSS."""
        registry = getattr(self.cluster, "registry", None)
        snapshot = registry.snapshot() if registry is not None else {}
        tracer = getattr(self.cluster, "tracer", None)
        records: list[tuple] = []
        dropped = 0
        if tracer is not None and getattr(tracer, "enabled", False):
            records = [
                (
                    rec.time,
                    rec.category,
                    rec.actor,
                    rec.message,
                    _stable_data(rec.data),
                )
                for rec in tracer.records
            ]
            dropped = tracer.dropped
        return {
            "nodes": sorted(self.cluster.node_by_id),
            "snapshot": snapshot,
            "trace_records": records,
            "trace_dropped": dropped,
            "blocked": self.engine.blocked_actors(),
            "pending": self.engine.pending(),
            "now": self.engine.now,
            "fired": self.engine.fired,
            "windows": self.windows,
            "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }

    def trace_doc(self, meta: Optional[dict] = None) -> dict:
        """This shard's records as a Chrome-trace document (for merging
        into one timeline via :func:`repro.obs.merge.merge_trace_docs`)."""
        from repro.obs.chrometrace import chrome_trace

        return chrome_trace(self.cluster.tracer, meta=meta)


def _stable_data(data: Optional[dict]) -> str:
    """A canonical rendering of a trace record's data dict."""
    if not data:
        return ""
    return repr(sorted((str(k), repr(v)) for k, v in data.items()))


def _make_runner(*, builder: str, kwargs: dict, index: int, count: int):
    """ShardPool spec target: build shard ``index``'s cluster + runner."""
    fn = resolve_target(builder)
    cluster = fn(shard=ShardSpec(index, count), **kwargs)
    return ShardRunner(cluster)


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
@dataclass
class ShardRunResult:
    """Merged outcome of one sharded run."""

    nshards: int
    serial: bool
    until: Optional[int]
    virtual_ns: int
    fired: int
    windows: int
    lookahead_ns: int
    wall_ms: float
    snapshot: dict = field(default_factory=dict)
    trace_fingerprint: str = ""
    trace_records: int = 0
    maxrss_kb: list = field(default_factory=list)
    shard_fired: list = field(default_factory=list)
    shard_nodes: list = field(default_factory=list)

    @property
    def events_per_sec(self) -> float:
        return self.fired / (self.wall_ms / 1e3) if self.wall_ms > 0 else 0.0

    def fingerprint(self) -> str:
        """Identity digest: metric snapshot + final virtual time + event
        count (+ trace fingerprint when tracing was on).  Equal digests
        across shard counts == bit-identical simulation."""
        body = json.dumps(
            {
                "snapshot": self.snapshot,
                "virtual_ns": self.virtual_ns,
                "fired": self.fired,
                "trace": self.trace_fingerprint,
            },
            sort_keys=True,
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def to_jsonable(self) -> dict:
        return {
            "nshards": self.nshards,
            "serial": self.serial,
            "until": self.until,
            "virtual_ns": self.virtual_ns,
            "fired": self.fired,
            "windows": self.windows,
            "lookahead_ns": self.lookahead_ns,
            "wall_ms": round(self.wall_ms, 3),
            "events_per_sec": round(self.events_per_sec, 1),
            "fingerprint": self.fingerprint(),
            "trace_fingerprint": self.trace_fingerprint,
            "trace_records": self.trace_records,
            "maxrss_kb": self.maxrss_kb,
            "shard_fired": self.shard_fired,
            "shard_nodes": self.shard_nodes,
        }


def _merge_trace(finals: Sequence[dict]) -> tuple[str, int]:
    """Order-independent digest over the union of shard trace records.

    Records are compared as a sorted multiset of canonical tuples — the
    per-shard *interleaving* differs (each shard only logs its nodes),
    but the union must match the single-process tracer record for
    record.  Returns ("", 0) when no shard traced anything.
    """
    all_records: list[tuple] = []
    for final in finals:
        all_records.extend(tuple(rec) for rec in final["trace_records"])
    if not all_records and not any(f["trace_dropped"] for f in finals):
        return "", 0
    all_records.sort()
    digest = hashlib.sha256()
    for rec in all_records:
        digest.update(repr(rec).encode())
    return digest.hexdigest(), len(all_records)


def run_sharded(
    builder: BuilderRef,
    kwargs: Optional[dict] = None,
    *,
    nshards: int,
    until: Optional[int] = None,
    serial: bool = False,
    lookahead_ns: Optional[int] = None,
    timeout_s: Optional[float] = 600.0,
) -> ShardRunResult:
    """Simulate a cluster partitioned over ``nshards`` shard processes.

    ``builder`` is a ``"pkg.mod:func"`` reference to a module-level
    function ``fn(shard: ShardSpec, **kwargs) -> Cluster`` that builds
    the shard's slice of the world (it must pass ``shard`` through to
    ``Cluster(...)`` and attach any registry/tracer to the cluster).
    ``nshards=1`` is the single-process reference run — same builder,
    same protocol, one shard, zero cross-shard frames.

    ``serial=True`` keeps every shard in-process (deterministically
    identical, no speedup) — required when the caller itself lives in a
    daemonic worker, which may not fork children.

    ``lookahead_ns`` overrides the fabric-derived lookahead; it may only
    *shrink* the window (a larger-than-physical lookahead would break
    causality), so the override is capped at the fabric minimum.
    """
    if nshards < 1:
        raise ValueError("need at least one shard")
    specs = [
        JobSpec(
            name=f"shard{k}",
            target="repro.cluster.shard:_make_runner",
            kwargs={
                "builder": builder,
                "kwargs": dict(kwargs or {}),
                "index": k,
                "count": nshards,
            },
        )
        for k in range(nshards)
    ]
    t0 = _time.perf_counter()
    with ShardPool(specs, serial=serial, timeout_s=timeout_s) as pool:
        bounds = [b for b in pool.broadcast("lookahead_ns") if b is not None]
        if not bounds:
            raise ValueError("no NICs registered in any shard — nothing to sync")
        lookahead = min(bounds)
        if lookahead_ns is not None:
            lookahead = min(lookahead, int(lookahead_ns))
        if lookahead < 1:
            raise ValueError(f"non-positive lookahead {lookahead}ns")
        next_times = pool.broadcast("next_time")
        inboxes: list[list] = [[] for _ in range(nshards)]
        windows = 0
        drained = False
        while True:
            horizon_inputs = [t for t in next_times if t is not None]
            horizon_inputs += [
                entry[0] for inbox in inboxes for entry in inbox
            ]
            if not horizon_inputs:
                drained = True
                break  # global drain: no local events, nothing in flight
            t_min = min(horizon_inputs)
            final = until is not None and t_min > until
            hi = until if final else t_min + lookahead
            if until is not None and hi > until:
                hi = until
            replies = pool.scatter(
                "window", [(inbox, hi) for inbox in inboxes]
            )
            windows += 1
            inboxes = [[] for _ in range(nshards)]
            next_times = []
            for outbox, next_t, _now, _fired in replies:
                next_times.append(next_t)
                for entry in outbox:
                    inboxes[shard_of(entry[1], nshards)].append(tuple(entry))
            if final:
                break
        finals = pool.broadcast("finalize")
    wall_ms = (_time.perf_counter() - t0) * 1e3

    # An ``until``-capped exit legitimately leaves actors blocked on
    # events beyond the bound; only a *global drain* with blocked actors
    # is a deadlock (each shard's local check is masked per window, so
    # this is where the whole-cluster assertion lives).
    blocked = sum(final["blocked"] for final in finals)
    if drained and blocked:
        raise DeadlockError(
            f"cluster drained at t={max(f['now'] for f in finals)} ns with "
            f"{blocked} actor(s) still blocked (across {nshards} shard(s))"
        )
    from repro.obs.merge import union_snapshots

    trace_fp, trace_n = _merge_trace(finals)
    return ShardRunResult(
        nshards=nshards,
        serial=serial,
        until=until,
        virtual_ns=max(final["now"] for final in finals),
        fired=sum(final["fired"] for final in finals),
        windows=windows,
        lookahead_ns=lookahead,
        wall_ms=wall_ms,
        snapshot=union_snapshots([final["snapshot"] for final in finals]),
        trace_fingerprint=trace_fp,
        trace_records=trace_n,
        maxrss_kb=[final["maxrss_kb"] for final in finals],
        shard_fired=[final["fired"] for final in finals],
        shard_nodes=[final["nodes"] for final in finals],
    )
