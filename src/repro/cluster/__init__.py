"""Multi-node cluster harness.

* :class:`Cluster` / :class:`Node` — N simulated nodes on one virtual
  clock and fabric (optionally built as one shard of a larger world);
* :mod:`repro.cluster.shard` — conservative-lookahead sharding: the
  cluster partitioned over forked processes, bit-identical to the
  single-process run;
* :mod:`repro.cluster.workload` — the seeded cluster-scale workload
  generator (open/closed-loop arrivals, bursty/diurnal modulation,
  incast fan-in, collective phases).
"""

from repro.cluster.cluster import Cluster, Node
from repro.cluster.shard import ShardRunResult, ShardSpec, run_sharded
from repro.cluster.workload import WorkloadSpec, build_workload_cluster

__all__ = [
    "Cluster",
    "Node",
    "ShardRunResult",
    "ShardSpec",
    "WorkloadSpec",
    "build_workload_cluster",
    "run_sharded",
]
