"""Multi-node cluster harness."""

from repro.cluster.cluster import Cluster, Node

__all__ = ["Cluster", "Node"]
