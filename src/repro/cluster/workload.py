"""Seeded cluster-scale workload generator — ``repro.cluster.workload``.

The committed benches drive hand-written exchange patterns (a 4-node
ring, ping-pong pairs).  Cluster-scale questions — does the scheduler
hold up under 100+ nodes of open-loop request traffic, incast fan-in, a
bursty diurnal client population pushing requests through MPI
collectives? — need a *generator*: a :class:`WorkloadSpec` is a frozen,
picklable description, and :func:`build_workload_cluster` turns it into
a fully-wired :class:`~repro.cluster.cluster.Cluster` with one client
and one server thread per node.

Shard-safe determinism is the load-bearing property.  Every process —
any shard of any shard count — precomputes the **complete traffic
matrix** (who sends what to whom, in what order) from per-node RNG
streams seeded by ``derive_seed(spec.seed, "route{i}")``; runtime draws
(inter-arrival gaps, think times) come from a second per-node stream
consumed only by that node's own client thread.  No draw anywhere
depends on global interleaving, so node *i* behaves identically whether
it shares a process with all nodes, or with a third of them — which is
what lets :mod:`repro.cluster.shard` demand bit-identical fingerprints.

Knobs (see docs/SCALING.md for the full table):

* ``pattern`` — ``uniform`` (random peer), ``ring`` (neighbor),
  ``hotspot`` (80% of traffic to node 0), ``incast`` (every
  ``incast_fanin``-th node is a sink; its group fans in on it);
* ``arrival`` — ``open`` (isend at drawn gaps, bounded in-flight
  ``window``) or ``closed`` (request → reply → think time);
* ``burst_len``/``burst_gap_factor`` — on/off bursts: ``burst_len``
  back-to-back requests, then an idle stretch;
* ``diurnal_period``/``diurnal_amp`` — sinusoidal rate modulation over
  the request index (a day/night cycle in request space);
* ``collective_every`` — after every K requests all nodes join an
  ``allreduce`` (client requests flowing through the MPI collectives);
* ``rdv_fraction`` — fraction of requests sized above the rendezvous
  threshold, exercising the RTS/CTS/DATA/FIN path at scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.cluster.cluster import Cluster
from repro.par.jobs import derive_seed
from repro.sim.rng import Rng
from repro.sim.trace import NULL_TRACER, Tracer
from repro.threads.instructions import Compute
from repro.topology.builder import smp

#: request tag; replies use RESP_TAG_BASE + sender rank (closed loop has
#: at most one outstanding request per sender, so that is unambiguous).
#: Collectives live at COLL_TAG_BASE = 1<<20, far away from both.
REQ_TAG = 1
RESP_TAG_BASE = 1024
#: reply payload size (a small ack)
RESP_BYTES = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, picklable description of one generated workload."""

    nnodes: int = 100
    requests_per_node: int = 32
    pattern: str = "uniform"       # uniform | ring | hotspot | incast
    arrival: str = "open"          # open | closed
    mean_gap_ns: int = 100_000     # open-loop mean inter-arrival
    think_ns: int = 20_000         # closed-loop post-reply think time
    size_bytes: int = 512          # mean request payload
    size_spread: float = 0.5       # uniform +/- relative spread
    rdv_fraction: float = 0.0      # fraction forced above rdv threshold
    burst_len: int = 0             # 0 = steady stream
    burst_gap_factor: float = 8.0  # inter-burst idle stretch multiplier
    diurnal_period: int = 0        # 0 = off; requests per sine period
    diurnal_amp: float = 0.5       # rate swing amplitude (0..1)
    incast_fanin: int = 8          # group size for pattern="incast"
    window: int = 4                # open-loop max in-flight requests
    collective_every: int = 0      # allreduce after every K requests
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nnodes < 2:
            raise ValueError("workload needs at least 2 nodes")
        if self.pattern not in ("uniform", "ring", "hotspot", "incast"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.arrival not in ("open", "closed"):
            raise ValueError(f"unknown arrival mode {self.arrival!r}")
        if self.pattern == "incast" and self.incast_fanin < 2:
            raise ValueError("incast_fanin must be >= 2")
        if not (0.0 <= self.diurnal_amp < 1.0):
            raise ValueError("diurnal_amp must be in [0, 1)")

    # -- derived, identical in every process ---------------------------
    def routes(self) -> list[list[Optional[tuple[int, int]]]]:
        """The full traffic matrix: ``routes()[i][r]`` is node *i*'s
        r-th request as ``(dst, size)``, or None when node *i* sits out
        round *r* (incast sinks).  Pure function of the spec."""
        all_routes: list[list[Optional[tuple[int, int]]]] = []
        for i in range(self.nnodes):
            rng = Rng(derive_seed(self.seed, f"route{i}"))
            reqs: list[Optional[tuple[int, int]]] = []
            for _ in range(self.requests_per_node):
                dst = self._pick_dst(i, rng)
                size = self._pick_size(rng)
                reqs.append(None if dst is None else (dst, size))
            all_routes.append(reqs)
        return all_routes

    def _pick_dst(self, i: int, rng: Rng) -> Optional[int]:
        n = self.nnodes
        if self.pattern == "ring":
            return (i + 1) % n
        if self.pattern == "incast":
            if i % self.incast_fanin == 0:
                return None  # sinks only serve
            sink = (i // self.incast_fanin) * self.incast_fanin
            return sink if sink != i else None
        if self.pattern == "hotspot" and i != 0 and rng.random() < 0.8:
            return 0
        # uniform over everyone but self
        dst = rng.randint(0, n - 2)
        return dst + 1 if dst >= i else dst

    def _pick_size(self, rng: Rng) -> int:
        if self.rdv_fraction > 0.0 and rng.random() < self.rdv_fraction:
            # comfortably above the default 16 KiB rendezvous threshold
            return 32 * 1024 + rng.randint(0, 8 * 1024)
        lo = max(1, int(self.size_bytes * (1.0 - self.size_spread)))
        hi = max(lo, int(self.size_bytes * (1.0 + self.size_spread)))
        return rng.randint(lo, hi)

    def inbound_counts(self) -> list[int]:
        """Exact number of requests each node will receive — servers post
        exactly this many receives, so the run drains (no sentinel
        shutdown messages needed)."""
        counts = [0] * self.nnodes
        for reqs in self.routes():
            for entry in reqs:
                if entry is not None:
                    counts[entry[0]] += 1
        return counts

    def collective_rounds(self) -> int:
        if self.collective_every <= 0:
            return 0
        return self.requests_per_node // self.collective_every

    def total_requests(self) -> int:
        return sum(self.inbound_counts())

    def suggest_until(self) -> int:
        """A generous virtual-time bound: the workload drains well before
        it (engines park at completion), so the bound only caps runaway
        bugs — identity of results does not depend on its exact value."""
        per_req = self.mean_gap_ns if self.arrival == "open" else (
            self.think_ns + 4_000_000
        )
        stretch = self.burst_gap_factor if self.burst_len else 1.0
        base = int(self.requests_per_node * per_req * (1.0 + stretch))
        coll = self.collective_rounds() * self.nnodes * 200_000
        return base + coll + 500_000_000


class WorkloadStats:
    """Per-node generator counters, scraped under ``workload.node{i}``."""

    __slots__ = ("issued", "completed", "replies", "served", "bytes_in",
                 "collectives")

    def __init__(self) -> None:
        self.issued = 0
        self.completed = 0
        self.replies = 0
        self.served = 0
        self.bytes_in = 0
        self.collectives = 0


def _gap_ns(spec: WorkloadSpec, rng: Rng, r: int) -> int:
    """Inter-arrival gap before request ``r`` (node-local stream)."""
    gap = rng.expovariate(1.0 / spec.mean_gap_ns) if spec.mean_gap_ns else 0.0
    if spec.burst_len and r and r % spec.burst_len == 0:
        # between bursts: a long idle stretch
        gap *= spec.burst_gap_factor
    if spec.diurnal_period:
        # day/night cycle over the request index: rate swings by +/-amp,
        # so the gap swings by the inverse
        phase = 2.0 * math.pi * r / spec.diurnal_period
        gap /= (1.0 + spec.diurnal_amp * math.sin(phase)) or 1.0
    return max(0, int(gap))


def _client_body(spec, comm, rank, routes, stats):
    """One node's client: issue its request schedule, join collectives."""
    from repro.mpi.collectives import allreduce

    def body(ctx) -> Generator[Any, Any, None]:
        core = ctx.core_id
        rng = Rng(derive_seed(spec.seed, f"gap{rank}"))
        pending: list = []
        every = spec.collective_every
        rounds_left = spec.collective_rounds()
        for r, entry in enumerate(routes):
            gap = _gap_ns(spec, rng, r)
            if gap:
                yield Compute(gap)
            if entry is not None:
                dst, size = entry
                if spec.arrival == "closed":
                    yield from comm.send(core, dst, REQ_TAG, size)
                    stats.issued += 1
                    yield from comm.recv(core, dst, RESP_TAG_BASE + rank)
                    stats.replies += 1
                    stats.completed += 1
                    if spec.think_ns:
                        yield Compute(spec.think_ns)
                else:
                    req = yield from comm.isend(core, dst, REQ_TAG, size)
                    stats.issued += 1
                    pending.append(req)
                    if len(pending) >= spec.window:
                        yield from comm.wait(core, pending.pop(0))
                        stats.completed += 1
            if every and rounds_left and (r + 1) % every == 0:
                rounds_left -= 1
                yield from allreduce(
                    comm, core, rank, spec.nnodes, stats.issued,
                    lambda a, b: a + b, ctxtag=100 + rounds_left,
                )
                stats.collectives += 1
        while pending:
            yield from comm.wait(core, pending.pop(0))
            stats.completed += 1

    return body


def _server_body(spec, comm, rank, expect, stats):
    """One node's server: absorb exactly ``expect`` requests (replying
    in closed-loop mode)."""

    def body(ctx) -> Generator[Any, Any, None]:
        core = ctx.core_id
        for _ in range(expect):
            req = yield from comm.recv(core, tag=REQ_TAG)
            stats.served += 1
            stats.bytes_in += req.size
            if spec.arrival == "closed":
                yield from comm.send(
                    core, req.src, RESP_TAG_BASE + req.src, RESP_BYTES
                )

    return body


def build_workload_cluster(
    shard=None,
    *,
    spec: WorkloadSpec,
    core: Optional[str] = None,
    quiescence_leap: Optional[bool] = None,
    trace: bool = False,
    trace_limit: int = 2_000_000,
    machine: str = "smp2x2",
    faults=None,
) -> Cluster:
    """Builder for :func:`repro.cluster.shard.run_sharded` (and for
    direct single-process use with ``shard=None``).

    Builds the shard's slice of a ``spec.nnodes``-node cluster, wires a
    :class:`~repro.mpi.madmpi.MadMPI` stack over it and spawns the
    client/server threads for every **local** node.  Per-node machines
    default to a small SMP (2 chips x 2 cores) so 100+-node worlds stay
    constructible; the registry and (optional) tracer are attached to
    the returned cluster for :class:`~repro.cluster.shard.ShardRunner`
    to collect.
    """
    from repro.mpi.madmpi import MadMPI
    from repro.obs.registry import MetricsRegistry

    factories = {
        "smp2x2": lambda: smp(2, 2),
        "smp1x2": lambda: smp(1, 2),
    }
    if machine not in factories:
        raise ValueError(f"unknown machine {machine!r} (have {sorted(factories)})")
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, limit=trace_limit) if trace else NULL_TRACER
    cluster = Cluster(
        spec.nnodes,
        machine_factory=factories[machine],
        seed=spec.seed,
        registry=registry,
        tracer=tracer,
        core=core,
        quiescence_leap=quiescence_leap,
        jitter_mode="per_link",
        # node-scoped fault streams: required for sharded identity, and
        # used for shard=None too so the reference run matches
        fault_scope="node",
        faults=faults,
        shard=shard,
    )
    mpi = MadMPI(cluster)
    routes = spec.routes()
    inbound = spec.inbound_counts()
    for node in cluster.nodes:
        rank = node.id
        comm = mpi.comm(rank)
        stats = WorkloadStats()
        registry.register(f"workload.node{rank}", stats)
        node.scheduler.spawn(
            _server_body(spec, comm, rank, inbound[rank], stats),
            0,
            name=f"srv{rank}",
        )
        node.scheduler.spawn(
            _client_body(spec, comm, rank, routes[rank], stats),
            1 % node.machine.ncores,
            name=f"cli{rank}",
        )
    #: kept for callers that want to poke at the stack after the run
    cluster.mpi = mpi
    cluster.workload_spec = spec
    return cluster


def expected_counters(spec: WorkloadSpec) -> dict:
    """What a complete run must have done — checked against the merged
    snapshot by the bench and tests (an *honesty* gate: a run that
    silently stalled or skipped requests cannot pass)."""
    total = spec.total_requests()
    return {
        "issued": total,
        "served": total,
        "replies": total if spec.arrival == "closed" else 0,
        "collectives": spec.collective_rounds() * spec.nnodes,
    }


def verify_completion(snapshot: dict, spec: WorkloadSpec) -> None:
    """Raise unless the merged snapshot shows every request completed."""
    want = expected_counters(spec)
    got = {
        key: sum(
            v for path, v in snapshot.items()
            if path.startswith("workload.") and path.endswith(f".{key}")
        )
        for key in want
    }
    if got != want:
        raise RuntimeError(
            f"workload incomplete: expected {want}, got {got} "
            f"(virtual-time bound too tight, or a stall)"
        )
