"""Cluster assembly.

A :class:`Cluster` wires N simulated nodes — each with its own machine
topology, thread scheduler and PIOMan instance — onto one shared virtual
clock and one fabric.  This mirrors the paper's testbed: BORDERLINE is a
cluster of 8-core Opteron boxes, each holding one Myri-10G and one
ConnectX InfiniBand NIC, evaluated over InfiniBand (§V-B).

A cluster can also be built as one **shard** of a larger simulated
cluster (``shard=(index, count)``): node ids keep their global meaning,
but only the ids owned by this shard (``id % count == index``) are
instantiated locally.  Frames to non-local nodes leave through the
fabric's ``remote_sink`` — the conservative-lookahead coordinator in
:mod:`repro.cluster.shard` carries them across processes.  Sharded runs
require per-entity randomness (``jitter_mode="per_link"``,
``fault_scope="node"``) so that no RNG stream is shared across nodes
that may land in different processes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.core.manager import PIOMan
from repro.core.queues import TaskQueue
from repro.faults import FaultInjector, FaultPlan
from repro.net.driver import DriverSpec, IB_CONNECTX
from repro.net.fabric import Fabric
from repro.net.nic import Nic
from repro.par.jobs import derive_seed
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sim.trace import NULL_TRACER, Tracer
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline
from repro.topology.machine import Machine


class Node:
    """One cluster node: machine + scheduler + PIOMan + NICs."""

    def __init__(
        self,
        node_id: int,
        machine: Machine,
        engine: Engine,
        fabric: Fabric,
        drivers: Sequence[DriverSpec],
        *,
        rng: Rng,
        tracer: Tracer = NULL_TRACER,
        hierarchical: bool = True,
        queue_factory: Callable = TaskQueue,
        registry=None,
        summary_fastpath: bool = True,
        quiescence_leap: Optional[bool] = None,
    ) -> None:
        self.id = node_id
        self.machine = machine
        self.engine = engine
        self.scheduler = Scheduler(
            machine, engine, name=f"node{node_id}", rng=rng, tracer=tracer,
            registry=registry,
        )
        self.pioman = PIOMan(
            machine,
            engine,
            self.scheduler,
            hierarchical=hierarchical,
            queue_factory=queue_factory,
            tracer=tracer,
            name=f"pioman@{node_id}",
            registry=registry,
            summary_fastpath=summary_fastpath,
            quiescence_leap=quiescence_leap,
        )
        self.nics: list[Nic] = [
            fabric.new_nic(node_id, drv, index=i) for i, drv in enumerate(drivers)
        ]
        for nic in self.nics:
            nic.tracer = tracer
        if registry is not None:
            for nic in self.nics:
                registry.register(f"nic.{nic.name}", nic.stats)
        #: communication library instance (attached by nmad/mpi layers)
        self.comm = None

    def nic_by_driver(self, name: str) -> Nic:
        for nic in self.nics:
            if nic.driver.name == name:
                return nic
        raise KeyError(f"node {self.id} has no {name!r} NIC")

    def __repr__(self) -> str:
        return f"<Node {self.id} machine={self.machine.spec.name} nics={len(self.nics)}>"


class Cluster:
    """N homogeneous nodes over one fabric and one virtual clock.

    ``core`` / ``quiescence_leap`` select the engine core ("wheel" or
    "heap") and the idle-poll fast-forward per cluster, without the
    ``REPRO_ENGINE_CORE`` / ``REPRO_LEAP`` env games (A/B runs build two
    clusters side by side).  ``shard=(index, count)`` instantiates only
    the nodes this shard owns — see the module docstring.  In a sharded
    build, ``nnodes`` stays the *global* node count.

    ``fault_scope`` controls fault-RNG granularity: ``"run"`` (default)
    keeps the original single injector whose streams are shared by every
    node, ``"node"`` derives one injector per node (seed =
    ``derive_seed(plan.seed, "node{id}")``) registered under
    ``faults.node{id}`` — required for sharded runs, where a shared
    stream's draw order would depend on the shard layout.
    """

    def __init__(
        self,
        nnodes: int = 2,
        *,
        machine_factory: Callable[[], Machine] = borderline,
        drivers: Sequence[DriverSpec] = (IB_CONNECTX,),
        seed: int = 0,
        tracer: Tracer = NULL_TRACER,
        hierarchical: bool = True,
        queue_factory: Callable = TaskQueue,
        registry=None,
        summary_fastpath: bool = True,
        faults: Optional[FaultPlan] = None,
        core: Optional[str] = None,
        quiescence_leap: Optional[bool] = None,
        jitter_mode: str = "global",
        fault_scope: str = "run",
        shard=None,
    ) -> None:
        if nnodes < 1:
            raise ValueError("need at least one node")
        if fault_scope not in ("run", "node"):
            raise ValueError(
                f"fault_scope must be 'run' or 'node', got {fault_scope!r}"
            )
        if shard is not None and not hasattr(shard, "owns"):
            from repro.cluster.shard import ShardSpec

            shard = ShardSpec(*shard)
        self.engine = Engine(core=core)
        self.rng = Rng(seed)
        self.fabric = Fabric(
            self.engine, rng=self.rng.fork(1), jitter_mode=jitter_mode
        )
        self.tracer = tracer
        self.registry = registry
        self.nnodes = nnodes
        self.shard = shard
        if shard is not None and shard.count > 1:
            if jitter_mode != "per_link" and any(d.jitter > 0 for d in drivers):
                raise ValueError(
                    "sharded clusters with jittered drivers need "
                    "jitter_mode='per_link' (the global jitter stream's "
                    "draw order depends on the shard layout)"
                )
            if faults is not None and faults.enabled() and fault_scope != "node":
                raise ValueError(
                    "sharded clusters with faults need fault_scope='node' "
                    "(run-scoped fault streams are shared across nodes)"
                )
        local_ids = [
            i for i in range(nnodes) if shard is None or shard.owns(i)
        ]
        self.nodes = [
            Node(
                i,
                machine_factory(),
                self.engine,
                self.fabric,
                drivers,
                rng=self.rng.fork(100 + i),
                tracer=tracer,
                hierarchical=hierarchical,
                queue_factory=queue_factory,
                registry=registry,
                summary_fastpath=summary_fastpath,
                quiescence_leap=quiescence_leap,
            )
            for i in local_ids
        ]
        self.node_by_id = {node.id: node for node in self.nodes}
        #: fault injector when a plan is attached (``faults=FaultPlan(...)``);
        #: None keeps every hook cold — bit-identical to a plan-less run.
        #: With ``fault_scope="node"`` this stays None and
        #: ``fault_injectors`` maps node id -> injector instead.
        self.faults: Optional[FaultInjector] = None
        self.fault_injectors: dict[int, FaultInjector] = {}
        if faults is not None and faults.enabled():
            if fault_scope == "node":
                for node in self.nodes:
                    plan = replace(
                        faults, seed=derive_seed(faults.seed, f"node{node.id}")
                    )
                    injector = FaultInjector(plan, tracer=tracer)
                    injector.engine = self.engine
                    injector.install(
                        scheduler=node.scheduler, pioman=node.pioman,
                        nics=node.nics,
                    )
                    if registry is not None:
                        registry.register(
                            f"faults.node{node.id}", injector.stats
                        )
                    self.fault_injectors[node.id] = injector
            else:
                injector = FaultInjector(faults, tracer=tracer)
                injector.engine = self.engine
                for node in self.nodes:
                    injector.install(
                        scheduler=node.scheduler, pioman=node.pioman,
                        nics=node.nics,
                    )
                if registry is not None:
                    registry.register("faults", injector.stats)
                self.faults = injector

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the shared engine (see :meth:`repro.sim.Engine.run`)."""
        return self.engine.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        shard = f" shard={self.shard.index}/{self.shard.count}" if self.shard else ""
        return f"<Cluster nodes={len(self.nodes)}{shard} t={self.engine.now}>"
