"""Cluster assembly.

A :class:`Cluster` wires N simulated nodes — each with its own machine
topology, thread scheduler and PIOMan instance — onto one shared virtual
clock and one fabric.  This mirrors the paper's testbed: BORDERLINE is a
cluster of 8-core Opteron boxes, each holding one Myri-10G and one
ConnectX InfiniBand NIC, evaluated over InfiniBand (§V-B).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.manager import PIOMan
from repro.core.queues import TaskQueue
from repro.faults import FaultInjector, FaultPlan
from repro.net.driver import DriverSpec, IB_CONNECTX
from repro.net.fabric import Fabric
from repro.net.nic import Nic
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sim.trace import NULL_TRACER, Tracer
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline
from repro.topology.machine import Machine


class Node:
    """One cluster node: machine + scheduler + PIOMan + NICs."""

    def __init__(
        self,
        node_id: int,
        machine: Machine,
        engine: Engine,
        fabric: Fabric,
        drivers: Sequence[DriverSpec],
        *,
        rng: Rng,
        tracer: Tracer = NULL_TRACER,
        hierarchical: bool = True,
        queue_factory: Callable = TaskQueue,
        registry=None,
        summary_fastpath: bool = True,
    ) -> None:
        self.id = node_id
        self.machine = machine
        self.engine = engine
        self.scheduler = Scheduler(
            machine, engine, name=f"node{node_id}", rng=rng, tracer=tracer,
            registry=registry,
        )
        self.pioman = PIOMan(
            machine,
            engine,
            self.scheduler,
            hierarchical=hierarchical,
            queue_factory=queue_factory,
            tracer=tracer,
            name=f"pioman@{node_id}",
            registry=registry,
            summary_fastpath=summary_fastpath,
        )
        self.nics: list[Nic] = [
            fabric.new_nic(node_id, drv, index=i) for i, drv in enumerate(drivers)
        ]
        for nic in self.nics:
            nic.tracer = tracer
        if registry is not None:
            for nic in self.nics:
                registry.register(f"nic.{nic.name}", nic.stats)
        #: communication library instance (attached by nmad/mpi layers)
        self.comm = None

    def nic_by_driver(self, name: str) -> Nic:
        for nic in self.nics:
            if nic.driver.name == name:
                return nic
        raise KeyError(f"node {self.id} has no {name!r} NIC")

    def __repr__(self) -> str:
        return f"<Node {self.id} machine={self.machine.spec.name} nics={len(self.nics)}>"


class Cluster:
    """N homogeneous nodes over one fabric and one virtual clock."""

    def __init__(
        self,
        nnodes: int = 2,
        *,
        machine_factory: Callable[[], Machine] = borderline,
        drivers: Sequence[DriverSpec] = (IB_CONNECTX,),
        seed: int = 0,
        tracer: Tracer = NULL_TRACER,
        hierarchical: bool = True,
        queue_factory: Callable = TaskQueue,
        registry=None,
        summary_fastpath: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.engine = Engine()
        self.rng = Rng(seed)
        self.fabric = Fabric(self.engine, rng=self.rng.fork(1))
        self.tracer = tracer
        self.registry = registry
        self.nodes = [
            Node(
                i,
                machine_factory(),
                self.engine,
                self.fabric,
                drivers,
                rng=self.rng.fork(100 + i),
                tracer=tracer,
                hierarchical=hierarchical,
                queue_factory=queue_factory,
                registry=registry,
                summary_fastpath=summary_fastpath,
            )
            for i in range(nnodes)
        ]
        #: fault injector when a plan is attached (``faults=FaultPlan(...)``);
        #: None keeps every hook cold — bit-identical to a plan-less run
        self.faults: Optional[FaultInjector] = None
        if faults is not None and faults.enabled():
            injector = FaultInjector(faults, tracer=tracer)
            injector.engine = self.engine
            for node in self.nodes:
                injector.install(
                    scheduler=node.scheduler, pioman=node.pioman, nics=node.nics
                )
            if registry is not None:
                registry.register("faults", injector.stats)
            self.faults = injector

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the shared engine (see :meth:`repro.sim.Engine.run`)."""
        return self.engine.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} t={self.engine.now}>"
