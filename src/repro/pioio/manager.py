"""PIO-I/O: the paper's future-work I/O library over PIOMan (§VI).

"We also plan to integrate the task mechanism in an I/O library ... the
goal is to provide a generic framework able to optimize both
communication and I/O in a scalable way."

:class:`PIOIo` exposes an asynchronous read/write API whose completions
are reaped by a PIOMan *repeat* polling task, exactly like NewMadeleine's
NIC polling: the task's CPU set is the set of cores sharing the
submitter's chip, device CQ writes ring those cores' doorbells, and the
polling task retires itself once nothing is pending.  Applications
therefore overlap storage latency with computation for free — including
on machines where the submitting core stays busy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.task import LTask, TaskOption
from repro.pioio.device import BlockDevice, IoOp
from repro.threads.flag import Flag
from repro.threads.instructions import BlockOn, Compute, Instr, SpinOn
from repro.topology.cpuset import CpuSet
from repro.topology.machine import Level

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import PIOMan
    from repro.threads.scheduler import Scheduler
    from repro.topology.machine import Machine


class IoRequest:
    """Handle for one asynchronous I/O operation."""

    __slots__ = ("op", "flag", "done")

    def __init__(self, op: IoOp, flag: Flag) -> None:
        self.op = op
        self.flag = flag
        self.done = False

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<IoRequest #{self.op.op_id} {self.op.kind} {self.op.size}B {state}>"


class PIOIo:
    """Asynchronous I/O manager backed by PIOMan polling tasks."""

    #: CPU cost of draining the device CQ once
    poll_cost_ns = 120
    #: CPU cost of preparing/submitting one descriptor
    submit_cost_ns = 350

    def __init__(
        self,
        pioman: "PIOMan",
        device: BlockDevice,
        *,
        poll_affinity_level: Level = Level.CHIP,
    ) -> None:
        self.pioman = pioman
        self.machine: "Machine" = pioman.machine
        self.scheduler: Optional["Scheduler"] = pioman.scheduler
        self.device = device
        self.poll_affinity_level = poll_affinity_level
        self._pending: dict[int, IoRequest] = {}
        self._poll_task: Optional[LTask] = None
        self._poll_cpuset: Optional[CpuSet] = None
        device.on_cq_write = self._on_cq_write
        self.reaped = 0

    # ------------------------------------------------------------------
    # submission API (thread-context generators)
    # ------------------------------------------------------------------
    def aio_read(self, core: int, offset: int, size: int) -> Generator[Instr, Any, IoRequest]:
        req = yield from self._submit(core, "read", offset, size)
        return req

    def aio_write(self, core: int, offset: int, size: int) -> Generator[Instr, Any, IoRequest]:
        req = yield from self._submit(core, "write", offset, size)
        return req

    def _submit(self, core: int, kind: str, offset: int, size: int):
        yield Compute(self.submit_cost_ns)
        op = self.device.submit(kind, offset, size)
        flag = Flag(self.machine, self.pioman.engine, home=core, name=f"io{op.op_id}")
        req = IoRequest(op, flag)
        self._pending[op.op_id] = req
        yield from self._ensure_polling(core)
        return req

    def wait(self, core: int, req: IoRequest, mode: str = "block") -> Generator[Instr, Any, None]:
        """Wait for one request (block = deschedule; spin = busy-wait)."""
        if req.done or req.flag.is_set:
            return
        if mode == "block":
            yield BlockOn(req.flag)
        elif mode == "spin":
            yield SpinOn(req.flag)
        else:
            raise ValueError(f"unknown wait mode {mode!r}")

    def wait_all(self, core: int, reqs, mode: str = "block"):
        for req in reqs:
            yield from self.wait(core, req, mode=mode)

    # ------------------------------------------------------------------
    # polling offload (same shape as NewMadeleine's NIC polling)
    # ------------------------------------------------------------------
    def _ensure_polling(self, core: int) -> Generator[Instr, Any, None]:
        if self._poll_cpuset is None:
            self._poll_cpuset = self.machine.siblings_sharing(
                core, self.poll_affinity_level
            )
        if self._poll_task is not None or not self._pending:
            return
        task = LTask(
            self._poll_fn,
            arg=self.device,
            cpuset=self._poll_cpuset,
            options=TaskOption.REPEAT,
            cost_ns=self.poll_cost_ns,
            name=f"iopoll:{self.device.name}",
        )
        self._poll_task = task
        yield from self.pioman.submit(core, task)

    def _poll_fn(self, task: LTask) -> bool:
        core = task.current_core if task.current_core is not None else 0
        for op in self.device.poll():
            req = self._pending.pop(op.op_id, None)
            if req is None:  # pragma: no cover - protocol guard
                raise RuntimeError(f"completion for unknown op {op.op_id}")
            req.done = True
            self.reaped += 1
            req.flag.set(core)
        if not self._pending:
            self._poll_task = None
            return True
        return False

    def _on_cq_write(self, device: BlockDevice, op: IoOp) -> None:
        if self.scheduler is None or self._poll_cpuset is None:
            return
        origin = self._poll_cpuset.first()
        self.scheduler.ring_cpuset(self._poll_cpuset, origin, extra_ns=self.poll_cost_ns)

    def pending_count(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return f"<PIOIo {self.device.name} pending={len(self._pending)}>"
