"""Simulated block device.

A queued storage device with a service model: requests wait in a device
queue (bounded queue depth in flight), each costing a fixed per-op
latency plus size/bandwidth.  Completions land in a completion queue the
host must *poll* — the same shape as a NIC, which is exactly why the
paper's task manager generalizes to I/O (§VI).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Engine

_op_ids = itertools.count(1)


@dataclass(frozen=True)
class DeviceSpec:
    """Service model of one device."""

    name: str
    #: fixed per-operation latency (seek/flash overhead), ns
    op_latency_ns: int
    #: sustained throughput in bytes per microsecond
    bytes_per_us: int
    #: operations serviced concurrently (NCQ depth)
    queue_depth: int = 4


#: a 2009-era SATA disk: ~8 ms seek, ~90 MB/s
SATA_DISK = DeviceSpec(name="sata", op_latency_ns=8_000_000, bytes_per_us=94, queue_depth=4)
#: an early SSD: ~80 us, ~250 MB/s
SSD = DeviceSpec(name="ssd", op_latency_ns=80_000, bytes_per_us=260, queue_depth=8)
#: a ramdisk-like device for fast tests
RAMDISK = DeviceSpec(name="ram", op_latency_ns=2_000, bytes_per_us=6_000, queue_depth=16)
#: a battery-backed NVRAM log device (fast, network-comparable bandwidth)
NVRAM = DeviceSpec(name="nvram", op_latency_ns=20_000, bytes_per_us=1_400, queue_depth=8)


@dataclass
class IoOp:
    """One submitted operation."""

    op_id: int
    kind: str  # "read" | "write"
    offset: int
    size: int
    submit_ns: int
    complete_ns: Optional[int] = None


class BlockDevice:
    """Queued device with a pollable completion queue."""

    def __init__(self, engine: Engine, spec: DeviceSpec = SSD, name: str = "") -> None:
        self.engine = engine
        self.spec = spec
        self.name = name or spec.name
        self._waiting: deque[IoOp] = deque()
        self._inflight = 0
        #: when the transfer channel frees up (bandwidth is shared across
        #: in-flight ops; queue depth overlaps only the per-op latency)
        self._bw_free = 0
        self._cq: deque[IoOp] = deque()
        #: host-side hook fired on each CQ write (rings doorbells)
        self.on_cq_write: Optional[Callable[["BlockDevice", IoOp], None]] = None
        self.ops_submitted = 0
        self.ops_completed = 0
        self.bytes_moved = 0

    # ------------------------------------------------------------------
    def submit(self, kind: str, offset: int, size: int) -> IoOp:
        """Queue an operation; host-instant descriptor write."""
        if kind not in ("read", "write"):
            raise ValueError(f"unknown op kind {kind!r}")
        if size <= 0:
            raise ValueError("size must be positive")
        op = IoOp(next(_op_ids), kind, offset, size, self.engine.now)
        self.ops_submitted += 1
        self._waiting.append(op)
        self._pump()
        return op

    def _pump(self) -> None:
        while self._waiting and self._inflight < self.spec.queue_depth:
            op = self._waiting.popleft()
            self._inflight += 1
            ready = self.engine.now + self.spec.op_latency_ns
            xfer_start = max(ready, self._bw_free)
            done = xfer_start + op.size * 1_000 // self.spec.bytes_per_us
            self._bw_free = done
            self.engine.post_at(done, self._complete, op)

    def _complete(self, op: IoOp) -> None:
        self._inflight -= 1
        op.complete_ns = self.engine.now
        self.ops_completed += 1
        self.bytes_moved += op.size
        self._cq.append(op)
        self._pump()
        if self.on_cq_write is not None:
            self.on_cq_write(self, op)

    # ------------------------------------------------------------------
    def poll(self) -> list[IoOp]:
        """Drain the completion queue (host-instant; caller charges CPU)."""
        out = list(self._cq)
        self._cq.clear()
        return out

    def pending(self) -> int:
        return len(self._waiting) + self._inflight

    def __repr__(self) -> str:
        return f"<BlockDevice {self.name} inflight={self._inflight} cq={len(self._cq)}>"
