"""PIO-I/O: asynchronous storage I/O over PIOMan (paper §VI future work)."""

from repro.pioio.device import (
    BlockDevice,
    DeviceSpec,
    IoOp,
    NVRAM,
    RAMDISK,
    SATA_DISK,
    SSD,
)
from repro.pioio.manager import IoRequest, PIOIo

__all__ = [
    "BlockDevice",
    "DeviceSpec",
    "IoOp",
    "SATA_DISK",
    "SSD",
    "RAMDISK",
    "NVRAM",
    "IoRequest",
    "PIOIo",
]
