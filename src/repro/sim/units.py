"""Time units.

The simulator counts virtual time in integer **nanoseconds**.  Integers keep
the event heap exactly ordered (no float drift) and make calibration
constants readable.
"""

from __future__ import annotations

#: One nanosecond — the base unit.
NS = 1
#: One microsecond in nanoseconds.
US = 1_000
#: One millisecond in nanoseconds.
MS = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def fmt_ns(ns: float) -> str:
    """Render a nanosecond quantity with a human-friendly unit.

    >>> fmt_ns(750)
    '750 ns'
    >>> fmt_ns(13585)
    '13.59 us'
    >>> fmt_ns(2_000_000)
    '2.00 ms'
    """
    ns = float(ns)
    if abs(ns) < 1_000:
        return f"{ns:.0f} ns"
    if abs(ns) < 1_000_000:
        return f"{ns / 1_000:.2f} us"
    if abs(ns) < 1_000_000_000:
        return f"{ns / 1_000_000:.2f} ms"
    return f"{ns / 1_000_000_000:.3f} s"
