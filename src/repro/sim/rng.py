"""Deterministic random-number helper.

All stochastic behaviour in the simulator (jitter on wire latencies,
tie-breaking among equidistant lock waiters, workload generators) draws
from a single :class:`Rng` so that a run is reproducible from one seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class Rng:
    """Thin, explicit wrapper around :class:`random.Random`.

    A wrapper rather than the module-level functions so that (a) the seed is
    mandatory and visible, and (b) sub-streams can be forked for independent
    components without perturbing each other's sequences.
    """

    __slots__ = ("seed", "_r")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._r = random.Random(seed)

    def fork(self, salt: int) -> "Rng":
        """Derive an independent deterministic sub-stream."""
        return Rng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def uniform(self, lo: float, hi: float) -> float:
        return self._r.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._r.randint(lo, hi)

    def jitter_ns(self, base: int, frac: float) -> int:
        """``base`` ns +/- ``frac`` relative jitter, never negative."""
        if frac <= 0.0:
            return base
        lo = base * (1.0 - frac)
        hi = base * (1.0 + frac)
        return max(0, int(self._r.uniform(lo, hi)))

    def choice(self, seq: Sequence[T]) -> T:
        return self._r.choice(seq)

    def shuffle(self, lst: list) -> None:
        self._r.shuffle(lst)

    def expovariate(self, rate: float) -> float:
        return self._r.expovariate(rate)

    def random(self) -> float:
        return self._r.random()

    def bytes(self, n: int) -> bytes:
        return self._r.randbytes(n)
