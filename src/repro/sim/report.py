"""Run reports: core utilization, task distribution, queue health.

Post-mortem rendering of a simulation's statistics — what a user looks at
to answer "which cores did the progression work, how contended were the
queues, did my threads actually overlap anything?".  Pure formatting over
the stats objects the subsystems already maintain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.units import fmt_ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import PIOMan
    from repro.threads.scheduler import Scheduler


def _bar(frac: float, width: int = 24) -> str:
    frac = min(max(frac, 0.0), 1.0)
    filled = round(frac * width)
    return "#" * filled + "." * (width - filled)


def core_utilization(scheduler: "Scheduler", pioman: Optional["PIOMan"] = None) -> str:
    """Per-core busy time, context switches, keypoints and task work."""
    now = scheduler.engine.now or 1
    lines = [
        f"core utilization over {fmt_ns(now)} "
        f"(node {scheduler.name!r}, {len(scheduler.cores)} cores)"
    ]
    execs = pioman.stats.executions_by_core if pioman is not None else {}
    header = f"{'core':>5} {'busy':>8} {'util':>6}  {'':24} {'ctxsw':>6} {'tasks':>7}"
    lines.append(header)
    for core in scheduler.cores:
        frac = core.busy_ns / now
        lines.append(
            f"{core.id:>5} {fmt_ns(core.busy_ns):>8} {frac:>6.1%}  "
            f"{_bar(frac)} {core.ctx_switches:>6} {execs.get(core.id, 0):>7}"
        )
    total_busy = sum(c.busy_ns for c in scheduler.cores)
    lines.append(
        f"total busy {fmt_ns(total_busy)} "
        f"({total_busy / (now * len(scheduler.cores)):.1%} of machine)"
    )
    return "\n".join(lines)


def queue_report(pioman: "PIOMan") -> str:
    """One line per task queue: traffic, contention, balance."""
    lines = ["task queues (enqueues / dequeues / lost races / lock contention)"]
    for q in pioman.hierarchy.queues():
        st = q.stats
        if st.enqueues == 0:
            continue  # no task ever routed here
        ls = q.lock.stats
        contention = f"{ls.contention_ratio:.0%}" if ls.acquires else "-"
        lines.append(
            f"  {q.name:<16} enq={st.enqueues:<6} deq={st.dequeues:<6} "
            f"lost={st.lost_races:<5} maxlen={st.max_len:<4} lock_cont={contention}"
        )
    return "\n".join(lines)


def keypoint_report(scheduler: "Scheduler") -> str:
    """How often each keypoint kind drove progression."""
    from repro.threads.scheduler import Keypoint

    parts = [
        f"{kind.value}={scheduler.keypoint_count(kind)}" for kind in Keypoint
    ]
    return "progression keypoints: " + ", ".join(parts)


def full_report(scheduler: "Scheduler", pioman: Optional["PIOMan"] = None) -> str:
    """Everything, ready to print."""
    sections = [core_utilization(scheduler, pioman)]
    if pioman is not None:
        sections.append(queue_report(pioman))
    sections.append(keypoint_report(scheduler))
    return "\n\n".join(sections)
