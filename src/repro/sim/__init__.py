"""Discrete-event simulation substrate.

Every other subsystem (topology-aware memory model, spinlocks, the thread
scheduler, NICs, PIOMan itself) runs on top of this engine.  The engine
maintains a virtual clock in **nanoseconds** and a heap of pending events.
Runs are fully deterministic: ties on the timestamp are broken by a
monotonically increasing sequence number, and all randomness used anywhere
in the package flows from a single seeded :class:`Rng`.

The simulated time unit is the nanosecond throughout the whole project;
helpers :data:`US` and :data:`MS` exist for readability.
"""

from repro.sim.engine import Engine, Event, SimulationError, DeadlockError
from repro.sim.rng import Rng
from repro.sim.trace import Tracer, TraceRecord
from repro.sim import debug, report
from repro.sim.units import NS, US, MS, SEC, fmt_ns

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "DeadlockError",
    "Rng",
    "Tracer",
    "TraceRecord",
    "report",
    "debug",
    "NS",
    "US",
    "MS",
    "SEC",
    "fmt_ns",
]
