"""Structured event tracing.

A :class:`Tracer` collects ``TraceRecord`` tuples from any subsystem that
was handed one.  Tracing is opt-in and cheap when disabled (`enabled`
flag checked before formatting anything).  Records carry a category so a
test or a debugging session can filter, e.g. ``trace.select("lock")`` or
``trace.select("nic", "pioman")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, which subsystem, where, what."""

    time: int
    category: str
    actor: str
    message: str
    data: Optional[dict] = None

    def __str__(self) -> str:
        return f"[{self.time:>12} ns] {self.category:<8} {self.actor:<14} {self.message}"


class Tracer:
    """Collects trace records; disabled by default."""

    def __init__(self, enabled: bool = False, limit: Optional[int] = None) -> None:
        self.enabled = enabled
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.dropped = 0
        #: Causal context: the node id (see ``repro.obs.critpath``) of the
        #: activity currently executing on the host call stack — set by the
        #: task runner around ``task.run`` so host-instant work it triggers
        #: (a NIC post, a CQ handler) can attach a cause edge.  Only ever
        #: written under an ``enabled`` guard.
        self.cursor: Optional[str] = None

    def emit(
        self,
        time: int,
        category: str,
        actor: str,
        message: str,
        **data: Any,
    ) -> None:
        """Record one event if tracing is on (and under the record limit)."""
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, category, actor, message, data or None))

    def edge(
        self,
        time: int,
        actor: str,
        kind: str,
        cause: str,
        effect: str,
        start: int,
        **extra: Any,
    ) -> None:
        """Record one causal edge ``cause -> effect``.

        ``start`` is the cause's timestamp; ``time`` the effect's, so the
        edge spans the interval ``[start, time]``.  Edges share the record
        stream (category ``"edge"``, ``phase="edge"``) and export through
        the Chrome-trace path as instants, which keeps them merge- and
        analyze-compatible.  ``repro.obs.critpath`` walks them backward
        from the last completion to extract the critical path.
        """
        self.emit(
            time, "edge", actor, f"edge:{kind} {cause} -> {effect}",
            phase="edge", edge=kind, cause=cause, effect=effect,
            start=start, **extra,
        )

    def select(self, *categories: str) -> list[TraceRecord]:
        """All records whose category is one of ``categories``."""
        wanted = set(categories)
        return [r for r in self.records if r.category in wanted]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable multi-line dump (optionally filtered)."""
        recs = self.records if categories is None else self.select(*categories)
        return "\n".join(str(r) for r in recs)

    def __len__(self) -> int:
        return len(self.records)


class _NullTracer(Tracer):
    """The always-off tracer behind :data:`NULL_TRACER`.

    The null tracer is shared process-wide as the default of every
    subsystem; flipping its ``enabled`` flag would silently turn on
    collection for *all* defaulted subsystems at once (and leak records
    across unrelated simulations).  ``enabled`` is therefore a read-only
    ``False`` — construct a real ``Tracer(enabled=True)`` and pass it
    explicitly instead — and ``emit`` is a hard no-op either way.
    """

    def __init__(self) -> None:
        # Tracer.__init__ assigns ``self.enabled``, which the read-only
        # property below rejects; set the remaining state directly.
        self.limit = None
        self.records = []
        self.dropped = 0
        self.cursor = None

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        raise AttributeError(
            "NULL_TRACER is the shared process-wide default and cannot be "
            "enabled; construct a Tracer(enabled=True) and pass it explicitly"
        )

    def emit(self, *args: Any, **data: Any) -> None:
        return None


#: A process-wide always-disabled tracer, handed out as a default so
#: subsystems never need to branch on "do I have a tracer".
NULL_TRACER = _NullTracer()
