"""The discrete-event engine.

A single :class:`Engine` instance drives an entire simulated cluster: all
cores of all nodes, all NICs and all wires share one virtual clock.  Heap
entries are plain ``(time, seq, event)`` tuples so heap sift compares at
C speed (``seq`` is a global monotonically increasing counter, so ties
fire in submission order and the third element is never compared) —
every run is bit-for-bit reproducible.

The engine knows nothing about cores or networks — higher layers schedule
plain callbacks.  Two API families exist because the callers split
cleanly into two camps:

* :meth:`Engine.schedule` / :meth:`Engine.call_soon` return an
  :class:`Event` handle that can be *cancelled* (lazy deletion — the heap
  entry is kept but skipped).  Used when the caller keeps the handle
  (sleep timers, interruptible compute slices).
* :meth:`Engine.post` / :meth:`Engine.post_soon` / :meth:`Engine.post_at`
  are the fire-and-forget fast path: no handle escapes, so the Event
  carrier object is recycled through a free pool after it fires instead
  of being reallocated — the dominant case (dispatch ticks, lock grants,
  doorbell rings, wire deliveries).

*Idle hooks*: callables consulted when the heap drains while some
component still claims to be waiting for progress; used by the cluster
harness to detect deadlocks instead of silently returning.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation substrate."""


class DeadlockError(SimulationError):
    """Raised when the event heap drains while actors are still blocked."""


class Event:
    """Handle for a scheduled callback.

    Lives as the third element of a ``(time, seq, event)`` heap tuple;
    ``cancel()`` marks the event dead and the engine skips dead events
    when they surface.  ``_engine`` is set while the event is queued and
    cancellable, so cancellation can maintain the engine's O(1) live
    count; ``_pooled`` events are internal fire-and-forget carriers that
    return to the engine's free pool after firing.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive", "_engine", "_pooled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self._engine: Optional["Engine"] = None
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.alive:
            self.alive = False
            eng = self._engine
            if eng is not None:
                self._engine = None
                eng._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return f"<Event t={self.time} seq={self.seq} {state} {getattr(self.fn, '__name__', self.fn)!r}>"


def _coerce_delay(delay: Any) -> int:
    """Validate and round a non-int delay (slow path, shared by schedule
    and post).  Rejects negative and non-finite values loudly — a ``nan``
    or ``inf`` delay silently mis-rounding would corrupt the virtual
    clock far from the bug that produced it."""
    if isinstance(delay, float) and not math.isfinite(delay):
        raise ValueError(f"non-finite delay {delay!r}")
    if delay < 0:
        raise ValueError(f"negative delay {delay!r}")
    d = int(delay)
    return d if d == delay or d > delay else d + 1


class Engine:
    """Deterministic discrete-event loop with a nanosecond virtual clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        #: free pool of fire-and-forget Event carriers (see :meth:`post`)
        self._pool: list[Event] = []
        #: number of callbacks actually executed (dead events excluded)
        self.fired: int = 0
        #: callables polled when the heap drains; if any returns True the
        #: engine keeps running (the hook is expected to have scheduled
        #: new work), otherwise :meth:`run` returns.
        self.drain_hooks: list[Callable[[], bool]] = []
        #: callables that report the number of actors still blocked waiting
        #: for a simulation event; consulted on drain for deadlock detection.
        self.blocked_reporters: list[Callable[[], int]] = []

    # ------------------------------------------------------------------
    # scheduling — cancellable handles
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative and finite; fractional delays are
        rounded up so a nonzero delay never becomes zero.
        """
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        elif delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(self.now + delay, seq, fn, args)
        ev._engine = self
        self._live += 1
        heappush(self._heap, (ev.time, seq, ev))
        return ev

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.schedule(time - self.now, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        seq = self._seq
        self._seq = seq + 1
        ev = Event(self.now, seq, fn, args)
        ev._engine = self
        self._live += 1
        heappush(self._heap, (ev.time, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # scheduling — fire-and-forget fast path (pooled, no handle)
    # ------------------------------------------------------------------
    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, carrier recycled."""
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        elif delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.alive = True
        else:
            ev = Event(time, seq, fn, args)
            ev._pooled = True
        self._live += 1
        heappush(self._heap, (time, seq, ev))

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.alive = True
        else:
            ev = Event(time, seq, fn, args)
            ev._pooled = True
        self._live += 1
        heappush(self._heap, (time, seq, ev))

    def post_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon`."""
        time = self.now
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.alive = True
        else:
            ev = Event(time, seq, fn, args)
            ev._pooled = True
        self._live += 1
        heappush(self._heap, (time, seq, ev))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the heap is drained."""
        self._skim()
        return self._heap[0][0] if self._heap else None

    def _skim(self) -> None:
        heap = self._heap
        while heap and not heap[0][2].alive:
            heappop(heap)

    def _fire(self, ev: Event) -> None:
        """Run one popped live event (clock already advanced)."""
        self.fired += 1
        self._live -= 1
        ev._engine = None
        fn = ev.fn
        args = ev.args
        if ev._pooled:
            ev.fn = ev.args = None  # drop references before the pool
            self._pool.append(ev)
        fn(*args)

    def step(self) -> bool:
        """Run the single next live event.  Returns False if none exist."""
        self._skim()
        if not self._heap:
            return False
        time, _, ev = heappop(self._heap)
        if time < self.now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event heap produced a past event")
        self.now = time
        self._fire(ev)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` ns is reached, or
        ``max_events`` callbacks fired.  Returns the virtual time.

        Draining with blocked actors raises :class:`DeadlockError` — a
        simulation that silently stops with threads still waiting is almost
        always a bug in the caller's protocol.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        fired_at_entry = self.fired
        heap = self._heap
        pool = self._pool
        pop = heappop
        bounded = until is not None or max_events is not None
        try:
            if not bounded:
                # Hot loop: no bound checks, locals only, :meth:`_fire`
                # inlined (one Python call per event is measurable here).
                # ``fired`` is accumulated in a local and flushed on every
                # exit path — nothing reads it mid-run (callbacks only post
                # events; counters are inspected after run() returns).
                nfired = 0
                try:
                    while True:
                        if not heap:
                            if any(hook() for hook in self.drain_hooks):
                                continue
                            blocked = sum(r() for r in self.blocked_reporters)
                            if blocked:
                                raise DeadlockError(
                                    f"event heap drained at t={self.now} ns with "
                                    f"{blocked} actor(s) still blocked"
                                )
                            return self.now
                        # Pop first, check liveness after: saves the peek
                        # (heap[0][2] + .alive) that the common live event
                        # would otherwise pay before its own pop.
                        time, _, ev = pop(heap)
                        if not ev.alive:
                            if ev._pooled:  # recycle cancelled carriers too
                                ev.fn = ev.args = None
                                pool.append(ev)
                            continue
                        self.now = time
                        nfired += 1
                        self._live -= 1
                        fn = ev.fn
                        args = ev.args
                        if ev._pooled:
                            ev.fn = ev.args = None  # drop refs before pooling
                            pool.append(ev)
                        else:
                            # handles must forget the engine once fired, so a
                            # late cancel() cannot corrupt the live count
                            ev._engine = None
                        fn(*args)
                finally:
                    self.fired += nfired
            while True:
                if max_events is not None and self.fired - fired_at_entry >= max_events:
                    return self.now
                while heap:
                    ev = heap[0][2]
                    if ev.alive:
                        break
                    pop(heap)
                    if ev._pooled:
                        ev.fn = ev.args = None
                        pool.append(ev)
                if not heap:
                    if any(hook() for hook in self.drain_hooks):
                        continue
                    blocked = sum(r() for r in self.blocked_reporters)
                    if blocked:
                        raise DeadlockError(
                            f"event heap drained at t={self.now} ns with "
                            f"{blocked} actor(s) still blocked"
                        )
                    return self.now
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                _, _, ev = pop(heap)
                self.now = time
                self.fired += 1
                self._live -= 1
                ev._engine = None
                fn = ev.fn
                args = ev.args
                if ev._pooled:
                    ev.fn = ev.args = None
                    pool.append(ev)
                fn(*args)
        finally:
            self._running = False

    def run_until_idle(self) -> int:
        """Alias of :meth:`run` with no bound — runs to a fully drained heap."""
        return self.run()

    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now}ns pending={self.pending()} fired={self.fired}>"
