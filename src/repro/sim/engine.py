"""The discrete-event engine.

A single :class:`Engine` instance drives an entire simulated cluster: all
cores of all nodes, all NICs and all wires share one virtual clock.  The
engine knows nothing about cores or networks — higher layers schedule
plain callbacks.  Two API families exist because the callers split
cleanly into two camps:

* :meth:`Engine.schedule` / :meth:`Engine.call_soon` return an
  :class:`Event` handle that can be *cancelled* (lazy deletion — the
  queued entry is kept but skipped).  Used when the caller keeps the
  handle (sleep timers, interruptible compute slices).
* :meth:`Engine.post` / :meth:`Engine.post_soon` / :meth:`Engine.post_at`
  are the fire-and-forget fast path: no handle escapes, so no Event
  object is needed at all on the wheel core (the dominant case —
  dispatch ticks, lock grants, doorbell rings, wire deliveries).

Two interchangeable cores implement the same total order:

* ``Engine(core="wheel")`` (the default) — a bucketed timer wheel
  (calendar queue): events land in ``time >> WHEEL_SHIFT`` buckets in
  O(1), the run loop drains one bucket at a time, and all events in a
  bucket fire as one sorted batch without re-sifting between them.
  Far-future timers beyond the wheel horizon wait in an overflow heap
  and migrate into the wheel as the window slides.
* ``Engine(core="heap")`` — the original binary heap of
  ``(time, seq, Event)`` tuples with a free pool of recycled carriers.

``seq`` is a global monotonically increasing counter, so ties fire in
submission order and every run is bit-for-bit reproducible; both cores
realize the exact same ``(time, seq)`` total order, so a simulation is
byte-identical whichever core runs it (the randomized equivalence fuzz
in ``tests/sim/test_engine_wheel.py`` holds them to that).

*Drain hooks*: callables consulted when the queue drains while some
component still claims to be waiting for progress; used by the cluster
harness to detect deadlocks instead of silently returning.
"""

from __future__ import annotations

import math
import os
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

#: wheel bucket width is ``1 << WHEEL_SHIFT`` ns.  4096 ns holds dozens
#: of events at the hot scenarios' densities (probe cycles are 120 ns,
#: idle re-polls 2000 ns) — big enough to amortize the per-bucket
#: bookkeeping even on sparse timelines, small enough that the in-bucket
#: sort stays tiny (timsort on near-sorted runs).  Empirically 12 beats
#: 10/11/13 across dense and sparse event spreads.
WHEEL_SHIFT = 12
#: number of wheel slots; the horizon is ``WHEEL_SLOTS << WHEEL_SHIFT``
#: (~1.05 ms).  Timer quanta (1 ms) fit inside the window; retransmit
#: timeouts overflow to the heap and migrate in as the window slides —
#: rare enough that the heappush there is noise.
WHEEL_SLOTS = 256
WHEEL_MASK = WHEEL_SLOTS - 1

#: free-pool cap: recycled carriers beyond this are dropped so a bursty
#: scenario cannot retain an unbounded free list forever.
POOL_CAP = 4096

#: process-wide default core, overridable for A/B runs without touching
#: call sites: ``REPRO_ENGINE_CORE=heap python -m repro.bench perf ...``
DEFAULT_CORE = os.environ.get("REPRO_ENGINE_CORE", "wheel")


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation substrate."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while actors are still blocked."""


class Event:
    """Handle for a scheduled callback.

    Queued as the payload of a ``(time, seq, None, event)`` entry (wheel
    core) or a ``(time, seq, event)`` heap tuple (heap core);
    ``cancel()`` marks the event dead and the engine skips dead events
    when they surface.  ``_engine`` is set while the event is queued and
    cancellable, so cancellation can maintain the engine's O(1) live
    count; ``_pooled`` events are internal carriers that return to the
    engine's free pool after firing.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive", "_engine", "_pooled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self._engine: Optional["Engine"] = None
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.alive:
            self.alive = False
            eng = self._engine
            if eng is not None:
                self._engine = None
                eng._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return f"<Event t={self.time} seq={self.seq} {state} {getattr(self.fn, '__name__', self.fn)!r}>"


def _coerce_delay(delay: Any) -> int:
    """Validate and round a non-int delay (slow path, shared by schedule
    and post).  Rejects negative and non-finite values loudly — a ``nan``
    or ``inf`` delay silently mis-rounding would corrupt the virtual
    clock far from the bug that produced it."""
    if isinstance(delay, float) and not math.isfinite(delay):
        raise ValueError(f"non-finite delay {delay!r}")
    if delay < 0:
        raise ValueError(f"negative delay {delay!r}")
    d = int(delay)
    return d if d == delay or d > delay else d + 1


class Engine:
    """Deterministic discrete-event loop with a nanosecond virtual clock.

    Instantiating ``Engine(core=...)`` returns the selected core
    subclass (:class:`WheelEngine` or :class:`HeapEngine`); with no
    argument the process default (``DEFAULT_CORE``) is used.
    """

    #: class-level discriminant so hot call sites can branch on the
    #: queue layout without an isinstance check
    is_wheel = False

    def __new__(cls, core: Optional[str] = None) -> "Engine":
        if cls is Engine:
            kind = DEFAULT_CORE if core is None else core
            if kind == "wheel":
                return object.__new__(WheelEngine)
            if kind == "heap":
                return object.__new__(HeapEngine)
            raise ValueError(f"unknown engine core {kind!r}")
        return object.__new__(cls)

    def __init__(self, core: Optional[str] = None) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        #: free pool of recycled Event carriers (see :meth:`post` on the
        #: heap core; the wheel core pools only cancellable carriers its
        #: callers ask it to, e.g. the scheduler's sleep timers)
        self._pool: list[Event] = []
        #: number of callbacks actually executed (dead events excluded)
        self.fired: int = 0
        #: callables polled when the queue drains; if any returns True the
        #: engine keeps running (the hook is expected to have scheduled
        #: new work), otherwise :meth:`run` returns.
        self.drain_hooks: list[Callable[[], bool]] = []
        #: callables that report the number of actors still blocked waiting
        #: for a simulation event; consulted on drain for deadlock detection.
        self.blocked_reporters: list[Callable[[], int]] = []
        #: quiescence-leap controller (:class:`repro.core.leap
        #: .QuiescenceLeap`), installed by PIOMan on eligible worlds;
        #: the run loops consult it only when its ``armed`` hint is set.
        self.leap = None

    # ------------------------------------------------------------------
    # shared API
    # ------------------------------------------------------------------
    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.schedule(time - self.now, fn, *args)

    def run_until_idle(self) -> int:
        """Alias of :meth:`run` with no bound — runs to a fully drained queue."""
        return self.run()

    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return self._live

    def _recycle(self, ev: Event) -> None:
        """Return a dead or fired pooled carrier to the free pool (capped)."""
        ev.fn = ev.args = None
        if len(self._pool) < POOL_CAP:
            self._pool.append(ev)

    def blocked_actors(self) -> int:
        """Actors currently blocked, summed over the registered reporters.

        Nonzero at drain means deadlock in a closed world; in a sharded
        run (:mod:`repro.cluster.shard`) a shard's local drain with
        blocked actors is routine — they wait on cross-shard frames — so
        the coordinator sums this across shards *after* the global drain
        instead of letting each shard raise locally.
        """
        return sum(r() for r in self.blocked_reporters)

    def _drained(self) -> Optional[int]:
        """Queue is empty: poll drain hooks, detect deadlock.  Returns
        the final virtual time to report, or None to keep running."""
        if any(hook() for hook in self.drain_hooks):
            return None
        blocked = self.blocked_actors()
        if blocked:
            raise DeadlockError(
                f"event queue drained at t={self.now} ns with "
                f"{blocked} actor(s) still blocked"
            )
        return self.now

    def next_external_time(self, carriers: set) -> Optional[int]:
        """Earliest live queued event that is not one of ``carriers``.

        ``carriers`` is a set of cancellable :class:`Event` handles the
        quiescence leap has classified as elidable periodic idle
        carriers; everything else — fire-and-forget posts, other
        handles — is *external* and bounds the leap.  Returns None when
        no external event is queued.  Read-only: never pops, recycles,
        or reorders queue state.
        """
        raise NotImplementedError

    # subclass responsibilities
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        raise NotImplementedError

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        raise NotImplementedError

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        raise NotImplementedError

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        raise NotImplementedError

    def post_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        raise NotImplementedError

    def peek_time(self) -> Optional[int]:
        raise NotImplementedError

    def step(self) -> bool:
        raise NotImplementedError

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "wheel" if self.is_wheel else "heap"
        return f"<Engine[{kind}] now={self.now}ns pending={self.pending()} fired={self.fired}>"


class WheelEngine(Engine):
    """Timer-wheel core: O(1) insert, batched bucket drains.

    Layout
    ------
    ``_slots[time >> WHEEL_SHIFT & WHEEL_MASK]`` holds every queued entry
    whose bucket index falls inside the current window
    ``[_wpos, _wlimit)`` (``_wlimit - _wpos`` is always ``WHEEL_SLOTS``,
    so masked slots never alias).  ``_bidx`` is a sorted list of the
    *absolute* indices of non-empty buckets: the next non-empty bucket
    is ``_bidx[0]``, and an insert only touches it on a bucket's
    empty→non-empty transition (one ``len()`` check otherwise — cheaper
    than any bitmask arithmetic at Python speed).  Entries at or beyond
    ``_wlimit`` wait in the ``_over`` heap and migrate into the wheel as
    the window slides (every overflow entry's time is >= every wheel
    entry's time, so migration never reorders).

    Entries are plain tuples — ``(time, seq, fn, args)`` for
    fire-and-forget posts (no carrier object at all), and
    ``(time, seq, None, event)`` for cancellable handles.  Three insert
    tiers, cheapest first:

    * ``time == now`` → ``_nowq``, a plain FIFO: these are the
      same-instant events (``post_soon``/``call_soon`` and zero-delay
      posts) and they fire *as a batch with no ordering work at all*.
      This is sound because ``seq`` is globally monotonic and every
      at-``now`` arrival during an instant lands here — so anything
      already queued at this time has a smaller ``seq`` than every
      FIFO entry, and the FIFO itself is in ``seq`` order by
      construction.
    * bucket currently being drained (``time <= _aend``, one compare —
      the dominant case: dispatch chains step ~100 ns inside 4096 ns
      buckets) → ``heappush`` straight into the live bucket heap: the
      ordering cost is paid on a tiny per-bucket heap, only for entries
      that actually interleave with the drain.
    * any other in-window bucket → bare ``list.append`` (no ordering
      work); the bucket is ``heapify``-ed once when its drain begins.
    """

    is_wheel = True

    def __init__(self, core: Optional[str] = None) -> None:
        super().__init__(core)
        self._slots: list[list[tuple]] = [[] for _ in range(WHEEL_SLOTS)]
        #: sorted absolute indices of non-empty buckets
        self._bidx: list[int] = []
        #: absolute bucket index of the window start (<= bucket of the
        #: next undrained entry; never ahead of ``now``'s bucket while
        #: callers can insert)
        self._wpos: int = 0
        #: absolute bucket index one past the window end (exclusive);
        #: maintained as ``_wpos + WHEEL_SLOTS``
        self._wlimit: int = WHEEL_SLOTS
        #: overflow heap for entries beyond the window
        self._over: list[tuple] = []
        #: FIFO of entries whose time equals ``now`` (drained before the
        #: clock advances; folded back into the wheel if one survives
        #: past a run, e.g. a post_soon issued between runs)
        self._nowq: list[tuple] = []
        #: last timestamp covered by the actively draining bucket, else
        #: -1.  Because callers can only schedule at ``time >= now`` and
        #: ``now`` sits inside the active bucket while draining,
        #: ``time <= _aend`` is a complete one-compare test for "lands in
        #: the live bucket" — the dominant insert (dispatch chains step
        #: ~100 ns inside 4096 ns buckets), reduced to one C heappush.
        self._aend: int = -1
        #: the live bucket list itself while draining (alias of
        #: its slot list in ``_slots``), else None
        self._abuc: Optional[list] = None

    def _insert(self, e: tuple) -> None:
        """Queue an entry with ``now < time`` outside the active bucket:
        bare append into its window bucket (registering occupancy on the
        empty→non-empty flip) or heappush into the overflow heap."""
        idx = e[0] >> WHEEL_SHIFT
        if idx < self._wlimit:
            lst = self._slots[idx & WHEEL_MASK]
            lst.append(e)
            if len(lst) == 1:
                insort(self._bidx, idx)
        else:
            heappush(self._over, e)

    # ------------------------------------------------------------------
    # scheduling — cancellable handles
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative and finite; fractional delays are
        rounded up so a nonzero delay never becomes zero.
        """
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        elif delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args)
        ev._engine = self
        self._live += 1
        if delay == 0:
            self._nowq.append((time, seq, None, ev))
        elif time <= self._aend:
            heappush(self._abuc, (time, seq, None, ev))
        else:
            self._insert((time, seq, None, ev))
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        seq = self._seq
        self._seq = seq + 1
        ev = Event(self.now, seq, fn, args)
        ev._engine = self
        self._live += 1
        self._nowq.append((ev.time, seq, None, ev))
        return ev

    # ------------------------------------------------------------------
    # scheduling — fire-and-forget fast path (no handle, no carrier)
    # ------------------------------------------------------------------
    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, no Event object."""
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        elif delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if delay == 0:
            self._nowq.append((time, seq, fn, args))
        elif time <= self._aend:
            heappush(self._abuc, (time, seq, fn, args))
        else:
            self._insert((time, seq, fn, args))

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if time == self.now:
            self._nowq.append((time, seq, fn, args))
        elif time <= self._aend:
            heappush(self._abuc, (time, seq, fn, args))
        else:
            self._insert((time, seq, fn, args))

    def post_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon`."""
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        self._nowq.append((self.now, seq, fn, args))

    # ------------------------------------------------------------------
    # window machinery
    # ------------------------------------------------------------------
    def _retreat_window(self) -> None:
        """Pull the window start back to ``now``'s bucket.

        Only legal while the wheel itself is empty (draining dead-only
        buckets can leave the cursor ahead of ``now``; new inserts must
        land at non-aliasing slots, so the window must restart at or
        before ``now`` whenever callers regain control with ``now``
        behind the cursor)."""
        w = self.now >> WHEEL_SHIFT
        if self._wpos > w:
            self._wpos = w
            self._wlimit = w + WHEEL_SLOTS

    def _flush_nowq(self) -> None:
        """Fold same-instant FIFO entries back into the wheel.

        Only needed when an entry posted at ``now`` survives past the
        instant it was posted in — i.e. it arrived outside a run (setup
        code, between bounded runs) or a callback raised mid-instant.
        The wheel may then already hold ties at the same time with
        *smaller* seqs, so the cheap FIFO ordering no longer suffices
        and the entries must merge through the normal (time, seq) path.
        """
        nq = self._nowq
        for e in nq:
            idx = e[0] >> WHEEL_SHIFT
            if idx < self._wlimit:
                lst = self._slots[idx & WHEEL_MASK]
                lst.append(e)
                if len(lst) == 1:
                    insort(self._bidx, idx)
            else:  # pragma: no cover - now is always inside the window
                heappush(self._over, e)
        nq.clear()

    def next_external_time(self, carriers: set) -> Optional[int]:
        """See :meth:`Engine.next_external_time`.

        Walks the engine tiers cheapest-first without scanning past the
        answer: the same-instant FIFO (any live non-carrier entry bounds
        the leap at its post instant), then the occupied-bucket index in
        time order — the first bucket containing an external entry holds
        the minimum, because inter-bucket order is time order — and only
        if the whole wheel is carrier-only, the overflow heap (every
        overflow time is >= every wheel time).
        """
        for e in self._nowq:
            if e[2] is None:
                ev = e[3]
                if not ev.alive or ev in carriers:
                    continue
            return e[0]
        slots = self._slots
        for pos in self._bidx:
            best = None
            for e in slots[pos & WHEEL_MASK]:
                if e[2] is None:
                    ev = e[3]
                    if not ev.alive or ev in carriers:
                        continue
                if best is None or e[0] < best:
                    best = e[0]
            if best is not None:
                return best
        best = None
        for e in self._over:
            if e[2] is None:
                ev = e[3]
                if not ev.alive or ev in carriers:
                    continue
            if best is None or e[0] < best:
                best = e[0]
        return best

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is drained.

        Skims dead entries off the front (recycling pooled carriers)
        exactly like the run loop would.
        """
        if self._nowq:
            self._flush_nowq()
        slots = self._slots
        bidx = self._bidx
        while bidx:
            pos = bidx[0]
            lst = slots[pos & WHEEL_MASK]
            if len(lst) > 1:
                heapify(lst)
            while lst:
                e = lst[0]
                if e[2] is None and not e[3].alive:
                    heappop(lst)
                    ev = e[3]
                    if ev._pooled:
                        self._recycle(ev)
                    continue
                return e[0]
            del bidx[0]
        over = self._over
        while over:
            e = over[0]
            if e[2] is None and not e[3].alive:
                heappop(over)
                ev = e[3]
                if ev._pooled:
                    self._recycle(ev)
                continue
            return e[0]
        return None

    def step(self) -> bool:
        """Run the single next live event.  Returns False if none exist."""
        t = self.peek_time()
        if t is None:
            return False
        # peek_time left the next live entry at the top of its
        # (heapified) bucket, or at the overflow head if the wheel is
        # empty.
        bidx = self._bidx
        if bidx:
            lst = self._slots[bidx[0] & WHEEL_MASK]
            e = heappop(lst)
            if not lst:
                del bidx[0]
        else:
            e = heappop(self._over)
        self.now = e[0]
        self.fired += 1
        self._live -= 1
        fn = e[2]
        if fn is not None:
            fn(*e[3])
        else:
            ev = e[3]
            ev._engine = None
            efn = ev.fn
            eargs = ev.args
            if ev._pooled:
                self._recycle(ev)
            efn(*eargs)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` callbacks fired.  Returns the virtual time.

        Draining with blocked actors raises :class:`DeadlockError` — a
        simulation that silently stops with threads still waiting is
        almost always a bug in the caller's protocol.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        SHIFT = WHEEL_SHIFT
        MASK = WHEEL_MASK
        SLOTS = WHEEL_SLOTS
        slots = self._slots
        over = self._over
        pool = self._pool
        hi = until
        budget = max_events
        nfired = 0
        ndone = 0  # deferred _live decrements, flushed once in finally
        cur = self.now  # mirror of self.now: skip the store on time ties
        bidx = self._bidx
        if self._nowq:
            # entries posted at ``now`` outside a run may tie with older
            # wheel entries: merge them through the (time, seq) path
            self._flush_nowq()
        nowq = self._nowq
        try:
            while True:
                if budget is not None and budget <= 0:
                    return self.now
                # Quiescence leap: consulted between buckets (the idle
                # steady state crosses a bucket boundary within one wheel
                # turn, so the hint is seen promptly) and only on
                # unbudgeted runs — a leap fires many events per call,
                # which a max_events bound must count one at a time.
                lp = self.leap
                if lp is not None and lp.armed and budget is None and not nowq:
                    if lp.attempt(hi):
                        cur = self.now
                if not bidx:
                    if over:
                        # wheel empty: jump the window to the overflow head
                        t0 = over[0][0]
                        if hi is not None and t0 > hi:
                            self.now = cur = hi
                            return hi
                        idx0 = t0 >> SHIFT
                        self._wpos = idx0
                        nl = idx0 + SLOTS
                        self._wlimit = nl
                        while over and over[0][0] >> SHIFT < nl:
                            e = heappop(over)
                            i0 = e[0] >> SHIFT
                            lst = slots[i0 & MASK]
                            lst.append(e)
                            if len(lst) == 1:
                                insort(bidx, i0)
                        continue
                    # fully drained: the cursor may sit ahead of ``now``
                    # after dead-only buckets; restart the window where
                    # the drain hooks (and post-run callers) will insert
                    self._retreat_window()
                    t = self._drained()
                    if t is None:
                        if nowq:
                            # a drain hook posted at ``now``: merge
                            self._flush_nowq()
                        continue
                    return t
                pos = bidx[0]
                bstart = pos << SHIFT
                if hi is not None and bstart > hi:
                    # every queued event is past the bound.  The window
                    # start only ever committed to buckets <= hi's, so
                    # inserts after this return cannot alias.
                    self.now = cur = hi
                    return hi
                if pos != self._wpos:
                    # commit the window start and migrate any overflow
                    # the longer horizon now covers
                    self._wpos = pos
                    nl = pos + SLOTS
                    if nl > self._wlimit:
                        self._wlimit = nl
                        while over and over[0][0] >> SHIFT < nl:
                            e = heappop(over)
                            i0 = e[0] >> SHIFT
                            lst = slots[i0 & MASK]
                            lst.append(e)
                            if len(lst) == 1:
                                insort(bidx, i0)
                careful = budget is not None or (
                    hi is not None and bstart + (1 << SHIFT) > hi
                )
                # ---- drain bucket ``pos`` in place as a tiny heap ----
                # ``_aend``/``_abuc`` redirect the bucket's own
                # same-bucket arrivals to heappush straight into
                # ``batch``; at-``now`` arrivals go to the ``nowq`` FIFO
                # instead.
                batch = slots[pos & MASK]
                if len(batch) > 1:
                    heapify(batch)
                self._abuc = batch
                self._aend = bstart + (1 << SHIFT) - 1
                while True:
                    # ---- drain the instant: at-``now`` arrivals fire
                    # FIFO, which IS (time, seq) order (see class doc) —
                    # unless older ties still sit at the batch head.
                    # Checked at the top so every pop path (fires AND
                    # dead-entry skims) reconsiders the FIFO before
                    # advancing past the instant.
                    if nowq and not (batch and batch[0][0] == cur):
                        i = 0
                        try:
                            while i < len(nowq):
                                e = nowq[i]
                                efn = e[2]
                                if efn is None:
                                    ev = e[3]
                                    if not ev.alive:
                                        i += 1
                                        if ev._pooled:
                                            ev.fn = ev.args = None
                                            if len(pool) < POOL_CAP:
                                                pool.append(ev)
                                        continue
                                if budget is not None:
                                    if budget == 0:
                                        del nowq[:i]
                                        return self.now
                                    budget -= 1
                                i += 1
                                nfired += 1
                                ndone += 1
                                if efn is not None:
                                    efn(*e[3])
                                else:
                                    ev._engine = None
                                    efn = ev.fn
                                    eargs = ev.args
                                    if ev._pooled:
                                        ev.fn = ev.args = None
                                        if len(pool) < POOL_CAP:
                                            pool.append(ev)
                                    efn(*eargs)
                        except BaseException:
                            # drop the fired prefix (the raiser included,
                            # matching the heap core: it counts as fired
                            # and must not refire on resume)
                            del nowq[:i]
                            raise
                        nowq.clear()
                        continue  # instant callbacks may have refilled batch
                    if not batch:
                        break
                    if careful:
                        # mirror the heap core's bounded loop: skim dead
                        # handles first, apply the bounds against a live
                        # head, count only fired events against budget
                        e0 = batch[0]
                        if e0[2] is None and not e0[3].alive:
                            heappop(batch)
                            ev = e0[3]
                            if ev._pooled:
                                ev.fn = ev.args = None
                                if len(pool) < POOL_CAP:
                                    pool.append(ev)
                            continue
                        if hi is not None and e0[0] > hi:
                            self.now = cur = hi
                            return hi
                        if budget is not None:
                            if budget == 0:
                                return self.now
                            budget -= 1
                    t, s, fn, a = heappop(batch)
                    if fn is not None:
                        if t != cur:
                            self.now = cur = t
                        nfired += 1
                        ndone += 1
                        fn(*a)
                    else:
                        ev = a
                        if ev.alive:
                            if t != cur:
                                self.now = cur = t
                            nfired += 1
                            ndone += 1
                            ev._engine = None
                            efn = ev.fn
                            eargs = ev.args
                            if ev._pooled:
                                ev.fn = ev.args = None
                                if len(pool) < POOL_CAP:
                                    pool.append(ev)
                            efn(*eargs)
                        elif ev._pooled:  # recycle cancelled carriers
                            ev.fn = ev.args = None
                            if len(pool) < POOL_CAP:
                                pool.append(ev)
                self._aend = -1
                self._abuc = None
                del bidx[0]
        finally:
            self.fired += nfired
            if ndone:
                self._live -= ndone
            self._aend = -1
            self._abuc = None
            self._running = False


class HeapEngine(Engine):
    """The original binary-heap core, kept as the A/B reference.

    Heap entries are plain ``(time, seq, event)`` tuples so heap sift
    compares at C speed (``seq`` breaks ties, the Event is never
    compared).  Fire-and-forget posts recycle their Event carriers
    through the engine's free pool.
    """

    is_wheel = False

    def __init__(self, core: Optional[str] = None) -> None:
        super().__init__(core)
        self._heap: list[tuple[int, int, Event]] = []

    # ------------------------------------------------------------------
    # scheduling — cancellable handles
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative and finite; fractional delays are
        rounded up so a nonzero delay never becomes zero.
        """
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        elif delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(self.now + delay, seq, fn, args)
        ev._engine = self
        self._live += 1
        heappush(self._heap, (ev.time, seq, ev))
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        seq = self._seq
        self._seq = seq + 1
        ev = Event(self.now, seq, fn, args)
        ev._engine = self
        self._live += 1
        heappush(self._heap, (ev.time, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # scheduling — fire-and-forget fast path (pooled, no handle)
    # ------------------------------------------------------------------
    def _carrier(self, time: int, seq: int, fn: Callable[..., Any], args: tuple) -> Event:
        """Check a fire-and-forget carrier out of the free pool (or make
        a fresh poolable one) — the acquisition half of the recycling
        protocol, shared by all three ``post*`` entry points."""
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.alive = True
        else:
            ev = Event(time, seq, fn, args)
            ev._pooled = True
        return ev

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, carrier recycled."""
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        elif delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = self._carrier(time, seq, fn, args)
        self._live += 1
        heappush(self._heap, (time, seq, ev))

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        ev = self._carrier(time, seq, fn, args)
        self._live += 1
        heappush(self._heap, (time, seq, ev))

    def post_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon`."""
        time = self.now
        seq = self._seq
        self._seq = seq + 1
        ev = self._carrier(time, seq, fn, args)
        self._live += 1
        heappush(self._heap, (time, seq, ev))

    def next_external_time(self, carriers: set) -> Optional[int]:
        """See :meth:`Engine.next_external_time`.  Linear scan — the
        heap core has no tier structure to exploit, and the scan runs
        only on leap attempts (not per event)."""
        best = None
        for e in self._heap:
            ev = e[2]
            if not ev.alive or ev in carriers:
                continue
            if best is None or e[0] < best:
                best = e[0]
        return best

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the heap is drained."""
        self._skim()
        return self._heap[0][0] if self._heap else None

    def _skim(self) -> None:
        """Pop dead events off the heap top, recycling pooled carriers
        (dropping them would starve the pool under cancel-heavy load)."""
        heap = self._heap
        while heap and not heap[0][2].alive:
            ev = heappop(heap)[2]
            if ev._pooled:
                self._recycle(ev)

    def _fire(self, ev: Event) -> None:
        """Run one popped live event (clock already advanced)."""
        self.fired += 1
        self._live -= 1
        ev._engine = None
        fn = ev.fn
        args = ev.args
        if ev._pooled:
            ev.fn = ev.args = None  # drop references before the pool
            if len(self._pool) < POOL_CAP:
                self._pool.append(ev)
        fn(*args)

    def step(self) -> bool:
        """Run the single next live event.  Returns False if none exist."""
        self._skim()
        if not self._heap:
            return False
        time, _, ev = heappop(self._heap)
        if time < self.now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event heap produced a past event")
        self.now = time
        self._fire(ev)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` ns is reached, or
        ``max_events`` callbacks fired.  Returns the virtual time.

        Draining with blocked actors raises :class:`DeadlockError` — a
        simulation that silently stops with threads still waiting is almost
        always a bug in the caller's protocol.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        fired_at_entry = self.fired
        heap = self._heap
        pool = self._pool
        pop = heappop
        bounded = until is not None or max_events is not None
        try:
            if not bounded:
                # Hot loop: no bound checks, locals only, :meth:`_fire`
                # inlined (one Python call per event is measurable here).
                # ``fired`` is accumulated in a local and flushed on every
                # exit path — nothing reads it mid-run (callbacks only post
                # events; counters are inspected after run() returns).
                nfired = 0
                try:
                    while True:
                        lp = self.leap
                        if lp is not None and lp.armed:
                            lp.attempt(None)
                        if not heap:
                            t = self._drained()
                            if t is None:
                                continue
                            return t
                        # Pop first, check liveness after: saves the peek
                        # (heap[0][2] + .alive) that the common live event
                        # would otherwise pay before its own pop.
                        time, _, ev = pop(heap)
                        if not ev.alive:
                            if ev._pooled:  # recycle cancelled carriers too
                                ev.fn = ev.args = None
                                if len(pool) < POOL_CAP:
                                    pool.append(ev)
                            continue
                        self.now = time
                        nfired += 1
                        self._live -= 1
                        fn = ev.fn
                        args = ev.args
                        if ev._pooled:
                            ev.fn = ev.args = None  # drop refs before pooling
                            if len(pool) < POOL_CAP:
                                pool.append(ev)
                        else:
                            # handles must forget the engine once fired, so a
                            # late cancel() cannot corrupt the live count
                            ev._engine = None
                        fn(*args)
                finally:
                    self.fired += nfired
            while True:
                if max_events is not None and self.fired - fired_at_entry >= max_events:
                    return self.now
                # bounded-run leap: only without an event budget (a leap
                # fires many events at once, uncountable against one)
                lp = self.leap
                if lp is not None and lp.armed and max_events is None:
                    lp.attempt(until)
                while heap:
                    ev = heap[0][2]
                    if ev.alive:
                        break
                    pop(heap)
                    if ev._pooled:
                        ev.fn = ev.args = None
                        if len(pool) < POOL_CAP:
                            pool.append(ev)
                if not heap:
                    t = self._drained()
                    if t is None:
                        continue
                    return t
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                _, _, ev = pop(heap)
                self.now = time
                self.fired += 1
                self._live -= 1
                ev._engine = None
                fn = ev.fn
                args = ev.args
                if ev._pooled:
                    ev.fn = ev.args = None
                    if len(pool) < POOL_CAP:
                        pool.append(ev)
                fn(*args)
        finally:
            self._running = False
