"""The discrete-event engine.

A single :class:`Engine` instance drives an entire simulated cluster: all
cores of all nodes, all NICs and all wires share one virtual clock.  Events
are ``(time, seq, callback)`` triples on a binary heap; ``seq`` is a global
monotonically increasing counter so that simultaneous events fire in
submission order, which makes every run bit-for-bit reproducible.

The engine knows nothing about cores or networks — higher layers schedule
plain callbacks.  Two conveniences are provided because every layer needs
them:

* :meth:`Engine.schedule` returns an :class:`Event` handle that can be
  *cancelled* (lazy deletion — the heap entry is kept but skipped).
* *Idle hooks*: callables consulted when the heap drains while some
  component still claims to be waiting for progress; used by the cluster
  harness to detect deadlocks instead of silently returning.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation substrate."""


class DeadlockError(SimulationError):
    """Raised when the event heap drains while actors are still blocked."""


class Event:
    """Handle for a scheduled callback.

    Instances are ordered by ``(time, seq)`` so they can live directly on
    the heap.  ``cancel()`` marks the event dead; the engine skips dead
    events when they surface.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.alive = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return f"<Event t={self.time} seq={self.seq} {state} {getattr(self.fn, '__name__', self.fn)!r}>"


class Engine:
    """Deterministic discrete-event loop with a nanosecond virtual clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        #: number of callbacks actually executed (dead events excluded)
        self.fired: int = 0
        #: callables polled when the heap drains; if any returns True the
        #: engine keeps running (the hook is expected to have scheduled
        #: new work), otherwise :meth:`run` returns.
        self.drain_hooks: list[Callable[[], bool]] = []
        #: callables that report the number of actors still blocked waiting
        #: for a simulation event; consulted on drain for deadlock detection.
        self.blocked_reporters: list[Callable[[], int]] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; fractional delays are rounded up so
        a nonzero delay never becomes zero.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if not isinstance(delay, int):
            d = int(delay)
            delay = d if d == delay or d > delay else d + 1
        ev = Event(self.now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.schedule(time - self.now, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        return self.schedule(0, fn, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the heap is drained."""
        self._skim()
        return self._heap[0].time if self._heap else None

    def _skim(self) -> None:
        while self._heap and not self._heap[0].alive:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the single next live event.  Returns False if none exist."""
        self._skim()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        if ev.time < self.now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event heap produced a past event")
        self.now = ev.time
        self.fired += 1
        ev.fn(*ev.args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` ns is reached, or
        ``max_events`` callbacks fired.  Returns the virtual time.

        Draining with blocked actors raises :class:`DeadlockError` — a
        simulation that silently stops with threads still waiting is almost
        always a bug in the caller's protocol.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        fired_at_entry = self.fired
        try:
            while True:
                if max_events is not None and self.fired - fired_at_entry >= max_events:
                    return self.now
                nxt = self.peek_time()
                if nxt is None:
                    if any(hook() for hook in self.drain_hooks):
                        continue
                    blocked = sum(r() for r in self.blocked_reporters)
                    if blocked:
                        raise DeadlockError(
                            f"event heap drained at t={self.now} ns with "
                            f"{blocked} actor(s) still blocked"
                        )
                    return self.now
                if until is not None and nxt > until:
                    self.now = until
                    return self.now
                self.step()
        finally:
            self._running = False

    def run_until_idle(self) -> int:
        """Alias of :meth:`run` with no bound — runs to a fully drained heap."""
        return self.run()

    def pending(self) -> int:
        """Number of live events still queued (O(n); for tests/diagnostics)."""
        return sum(1 for ev in self._heap if ev.alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now}ns pending={self.pending()} fired={self.fired}>"
