"""Stall diagnostics: what is every thread doing right now?

When a simulation stops making progress — a protocol deadlock, a stranded
task, an unsafe MPI pattern — the first question is always "who is
blocked on what, and where in its code?".  :func:`dump_state` renders
exactly that: per-core current threads with their generator call stacks
(function:line through every ``yield from`` level), run queues, blocked
threads with reasons, lock holders/waiters, task-queue contents, and (if
NewMadeleine is attached) pending operations and rendezvous state.

These dumps are how this repository's own protocol bugs were found; they
are shipped as a first-class API because any downstream user writing
thread bodies will need them within the hour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.units import fmt_ns
from repro.threads.thread import Prio, SimThread, TState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.core.manager import PIOMan
    from repro.threads.scheduler import Scheduler


def gen_stack(thread: SimThread) -> str:
    """The thread's generator stack as ``outer:12 / inner:34``."""
    frames = []
    gen = thread.gen
    while gen is not None and getattr(gen, "gi_frame", None) is not None:
        frame = gen.gi_frame
        frames.append(f"{frame.f_code.co_name}:{frame.f_lineno}")
        gen = getattr(gen, "gi_yieldfrom", None)
    return " / ".join(frames) if frames else "(finished)"


def thread_line(thread: SimThread) -> str:
    state = thread.state.value
    extra = ""
    if thread.state is TState.BLOCKED and thread.blocked_on:
        extra = f" on {thread.blocked_on}"
    elif thread.spin_cancel is not None:
        extra = " (spinning)"
    return f"{thread.name:<18} {state}{extra:<24} {gen_stack(thread)}"


def scheduler_state(scheduler: "Scheduler", pioman: Optional["PIOMan"] = None) -> str:
    """One node's scheduling picture."""
    lines = [f"node {scheduler.name!r} at {fmt_ns(scheduler.engine.now)}:"]
    for core in scheduler.cores:
        cur = core.current
        cur_txt = thread_line(cur) if cur is not None else "(idle)"
        lines.append(f"  core {core.id}: {cur_txt}")
        ready = [t.name for t in core.run_queue if t.state is TState.READY]
        if ready:
            lines.append(f"          ready: {', '.join(ready)}")
    blocked = [
        t
        for t in scheduler.threads
        if t.state is TState.BLOCKED and t.prio != Prio.IDLE
    ]
    if blocked:
        lines.append("  blocked threads:")
        for t in blocked:
            lines.append(f"    {thread_line(t)}")
    if pioman is not None:
        pending = pioman.pending_tasks()
        if pending:
            lines.append(f"  queued tasks: {pending}")
            for q in pioman.hierarchy.queues():
                if len(q):
                    names = ", ".join(t.name or "?" for t in q._tasks)
                    lines.append(f"    {q.name}: [{names}]")
                if q.lock.held:
                    lines.append(
                        f"    {q.name} lock held by core {q.lock.holder}, "
                        f"waiters {q.lock.waiter_cores()}"
                    )
    return "\n".join(lines)


def nmad_state(nmad) -> str:
    """One NewMadeleine instance's protocol picture."""
    lines = [
        f"nmad node{nmad.node.id}: pending_ops={nmad.pending_ops}",
    ]
    if nmad.expected:
        lines.append(f"  expected recvs: {nmad.expected}")
    if nmad.unexpected:
        lines.append(f"  unexpected metas: {len(nmad.unexpected)}")
    if nmad.rdv_out:
        lines.append(f"  rendezvous out (awaiting CTS/FIN): {nmad.rdv_out}")
    if nmad.rdv_in:
        lines.append(f"  rendezvous in (awaiting DATA): {nmad.rdv_in}")
    for gate in nmad.gates.values():
        if gate.outbox:
            lines.append(f"  gate->{gate.peer_node} outbox: {list(gate.outbox)}")
    polls = {k: (t.state.value if t else "-") for k, t in nmad._poll_tasks.items()}
    lines.append(f"  poll tasks: {polls}")
    return "\n".join(lines)


def dump_state(target) -> str:
    """Render a full diagnostic dump.

    ``target`` may be a :class:`~repro.cluster.cluster.Cluster` (every
    node is dumped, with its nmad instance if attached) or a single
    :class:`~repro.threads.scheduler.Scheduler`.
    """
    from repro.cluster.cluster import Cluster

    if isinstance(target, Cluster):
        sections = []
        for node in target.nodes:
            sections.append(scheduler_state(node.scheduler, node.pioman))
            if node.comm is not None and hasattr(node.comm, "pending_ops"):
                sections.append(nmad_state(node.comm))
        return "\n\n".join(sections)
    return scheduler_state(target)
