"""The cluster fabric: point-to-point delivery between NICs.

One :class:`Fabric` per simulated cluster.  NICs register by (node id,
driver name, index); frames route to the *same driver rail* on the target
node — multirail setups (one MX + one IB NIC per node, as on BORDERLINE)
are therefore just multiple registrations.

Two hooks exist for sharded simulation (:mod:`repro.cluster.shard`):

* ``jitter_mode="per_link"`` gives every *source rail* its own
  seed-derived jitter stream, so a frame's wire time depends only on the
  sending NIC's identity and its own transmit count — never on the
  global interleaving of transmissions.  That is what keeps a sharded
  run (where each shard only sees its own nodes' transmissions)
  bit-identical to the single-process run.  The default ``"global"``
  mode keeps the original shared draw-order stream so committed
  single-process fingerprints stay valid.
* ``remote_sink`` — when set, a frame whose destination rail is not
  registered here is handed to it as ``(src_nic, frame, arrive_at)``
  instead of raising; the shard runner uses this to capture cross-shard
  frames into its outbox.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.driver import DriverSpec
from repro.net.frame import Frame
from repro.net.nic import Nic
from repro.par.jobs import derive_seed
from repro.sim.rng import Rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

#: accepted jitter_mode values
JITTER_MODES = ("global", "per_link")


class Fabric:
    """Connects the NICs of a cluster and schedules wire deliveries."""

    def __init__(
        self,
        engine: "Engine",
        rng: Optional[Rng] = None,
        *,
        jitter_mode: str = "global",
    ) -> None:
        if jitter_mode not in JITTER_MODES:
            raise ValueError(
                f"jitter_mode must be one of {JITTER_MODES}, got {jitter_mode!r}"
            )
        self.engine = engine
        self.rng = rng if rng is not None else Rng(7)
        self.jitter_mode = jitter_mode
        #: (node_id, driver_name, index) -> Nic
        self._nics: dict[tuple[int, str, int], Nic] = {}
        #: lazily created per-source-rail jitter streams (per_link mode)
        self._link_rngs: dict[tuple[int, str, int], Rng] = {}
        #: cross-shard escape hatch: called as (src_nic, frame, arrive_at)
        #: for frames whose destination rail is not registered here
        self.remote_sink: Optional[Callable[[Nic, Frame, int], None]] = None

    def new_nic(self, node_id: int, driver: DriverSpec, index: int = 0) -> Nic:
        key = (node_id, driver.name, index)
        if key in self._nics:
            raise ValueError(f"duplicate NIC {key}")
        nic = Nic(self, node_id, driver, index)
        self._nics[key] = nic
        return nic

    def nic_of(self, node_id: int, driver_name: str, index: int = 0) -> Nic:
        return self._nics[(node_id, driver_name, index)]

    def peer_nic(self, nic: Nic, dst_node: int) -> Nic:
        """The same rail on the destination node."""
        return self._nics[(dst_node, nic.driver.name, nic.index)]

    def _link_rng(self, src_nic: Nic) -> Rng:
        key = (src_nic.node_id, src_nic.driver.name, src_nic.index)
        rng = self._link_rngs.get(key)
        if rng is None:
            # Seeded from the fabric seed and the rail's identity only:
            # every process that builds this fabric (any shard, any shard
            # count) derives the identical stream for this rail.
            salt = derive_seed(self.rng.seed, f"wire:{key[0]}:{key[1]}:{key[2]}")
            rng = self._link_rngs[key] = Rng(salt)
        return rng

    def wire_ns(self, src_nic: Nic, frame: Frame) -> int:
        """Latency + serialization for a frame leaving ``src_nic``."""
        base = src_nic.driver.wire_ns(frame.size_bytes)
        if self.jitter_mode == "per_link":
            return self._link_rng(src_nic).jitter_ns(base, src_nic.driver.jitter)
        return self.rng.jitter_ns(base, src_nic.driver.jitter)

    def min_lookahead_ns(self) -> Optional[int]:
        """Conservative lower bound on any frame's wire time (ns).

        ``DriverSpec.wire_ns`` is monotone in frame size, so the minimum
        over registered rails of a zero-payload frame's wire time scaled
        by the worst-case downward jitter bounds every possible delivery
        delay from below.  This is the lookahead window *L* of the
        conservative time-synchronization protocol: a frame sent at time
        *t* can never arrive before ``t + L``.  None when no NIC is
        registered (a shard that owns no nodes constrains nothing).
        """
        best: Optional[int] = None
        for nic in self._nics.values():
            floor = int(nic.driver.wire_ns(0) * (1.0 - nic.driver.jitter))
            if best is None or floor < best:
                best = floor
        return best

    def deliver(self, src_nic: Nic, frame: Frame, arrive_at: int) -> None:
        """Schedule arrival of ``frame`` at the matching rail of its
        destination node (or hand it to ``remote_sink`` when that rail
        lives in another shard's fabric)."""
        dst = self._nics.get((frame.dst_node, src_nic.driver.name, src_nic.index))
        if dst is None:
            if self.remote_sink is not None:
                self.remote_sink(src_nic, frame, arrive_at)
                return
            raise KeyError(
                f"no NIC ({frame.dst_node}, {src_nic.driver.name!r}, "
                f"{src_nic.index}) registered and no remote_sink installed"
            )
        if dst is src_nic:
            raise ValueError("frame addressed to its own NIC")
        self.engine.post_at(arrive_at, dst._deliver, frame)

    def nics(self) -> list[Nic]:
        return list(self._nics.values())
