"""The cluster fabric: point-to-point delivery between NICs.

One :class:`Fabric` per simulated cluster.  NICs register by (node id,
driver name, index); frames route to the *same driver rail* on the target
node — multirail setups (one MX + one IB NIC per node, as on BORDERLINE)
are therefore just multiple registrations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.driver import DriverSpec
from repro.net.frame import Frame
from repro.net.nic import Nic
from repro.sim.rng import Rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


class Fabric:
    """Connects the NICs of a cluster and schedules wire deliveries."""

    def __init__(self, engine: "Engine", rng: Optional[Rng] = None) -> None:
        self.engine = engine
        self.rng = rng if rng is not None else Rng(7)
        #: (node_id, driver_name, index) -> Nic
        self._nics: dict[tuple[int, str, int], Nic] = {}

    def new_nic(self, node_id: int, driver: DriverSpec, index: int = 0) -> Nic:
        key = (node_id, driver.name, index)
        if key in self._nics:
            raise ValueError(f"duplicate NIC {key}")
        nic = Nic(self, node_id, driver, index)
        self._nics[key] = nic
        return nic

    def nic_of(self, node_id: int, driver_name: str, index: int = 0) -> Nic:
        return self._nics[(node_id, driver_name, index)]

    def peer_nic(self, nic: Nic, dst_node: int) -> Nic:
        """The same rail on the destination node."""
        return self._nics[(dst_node, nic.driver.name, nic.index)]

    def wire_ns(self, src_nic: Nic, frame: Frame) -> int:
        """Latency + serialization for a frame leaving ``src_nic``."""
        base = src_nic.driver.wire_ns(frame.size_bytes)
        return self.rng.jitter_ns(base, src_nic.driver.jitter)

    def deliver(self, src_nic: Nic, frame: Frame, arrive_at: int) -> None:
        """Schedule arrival of ``frame`` at the matching rail of its
        destination node."""
        dst = self.peer_nic(src_nic, frame.dst_node)
        if dst is src_nic:
            raise ValueError("frame addressed to its own NIC")
        self.engine.post_at(arrive_at, dst._deliver, frame)

    def nics(self) -> list[Nic]:
        return list(self._nics.values())
