"""Simulated NIC.

Models the properties the paper's evaluation rests on:

* **DMA decouples the CPU**: once a descriptor is posted, the wire
  transfer proceeds on virtual time without occupying any core — this is
  what makes communication/computation overlap *possible*; whether it
  *happens* depends on who polls when (the whole point of Figs. 5-7).
* **TX serialization**: one frame at a time per NIC; queued descriptors
  drain in order at the link bandwidth (the arbitration/saturation issue
  motivating the collect layer, Fig. 1).
* **RDMA read**: a remote initiator pulls local memory with no local CPU
  involvement (capability flag on the driver), used by the MVAPICH-like
  and OpenMPI-like rendezvous.
* **Completion queue**: arrivals and completions land in a CQ that costs
  CPU to poll; a registered listener is notified host-side on each CQ
  write so it can ring scheduler doorbells (the modeled coherence/event
  path a polling core observes).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.driver import DriverSpec
from repro.net.frame import Completion, Frame
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric import Fabric


class NicStats:
    __slots__ = (
        "frames_sent",
        "frames_recv",
        "bytes_sent",
        "bytes_recv",
        "rdma_reads_served",
        "rdma_reads_issued",
        "polls",
        "empty_polls",
        "tx_busy_ns",
        "drops",
        "retransmits",
        "reorders",
    )

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_recv = 0
        self.bytes_sent = 0
        self.bytes_recv = 0
        self.rdma_reads_served = 0
        self.rdma_reads_issued = 0
        self.polls = 0
        self.empty_polls = 0
        self.tx_busy_ns = 0
        # fault injection (repro.faults): zero on a healthy wire
        self.drops = 0
        self.retransmits = 0
        self.reorders = 0


class Nic:
    """One network interface on one node."""

    def __init__(self, fabric: "Fabric", node_id: int, driver: DriverSpec, index: int = 0) -> None:
        self.fabric = fabric
        self.node_id = node_id
        self.driver = driver
        self.index = index
        self.name = f"{driver.name}@node{node_id}.{index}"
        self._cq: deque[Completion] = deque()
        #: next time the TX engine is free (bandwidth serialization)
        self._tx_free = 0
        self.stats = NicStats()
        #: host-side callback fired on every CQ write (nmad rings doorbells)
        self.on_cq_write: Optional[Callable[["Nic", Completion], None]] = None
        #: fault injector (repro.faults); None = lossless wire, zero cost
        self.faults = None
        #: causal-edge tracer (wired by the cluster; zero work disabled)
        self.tracer: Tracer = NULL_TRACER
        #: deterministic per-NIC frame-id counter for trace node ids
        self._trace_seq = 0

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def post_send(self, frame: Frame, signal_done: bool = False) -> int:
        """Queue a frame for transmission; returns expected delivery time.

        Pure descriptor handoff — the caller charges the CPU cost
        (``driver.post_cost_ns``) through its own task/thread accounting.
        If ``signal_done`` a ``send_done`` completion lands in this NIC's
        CQ when the frame leaves the wire.
        """
        eng = self.fabric.engine
        start = max(eng.now, self._tx_free)
        wire = self.fabric.wire_ns(self, frame)
        depart = start + (frame.size_bytes + self.driver.frame_overhead_bytes) * 1_000 // self.driver.bytes_per_us
        depart = max(depart, start)  # serialization component
        arrive = start + wire
        self.stats.tx_busy_ns += depart - start
        self._tx_free = depart
        frame.sent_at = eng.now
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.size_bytes
        tracer = self.tracer
        if tracer.enabled:
            # Tag the frame with this post's trace node before the fault
            # layer sees it (a drop's retransmit edge points back here).
            if frame.trace_fid is None:
                self._trace_seq += 1
                frame.trace_fid = f"{self.name}#{self._trace_seq}"
            txn = frame.trace_txn
            frame.trace_txn = txn + 1
            tx = f"F:{frame.trace_fid}/tx{txn}"
            if tracer.cursor is not None:
                tracer.edge(eng.now, self.name, "post", tracer.cursor, tx, eng.now)
            frame.trace_tx = tx
            frame.trace_tx_time = eng.now
        faults = self.faults
        if faults is None:
            self.fabric.deliver(self, frame, arrive)
        else:
            # drop/reorder/retransmit decisions (exactly-once delivery)
            faults.deliver(self, frame, arrive)
        if signal_done:
            eng.post_at(depart, self._complete, Completion(kind="send_done", frame=frame))
        return arrive

    def tx_idle(self) -> bool:
        """Is the transmit engine idle right now? (strategy trigger)"""
        return self._tx_free <= self.fabric.engine.now

    # ------------------------------------------------------------------
    # RDMA
    # ------------------------------------------------------------------
    def rdma_read(self, peer: "Nic", size_bytes: int, meta: Any = None) -> None:
        """Pull ``size_bytes`` from the peer's memory.

        No CPU is consumed on either side; after request latency + data
        streaming, an ``rdma_done`` completion lands in *this* CQ and an
        ``rdma_served`` record in the peer's CQ (real HCAs do not signal
        the target; protocol layers that need a sender-side completion
        send an explicit FIN — the served record is for accounting and is
        ignored by the MPI models).
        """
        if not self.driver.rdma or not peer.driver.rdma:
            raise RuntimeError(f"driver {self.driver.name} does not support RDMA read")
        eng = self.fabric.engine
        req_arrive = eng.now + self.driver.latency_ns
        start = max(req_arrive, peer._tx_free)
        data_wire = self.fabric.wire_ns(peer, Frame("rdma_data", peer.node_id, self.node_id, size_bytes))
        depart = start + (size_bytes + peer.driver.frame_overhead_bytes) * 1_000 // peer.driver.bytes_per_us
        peer._tx_free = depart
        peer.stats.rdma_reads_served += 1
        peer.stats.bytes_sent += size_bytes
        self.stats.rdma_reads_issued += 1
        done = start + data_wire
        eng.post_at(done, self._complete, Completion(kind="rdma_done", meta=meta))
        eng.post_at(depart, peer._complete, Completion(kind="rdma_served", meta=meta))

    # ------------------------------------------------------------------
    # receive / completion path
    # ------------------------------------------------------------------
    def _deliver(self, frame: Frame) -> None:
        """Called by the fabric when a frame arrives."""
        now = self.fabric.engine.now
        frame.delivered_at = now
        self.stats.frames_recv += 1
        self.stats.bytes_recv += frame.size_bytes
        tracer = self.tracer
        if tracer.enabled and frame.trace_tx is not None:
            rx = f"F:{frame.trace_fid}/rx{frame.trace_txn}"
            frame.trace_rx = rx
            frame.trace_rx_time = now
            tracer.edge(now, self.name, "nic", frame.trace_tx, rx, frame.trace_tx_time)
        self._complete(Completion(kind="recv", frame=frame))

    def _complete(self, comp: Completion) -> None:
        comp.time = self.fabric.engine.now
        self._cq.append(comp)
        if self.on_cq_write is not None:
            self.on_cq_write(self, comp)

    def poll(self, max_entries: Optional[int] = None) -> list[Completion]:
        """Drain (up to ``max_entries`` of) the completion queue.

        Host-instant; the caller charges ``driver.poll_cost_ns`` (plus
        per-entry handling) through its task cost accounting.
        """
        self.stats.polls += 1
        if not self._cq:
            self.stats.empty_polls += 1
            return []
        if max_entries is None:
            out = list(self._cq)
            self._cq.clear()
            return out
        out = [self._cq.popleft() for _ in range(min(max_entries, len(self._cq)))]
        return out

    def cq_depth(self) -> int:
        return len(self._cq)

    def __repr__(self) -> str:
        return f"<Nic {self.name} cq={len(self._cq)}>"
