"""Wire frames and completion records."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_frame_seq = itertools.count()


@dataclass(slots=True)
class Frame:
    """One frame on the wire.

    The payload is opaque to the NIC; protocol layers put their message
    structures (eager data, RTS/CTS, FIN, aggregated packs) in ``meta``.
    ``size_bytes`` alone determines wire timing.
    """

    kind: str
    src_node: int
    dst_node: int
    size_bytes: int
    meta: dict = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_frame_seq))
    #: filled by the fabric on delivery
    sent_at: Optional[int] = None
    delivered_at: Optional[int] = None
    #: causal-trace annotations (assigned only while tracing is enabled;
    #: ids are deterministic per-NIC counters so parallel/serial traces
    #: stay byte-identical — never host object ids)
    trace_fid: Optional[str] = None
    trace_txn: int = 0
    trace_tx: Optional[str] = None
    trace_tx_time: int = 0
    trace_rx: Optional[str] = None
    trace_rx_time: int = 0

    def __repr__(self) -> str:
        return (
            f"<Frame #{self.seq} {self.kind} {self.src_node}->{self.dst_node} "
            f"{self.size_bytes}B>"
        )


@dataclass(slots=True)
class Completion:
    """One completion-queue entry."""

    kind: str  # "recv" | "send_done" | "rdma_done" | "rdma_served"
    frame: Optional[Frame] = None
    meta: Any = None
    time: int = 0

    def __repr__(self) -> str:
        return f"<Completion {self.kind} t={self.time} {self.frame!r}>"
