"""NIC driver models.

A :class:`DriverSpec` captures what distinguishes the paper's networks at
the level the evaluation depends on: small-message latency, bandwidth,
whether the hardware can serve **RDMA reads** without remote CPU help
(the mechanism behind the baselines' sender-side-only overlap, paper
§II-B/§V-C), and the CPU costs of posting and polling.

Presets cover the four networks NewMadeleine ships drivers for
(MX/Myrinet, Verbs/InfiniBand, Elan/QsNet, TCP/Ethernet — paper §IV-B).
The evaluation (§V) uses ConnectX InfiniBand on the BORDERLINE cluster.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DriverSpec:
    """Latency/bandwidth/capability model of one NIC + driver stack."""

    name: str
    #: one-way wire+stack latency for a minimal frame (ns)
    latency_ns: int
    #: sustained bandwidth in bytes per microsecond (1 GB/s ~ 1074 B/us)
    bytes_per_us: int
    #: can a remote initiator pull memory without local CPU involvement?
    rdma: bool
    #: CPU cost to post a descriptor to the NIC (ns)
    post_cost_ns: int = 200
    #: CPU cost of one completion-queue poll (ns)
    poll_cost_ns: int = 80
    #: relative jitter applied to wire latency (deterministic rng)
    jitter: float = 0.03
    #: per-frame wire overhead in bytes (headers)
    frame_overhead_bytes: int = 64

    def wire_ns(self, size_bytes: int) -> int:
        """Serialization + propagation time for a frame of ``size_bytes``."""
        payload = size_bytes + self.frame_overhead_bytes
        return self.latency_ns + (payload * 1_000) // self.bytes_per_us


#: ConnectX InfiniBand (MT25408, OFED 1.2) — the paper's evaluation NIC.
IB_CONNECTX = DriverSpec(
    name="ibverbs",
    latency_ns=1_500,
    bytes_per_us=1_500,  # ~1.5 GB/s DDR IB payload rate
    rdma=True,
)

#: Myri-10G with MX 1.2.7 — the second NIC in the BORDERLINE boxes.
MYRI10G_MX = DriverSpec(
    name="mx",
    latency_ns=2_300,
    bytes_per_us=1_200,
    rdma=False,
)

#: Quadrics QsNet (Elan) — high-end, very low latency.
QSNET_ELAN = DriverSpec(
    name="elan",
    latency_ns=1_300,
    bytes_per_us=900,
    rdma=True,
)

#: Plain TCP over gigabit Ethernet — the slow portable fallback.
TCP_ETH = DriverSpec(
    name="tcp",
    latency_ns=25_000,
    bytes_per_us=110,
    rdma=False,
    post_cost_ns=800,
    poll_cost_ns=300,
)

DRIVERS = {
    d.name: d for d in (IB_CONNECTX, MYRI10G_MX, QSNET_ELAN, TCP_ETH)
}


# ---------------------------------------------------------------------------
# timeout-based retransmit path (fault injection)
# ---------------------------------------------------------------------------
def default_retransmit_timeout_ns(spec: DriverSpec, size_bytes: int = 4096) -> int:
    """Default loss-detection timeout for ``spec``: a few round-trips of a
    typical frame, so retransmits are late enough to look like timeouts
    but early enough that faulty scenarios still make progress."""
    return 4 * spec.wire_ns(size_bytes)


class RetransmitPath:
    """Per-NIC retransmit bookkeeping for the fault injector.

    The simulated drivers are normally lossless, so this state machine
    only exists when a :class:`repro.faults.NetFaults` plan is attached.
    It tracks how many times each frame (keyed by its process-unique
    ``Frame.seq``) has been dropped, answers whether another drop is
    allowed (``max_retries`` bounds the worst case, guaranteeing
    progress), and hands out the timeout after which the sender re-posts
    the frame.  Delivery stays exactly-once: a drop means the original
    transmission never arrives and the timeout-driven re-post is the
    only copy in flight.
    """

    __slots__ = ("timeout_ns", "max_retries", "_tries")

    def __init__(self, timeout_ns: int, max_retries: int) -> None:
        self.timeout_ns = timeout_ns
        self.max_retries = max_retries
        #: Frame.seq -> drops so far (entries cleared on delivery)
        self._tries: dict[int, int] = {}

    def may_drop(self, frame) -> bool:
        """Is this transmission still allowed to be lost?"""
        return self._tries.get(frame.seq, 0) < self.max_retries

    def note_drop(self, frame) -> int:
        """Record a drop; returns the retransmit timeout to arm."""
        self._tries[frame.seq] = self._tries.get(frame.seq, 0) + 1
        return self.timeout_ns

    def clear(self, frame) -> None:
        """The frame made it onto the wire for real: forget its history."""
        self._tries.pop(frame.seq, None)
