"""NIC driver models.

A :class:`DriverSpec` captures what distinguishes the paper's networks at
the level the evaluation depends on: small-message latency, bandwidth,
whether the hardware can serve **RDMA reads** without remote CPU help
(the mechanism behind the baselines' sender-side-only overlap, paper
§II-B/§V-C), and the CPU costs of posting and polling.

Presets cover the four networks NewMadeleine ships drivers for
(MX/Myrinet, Verbs/InfiniBand, Elan/QsNet, TCP/Ethernet — paper §IV-B).
The evaluation (§V) uses ConnectX InfiniBand on the BORDERLINE cluster.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DriverSpec:
    """Latency/bandwidth/capability model of one NIC + driver stack."""

    name: str
    #: one-way wire+stack latency for a minimal frame (ns)
    latency_ns: int
    #: sustained bandwidth in bytes per microsecond (1 GB/s ~ 1074 B/us)
    bytes_per_us: int
    #: can a remote initiator pull memory without local CPU involvement?
    rdma: bool
    #: CPU cost to post a descriptor to the NIC (ns)
    post_cost_ns: int = 200
    #: CPU cost of one completion-queue poll (ns)
    poll_cost_ns: int = 80
    #: relative jitter applied to wire latency (deterministic rng)
    jitter: float = 0.03
    #: per-frame wire overhead in bytes (headers)
    frame_overhead_bytes: int = 64

    def wire_ns(self, size_bytes: int) -> int:
        """Serialization + propagation time for a frame of ``size_bytes``."""
        payload = size_bytes + self.frame_overhead_bytes
        return self.latency_ns + (payload * 1_000) // self.bytes_per_us


#: ConnectX InfiniBand (MT25408, OFED 1.2) — the paper's evaluation NIC.
IB_CONNECTX = DriverSpec(
    name="ibverbs",
    latency_ns=1_500,
    bytes_per_us=1_500,  # ~1.5 GB/s DDR IB payload rate
    rdma=True,
)

#: Myri-10G with MX 1.2.7 — the second NIC in the BORDERLINE boxes.
MYRI10G_MX = DriverSpec(
    name="mx",
    latency_ns=2_300,
    bytes_per_us=1_200,
    rdma=False,
)

#: Quadrics QsNet (Elan) — high-end, very low latency.
QSNET_ELAN = DriverSpec(
    name="elan",
    latency_ns=1_300,
    bytes_per_us=900,
    rdma=True,
)

#: Plain TCP over gigabit Ethernet — the slow portable fallback.
TCP_ETH = DriverSpec(
    name="tcp",
    latency_ns=25_000,
    bytes_per_us=110,
    rdma=False,
    post_cost_ns=800,
    poll_cost_ns=300,
)

DRIVERS = {
    d.name: d for d in (IB_CONNECTX, MYRI10G_MX, QSNET_ELAN, TCP_ETH)
}
