"""Network simulation substrate: drivers, NICs, fabric, frames."""

from repro.net.driver import (
    DRIVERS,
    DriverSpec,
    IB_CONNECTX,
    MYRI10G_MX,
    QSNET_ELAN,
    TCP_ETH,
)
from repro.net.fabric import Fabric
from repro.net.frame import Completion, Frame
from repro.net.nic import Nic, NicStats

__all__ = [
    "DriverSpec",
    "DRIVERS",
    "IB_CONNECTX",
    "MYRI10G_MX",
    "QSNET_ELAN",
    "TCP_ETH",
    "Fabric",
    "Frame",
    "Completion",
    "Nic",
    "NicStats",
]
