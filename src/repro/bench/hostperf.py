"""Host-performance benchmark harness (``python -m repro.bench perf``).

Everything else in :mod:`repro.bench` measures *virtual* nanoseconds —
the numbers the paper reports.  This module measures the **host**: how
many simulator events per wall-clock second the discrete-event core
sustains on a fixed, seeded workload matrix.  Host speed is what gates
how large fig4 (128 receiver threads), the scalability sweep and
multi-node cluster runs can get, so it is tracked as a first-class
number in ``BENCH_host_perf.json``.

The matrix deliberately spans the simulator's distinct hot paths:

* ``micro_local`` / ``micro_global`` — Table-I-style submit→complete
  round-trips (engine + PIOMan + queue + lock fast paths);
* ``latency_mt`` — a fig4-style multi-threaded ping-pong over the full
  cluster stack (NICs, nmad, MPI, doorbells);
* ``scal_numa32`` — one rung of the scalability sweep on a 32-core NUMA
  machine (wide hierarchies, long scan paths);
* ``cluster_ring`` — a 4-node ring exchange (fabric + multi-node
  scheduling);
* ``idle_spin`` / ``idle_spin_nosummary`` — an idle-heavy spin-polling
  steady state on a deep chiplet machine, run with the occupancy-summary
  fast path on and off: the pair's ev/s ratio is the fast path's measured
  speedup, and their virtual outcomes must be identical;
* ``leap_on`` / ``leap_off`` — the same idle-heavy steady state with the
  quiescence leap (:mod:`repro.core.leap`) pinned on and off: the pair's
  ev/s ratio is the leap's measured speedup and their fingerprints must
  be fully identical (the leap replays every counter);
* ``fault_net`` / ``fault_slowcore`` / ``fault_storm`` — the same stack
  under :mod:`repro.faults` injection (packet loss + reorder with
  timeout retransmit, straggler cores, cancellation storms with
  lock-holder preemption): hostile worlds are part of the determinism
  contract too, so their fault counters live in the fingerprints;
* ``cluster_shard2`` — a generated workload run whole and split into two
  serial shards (:mod:`repro.cluster.shard`): the pair's fingerprints
  must be identical, so the perf gate also covers the conservative
  window-sync protocol on every PR.

Each scenario also returns a **fingerprint** of the simulated outcome
(final virtual time, events fired, key scheduler counters).  The
fingerprints are what the determinism golden test and the perf-smoke CI
job key on: an optimization that changes a fingerprint changed the
simulation, not just its speed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.engine import Engine


@dataclass
class ScenarioResult:
    """One scenario: host throughput plus a semantic fingerprint."""

    name: str
    events: int
    wall_ms: float
    events_per_sec: float
    virtual_ns: int
    fingerprint: dict = field(default_factory=dict)


@dataclass
class HostPerfReport:
    """The full matrix plus the aggregate throughput headline.

    ``total_wall_ms`` sums the scenarios' own (in-worker) run times;
    ``elapsed_wall_ms`` is the end-to-end wall clock of the whole matrix,
    which is what parallel fan-out (``jobs > 1``) actually shrinks.
    """

    scenarios: list[ScenarioResult] = field(default_factory=list)
    total_events: int = 0
    total_wall_ms: float = 0.0
    aggregate_events_per_sec: float = 0.0
    jobs: int = 1
    elapsed_wall_ms: float = 0.0

    def finish(self) -> "HostPerfReport":
        self.total_events = sum(s.events for s in self.scenarios)
        self.total_wall_ms = sum(s.wall_ms for s in self.scenarios)
        if self.total_wall_ms > 0:
            self.aggregate_events_per_sec = self.total_events / (
                self.total_wall_ms / 1e3
            )
        return self

    def scenario(self, name: str) -> ScenarioResult:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(name)


def _timed(engine: Engine, run: Callable[[], None]) -> tuple[int, float, int]:
    """Run a prepared workload; returns (events, wall_ms, virtual_ns)."""
    fired0 = engine.fired
    t0 = time.perf_counter()
    run()
    wall_ms = (time.perf_counter() - t0) * 1e3
    return engine.fired - fired0, wall_ms, engine.now


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _microbench_scenario(
    name: str, machine_name: str, cpuset_kind: str, reps: int, seed: int,
    engine_core: Optional[str] = None,
) -> ScenarioResult:
    """Table-I-style submit→wait loop on one queue of the hierarchy.

    ``engine_core`` pins the event core ("wheel" or "heap") regardless of
    the process default — the core_wheel/core_heap matrix pair uses it to
    run the same simulation on both cores back to back.
    """
    from repro.core.manager import PIOMan
    from repro.core.progress import piom_wait
    from repro.core.task import LTask
    from repro.sim.rng import Rng
    from repro.threads.scheduler import Scheduler
    from repro.topology.builder import MACHINES
    from repro.topology.cpuset import CpuSet

    machine = MACHINES[machine_name]()
    engine = Engine(core=engine_core)
    sched = Scheduler(machine, engine, rng=Rng(seed))
    pioman = PIOMan(machine, engine, sched)
    cpuset = (
        CpuSet.single(0) if cpuset_kind == "local" else machine.all_cores()
    )
    wait_mode = "active" if cpuset_kind == "local" else "spin"

    def submitter(ctx):
        for i in range(reps):
            task = LTask(None, cpuset=cpuset, name=f"perf{i}")
            yield from pioman.submit(0, task)
            yield from piom_wait(pioman, 0, task, mode=wait_mode)

    def run() -> None:
        sched.spawn(submitter, 0, name="perf-submitter")
        engine.run(until=reps * 1_000_000)

    events, wall_ms, virtual_ns = _timed(engine, run)
    if pioman.stats.tasks_completed < reps:
        raise RuntimeError(f"{name}: stalled at {pioman.stats.tasks_completed}/{reps}")
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "submits": pioman.stats.submits,
            "executions": pioman.stats.executions,
            "schedule_passes": pioman.stats.schedule_passes,
        },
    )


def _latency_scenario(name: str, nthreads: int, iters: int, seed: int) -> ScenarioResult:
    """fig4-style multi-threaded ping-pong over the full cluster stack."""
    from repro.cluster.cluster import Cluster
    from repro.mpi import MadMPI

    cluster = Cluster(2, seed=seed)
    mpi = MadMPI(cluster)
    c_send = mpi.comm(0)
    c_recv = mpi.comm(1)
    ncores = cluster.nodes[1].machine.ncores
    samples: list[int] = []

    def receiver_body(tid: int):
        def body(ctx):
            for _ in range(iters):
                yield from c_recv.recv(ctx.core_id, 0, tid)
                yield from c_recv.send(ctx.core_id, 0, tid, 4, payload=b"r")

        return body

    def sender_body(ctx):
        for _ in range(iters):
            for tid in range(nthreads):
                t0 = ctx.now
                yield from c_send.send(ctx.core_id, 1, tid, 4, payload=b"p")
                yield from c_send.recv(ctx.core_id, 1, tid)
                samples.append(ctx.now - t0)

    def run() -> None:
        for tid in range(nthreads):
            cluster.nodes[1].scheduler.spawn(
                receiver_body(tid), tid % ncores, name=f"recv{tid}"
            )
        cluster.nodes[0].scheduler.spawn(sender_body, 0, name="sender")
        cluster.run(until=iters * nthreads * 3_000_000 + 50_000_000)

    engine = cluster.engine
    events, wall_ms, virtual_ns = _timed(engine, run)
    if len(samples) < iters * nthreads:
        raise RuntimeError(f"{name}: stalled at {len(samples)} round-trips")
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "round_trips": len(samples),
            "sum_latency_ns": sum(samples),
        },
    )


def _scalability_scenario(name: str, reps: int, seed: int) -> ScenarioResult:
    """One rung of the scalability sweep: global queue on a 32-core NUMA box."""
    from repro.bench.scalability import scaled_machine
    from repro.core.manager import PIOMan
    from repro.core.progress import piom_wait
    from repro.core.task import LTask
    from repro.sim.rng import Rng
    from repro.threads.scheduler import Scheduler

    machine = scaled_machine(4, 8)  # 32 cores
    engine = Engine()
    sched = Scheduler(machine, engine, rng=Rng(seed))
    pioman = PIOMan(machine, engine, sched)
    cpuset = machine.all_cores()

    def submitter(ctx):
        for i in range(reps):
            task = LTask(None, cpuset=cpuset, name=f"scal{i}")
            yield from pioman.submit(0, task)
            yield from piom_wait(pioman, 0, task, mode="spin")

    def run() -> None:
        sched.spawn(submitter, 0, name="scal-submitter")
        engine.run(until=reps * 1_000_000)

    events, wall_ms, virtual_ns = _timed(engine, run)
    if pioman.stats.tasks_completed < reps:
        raise RuntimeError(f"{name}: stalled at {pioman.stats.tasks_completed}/{reps}")
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "submits": pioman.stats.submits,
            "executions": pioman.stats.executions,
        },
    )


def _cluster_ring_scenario(name: str, nnodes: int, iters: int, seed: int) -> ScenarioResult:
    """Multi-node smoke: every node sends around a ring simultaneously."""
    from repro.cluster.cluster import Cluster
    from repro.mpi import MadMPI

    cluster = Cluster(nnodes, seed=seed)
    mpi = MadMPI(cluster)
    comms = [mpi.comm(i) for i in range(nnodes)]
    done = [0] * nnodes

    def ring_body(rank: int):
        nxt = (rank + 1) % nnodes
        prev = (rank - 1) % nnodes

        def body(ctx):
            for it in range(iters):
                yield from comms[rank].send(
                    ctx.core_id, nxt, it, 1024, payload=b"x"
                )
                yield from comms[rank].recv(ctx.core_id, prev, it)
                done[rank] += 1

        return body

    def run() -> None:
        for rank in range(nnodes):
            cluster.nodes[rank].scheduler.spawn(
                ring_body(rank), 0, name=f"ring{rank}"
            )
        cluster.run(until=iters * nnodes * 5_000_000 + 50_000_000)

    engine = cluster.engine
    events, wall_ms, virtual_ns = _timed(engine, run)
    if done != [iters] * nnodes:
        raise RuntimeError(f"{name}: ring stalled ({done})")
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "exchanges": sum(done),
        },
    )


def _idle_spin_scenario(
    name: str,
    duration_us: int,
    gap_us: int,
    seed: int,
    fastpath: bool = True,
    best_of: int = 3,
    leap: Optional[bool] = None,
) -> ScenarioResult:
    """Idle-heavy spin-polling on a deep chiplet machine (24 cores).

    One driver core submits a small single-core task every ``gap_us``
    while the other 23 cores spin-poll an almost-always-empty hierarchy —
    the steady-state shape of a communication library between messages,
    and the workload the occupancy-summary fast path exists for.  Run
    with ``fastpath=False`` it measures the same simulation with the
    summary disabled; the two entries' ev/s ratio is the fast path's
    speedup and their fingerprints (minus ``summary_hits``) must match
    exactly — determinism is part of the contract.

    ``leap`` pins the quiescence leap (:mod:`repro.core.leap`) on or off
    regardless of the process default; the leap_on/leap_off matrix pair
    uses it to run the same simulation both ways, and that pair's
    fingerprints must be **fully** identical — the leap replays every
    counter, including ``summary_hits``.

    ``best_of`` re-runs the identical workload in fresh engines and keeps
    the fastest wall time: idle passes are microsecond-scale, so a single
    run is at the mercy of host scheduling noise.
    """
    from repro.core.manager import PIOMan
    from repro.core.task import LTask
    from repro.sim.rng import Rng
    from repro.threads.scheduler import Scheduler
    from repro.topology.builder import ccx_machine
    from repro.topology.cpuset import CpuSet
    from repro.threads.instructions import Compute

    duration = duration_us * 1_000
    gap = gap_us * 1_000
    best: Optional[tuple] = None
    for _ in range(max(1, best_of)):
        machine = ccx_machine()
        engine = Engine()
        sched = Scheduler(machine, engine, rng=Rng(seed), true_spin=True)
        kwargs = {} if leap is None else {"quiescence_leap": leap}
        pioman = PIOMan(machine, engine, sched, summary_fastpath=fastpath, **kwargs)
        ncores = machine.ncores

        def driver(ctx):
            i = 0
            while engine.now < duration:
                yield Compute(gap)
                task = LTask(
                    None,
                    cpuset=CpuSet.single(1 + (5 * i + 3) % (ncores - 1)),
                    name=f"idle{i}",
                )
                yield from pioman.submit(0, task)
                i += 1

        def run() -> None:
            sched.spawn(driver, 0, name="idle-driver")
            engine.run(until=duration)

        events, wall_ms, virtual_ns = _timed(engine, run)
        if pioman.stats.tasks_completed == 0:
            raise RuntimeError(f"{name}: no task ever completed")
        if best is None or wall_ms < best[1]:
            best = (events, wall_ms, virtual_ns, pioman)
    events, wall_ms, virtual_ns, pioman = best
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "submits": pioman.stats.submits,
            "executions": pioman.stats.executions,
            "schedule_passes": pioman.stats.schedule_passes,
            "summary_hits": pioman.hierarchy.summary_stats.summary_hits,
        },
    )


def _fault_net_scenario(
    name: str, msgs: int, size: int, drop_p: float, reorder_p: float, seed: int
) -> ScenarioResult:
    """Eager 2-node exchange under seeded packet loss + reordering.

    Every payload stays below the rendezvous threshold so it crosses the
    wire through ``Nic.post_send`` — the path the injector's drop/reorder
    hooks and the driver's timeout retransmit cover.  The fingerprint
    pins the fault counters themselves: a change in when (or whether) a
    frame is dropped is a semantic change, not noise.
    """
    from repro.cluster.cluster import Cluster
    from repro.faults.plan import FaultPlan, NetFaults
    from repro.mpi import MadMPI

    plan = FaultPlan(seed=seed, net=NetFaults(drop_p=drop_p, reorder_p=reorder_p))
    cluster = Cluster(2, seed=seed, faults=plan)
    mpi = MadMPI(cluster)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    done = [0, 0]

    def sender(ctx):
        for i in range(msgs):
            yield from c0.send(ctx.core_id, 1, i, size, payload=b"x")
            done[0] += 1

    def receiver(ctx):
        for i in range(msgs):
            yield from c1.recv(ctx.core_id, 0, i)
            done[1] += 1

    def run() -> None:
        cluster.nodes[0].scheduler.spawn(sender, 0, name="fault-send")
        cluster.nodes[1].scheduler.spawn(receiver, 0, name="fault-recv")
        cluster.run(until=msgs * 10_000_000 + 100_000_000)

    engine = cluster.engine
    events, wall_ms, virtual_ns = _timed(engine, run)
    if done != [msgs, msgs]:
        raise RuntimeError(f"{name}: stalled at {done}/{msgs}")
    fs = cluster.faults.stats
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "messages": sum(done),
            "drops": fs.drops,
            "retransmits": fs.retransmits,
            "reorders": fs.reorders,
        },
    )


def _fault_slowcore_scenario(
    name: str, reps: int, slow_cores: tuple, factor: float, seed: int
) -> ScenarioResult:
    """Global-queue round-trips with frequency-skewed straggler cores.

    Same shape as ``micro_global`` but some cores run ``factor``x slower
    (the injector's per-core skew in the scheduler's ``_advance`` cost
    accounting): NUMA capture keeps routing work to whichever core grabs
    the queue lock, so stragglers stretch the whole round-trip tail.
    """
    from repro.core.manager import PIOMan
    from repro.core.progress import piom_wait
    from repro.core.task import LTask
    from repro.faults.inject import FaultInjector
    from repro.faults.plan import FaultPlan, SlowCores
    from repro.sim.rng import Rng
    from repro.threads.scheduler import Scheduler
    from repro.topology.builder import MACHINES

    machine = MACHINES["borderline"]()
    engine = Engine()
    sched = Scheduler(machine, engine, rng=Rng(seed))
    pioman = PIOMan(machine, engine, sched)
    plan = FaultPlan(
        seed=seed, slow_cores=SlowCores(cores=tuple(slow_cores), factor=factor)
    )
    injector = FaultInjector(plan).install(scheduler=sched, pioman=pioman)
    cpuset = machine.all_cores()

    def submitter(ctx):
        for i in range(reps):
            task = LTask(None, cpuset=cpuset, name=f"slow{i}")
            yield from pioman.submit(0, task)
            yield from piom_wait(pioman, 0, task, mode="spin")

    def run() -> None:
        sched.spawn(submitter, 0, name="slow-submitter")
        engine.run(until=reps * 2_000_000)

    events, wall_ms, virtual_ns = _timed(engine, run)
    if pioman.stats.tasks_completed < reps:
        raise RuntimeError(f"{name}: stalled at {pioman.stats.tasks_completed}/{reps}")
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "submits": pioman.stats.submits,
            "executions": pioman.stats.executions,
            "slow_cores": injector.stats.slow_cores,
        },
    )


def _fault_storm_scenario(
    name: str, decoys: int, gap_us: int, seed: int,
    engine_core: Optional[str] = None, best_of: int = 1,
) -> ScenarioResult:
    """Cancellation storm + lock-holder preemption on a spin-polling host.

    ``engine_core`` pins the event core ("wheel"/"heap"); the
    core_wheel/core_heap matrix pair runs this same simulation on both
    cores, so the pair's ev/s ratio is the wheel's measured speedup on
    the workload that stresses the event core hardest (same-instant
    cancel bursts + retransmit-style timers).  ``best_of`` keeps the
    fastest of N identical runs to shave host-scheduling noise.

    A driver pins decoy tasks to its own core so they linger in the queue
    (spin-polling neighbours can't steal them), while storm ticks pick
    queued victims and fire ``PIOMan.cancel`` half an interval later —
    racing in-flight execution on purpose — and every queue-lock grant
    may eat an injected descheduling window.  The fingerprint pins the
    submitted = executed + cancelled accounting.
    """
    from repro.core.manager import PIOMan
    from repro.core.task import LTask
    from repro.faults.inject import FaultInjector
    from repro.faults.plan import CancelStorm, FaultPlan, LockPreemption
    from repro.sim.rng import Rng
    from repro.threads.instructions import Compute
    from repro.threads.scheduler import Scheduler
    from repro.topology.builder import ccx_machine
    from repro.topology.cpuset import CpuSet

    gap = gap_us * 1_000
    best: Optional[tuple] = None
    for _ in range(max(1, best_of)):
        machine = ccx_machine()
        engine = Engine(core=engine_core)
        sched = Scheduler(machine, engine, rng=Rng(seed), true_spin=True)
        pioman = PIOMan(machine, engine, sched)
        plan = FaultPlan(
            seed=seed,
            # the double-checked fallback keeps empty queues lock-free, so
            # grants are scarce — a high p is needed to see preemptions at all
            lock_preemption=LockPreemption(p=0.25, window_ns=30_000),
            cancel_storm=CancelStorm(
                count=max(2, decoys // 4), interval_ns=3 * gap, start_ns=gap
            ),
        )
        injector = FaultInjector(plan).install(scheduler=sched, pioman=pioman)

        def driver(ctx):
            for i in range(decoys):
                yield Compute(gap)
                task = LTask(None, cpuset=CpuSet.single(0), name=f"decoy{i}")
                yield from pioman.submit(0, task)

        def run() -> None:
            sched.spawn(driver, 0, name="storm-driver")
            engine.run(until=decoys * gap + 50_000_000)

        events, wall_ms, virtual_ns = _timed(engine, run)
        st = pioman.stats
        fs = injector.stats
        if st.executions + fs.cancel_hits < st.submits:
            raise RuntimeError(
                f"{name}: lost tasks ({st.submits} submitted, "
                f"{st.executions} ran, {fs.cancel_hits} cancelled)"
            )
        if best is None or wall_ms < best[1]:
            best = (events, wall_ms, virtual_ns, pioman.stats, injector.stats)
    events, wall_ms, virtual_ns, st, fs = best
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=virtual_ns,
        fingerprint={
            "fired": events,
            "virtual_ns": virtual_ns,
            "submits": st.submits,
            "executions": st.executions,
            "cancel_attempts": fs.cancel_attempts,
            "cancel_hits": fs.cancel_hits,
            "lock_preemptions": fs.lock_preemptions,
        },
    )


def _cluster_sharded_scenario(
    name: str, nnodes: int, reqs: int, seed: int
) -> ScenarioResult:
    """Compact sharded-cluster run: the conservative-lookahead shard
    protocol (:mod:`repro.cluster.shard`) on a generated workload.

    Runs the same scenario single-process (``nshards=1``) and split in
    two (``nshards=2``), both in serial mode — hostperf scenarios may
    themselves run inside daemonic ``--jobs`` workers, which cannot fork.
    The two fingerprints must be identical (the shard identity contract);
    the reported throughput is the two runs combined, so the perf gate
    covers the window-sync machinery itself, not just one shard count.
    """
    from repro.cluster.shard import run_sharded
    from repro.cluster.workload import WorkloadSpec, verify_completion

    spec = WorkloadSpec(
        nnodes=nnodes, requests_per_node=reqs, pattern="ring",
        arrival="closed", mean_gap_ns=20_000, think_ns=5_000,
        rdv_fraction=0.25, seed=seed,
    )
    kwargs = {"spec": spec, "machine": "smp1x2", "trace": False}
    builder = "repro.cluster.workload:build_workload_cluster"
    r1 = run_sharded(builder, kwargs, nshards=1, serial=True)
    r2 = run_sharded(builder, kwargs, nshards=2, serial=True)
    if r1.fingerprint() != r2.fingerprint():
        raise RuntimeError(
            f"{name}: sharded fingerprint diverged from single-process "
            f"({r2.fingerprint()[:16]}… vs {r1.fingerprint()[:16]}…)"
        )
    verify_completion(r1.snapshot, spec)
    events = r1.fired + r2.fired
    wall_ms = r1.wall_ms + r2.wall_ms
    return ScenarioResult(
        name=name,
        events=events,
        wall_ms=wall_ms,
        events_per_sec=events / (wall_ms / 1e3) if wall_ms else 0.0,
        virtual_ns=r1.virtual_ns,
        fingerprint={
            "fired": r1.fired,
            "virtual_ns": r1.virtual_ns,
            "windows_2shard": r2.windows,
            "run_fingerprint": r1.fingerprint(),
            "identical": True,
        },
    )


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------
def matrix_specs(*, quick: bool = False, seed: int = 7) -> list:
    """The fixed 15-scenario matrix as :class:`repro.par.JobSpec` jobs.

    Each scenario carries its own derived seed in the spec, so its
    simulated outcome (the fingerprint) is fixed before any worker runs —
    identical serially, in parallel, and under any completion order.
    """
    from repro.par import JobSpec

    scale = 1 if quick else 4
    mod = "repro.bench.hostperf"
    return [
        JobSpec(
            name="micro_local",
            target=f"{mod}:_microbench_scenario",
            kwargs=dict(name="micro_local", machine_name="borderline",
                        cpuset_kind="local", reps=150 * scale, seed=seed),
        ),
        JobSpec(
            name="micro_global",
            target=f"{mod}:_microbench_scenario",
            kwargs=dict(name="micro_global", machine_name="borderline",
                        cpuset_kind="global", reps=100 * scale, seed=seed + 1),
        ),
        JobSpec(
            name="latency_mt",
            target=f"{mod}:_latency_scenario",
            kwargs=dict(name="latency_mt", nthreads=8, iters=2 * scale,
                        seed=seed + 2),
        ),
        JobSpec(
            name="scal_numa32",
            target=f"{mod}:_scalability_scenario",
            kwargs=dict(name="scal_numa32", reps=30 * scale, seed=seed + 3),
        ),
        JobSpec(
            name="cluster_ring",
            target=f"{mod}:_cluster_ring_scenario",
            kwargs=dict(name="cluster_ring", nnodes=4, iters=4 * scale,
                        seed=seed + 4),
        ),
        # idle_spin / idle_spin_nosummary share a seed on purpose: they run
        # the SAME simulation with the occupancy-summary fast path on/off,
        # so their ev/s ratio is the fast path's measured speedup and their
        # fingerprints (minus summary_hits) must be identical.
        JobSpec(
            name="idle_spin",
            target=f"{mod}:_idle_spin_scenario",
            kwargs=dict(name="idle_spin", duration_us=75 * scale, gap_us=20,
                        seed=seed + 5, fastpath=True,
                        best_of=1 if quick else 5),
        ),
        JobSpec(
            name="idle_spin_nosummary",
            target=f"{mod}:_idle_spin_scenario",
            kwargs=dict(name="idle_spin_nosummary", duration_us=75 * scale,
                        gap_us=20, seed=seed + 5, fastpath=False,
                        best_of=1 if quick else 5),
        ),
        # leap_on / leap_off share a seed on purpose: the SAME simulation
        # with the quiescence leap (repro.core.leap) on and off, so the
        # pair's ev/s ratio is the leap's measured speedup — and their
        # fingerprints must be FULLY identical (the leap replays every
        # counter, summary_hits included; nothing is excluded from the
        # comparison the way idle_spin_nosummary excludes summary_hits).
        JobSpec(
            name="leap_on",
            target=f"{mod}:_idle_spin_scenario",
            kwargs=dict(name="leap_on", duration_us=150 * scale, gap_us=25,
                        seed=seed + 10, fastpath=True, leap=True,
                        best_of=1 if quick else 3),
        ),
        JobSpec(
            name="leap_off",
            target=f"{mod}:_idle_spin_scenario",
            kwargs=dict(name="leap_off", duration_us=150 * scale, gap_us=25,
                        seed=seed + 10, fastpath=True, leap=False,
                        best_of=1 if quick else 3),
        ),
        # hostile-world scenarios (repro.faults): same determinism contract
        # as the clean ones — the *fault* counters are in the fingerprint,
        # so a change in what gets dropped/preempted/cancelled is a diff
        JobSpec(
            name="fault_net",
            target=f"{mod}:_fault_net_scenario",
            kwargs=dict(name="fault_net", msgs=6 * scale, size=4096,
                        drop_p=0.12, reorder_p=0.2, seed=seed + 6),
        ),
        JobSpec(
            name="fault_slowcore",
            target=f"{mod}:_fault_slowcore_scenario",
            kwargs=dict(name="fault_slowcore", reps=40 * scale,
                        slow_cores=(1, 3), factor=3.0, seed=seed + 7),
        ),
        JobSpec(
            name="fault_storm",
            target=f"{mod}:_fault_storm_scenario",
            kwargs=dict(name="fault_storm", decoys=10 * scale, gap_us=20,
                        seed=seed + 8),
        ),
        # core_wheel / core_heap share a seed on purpose: the SAME
        # simulation on the two event cores (timer wheel vs binary heap),
        # so their ev/s ratio is the wheel's measured speedup on this
        # workload and their fingerprints must be bit-identical.
        JobSpec(
            name="core_wheel",
            target=f"{mod}:_fault_storm_scenario",
            kwargs=dict(name="core_wheel", decoys=5 * scale, gap_us=20,
                        seed=seed + 9, engine_core="wheel",
                        best_of=1 if quick else 3),
        ),
        JobSpec(
            name="core_heap",
            target=f"{mod}:_fault_storm_scenario",
            kwargs=dict(name="core_heap", decoys=5 * scale, gap_us=20,
                        seed=seed + 9, engine_core="heap",
                        best_of=1 if quick else 3),
        ),
        # the shard protocol itself: a generated workload run whole and
        # split in two (serial shards), fingerprints required identical —
        # the perf-regression gate covers the window-sync path on every PR
        JobSpec(
            name="cluster_shard2",
            target=f"{mod}:_cluster_sharded_scenario",
            kwargs=dict(name="cluster_shard2", nnodes=6, reqs=2 * scale,
                        seed=seed + 11),
        ),
    ]


def run_host_perf(
    *,
    quick: bool = False,
    seed: int = 7,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
) -> HostPerfReport:
    """Run the fixed workload matrix; ``quick`` shrinks it for CI smoke.

    ``jobs > 1`` fans the scenarios out over ``repro.par`` worker
    processes; the fingerprints are bit-identical to serial execution
    (the equivalence tests assert this), only ``elapsed_wall_ms`` drops.
    """
    from repro.par import run_jobs_strict

    t0 = time.perf_counter()
    results = run_jobs_strict(
        matrix_specs(quick=quick, seed=seed), jobs=jobs, timeout_s=timeout_s
    )
    report = HostPerfReport(scenarios=list(results), jobs=max(1, jobs))
    report.elapsed_wall_ms = (time.perf_counter() - t0) * 1e3
    return report.finish()


def format_host_perf(report: HostPerfReport) -> str:
    lines = [
        "Host performance (simulator events per wall-clock second)",
        f"{'scenario':<20}{'events':>10}{'wall ms':>10}{'events/s':>12}{'virtual ms':>12}",
    ]
    for s in report.scenarios:
        lines.append(
            f"{s.name:<20}{s.events:>10}{s.wall_ms:>10.1f}"
            f"{s.events_per_sec:>12.0f}{s.virtual_ns / 1e6:>12.2f}"
        )
    lines.append(
        f"{'AGGREGATE':<20}{report.total_events:>10}{report.total_wall_ms:>10.1f}"
        f"{report.aggregate_events_per_sec:>12.0f}"
    )
    try:
        on = report.scenario("idle_spin")
        off = report.scenario("idle_spin_nosummary")
        if off.events_per_sec:
            lines.append(
                "occupancy-summary fast path: "
                f"{on.events_per_sec / off.events_per_sec:.2f}x on idle_spin"
            )
    except KeyError:
        pass
    try:
        wheel = report.scenario("core_wheel")
        heap = report.scenario("core_heap")
        if heap.events_per_sec:
            lines.append(
                "event core (wheel vs heap): "
                f"{wheel.events_per_sec / heap.events_per_sec:.2f}x on core pair"
            )
    except KeyError:
        pass
    try:
        lon = report.scenario("leap_on")
        loff = report.scenario("leap_off")
        if loff.events_per_sec:
            lines.append(
                "quiescence leap: "
                f"{lon.events_per_sec / loff.events_per_sec:.2f}x on leap pair"
            )
    except KeyError:
        pass
    if report.jobs > 1:
        lines.append(
            f"(elapsed {report.elapsed_wall_ms:.1f} ms end-to-end over "
            f"{report.jobs} worker processes)"
        )
    return "\n".join(lines)


def report_to_jsonable(report: HostPerfReport, *, quick: bool, seed: int) -> dict:
    return {
        "meta": {
            "kind": "host_perf",
            "quick": quick,
            "seed": seed,
            "jobs": report.jobs,
            "python": sys.version.split()[0],
        },
        "aggregate": {
            "events": report.total_events,
            "wall_ms": round(report.total_wall_ms, 3),
            "elapsed_wall_ms": round(report.elapsed_wall_ms, 3),
            "events_per_sec": round(report.aggregate_events_per_sec, 1),
        },
        "scenarios": [
            {
                "name": s.name,
                "events": s.events,
                "wall_ms": round(s.wall_ms, 3),
                "events_per_sec": round(s.events_per_sec, 1),
                "virtual_ns": s.virtual_ns,
                "fingerprint": s.fingerprint,
            }
            for s in report.scenarios
        ],
    }


# ----------------------------------------------------------------------
# parallel fan-out: serial vs N-worker comparison (BENCH_parallel.json)
# ----------------------------------------------------------------------
@dataclass
class ParallelComparison:
    """Serial vs ``--jobs N`` for the same matrix: speedup + identity."""

    jobs: int
    serial: HostPerfReport
    parallel: HostPerfReport
    mismatches: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        if not self.parallel.elapsed_wall_ms:
            return 0.0
        return self.serial.elapsed_wall_ms / self.parallel.elapsed_wall_ms


def compare_fingerprints(a: HostPerfReport, b: HostPerfReport) -> list[str]:
    """Scenario-by-scenario fingerprint differences (empty = identical)."""
    mismatches: list[str] = []
    names_a = [s.name for s in a.scenarios]
    names_b = [s.name for s in b.scenarios]
    if names_a != names_b:
        return [f"scenario sets differ: {names_a} vs {names_b}"]
    for sa, sb in zip(a.scenarios, b.scenarios):
        if sa.fingerprint != sb.fingerprint:
            mismatches.append(
                f"{sa.name}: fingerprint diverged "
                f"({sa.fingerprint} vs {sb.fingerprint})"
            )
    return mismatches


def run_parallel_comparison(
    *,
    jobs: int = 4,
    quick: bool = False,
    seed: int = 7,
    timeout_s: Optional[float] = None,
) -> ParallelComparison:
    """Run the matrix serially, then with ``jobs`` workers, and compare.

    The virtual outcomes must match exactly — a fingerprint divergence
    means the fan-out changed the simulation, which would be a bug in the
    shared-nothing contract, never acceptable noise.  The speedup is
    whatever the host gives; only identity is gated on.
    """
    if jobs < 2:
        raise ValueError(f"parallel comparison needs jobs >= 2, got {jobs}")
    serial = run_host_perf(quick=quick, seed=seed, jobs=1)
    parallel = run_host_perf(quick=quick, seed=seed, jobs=jobs, timeout_s=timeout_s)
    return ParallelComparison(
        jobs=jobs,
        serial=serial,
        parallel=parallel,
        mismatches=compare_fingerprints(serial, parallel),
    )


def format_parallel_comparison(cmp: ParallelComparison) -> str:
    lines = [
        f"Parallel fan-out: serial vs --jobs {cmp.jobs} "
        "(same seeds, same virtual outcomes)",
        f"{'scenario':<20}{'serial ms':>11}{'par ms':>9}{'fingerprint':>13}",
    ]
    for ss, ps in zip(cmp.serial.scenarios, cmp.parallel.scenarios):
        same = ss.fingerprint == ps.fingerprint
        lines.append(
            f"{ss.name:<20}{ss.wall_ms:>11.1f}{ps.wall_ms:>9.1f}"
            f"{'identical' if same else 'DIVERGED':>13}"
        )
    lines.append(
        f"{'ELAPSED':<20}{cmp.serial.elapsed_wall_ms:>11.1f}"
        f"{cmp.parallel.elapsed_wall_ms:>9.1f}"
        f"{cmp.speedup:>11.2f}x"
    )
    return "\n".join(lines)


def parallel_report_to_jsonable(
    cmp: ParallelComparison, *, quick: bool, seed: int
) -> dict:
    return {
        "meta": {
            "kind": "host_perf_parallel",
            "quick": quick,
            "seed": seed,
            "jobs": cmp.jobs,
            # wall-time speedup is bounded by the cores the host grants;
            # identity of the virtual outcomes is what CI gates on
            "host_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "speedup": round(cmp.speedup, 3),
        "identical": cmp.identical,
        "mismatches": cmp.mismatches,
        "serial_elapsed_wall_ms": round(cmp.serial.elapsed_wall_ms, 3),
        "parallel_elapsed_wall_ms": round(cmp.parallel.elapsed_wall_ms, 3),
        "scenarios": [
            {
                "name": ss.name,
                "serial_wall_ms": round(ss.wall_ms, 3),
                "parallel_wall_ms": round(ps.wall_ms, 3),
                "fingerprint": ss.fingerprint,
                "fingerprint_identical": ss.fingerprint == ps.fingerprint,
            }
            for ss, ps in zip(cmp.serial.scenarios, cmp.parallel.scenarios)
        ],
    }


def check_regression(
    report: HostPerfReport, baseline_path: str, *, max_regression: float = 2.0
) -> list[str]:
    """Compare against a committed ``BENCH_host_perf.json``.

    Returns a list of failure strings (empty = pass).  A scenario fails
    when its events/sec dropped by more than ``max_regression``x against
    the committed number — generous on purpose, since CI machines vary;
    the committed file is the trajectory anchor, not a tight SLO.
    Scenarios with no usable baseline entry are announced and skipped
    rather than silently ignored, so a renamed scenario can't dodge the
    gate unnoticed.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    by_name = {s["name"]: s for s in baseline.get("scenarios", [])}
    failures: list[str] = []
    for s in report.scenarios:
        ref = by_name.get(s.name)
        if ref is None or not ref.get("events_per_sec"):
            print(f"{s.name}: no baseline entry, skipped")
            continue
        floor = ref["events_per_sec"] / max_regression
        if s.events_per_sec < floor:
            failures.append(
                f"{s.name}: {s.events_per_sec:.0f} ev/s < floor {floor:.0f} "
                f"(committed {ref['events_per_sec']:.0f}, "
                f"max regression {max_regression}x)"
            )
    agg_ref = baseline.get("aggregate", {}).get("events_per_sec")
    if agg_ref:
        floor = agg_ref / max_regression
        if report.aggregate_events_per_sec < floor:
            failures.append(
                f"aggregate: {report.aggregate_events_per_sec:.0f} ev/s < "
                f"floor {floor:.0f} (committed {agg_ref:.0f})"
            )
    return failures


def run_profiled(
    *, quick: bool = False, seed: int = 7, top: int = 25
) -> dict:
    """Run the matrix serially under cProfile, one profile per scenario.

    Returns a jsonable artifact: for each scenario, the ``top`` functions
    by tottime plus the scenario's (distorted — the profiler adds per-call
    overhead) throughput, and an **aggregate** section merging every
    scenario's stats into one matrix-wide ranking — the next optimisation
    target is readable from one artifact instead of eyeballing per-
    scenario lists against each other.  Meant for ``perf --profile``, so
    a regression flagged by the gate can be attributed to a function
    without rerunning anything by hand.
    """
    import cProfile
    import pstats

    from repro.par.jobs import resolve_target

    scenarios = []
    merged: dict = {}  # func key -> [ncalls, tottime, cumtime]
    for spec in matrix_specs(quick=quick, seed=seed):
        fn = resolve_target(spec.target)
        prof = cProfile.Profile()
        result = prof.runcall(fn, **spec.kwargs)
        stats = pstats.Stats(prof)
        for key, (cc, nc, tt, ct, _callers) in stats.stats.items():
            acc = merged.get(key)
            if acc is None:
                merged[key] = [nc, tt, ct]
            else:
                acc[0] += nc
                acc[1] += tt
                acc[2] += ct
        rows = sorted(
            stats.stats.items(), key=lambda kv: kv[1][2], reverse=True
        )[:top]
        scenarios.append({
            "name": spec.name,
            "events": result.events,
            "events_per_sec": round(result.events_per_sec, 1),
            "top": [
                {
                    "func": f"{fname}:{lineno}:{func}",
                    "ncalls": nc,
                    "tottime_ms": round(tt * 1e3, 3),
                    "cumtime_ms": round(ct * 1e3, 3),
                }
                for (fname, lineno, func), (cc, nc, tt, ct, _callers) in rows
            ],
        })
    agg_rows = sorted(merged.items(), key=lambda kv: kv[1][1], reverse=True)[:top]
    aggregate = {
        "events": sum(s["events"] for s in scenarios),
        "top": [
            {
                "func": f"{fname}:{lineno}:{func}",
                "ncalls": nc,
                "tottime_ms": round(tt * 1e3, 3),
                "cumtime_ms": round(ct * 1e3, 3),
            }
            for (fname, lineno, func), (nc, tt, ct) in agg_rows
        ],
    }
    return {
        "meta": {
            "kind": "host_perf_profile",
            "quick": quick,
            "seed": seed,
            "top": top,
            "profiled": True,
            "python": sys.version.split()[0],
        },
        "scenarios": scenarios,
        "aggregate_profile": aggregate,
    }


def format_profile(doc: dict, *, show: int = 5) -> str:
    lines = ["Host performance profile (cProfile, tottime per scenario)"]
    for s in doc["scenarios"]:
        lines.append(f"{s['name']}  ({s['events']} events)")
        for row in s["top"][:show]:
            lines.append(
                f"  {row['tottime_ms']:>9.2f} ms  {row['ncalls']:>8} calls  "
                f"{row['func']}"
            )
    agg = doc.get("aggregate_profile")
    if agg:
        lines.append(f"AGGREGATE (whole matrix, {agg['events']} events)")
        for row in agg["top"][: 2 * show]:
            lines.append(
                f"  {row['tottime_ms']:>9.2f} ms  {row['ncalls']:>8} calls  "
                f"{row['func']}"
            )
    return "\n".join(lines)


def _jobs_arg(text: str) -> int:
    """``--jobs`` values: a positive count, or 0/'auto' = every CPU."""
    from repro.par import resolve_jobs

    try:
        return resolve_jobs(int(text))
    except ValueError:
        return resolve_jobs(text)


def main(argv: Optional[list[str]] = None) -> int:
    """The ``perf`` subcommand body (called from :mod:`repro.bench.cli`)."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="repro-bench perf",
        description="Host-speed benchmark: events/sec over a fixed seeded "
        "workload matrix; writes BENCH_host_perf.json.",
    )
    ap.add_argument("--out", metavar="PATH", default="BENCH_host_perf.json",
                    help="where to write the JSON report (default ./BENCH_host_perf.json)")
    ap.add_argument("--quick", action="store_true",
                    help="reduced matrix for CI smoke runs")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                    help="run the scenario matrix over N worker processes "
                    "('auto' or 0 = every CPU; default 1 = serial; virtual "
                    "outcomes are identical either way)")
    ap.add_argument("--job-timeout", type=float, default=None, metavar="S",
                    help="per-scenario wall-clock limit in seconds when "
                    "using --jobs")
    ap.add_argument("--parallel-report", metavar="PATH", default=None,
                    help="run the matrix serially AND with --jobs workers, "
                    "write the speedup/identity comparison to PATH "
                    "(exits non-zero if the fingerprints diverge)")
    ap.add_argument("--baseline", metavar="PATH", default=None,
                    help="compare against a committed BENCH_host_perf.json "
                    "and exit non-zero on regression")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="events/sec slowdown factor that fails --baseline "
                    "comparison (default 2.0)")
    ap.add_argument("--profile", metavar="PATH", default=None,
                    help="run the matrix serially under cProfile and write "
                    "the top functions by tottime per scenario to PATH as "
                    "JSON; profiled throughput is distorted, so no "
                    "BENCH report is written in this mode")
    ap.add_argument("--profile-top", type=int, default=25, metavar="N",
                    help="functions kept per scenario in the --profile "
                    "artifact (default 25)")
    args = ap.parse_args(argv)
    if args.profile:
        doc = run_profiled(
            quick=args.quick, seed=args.seed, top=args.profile_top
        )
        print(format_profile(doc))
        with open(args.profile, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"\nwrote {args.profile}")
        return 0
    if args.parallel_report:
        jobs = args.jobs if args.jobs > 1 else 4
        cmp = run_parallel_comparison(
            jobs=jobs, quick=args.quick, seed=args.seed,
            timeout_s=args.job_timeout,
        )
        print(format_parallel_comparison(cmp))
        with open(args.parallel_report, "w") as fh:
            json.dump(
                parallel_report_to_jsonable(cmp, quick=args.quick, seed=args.seed),
                fh, indent=1,
            )
        print(f"\nwrote {args.parallel_report}")
        if not cmp.identical:
            for m in cmp.mismatches:
                print(f"PARALLEL DIVERGENCE: {m}", file=sys.stderr)
            return 1
        return 0
    report = run_host_perf(
        quick=args.quick, seed=args.seed, jobs=args.jobs,
        timeout_s=args.job_timeout,
    )
    print(format_host_perf(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report_to_jsonable(report, quick=args.quick, seed=args.seed),
                      fh, indent=1)
        print(f"\nwrote {args.out}")
    if args.baseline:
        failures = check_regression(
            report, args.baseline, max_regression=args.max_regression
        )
        if failures:
            for f in failures:
                print(f"PERF REGRESSION: {f}", file=sys.stderr)
            # Attribution instead of a bare ratio: diff this run against
            # the baseline so the gate failure names what moved.
            try:
                from repro.obs.diff import diff_docs, format_diff

                with open(args.baseline) as fh:
                    base_doc = json.load(fh)
                new_doc = report_to_jsonable(
                    report, quick=args.quick, seed=args.seed
                )
                print("\nregression blame (bench diff vs baseline):")
                print(format_diff(diff_docs(base_doc, new_doc)))
            except Exception as exc:  # blame is best-effort on a failing gate
                print(f"(blame report unavailable: {exc})", file=sys.stderr)
            return 1
        print(f"perf check ok vs {args.baseline} "
              f"(max regression {args.max_regression}x)")
    return 0
