"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.bench table1
    python -m repro.bench table2 --reps 300
    python -m repro.bench fig4 --threads 1,2,4,8,16,32,64,128
    python -m repro.bench fig5 --points 9
    python -m repro.bench fig6 fig7
    python -m repro.bench all --json results.json   # machine-readable dump
    python -m repro.bench all --jobs 4              # multi-process fan-out
    python -m repro.bench scalability bandwidth     # extensions
    python -m repro.bench ablations                 # design-choice matrix
    python -m repro.bench table1 --metrics-out m.json --trace-out t.json
    python -m repro.bench analyze --trace t.json    # offline trace analysis
    python -m repro.bench analyze --trace t.json --analysis-out a.json
    python -m repro.bench analyze --trace t.json --critical-path
    python -m repro.bench diff A.json B.json        # ranked blame report
    python -m repro.bench render --trace t.json --gantt-out g.svg
    python -m repro.bench render --trace t.json --term
    python -m repro.bench perf                      # host events/sec matrix
    python -m repro.bench perf --quick --baseline BENCH_host_perf.json
    python -m repro.bench perf --jobs 4 --parallel-report BENCH_parallel.json

(also installed as the ``repro-bench`` console script).

``--jobs N`` fans independent targets out over ``repro.par`` worker
processes; every simulation is seeded and shared-nothing, so the output
(tables, JSON, metrics, traces) is bit-identical to a serial run — only
the wall clock changes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.bench.targets import (
    ALL_TARGETS,
    INNER_PARALLEL_TARGETS,
    TargetOutput,
    to_jsonable,
)
from repro.par import JobFailure, JobSpec, run_jobs_strict

#: kept for backwards compatibility — predates the targets extraction
_to_jsonable = to_jsonable


def _ints(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _jobs_arg(text: str) -> int:
    """``--jobs`` values: a positive count, or 0/'auto' = every CPU."""
    from repro.par import resolve_jobs

    try:
        return resolve_jobs(int(text))
    except ValueError:
        return resolve_jobs(text)


def _analyze_main(argv: Sequence[str]) -> int:
    """The ``analyze`` subcommand: offline report over a --trace-out file."""
    from repro.obs.analyze import analyze_trace_file, format_analysis

    ap = argparse.ArgumentParser(
        prog="repro-bench analyze",
        description="Analyze a --trace-out JSON file: per-core utilization, "
        "submit→run latency percentiles per queue level, lock contention, "
        "slowest tasks.",
    )
    ap.add_argument("--trace", metavar="PATH", required=True,
                    help="Chrome-trace JSON written by --trace-out")
    ap.add_argument("--top", type=int, default=10,
                    help="how many slowest tasks to list (default 10)")
    ap.add_argument("--cores", type=int, default=None,
                    help="force the per-core section to cover N cores "
                    "(default: the count stamped in the trace, else the "
                    "cores observed)")
    ap.add_argument("--analysis-out", metavar="PATH", default=None,
                    help="also dump the analysis as JSON to PATH")
    ap.add_argument("--scenario", default=None,
                    help="scenario name for the meta header (default: the "
                    "name stamped in the trace, if any)")
    ap.add_argument("--critical-path", action="store_true",
                    help="walk the causal edges backward from the last "
                    "completion and print the makespan attribution")
    ap.add_argument("--critpath-out", metavar="PATH", default=None,
                    help="dump the critical path as JSON to PATH")
    args = ap.parse_args(argv)
    analysis = analyze_trace_file(
        args.trace, ncores=args.cores, top_n=args.top, scenario=args.scenario
    )
    print(format_analysis(analysis))
    if args.critical_path or args.critpath_out:
        from repro.obs.critpath import (
            extract_critical_path_file,
            format_critical_path,
        )

        cp = extract_critical_path_file(args.trace)
        print()
        print(format_critical_path(cp))
        if args.critpath_out:
            with open(args.critpath_out, "w") as fh:
                json.dump(cp.to_jsonable(), fh, indent=1)
            print(f"\nwrote {args.critpath_out}")
    if args.analysis_out:
        with open(args.analysis_out, "w") as fh:
            json.dump(analysis.to_jsonable(), fh, indent=1)
        print(f"\nwrote {args.analysis_out}")
    return 0


def _diff_main(argv: Sequence[str]) -> int:
    """The ``diff`` subcommand: ranked blame report between two documents."""
    from repro.obs.diff import diff_files, format_diff

    ap = argparse.ArgumentParser(
        prog="repro-bench diff",
        description="Compare two hostperf/analysis/metrics/trace JSON "
        "documents and print a ranked blame report (worst regression "
        "first, dominant subsystem named).",
    )
    ap.add_argument("a", metavar="A.json", help="baseline document")
    ap.add_argument("b", metavar="B.json", help="new document")
    ap.add_argument("--top", type=int, default=4,
                    help="counters shown per entry (default 4)")
    ap.add_argument("--json-out", metavar="PATH", default=None,
                    help="also dump the structured diff to PATH")
    args = ap.parse_args(argv)
    try:
        report = diff_files(args.a, args.b)
    except ValueError as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 1
    print(format_diff(report, top_items=args.top))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_jsonable(), fh, indent=1)
        print(f"\nwrote {args.json_out}")
    return 0


def _render_main(argv: Sequence[str]) -> int:
    """The ``render`` subcommand: Gantt/utilization charts over a trace."""
    from repro.obs.critpath import extract_critical_path
    from repro.obs.gantt import render_gantt_svg, render_gantt_term

    ap = argparse.ArgumentParser(
        prog="repro-bench render",
        description="Render a --trace-out JSON file as a Gantt chart: "
        "per-core lanes, task slices colored by state, critical path "
        "overlaid (SVG via --gantt-out, terminal via --term).",
    )
    ap.add_argument("--trace", metavar="PATH", required=True,
                    help="Chrome-trace JSON written by --trace-out")
    ap.add_argument("--gantt-out", metavar="PATH", default=None,
                    help="write an SVG Gantt chart to PATH")
    ap.add_argument("--term", action="store_true",
                    help="print a block-character chart to stdout "
                    "(default when no --gantt-out is given)")
    ap.add_argument("--width", type=int, default=1000,
                    help="SVG width in px (default 1000)")
    ap.add_argument("--term-width", type=int, default=72,
                    help="terminal chart columns (default 72)")
    ap.add_argument("--title", default="", help="SVG title line")
    args = ap.parse_args(argv)
    with open(args.trace) as fh:
        doc = json.load(fh)
    cp = extract_critical_path(doc)
    if args.gantt_out:
        svg = render_gantt_svg(
            doc, critical_path=cp, width=args.width, title=args.title
        )
        with open(args.gantt_out, "w") as fh:
            fh.write(svg)
        print(f"wrote {args.gantt_out}")
    if args.term or not args.gantt_out:
        print(render_gantt_term(doc, critical_path=cp, width=args.term_width))
    return 0


def _build_specs(
    targets: Sequence[str], args, observe: bool
) -> list[JobSpec]:
    """One spec per requested target, plus the dedicated observed run.

    Spec names are the target names (suffixed only when a target is
    requested twice); the instrumented run is the *first* table target,
    matching the old inline loop's attach-once rule.  When a single
    fan-out-capable target gets the whole ``--jobs`` budget, the budget
    moves inside it.
    """
    inner_jobs = (
        args.jobs
        if len(targets) == 1 and targets[0] in INNER_PARALLEL_TARGETS
        else 1
    )
    inst_index = next(
        (i for i, t in enumerate(targets) if t in ("table1", "table2")), None
    )
    specs: list[JobSpec] = []
    seen: dict[str, int] = {}
    for i, target in enumerate(targets):
        n = seen.get(target, 0)
        seen[target] = n + 1
        specs.append(
            JobSpec(
                name=target if n == 0 else f"{target}[{n}]",
                target="repro.bench.targets:run_target",
                kwargs={
                    "name": target,
                    "reps": args.reps,
                    "seed": args.seed,
                    "threads": list(args.threads),
                    "points": args.points,
                    "iters": args.iters,
                    "observe": observe and i == inst_index,
                    "jobs": inner_jobs,
                },
                timeout_s=args.job_timeout,
            )
        )
    if observe and inst_index is None:
        specs.append(
            JobSpec(
                name="_observed",
                target="repro.bench.targets:run_dedicated_observed",
                kwargs={"reps": args.reps, "seed": args.seed},
                timeout_s=args.job_timeout,
            )
        )
    return specs


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        return _analyze_main(list(argv[1:]))
    if argv and argv[0] == "diff":
        return _diff_main(list(argv[1:]))
    if argv and argv[0] == "render":
        return _render_main(list(argv[1:]))
    if argv and argv[0] == "perf":
        from repro.bench.hostperf import main as perf_main

        return perf_main(list(argv[1:]))
    if argv and argv[0] == "cluster-scale":
        from repro.bench.cluster_scale import main as scale_main

        return scale_main(list(argv[1:]))
    ap = argparse.ArgumentParser(
        prog="repro-bench", description="Regenerate the paper's tables and figures."
    )
    ap.add_argument(
        "targets",
        nargs="+",
        choices=ALL_TARGETS + ("all",),
        help="which artifacts to regenerate",
    )
    ap.add_argument("--reps", type=int, default=200, help="microbench repetitions")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument(
        "--threads", type=_ints, default=[1, 2, 4, 8, 16, 32, 64, 128],
        help="fig4 thread counts (comma separated)",
    )
    ap.add_argument("--points", type=int, default=9, help="overlap points per curve")
    ap.add_argument("--iters", type=int, default=4, help="fig4 iterations per thread")
    ap.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help="fan independent targets out over N worker processes "
        "('auto' or 0 = every CPU; default 1 = in-process serial; "
        "results are bit-identical either way)",
    )
    ap.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="per-target wall-clock limit in seconds when using --jobs",
    )
    ap.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump every regenerated series to PATH as JSON",
    )
    ap.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="dump a flat MetricsRegistry snapshot of an instrumented "
        "global-queue microbench run to PATH as JSON",
    )
    ap.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="dump the instrumented run's task timeline to PATH as "
        "Chrome-trace JSON (load in chrome://tracing or ui.perfetto.dev)",
    )
    args = ap.parse_args(argv)
    collected: dict[str, Any] = {}

    targets = list(args.targets)
    if "all" in targets:
        targets = list(ALL_TARGETS)

    # Observability instrumentation attaches to the first table target
    # regenerated (or to a dedicated small run when no table target was
    # requested); the artifacts are written at the end.
    observe = bool(args.metrics_out or args.trace_out)
    specs = _build_specs(targets, args, observe)
    try:
        outputs: list[TargetOutput] = run_jobs_strict(
            specs, jobs=args.jobs, timeout_s=args.job_timeout
        )
    except JobFailure as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1

    instrumented: Optional[TargetOutput] = None
    for out in outputs:
        if out.instrumented and instrumented is None:
            instrumented = out
        if out.target == "_observed":
            continue
        print(f"\n{out.header}")
        print(out.text)
        collected[out.target] = out.data

    if observe and instrumented is not None:
        if args.metrics_out:
            snap = instrumented.metrics
            with open(args.metrics_out, "w") as fh:
                json.dump(
                    {"meta": {"source": instrumented.instrumented}, "metrics": snap},
                    fh, indent=1,
                )
            print(f"\nwrote {args.metrics_out} ({len(snap)} counters, "
                  f"{instrumented.instrumented})")
        if args.trace_out:
            doc = instrumented.trace
            with open(args.trace_out, "w") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            print(f"wrote {args.trace_out} ({len(doc['traceEvents'])} trace "
                  f"events, {instrumented.instrumented})")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
