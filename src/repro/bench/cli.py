"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.bench table1
    python -m repro.bench table2 --reps 300
    python -m repro.bench fig4 --threads 1,2,4,8,16,32,64,128
    python -m repro.bench fig5 --points 9
    python -m repro.bench fig6 fig7
    python -m repro.bench all --json results.json   # machine-readable dump
    python -m repro.bench scalability bandwidth     # extensions
    python -m repro.bench table1 --metrics-out m.json --trace-out t.json
    python -m repro.bench analyze --trace t.json    # offline trace analysis
    python -m repro.bench analyze --trace t.json --analysis-out a.json
    python -m repro.bench perf                      # host events/sec matrix
    python -m repro.bench perf --quick --baseline BENCH_host_perf.json

(also installed as the ``repro-bench`` console script).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Optional, Sequence


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert bench result objects to plain JSON data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    return obj

from repro.bench.latency import run_fig4
from repro.bench.overlap import run_overlap_figure
from repro.bench.paper_targets import targets_for
from repro.bench.reporting import format_latency, format_microbench, format_overlap
from repro.bench.task_microbench import run_task_microbench
from repro.topology.builder import MACHINES

FIG_PLACEMENTS = {"fig5": "sender", "fig6": "receiver", "fig7": "both"}
ALL_TARGETS = (
    "table1", "table2", "fig4", "fig5", "fig6", "fig7",
    "scalability", "bandwidth",
)


def _ints(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _analyze_main(argv: Sequence[str]) -> int:
    """The ``analyze`` subcommand: offline report over a --trace-out file."""
    from repro.obs.analyze import analyze_trace_file, format_analysis

    ap = argparse.ArgumentParser(
        prog="repro-bench analyze",
        description="Analyze a --trace-out JSON file: per-core utilization, "
        "submit→run latency percentiles per queue level, lock contention, "
        "slowest tasks.",
    )
    ap.add_argument("--trace", metavar="PATH", required=True,
                    help="Chrome-trace JSON written by --trace-out")
    ap.add_argument("--top", type=int, default=10,
                    help="how many slowest tasks to list (default 10)")
    ap.add_argument("--cores", type=int, default=None,
                    help="force the per-core section to cover N cores "
                    "(default: the count stamped in the trace, else the "
                    "cores observed)")
    ap.add_argument("--analysis-out", metavar="PATH", default=None,
                    help="also dump the analysis as JSON to PATH")
    args = ap.parse_args(argv)
    analysis = analyze_trace_file(args.trace, ncores=args.cores, top_n=args.top)
    print(format_analysis(analysis))
    if args.analysis_out:
        with open(args.analysis_out, "w") as fh:
            json.dump(analysis.to_jsonable(), fh, indent=1)
        print(f"\nwrote {args.analysis_out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        return _analyze_main(list(argv[1:]))
    if argv and argv[0] == "perf":
        from repro.bench.hostperf import main as perf_main

        return perf_main(list(argv[1:]))
    ap = argparse.ArgumentParser(
        prog="repro-bench", description="Regenerate the paper's tables and figures."
    )
    ap.add_argument(
        "targets",
        nargs="+",
        choices=ALL_TARGETS + ("all",),
        help="which artifacts to regenerate",
    )
    ap.add_argument("--reps", type=int, default=200, help="microbench repetitions")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument(
        "--threads", type=_ints, default=[1, 2, 4, 8, 16, 32, 64, 128],
        help="fig4 thread counts (comma separated)",
    )
    ap.add_argument("--points", type=int, default=9, help="overlap points per curve")
    ap.add_argument("--iters", type=int, default=4, help="fig4 iterations per thread")
    ap.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump every regenerated series to PATH as JSON",
    )
    ap.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="dump a flat MetricsRegistry snapshot of an instrumented "
        "global-queue microbench run to PATH as JSON",
    )
    ap.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="dump the instrumented run's task timeline to PATH as "
        "Chrome-trace JSON (load in chrome://tracing or ui.perfetto.dev)",
    )
    args = ap.parse_args(argv)
    collected: dict[str, Any] = {}

    targets = list(args.targets)
    if "all" in targets:
        targets = list(ALL_TARGETS)

    # Observability instrumentation: attach a registry + tracer to the
    # first microbench table regenerated (or to a dedicated small run when
    # no table target was requested) and write the artifacts at the end.
    observe = args.metrics_out or args.trace_out
    registry = tracer = None
    instrumented: Optional[str] = None
    inst_machine = None
    if observe:
        from repro.obs import MetricsRegistry
        from repro.sim.trace import Tracer

        registry = MetricsRegistry()
        tracer = Tracer(enabled=True)

    for target in targets:
        if target in ("table1", "table2"):
            machine_name = "borderline" if target == "table1" else "kwak"
            machine = MACHINES[machine_name]()
            attach = observe and instrumented is None
            res = run_task_microbench(
                machine, reps=args.reps, seed=args.seed,
                registry=registry if attach else None,
                tracer=tracer if attach else None,
            )
            if attach:
                instrumented = f"{target} global-queue row ({machine_name})"
                inst_machine = machine
            print(f"\n=== {target.upper()} ({machine_name}) ===")
            print(format_microbench(res, paper=targets_for(machine_name)))
            collected[target] = _to_jsonable(res)
        elif target == "fig4":
            print("\n=== FIG 4 (multi-threaded latency) ===")
            series = run_fig4(
                thread_counts=args.threads,
                iters_per_thread=args.iters,
                seed=args.seed,
            )
            print(format_latency(series))
            collected[target] = _to_jsonable(series)
        elif target == "scalability":
            from repro.bench.scalability import run_scalability

            print("\n=== SCALABILITY (extension: global queue vs core count) ===")
            study = run_scalability(reps=max(60, args.reps // 2), seed=args.seed)
            print(study.format())
            collected[target] = _to_jsonable(study)
        elif target == "bandwidth":
            from repro.bench.bandwidth import format_bandwidth, run_bandwidth

            print("\n=== BANDWIDTH (extension: OSU-style streaming) ===")
            bw = run_bandwidth(seed=args.seed)
            print(format_bandwidth(bw))
            collected[target] = _to_jsonable(bw)
        elif target in FIG_PLACEMENTS:
            placement = FIG_PLACEMENTS[target]
            print(f"\n=== {target.upper()} (overlap, computation on {placement}) ===")
            series = run_overlap_figure(
                placement, npoints=args.points, seed=args.seed
            )
            print(format_overlap(series))
            collected[target] = _to_jsonable(series)
    if observe:
        if instrumented is None:
            # No table target ran: do one small dedicated instrumented run.
            from repro.bench.task_microbench import measure_queue

            machine = MACHINES["borderline"]()
            measure_queue(
                machine,
                machine.all_cores(),
                label="global",
                reps=min(args.reps, 50),
                seed=args.seed,
                registry=registry,
                tracer=tracer,
            )
            instrumented = "dedicated global-queue run (borderline)"
            inst_machine = machine
        if args.metrics_out:
            snap = registry.snapshot()
            with open(args.metrics_out, "w") as fh:
                json.dump({"meta": {"source": instrumented}, "metrics": snap}, fh, indent=1)
            print(f"\nwrote {args.metrics_out} ({len(snap)} counters, {instrumented})")
        if args.trace_out:
            from repro.obs import write_chrome_trace

            meta = {"source": instrumented}
            if inst_machine is not None:
                meta["machine"] = inst_machine.spec.name
                meta["ncores"] = inst_machine.ncores
            nevents = write_chrome_trace(args.trace_out, tracer, meta=meta)
            print(f"wrote {args.trace_out} ({nevents} trace events, {instrumented})")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
