"""Task-scheduling microbenchmark — paper Tables I and II.

"We measure the time spent to create an empty task (with no computation),
to schedule it, and to notice its completion ... In all cases, the task is
submitted by core #0."  (paper §V-A)

One row per queue in the hierarchy:

* per-core queues — one measurement per core ``c`` with CPU set ``{c}``;
* per-chip / per-NUMA queues — one measurement per interior node, CPU set
  = the node's core span;
* global queue — CPU set = all cores.

The submitting thread on core #0 runs a submit → wait loop.  For the
``{core #0}`` row it waits in *active* mode (it is the only core allowed
to execute the task, and the paper notes core #0 "both creates tasks and
executes them").  For wider sets it waits spinning on the completion word
while the other cores' pollers race for the task — the paper's observed
regime (execution distributed over the allowed cores, unbalanced on the
global queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.manager import PIOMan
from repro.core.progress import piom_wait
from repro.core.queues import TaskQueue
from repro.core.task import LTask
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.scheduler import Scheduler
from repro.topology.cpuset import CpuSet
from repro.topology.machine import Level, Machine


@dataclass
class RowResult:
    """One measured queue: mean round-trip and execution distribution."""

    label: str
    cpuset: list[int]
    mean_ns: float
    min_ns: int
    max_ns: int
    #: fraction of tasks executed by each core id
    shares: dict[int, float] = field(default_factory=dict)


@dataclass
class MicrobenchResult:
    """All rows for one machine (one paper table)."""

    machine: str
    ncores: int
    per_core: list[RowResult] = field(default_factory=list)
    per_level: dict[str, list[RowResult]] = field(default_factory=dict)
    global_row: Optional[RowResult] = None

    def reference_ns(self) -> float:
        """The paper's reference: local scheduling on core #0."""
        return self.per_core[0].mean_ns

    def row_by_label(self, label: str) -> RowResult:
        for row in self.all_rows():
            if row.label == label:
                return row
        raise KeyError(label)

    def all_rows(self) -> list[RowResult]:
        rows = list(self.per_core)
        for lst in self.per_level.values():
            rows.extend(lst)
        if self.global_row:
            rows.append(self.global_row)
        return rows


def measure_queue(
    machine: Machine,
    cpuset: CpuSet,
    *,
    label: str = "",
    reps: int = 200,
    warmup_frac: float = 0.2,
    seed: int = 1,
    queue_factory: Callable = TaskQueue,
    hierarchical: bool = True,
    wait_mode: str = "auto",
    registry=None,
    tracer=None,
) -> RowResult:
    """Measure submit→complete round-trips for one target CPU set.

    A fresh simulation is built per measurement so rows are independent
    (matching the paper's per-queue benchmarking).  Pass a
    :class:`repro.obs.MetricsRegistry` and/or an enabled
    :class:`repro.sim.Tracer` to capture this measurement's scheduler
    internals (counters, task timeline) alongside the timing row.
    """
    from repro.sim.trace import NULL_TRACER

    if tracer is None:
        tracer = NULL_TRACER
    engine = Engine()
    sched = Scheduler(machine, engine, rng=Rng(seed), tracer=tracer, registry=registry)
    pioman = PIOMan(
        machine, engine, sched, queue_factory=queue_factory,
        hierarchical=hierarchical, tracer=tracer, registry=registry,
    )
    if wait_mode == "auto":
        wait_mode = "active" if cpuset == CpuSet.single(0) else "spin"
    samples: list[int] = []

    def submitter(ctx):
        for i in range(reps):
            t0 = ctx.now
            task = LTask(None, cpuset=cpuset, name=f"bench{i}")
            yield from pioman.submit(0, task)
            yield from piom_wait(pioman, 0, task, mode=wait_mode)
            samples.append(ctx.now - t0)

    sched.spawn(submitter, 0, name="bench-submitter")
    # Generous bound: no sane round-trip exceeds 1 ms; a hit means a task
    # was stranded (a model bug), so fail loudly rather than hang.
    engine.run(until=reps * 1_000_000)
    if len(samples) < reps:
        raise RuntimeError(
            f"microbench stalled: {len(samples)}/{reps} round-trips for "
            f"cpuset {list(cpuset)} on {machine.spec.name}"
        )
    cut = int(len(samples) * warmup_frac)
    steady = samples[cut:] or samples
    queue = pioman.hierarchy.queue_for_cpuset(cpuset)
    total_deq = sum(queue.stats.dequeued_by.values()) or 1
    shares = {
        c: n / total_deq for c, n in sorted(queue.stats.dequeued_by.items())
    }
    return RowResult(
        label=label or f"cpuset{list(cpuset)}",
        cpuset=list(cpuset),
        mean_ns=sum(steady) / len(steady),
        min_ns=min(steady),
        max_ns=max(steady),
        shares=shares,
    )


def run_task_microbench_named(machine: str, **kwargs) -> "MicrobenchResult":
    """:func:`run_task_microbench` addressed by machine *name* — the
    picklable form ``repro.par`` job specs use (machine objects stay on
    the worker side; only the name crosses the process boundary)."""
    from repro.topology.builder import MACHINES

    return run_task_microbench(MACHINES[machine](), **kwargs)


def run_task_microbench(
    machine: Machine,
    *,
    reps: int = 200,
    seed: int = 1,
    queue_factory: Callable = TaskQueue,
    hierarchical: bool = True,
    registry=None,
    tracer=None,
) -> MicrobenchResult:
    """Full Table I/II sweep: every queue of the hierarchy.

    ``registry``/``tracer`` instrument the **global-queue** measurement
    only (each row is a fresh simulation; instrumenting them all would
    re-register the same queue paths).  The global row exercises every
    core and every queue level, so its snapshot carries the per-queue
    ``lost_races``, per-lock ``contention_ratio`` and per-core execution
    shares the paper's contended tables are about.
    """
    res = MicrobenchResult(machine=machine.spec.name, ncores=machine.ncores)
    for c in range(machine.ncores):
        res.per_core.append(
            measure_queue(
                machine,
                CpuSet.single(c),
                label=f"core#{c}",
                reps=reps,
                seed=seed + c,
                queue_factory=queue_factory,
                hierarchical=hierarchical,
            )
        )
    # Interior levels: one row per distinct interior queue, using the same
    # collapse rule the hierarchy applies (duplicate-span levels merge).
    from repro.core.hierarchy import QueueHierarchy

    ref = QueueHierarchy(machine, Engine(), hierarchical=hierarchical)
    for queue in ref.queues():
        node = queue.node
        if node.level == Level.CORE or node.cpuset == machine.root.cpuset:
            continue
        if len(node.cpuset) <= 1:
            continue
        level_name = node.level.name.lower()
        res.per_level.setdefault(level_name, []).append(
            measure_queue(
                machine,
                node.cpuset,
                label=f"{level_name}#{node.index}",
                reps=reps,
                seed=seed + 100 + node.index,
                queue_factory=queue_factory,
                hierarchical=hierarchical,
            )
        )
    res.global_row = measure_queue(
        machine,
        machine.all_cores(),
        label="global",
        reps=reps,
        seed=seed + 999,
        queue_factory=queue_factory,
        hierarchical=hierarchical,
        registry=registry,
        tracer=tracer,
    )
    return res
