"""Formatting helpers: print paper-shaped tables and series.

Every benchmark result type in :mod:`repro.bench` has a renderer here so
that the pytest benchmarks, the CLI and EXPERIMENTS.md all show the same
rows the paper reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.latency import LatencySeries
from repro.bench.overlap import OverlapSeries
from repro.bench.task_microbench import MicrobenchResult


def format_microbench(res: MicrobenchResult, paper: Optional[dict] = None) -> str:
    """Render a Table I/II-style block (optionally with paper targets)."""
    lines = [f"Task-scheduling microbenchmark on {res.machine} ({res.ncores} cores)"]
    header = f"{'queue':<12}{'mean ns':>10}{'min':>8}{'max':>9}"
    if paper:
        header += f"{'paper ns':>10}{'ratio':>7}"
    lines.append(header)
    for row in res.all_rows():
        line = f"{row.label:<12}{row.mean_ns:>10.0f}{row.min_ns:>8}{row.max_ns:>9}"
        if paper:
            # `t` may legitimately be 0 (a paper target of "negligible"):
            # only a *missing* target renders as "-", and a 0 target shows
            # no ratio (it would divide by zero).
            t = paper.get(row.label)
            if t is None:
                line += f"{'-':>10}{'-':>7}"
            elif t == 0:
                line += f"{t:>10}{'-':>7}"
            else:
                line += f"{t:>10}{row.mean_ns / t:>7.2f}"
        lines.append(line)
    if res.global_row and res.global_row.shares:
        shares = ", ".join(
            f"#{c}:{s:.0%}" for c, s in sorted(res.global_row.shares.items())
        )
        lines.append(f"global-queue execution shares: {shares}")
    return "\n".join(lines)


def format_latency(series: Sequence[LatencySeries], tails: bool = False) -> str:
    """Render the Fig. 4 table: one row per thread count.

    With ``tails`` each implementation also shows its p99, exposing the
    latency *distribution* the mean hides (the baseline's tail blows up
    first as threads multiply).
    """
    if not series:
        return "(no series)"
    # Union of thread counts across series: implementations measured over
    # ragged grids (e.g. a baseline that stops scaling early) render "-"
    # instead of crashing on the first count they lack.
    counts = sorted({p.threads for s in series for p in s.points})
    lines = ["Multi-threaded latency (one-way, us)"]
    header = f"{'threads':>8}"
    for s in series:
        header += f"{s.impl:>12}"
        if tails:
            header += f"{s.impl + ' p99':>14}"
    lines.append(header)
    for n in counts:
        row = f"{n:>8}"
        for s in series:
            point = next((p for p in s.points if p.threads == n), None)
            if point is None:
                row += f"{'-':>12}"
                if tails:
                    row += f"{'-':>14}"
                continue
            row += f"{point.mean_one_way_ns / 1000:>12.2f}"
            if tails:
                row += f"{point.p99_ns / 1000:>14.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_overlap(series: Sequence[OverlapSeries]) -> str:
    """Render Figs. 5/6/7: one block per message size."""
    if not series:
        return "(no series)"
    lines: list[str] = []
    sizes = sorted({s.size_bytes for s in series})
    placement = series[0].placement
    for size in sizes:
        group = [s for s in series if s.size_bytes == size]
        label = f"{size // 1024} KB" if size < 1024 * 1024 else f"{size // (1024 * 1024)} MB"
        lines.append(f"Overlap ratio — computation on {placement}, {label}")
        xs = [p.compute_ns for p in group[0].points]
        header = f"{'comp us':>9}" + "".join(f"{s.impl:>10}" for s in group)
        lines.append(header)
        for x in xs:
            row = f"{x / 1000:>9.0f}"
            for s in group:
                row += f"{s.ratio_at(x):>10.2f}"
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: float = 0.0, hi: float = 1.0) -> str:
    """Tiny unicode sparkline, used by the examples for quick visuals."""
    blocks = "▁▂▃▄▅▆▇█"
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        idx = int((min(max(v, lo), hi) - lo) / span * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)
