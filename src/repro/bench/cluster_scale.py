"""Cluster-scale sharding bench (``python -m repro.bench cluster-scale``).

Runs one :class:`~repro.cluster.workload.WorkloadSpec` scenario across a
curve of shard counts through :func:`~repro.cluster.shard.run_sharded`
and reports, per shard count:

* **identity** — the run's fingerprint (merged metric snapshot + final
  virtual time + events fired) must equal the single-process reference's
  (``nshards=1``).  A mismatch is an exit-code failure, never a warning:
  the shard protocol's whole contract is that partitioning is invisible.
* **throughput** — aggregate simulator events per wall-clock second, the
  number sharding exists to scale.  Speedup is bounded by the cores the
  host actually grants, so the committed ``BENCH_cluster_scale.json``
  stamps ``host_cpus`` next to the curve (a 1-CPU container timeshares
  forked shards and honestly reports ~1x).
* **peak RSS per shard** — partitioning the world also partitions its
  memory; the per-shard high-water mark is what lets N shards of a
  100+-node world fit where one process would not.

The scenario completes or the bench fails: the merged snapshot must show
every generated request issued *and* served
(:func:`~repro.cluster.workload.verify_completion`) — a stalled run
cannot pass by being fast.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict
from typing import Optional, Sequence

from repro.cluster.shard import ShardRunResult, run_sharded
from repro.cluster.workload import WorkloadSpec, verify_completion

#: the builder every curve point runs (module-level, so forked shard
#: workers can resolve it by name)
BUILDER = "repro.cluster.workload:build_workload_cluster"


def default_spec(*, nnodes: int = 120, seed: int = 23) -> WorkloadSpec:
    """The committed large scenario: 100+ nodes of bursty open-loop
    traffic with a hotspot and periodic collectives — every generator
    subsystem exercised at once."""
    return WorkloadSpec(
        nnodes=nnodes,
        requests_per_node=8,
        pattern="hotspot",
        arrival="open",
        mean_gap_ns=150_000,
        size_bytes=1024,
        rdv_fraction=0.1,
        burst_len=4,
        diurnal_period=8,
        collective_every=4,
        window=4,
        seed=seed,
    )


def run_cluster_scale(
    spec: WorkloadSpec,
    *,
    shard_counts: Sequence[int] = (1, 2, 4),
    serial: bool = False,
    machine: str = "smp1x2",
    timeout_s: Optional[float] = 1800.0,
) -> dict:
    """Run the scenario at every shard count; return the jsonable report.

    Raises :class:`RuntimeError` on a fingerprint mismatch against the
    ``nshards=1`` reference or an incomplete workload — identity and
    completion are correctness, not metrics.
    """
    counts = sorted(set(int(k) for k in shard_counts))
    if not counts or counts[0] < 1:
        raise ValueError(f"bad shard counts {shard_counts}")
    kwargs = {"spec": spec, "machine": machine, "trace": False}
    points: list[dict] = []
    results: dict[int, ShardRunResult] = {}
    for k in counts:
        result = run_sharded(
            BUILDER, kwargs, nshards=k, serial=serial, timeout_s=timeout_s
        )
        verify_completion(result.snapshot, spec)
        results[k] = result
        points.append(
            {
                "nshards": k,
                "serial": result.serial,
                "fingerprint": result.fingerprint(),
                "fired": result.fired,
                "windows": result.windows,
                "virtual_ns": result.virtual_ns,
                "wall_ms": round(result.wall_ms, 3),
                "events_per_sec": round(result.events_per_sec, 1),
                "lookahead_ns": result.lookahead_ns,
                "maxrss_kb_per_shard": result.maxrss_kb,
                "shard_fired": result.shard_fired,
            }
        )
    reference = results[counts[0]] if counts[0] == 1 else None
    mismatches: list[str] = []
    if reference is not None:
        ref_fp = reference.fingerprint()
        for k in counts[1:]:
            if results[k].fingerprint() != ref_fp:
                mismatches.append(
                    f"nshards={k}: fingerprint {results[k].fingerprint()[:16]}… "
                    f"!= single-process {ref_fp[:16]}…"
                )
    base_eps = points[0]["events_per_sec"]
    for point in points:
        point["speedup_vs_first"] = (
            round(point["events_per_sec"] / base_eps, 3) if base_eps else 0.0
        )
    report = {
        "meta": {
            "kind": "cluster_scale",
            "builder": BUILDER,
            "machine": machine,
            "serial": serial,
            "host_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "spec": asdict(spec),
        "total_requests": spec.total_requests(),
        "identical": not mismatches,
        "mismatches": mismatches,
        "points": points,
    }
    if mismatches:
        raise RuntimeError(
            "sharded fingerprints diverged from the single-process "
            "reference:\n  " + "\n  ".join(mismatches)
        )
    return report


def format_cluster_scale(report: dict) -> str:
    spec = report["spec"]
    lines = [
        f"Cluster scale: {spec['nnodes']} nodes, "
        f"{report['total_requests']} requests "
        f"({spec['pattern']}/{spec['arrival']}, seed {spec['seed']}), "
        f"host_cpus={report['meta']['host_cpus']}",
        f"{'shards':>7}{'fired':>12}{'windows':>9}{'wall ms':>10}"
        f"{'events/s':>11}{'speedup':>9}{'rss/shard MB':>14}  fingerprint",
    ]
    for p in report["points"]:
        rss = max(p["maxrss_kb_per_shard"]) / 1024 if p["maxrss_kb_per_shard"] else 0
        lines.append(
            f"{p['nshards']:>7}{p['fired']:>12}{p['windows']:>9}"
            f"{p['wall_ms']:>10.1f}{p['events_per_sec']:>11.0f}"
            f"{p['speedup_vs_first']:>8.2f}x{rss:>13.1f}  "
            f"{p['fingerprint'][:16]}…"
        )
    lines.append(
        "identity: "
        + ("all shard counts bit-identical" if report["identical"] else "DIVERGED")
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """The ``cluster-scale`` subcommand (called from :mod:`repro.bench.cli`)."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="repro-bench cluster-scale",
        description="Sharded cluster scaling curve: run one generated "
        "workload at several shard counts, gate on fingerprint identity, "
        "write BENCH_cluster_scale.json.",
    )
    ap.add_argument("--out", metavar="PATH", default="BENCH_cluster_scale.json",
                    help="where to write the JSON report "
                    "(default ./BENCH_cluster_scale.json; '-' skips writing)")
    ap.add_argument("--nodes", type=int, default=120,
                    help="simulated node count (default 120)")
    ap.add_argument("--requests", type=int, default=None, metavar="N",
                    help="requests per node (default: the spec's 8)")
    ap.add_argument("--shards", default="1,2,4",
                    help="comma-separated shard counts (default 1,2,4; "
                    "1 is the identity reference and is always implied)")
    ap.add_argument("--seed", type=int, default=23)
    ap.add_argument("--serial", action="store_true",
                    help="keep every shard in-process (identity check "
                    "without forking; no speedup by construction)")
    ap.add_argument("--machine", default="smp1x2",
                    help="per-node machine (default smp1x2)")
    ap.add_argument("--timeout", type=float, default=1800.0, metavar="S",
                    help="per-window reply timeout per shard (default 1800)")
    args = ap.parse_args(argv)
    counts = sorted({1} | {int(x) for x in args.shards.split(",") if x})
    spec = default_spec(nnodes=args.nodes, seed=args.seed)
    if args.requests is not None:
        from dataclasses import replace

        spec = replace(spec, requests_per_node=args.requests)
    try:
        report = run_cluster_scale(
            spec,
            shard_counts=counts,
            serial=args.serial,
            machine=args.machine,
            timeout_s=args.timeout,
        )
    except RuntimeError as exc:
        print(f"cluster-scale FAILED: {exc}", file=sys.stderr)
        return 1
    print(format_cluster_scale(report))
    if args.out and args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1)
        print(f"\nwrote {args.out}")
    return 0
