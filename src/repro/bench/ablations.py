"""Ablation workloads for the design choices DESIGN.md calls out.

* A1 — hierarchical queues vs one flat global list (§III motivation);
* A2 — spinlocks vs blocking mutexes on the queues (§IV-A);
* A3 — Algorithm 2's double-checked locking vs always-lock;
* A4 — lock-free (CAS) queues, the paper's future work (§VI);
* A5 — fixed-period idle re-polling vs :class:`repro.core.variants.
  IdleBackoff` (exponential stretch after consecutive empty passes);
* A6 — a clean run vs the same run under injected faults
  (:mod:`repro.faults`): packet loss/reorder plus lock-holder
  preemption, measuring what the retransmit path and the scheduler's
  robustness machinery cost in makespan.

The shared workload is an *affinity burst*: core #0 submits one task per
remote core back-to-back, then waits for all of them — the pattern a
communication library generates when it fans polling/submission work out
across the machine.  The hierarchy executes the burst through independent
per-core queues; the degraded variants funnel everything through shared
structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.manager import PIOMan
from repro.core.progress import piom_wait
from repro.core.queues import TaskQueue
from repro.core.task import LTask
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sync.stats import LockStats
from repro.threads.scheduler import Scheduler
from repro.topology.cpuset import CpuSet
from repro.topology.machine import Machine


@dataclass
class BurstResult:
    """Mean virtual ns per burst plus queue-layer statistics."""

    label: str
    mean_burst_ns: float
    lock_sections: int
    lock_contended: int
    executions_by_core: dict[int, int]


def run_affinity_burst(
    machine: Machine,
    *,
    hierarchical: bool = True,
    queue_factory: Callable = TaskQueue,
    bursts: int = 60,
    seed: int = 5,
    label: str = "",
) -> BurstResult:
    """Submit one task per non-submitting core, wait for all; repeat."""
    engine = Engine()
    sched = Scheduler(machine, engine, rng=Rng(seed))
    pioman = PIOMan(
        machine, engine, sched, hierarchical=hierarchical, queue_factory=queue_factory
    )
    times: list[int] = []

    def submitter(ctx):
        for burst in range(bursts):
            t0 = ctx.now
            tasks = []
            for c in range(1, machine.ncores):
                task = LTask(None, cpuset=CpuSet.single(c), name=f"b{burst}c{c}")
                yield from pioman.submit(0, task)
                tasks.append(task)
            for task in tasks:
                yield from piom_wait(pioman, 0, task, mode="spin")
            times.append(ctx.now - t0)

    sched.spawn(submitter, 0, name="burst")
    engine.run(until=bursts * machine.ncores * 1_000_000)
    if len(times) < bursts:
        raise RuntimeError(f"affinity burst stalled after {len(times)}/{bursts}")
    steady = times[len(times) // 5 :]
    agg = LockStats()
    for q in pioman.hierarchy.queues():
        agg.acquires += q.lock.stats.acquires
        agg.contended += q.lock.stats.contended
        agg.handoffs += q.lock.stats.handoffs
    return BurstResult(
        label=label or ("hierarchical" if hierarchical else "flat"),
        mean_burst_ns=sum(steady) / len(steady),
        lock_sections=agg.acquires,
        lock_contended=agg.contended,
        executions_by_core=dict(pioman.stats.executions_by_core),
    )


@dataclass
class BackoffResult:
    """One A5 leg: idle-pass volume vs task wakeup latency."""

    label: str
    idle_passes: int
    executions: int
    mean_wakeup_ns: float
    max_wakeup_ns: int


def backoff_leg(
    *,
    machine: str = "kwak",
    backoff: bool = False,
    factor: int = 2,
    free_passes: int = 2,
    max_ns: int = 64_000,
    ntasks: int = 40,
    gap_us: int = 30,
    seed: int = 11,
    label: str = "",
) -> BackoffResult:
    """One idle-backoff leg: sparse submissions into a spin-polling machine.

    Core #0 submits one single-core task every ``gap_us`` while every
    other core spin-polls; between submissions each pass comes up empty.
    The leg reports how many idle passes the run burned and what the
    submit→complete wakeup latency looked like — the two sides of the
    backoff trade.  (Doorbells cancel a stretched sleep and reset the
    streak, so with doorbell delivery the latency cost stays small; the
    policy's risk is work that arrives without one.)
    """
    from repro.core.variants import IdleBackoff
    from repro.threads.scheduler import Keypoint
    from repro.topology.builder import MACHINES

    m = MACHINES[machine]()
    engine = Engine()
    policy = (
        IdleBackoff(factor=factor, free_passes=free_passes, max_ns=max_ns)
        if backoff
        else None
    )
    sched = Scheduler(m, engine, rng=Rng(seed), true_spin=True, idle_backoff=policy)
    pioman = PIOMan(m, engine, sched)
    gap = gap_us * 1_000

    def submitter(ctx):
        from repro.threads.instructions import Compute

        tasks = []
        for i in range(ntasks):
            yield Compute(gap)
            task = LTask(
                None, cpuset=CpuSet.single(1 + i % (m.ncores - 1)), name=f"bk{i}"
            )
            yield from pioman.submit(0, task)
            tasks.append(task)
        for task in tasks:
            yield from piom_wait(pioman, 0, task, mode="spin")

    sched.spawn(submitter, 0, name="backoff-driver")
    engine.run(until=ntasks * (gap + 2_000_000))
    if pioman.stats.tasks_completed < ntasks:
        raise RuntimeError(
            f"backoff leg stalled at {pioman.stats.tasks_completed}/{ntasks}"
        )
    lat = pioman.latency.submit_to_complete
    return BackoffResult(
        label=label or ("backoff" if backoff else "fixed"),
        idle_passes=sum(
            c.keypoint_counts.get(Keypoint.IDLE, 0) for c in sched.cores
        ),
        executions=pioman.stats.executions,
        mean_wakeup_ns=lat.mean(),
        max_wakeup_ns=lat.max,
    )


# ----------------------------------------------------------------------
# the five-ablation suite (CLI target + make_experiments), job-friendly
# ----------------------------------------------------------------------
def _queue_factory(queue: str) -> Callable:
    """Resolve a queue variant by name (names pickle; classes needn't)."""
    from repro.core.queues import AlwaysLockTaskQueue
    from repro.core.variants import LockFreeTaskQueue, MutexTaskQueue

    factories = {
        "spin": TaskQueue,
        "mutex": MutexTaskQueue,
        "always": AlwaysLockTaskQueue,
        "lockfree": LockFreeTaskQueue,
    }
    try:
        return factories[queue]
    except KeyError:
        raise ValueError(
            f"unknown queue variant {queue!r} (one of {sorted(factories)})"
        ) from None


def burst_leg(
    *,
    machine: str = "kwak",
    hierarchical: bool = True,
    queue: str = "spin",
    bursts: int = 60,
    seed: int = 5,
    label: str = "",
) -> BurstResult:
    """One :func:`run_affinity_burst` leg, addressable as a job target."""
    from repro.topology.builder import MACHINES

    return run_affinity_burst(
        MACHINES[machine](),
        hierarchical=hierarchical,
        queue_factory=_queue_factory(queue),
        bursts=bursts,
        seed=seed,
        label=label,
    )


def queue_leg(
    *,
    machine: str = "kwak",
    queue: str = "spin",
    reps: int = 200,
    seed: int = 9,
    label: str = "",
):
    """One global-queue ``measure_queue`` leg, addressable as a job target."""
    from repro.bench.task_microbench import measure_queue
    from repro.topology.builder import MACHINES

    m = MACHINES[machine]()
    return measure_queue(
        m, m.all_cores(), label=label or queue, reps=reps, seed=seed,
        queue_factory=_queue_factory(queue),
    )


@dataclass
class FaultsResult:
    """One A6 leg: makespan + fault counters of a 2-node exchange."""

    label: str
    makespan_ns: int
    completed: int
    drops: int
    retransmits: int
    reorders: int
    lock_preemptions: int


def faults_leg(
    *,
    faulty: bool = False,
    msgs: int = 16,
    size: int = 4096,
    seed: int = 31,
    label: str = "",
) -> FaultsResult:
    """One A6 leg: an eager-message exchange, clean or under faults.

    ``msgs`` eager messages (below the rendezvous threshold, so every
    payload crosses the wire through ``Nic.post_send`` where drops and
    reorders bite) between two nodes.  The faulty leg layers packet loss,
    reordering and lock-holder preemption on the *same* seeded world; the
    makespan delta is the price of surviving a hostile network.
    """
    from repro.cluster.cluster import Cluster
    from repro.faults.plan import FaultPlan, LockPreemption, NetFaults
    from repro.mpi import MadMPI

    plan = None
    if faulty:
        plan = FaultPlan(
            seed=seed,
            net=NetFaults(drop_p=0.12, reorder_p=0.2),
            lock_preemption=LockPreemption(p=0.05, window_ns=30_000),
        )
    cl = Cluster(2, seed=seed, faults=plan)
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    end: dict[str, int] = {}

    def sender(ctx):
        for i in range(msgs):
            yield from c0.send(ctx.core_id, 1, i, size, payload=b"x")
        end["send"] = ctx.now

    def receiver(ctx):
        for i in range(msgs):
            yield from c1.recv(ctx.core_id, 0, i)
        end["recv"] = ctx.now

    cl.nodes[0].scheduler.spawn(sender, 0, name="a6-send")
    cl.nodes[1].scheduler.spawn(receiver, 0, name="a6-recv")
    cl.run(until=msgs * 10_000_000 + 100_000_000)
    if len(end) < 2:
        raise RuntimeError(f"faults leg stalled ({end})")
    fs = cl.faults.stats if cl.faults is not None else None
    return FaultsResult(
        label=label or ("faulty" if faulty else "clean"),
        makespan_ns=max(end.values()),
        completed=msgs,
        drops=fs.drops if fs else 0,
        retransmits=fs.retransmits if fs else 0,
        reorders=fs.reorders if fs else 0,
        lock_preemptions=fs.lock_preemptions if fs else 0,
    )


@dataclass
class AblationSuite:
    """All twelve legs of the A1-A6 ablation matrix on kwak."""

    a1_hier: BurstResult = None
    a1_flat: BurstResult = None
    a2_spin: BurstResult = None
    a2_mutex: BurstResult = None
    a3_checked: object = None
    a3_always: object = None
    a4_locked: object = None
    a4_lockfree: object = None
    a5_fixed: BackoffResult = None
    a5_backoff: BackoffResult = None
    a6_clean: FaultsResult = None
    a6_faulty: FaultsResult = None

    def format(self) -> str:
        us = 1000.0
        lines = [
            "Ablations (kwak): affinity burst + global-queue round-trip",
            f"A1 hierarchy    hierarchical {self.a1_hier.mean_burst_ns / us:>8.1f} us"
            f"   flat {self.a1_flat.mean_burst_ns / us:>8.1f} us"
            f"   ({self.a1_flat.mean_burst_ns / self.a1_hier.mean_burst_ns:.2f}x)",
            f"A2 lock kind    spinlock     {self.a2_spin.mean_burst_ns / us:>8.1f} us"
            f"   mutex {self.a2_mutex.mean_burst_ns / us:>7.1f} us"
            f"   ({self.a2_mutex.mean_burst_ns / self.a2_spin.mean_burst_ns:.2f}x)",
            f"A3 double-check double-check {self.a3_checked.mean_ns / us:>8.2f} us"
            f"   always-lock {self.a3_always.mean_ns / us:>5.2f} us"
            f"   ({self.a3_always.mean_ns / self.a3_checked.mean_ns:.2f}x)",
            f"A4 lock-free    spinlock     {self.a4_locked.mean_ns / us:>8.2f} us"
            f"   CAS {self.a4_lockfree.mean_ns / us:>13.2f} us"
            f"   ({self.a4_locked.mean_ns / self.a4_lockfree.mean_ns:.2f}x better)",
            f"A5 idle backoff fixed {self.a5_fixed.idle_passes:>10} passes"
            f"   backoff {self.a5_backoff.idle_passes:>7} passes"
            f"   ({self.a5_fixed.idle_passes / max(1, self.a5_backoff.idle_passes):.2f}x"
            f" fewer; wakeup {self.a5_fixed.mean_wakeup_ns / us:.2f}"
            f" -> {self.a5_backoff.mean_wakeup_ns / us:.2f} us)",
            f"A6 faults       clean  {self.a6_clean.makespan_ns / us:>9.1f} us"
            f"   faulty {self.a6_faulty.makespan_ns / us:>7.1f} us"
            f"   ({self.a6_faulty.makespan_ns / self.a6_clean.makespan_ns:.2f}x;"
            f" {self.a6_faulty.drops} drops, {self.a6_faulty.retransmits} retx,"
            f" {self.a6_faulty.lock_preemptions} preempt)",
        ]
        return "\n".join(lines)


#: the twelve ablation legs: (field, target, kwargs) — seeds fixed to the
#: values EXPERIMENTS.md has always used, so the suite reproduces it
_SUITE_LEGS = (
    ("a1_hier", "burst_leg", {"hierarchical": True}),
    ("a1_flat", "burst_leg", {"hierarchical": False}),
    ("a2_spin", "burst_leg", {"hierarchical": False, "label": "spin"}),
    ("a2_mutex", "burst_leg", {"hierarchical": False, "queue": "mutex", "label": "mutex"}),
    ("a3_checked", "queue_leg", {"queue": "spin", "seed": 9}),
    ("a3_always", "queue_leg", {"queue": "always", "seed": 9}),
    ("a4_locked", "queue_leg", {"queue": "spin", "seed": 13}),
    ("a4_lockfree", "queue_leg", {"queue": "lockfree", "seed": 13}),
    ("a5_fixed", "backoff_leg", {"backoff": False, "seed": 11}),
    ("a5_backoff", "backoff_leg", {"backoff": True, "seed": 11}),
    # A6 pair shares a seed on purpose: same world, faults on/off
    ("a6_clean", "faults_leg", {"faulty": False, "seed": 31}),
    ("a6_faulty", "faults_leg", {"faulty": True, "seed": 31}),
)


def run_ablation_suite(
    *,
    bursts: int = 60,
    reps: int = 200,
    jobs: int = 1,
    timeout_s: float | None = None,
) -> AblationSuite:
    """Run all twelve ablation legs, optionally fanned out over workers.

    Every leg is an independent seeded simulation, so leg-level fan-out
    merges back (by field name) bit-identical to the serial loop.
    """
    from repro.par import JobSpec, run_jobs_strict

    specs = []
    for fname, fn, extra in _SUITE_LEGS:
        kwargs: dict = dict(extra)
        if fn == "burst_leg":
            kwargs.setdefault("bursts", bursts)
        elif fn == "queue_leg":
            kwargs.setdefault("reps", reps)
        specs.append(
            JobSpec(
                name=fname, target=f"repro.bench.ablations:{fn}", kwargs=kwargs
            )
        )
    values = run_jobs_strict(specs, jobs=jobs, timeout_s=timeout_s)
    suite = AblationSuite()
    for (fname, _, _), value in zip(_SUITE_LEGS, values):
        setattr(suite, fname, value)
    return suite
