"""Ablation workloads for the design choices DESIGN.md calls out.

* A1 — hierarchical queues vs one flat global list (§III motivation);
* A2 — spinlocks vs blocking mutexes on the queues (§IV-A);
* A3 — Algorithm 2's double-checked locking vs always-lock;
* A4 — lock-free (CAS) queues, the paper's future work (§VI).

The shared workload is an *affinity burst*: core #0 submits one task per
remote core back-to-back, then waits for all of them — the pattern a
communication library generates when it fans polling/submission work out
across the machine.  The hierarchy executes the burst through independent
per-core queues; the degraded variants funnel everything through shared
structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.manager import PIOMan
from repro.core.progress import piom_wait
from repro.core.queues import TaskQueue
from repro.core.task import LTask
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sync.stats import LockStats
from repro.threads.scheduler import Scheduler
from repro.topology.cpuset import CpuSet
from repro.topology.machine import Machine


@dataclass
class BurstResult:
    """Mean virtual ns per burst plus queue-layer statistics."""

    label: str
    mean_burst_ns: float
    lock_sections: int
    lock_contended: int
    executions_by_core: dict[int, int]


def run_affinity_burst(
    machine: Machine,
    *,
    hierarchical: bool = True,
    queue_factory: Callable = TaskQueue,
    bursts: int = 60,
    seed: int = 5,
    label: str = "",
) -> BurstResult:
    """Submit one task per non-submitting core, wait for all; repeat."""
    engine = Engine()
    sched = Scheduler(machine, engine, rng=Rng(seed))
    pioman = PIOMan(
        machine, engine, sched, hierarchical=hierarchical, queue_factory=queue_factory
    )
    times: list[int] = []

    def submitter(ctx):
        for burst in range(bursts):
            t0 = ctx.now
            tasks = []
            for c in range(1, machine.ncores):
                task = LTask(None, cpuset=CpuSet.single(c), name=f"b{burst}c{c}")
                yield from pioman.submit(0, task)
                tasks.append(task)
            for task in tasks:
                yield from piom_wait(pioman, 0, task, mode="spin")
            times.append(ctx.now - t0)

    sched.spawn(submitter, 0, name="burst")
    engine.run(until=bursts * machine.ncores * 1_000_000)
    if len(times) < bursts:
        raise RuntimeError(f"affinity burst stalled after {len(times)}/{bursts}")
    steady = times[len(times) // 5 :]
    agg = LockStats()
    for q in pioman.hierarchy.queues():
        agg.acquires += q.lock.stats.acquires
        agg.contended += q.lock.stats.contended
        agg.handoffs += q.lock.stats.handoffs
    return BurstResult(
        label=label or ("hierarchical" if hierarchical else "flat"),
        mean_burst_ns=sum(steady) / len(steady),
        lock_sections=agg.acquires,
        lock_contended=agg.contended,
        executions_by_core=dict(pioman.stats.executions_by_core),
    )
