"""Benchmark harnesses regenerating every table and figure of the paper."""

from repro.bench.task_microbench import (
    MicrobenchResult,
    RowResult,
    measure_queue,
    run_task_microbench,
)
from repro.bench.latency import LatencyPoint, LatencySeries, run_fig4, run_latency_once
from repro.bench.overlap import (
    OverlapPoint,
    OverlapSeries,
    PLACEMENTS,
    compute_grid,
    run_overlap_figure,
    run_overlap_once,
)
from repro.bench.paper_targets import (
    ANOMALIES,
    PAPER_TABLES,
    TABLE1_BORDERLINE,
    TABLE2_KWAK,
    targets_for,
)
from repro.bench.reporting import (
    format_latency,
    format_microbench,
    format_overlap,
    sparkline,
)

__all__ = [
    "MicrobenchResult",
    "RowResult",
    "measure_queue",
    "run_task_microbench",
    "LatencyPoint",
    "LatencySeries",
    "run_fig4",
    "run_latency_once",
    "OverlapPoint",
    "OverlapSeries",
    "PLACEMENTS",
    "compute_grid",
    "run_overlap_figure",
    "run_overlap_once",
    "TABLE1_BORDERLINE",
    "TABLE2_KWAK",
    "PAPER_TABLES",
    "ANOMALIES",
    "targets_for",
    "format_microbench",
    "format_latency",
    "format_overlap",
    "sparkline",
]
