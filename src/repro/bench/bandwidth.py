"""OSU-style streaming bandwidth benchmark (extension).

Not a paper artifact, but the standard companion to the latency test of
Fig. 4 (the OSU suite the paper cites [14] ships both): the sender keeps
``window`` non-blocking sends in flight per iteration; the receiver
pre-posts matching receives and acknowledges each window.  Reported
bandwidth should approach the driver's wire rate for large messages —
a sanity anchor for the whole nmad/NIC stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Type

from repro.cluster.cluster import Cluster
from repro.net.driver import DriverSpec, IB_CONNECTX
from repro.topology.builder import borderline
from repro.topology.machine import Machine


@dataclass
class BandwidthPoint:
    size_bytes: int
    mb_per_s: float


@dataclass
class BandwidthSeries:
    impl: str
    points: list[BandwidthPoint] = field(default_factory=list)

    def at(self, size: int) -> float:
        for p in self.points:
            if p.size_bytes == size:
                return p.mb_per_s
        raise KeyError(size)


def run_bandwidth_once(
    impl_cls: Type,
    size_bytes: int,
    *,
    window: int = 16,
    iters: int = 4,
    warmup: int = 1,
    machine_factory: Callable[[], Machine] = borderline,
    driver: DriverSpec = IB_CONNECTX,
    seed: int = 0,
) -> BandwidthPoint:
    """One cell: streaming bandwidth at one message size."""
    cluster = Cluster(2, machine_factory=machine_factory, drivers=(driver,), seed=seed)
    mpi = impl_cls(cluster)
    cs, cr = mpi.comm(0), mpi.comm(1)
    marks: list[tuple[int, int]] = []  # (t_start, t_end) per measured iter
    ACK = 7777

    def sender(ctx):
        for it in range(warmup + iters):
            t0 = ctx.now
            reqs = []
            for k in range(window):
                r = yield from cs.isend(ctx.core_id, 1, k, size_bytes, payload=it)
                reqs.append(r)
            for r in reqs:
                yield from cs.wait(ctx.core_id, r)
            yield from cs.recv(ctx.core_id, 1, ACK)
            if it >= warmup:
                marks.append((t0, ctx.now))

    def receiver(ctx):
        for it in range(warmup + iters):
            reqs = []
            for k in range(window):
                r = yield from cr.irecv(ctx.core_id, 0, k)
                reqs.append(r)
            for r in reqs:
                yield from cr.wait(ctx.core_id, r)
            yield from cr.send(ctx.core_id, 0, ACK, 4, payload=b"a")

    cluster.nodes[0].scheduler.spawn(sender, 0, name="bw-send")
    cluster.nodes[1].scheduler.spawn(receiver, 0, name="bw-recv")
    cluster.run(until=(warmup + iters) * (window * size_bytes * 10 + 50_000_000))
    if len(marks) < iters:
        raise RuntimeError(f"bandwidth bench stalled at {size_bytes}B")
    total_bytes = iters * window * size_bytes
    total_ns = sum(t1 - t0 for t0, t1 in marks)
    mb_per_s = total_bytes / (total_ns / 1e9) / 1e6
    return BandwidthPoint(size_bytes=size_bytes, mb_per_s=mb_per_s)


def run_bandwidth(
    impls: Optional[Sequence[Type]] = None,
    sizes: Sequence[int] = (1024, 8 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024),
    **kwargs,
) -> list[BandwidthSeries]:
    if impls is None:
        from repro.mpi import IMPLEMENTATIONS

        impls = list(IMPLEMENTATIONS.values())
    out = []
    for impl_cls in impls:
        series = BandwidthSeries(impl=impl_cls.name)
        for size in sizes:
            series.points.append(run_bandwidth_once(impl_cls, size, **kwargs))
        out.append(series)
    return out


def format_bandwidth(series: Sequence[BandwidthSeries]) -> str:
    if not series:
        return "(no series)"
    sizes = [p.size_bytes for p in series[0].points]
    lines = ["Streaming bandwidth (MB/s)"]
    lines.append(f"{'size':>10}" + "".join(f"{s.impl:>12}" for s in series))
    for size in sizes:
        label = f"{size // 1024} KB" if size < 1024 * 1024 else f"{size // (1024 * 1024)} MB"
        row = f"{label:>10}"
        for s in series:
            row += f"{s.at(size):>12.0f}"
        lines.append(row)
    return "\n".join(lines)
