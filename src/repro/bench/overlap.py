"""Communication/computation overlap benchmark — paper Figs. 5, 6, 7.

The micro-benchmark of [15] (§V-C): post a non-blocking operation,
compute for ``T``, then wait; the overlap ratio is

    overlap = Tcomp / Ttotal

where ``Ttotal`` is the time from the non-blocking post to the wait's
return on the side(s) that compute.  One figure per computation placement:

* Fig. 5 — computation on the **sender** (32 KB and 1 MB),
* Fig. 6 — computation on the **receiver**,
* Fig. 7 — computation on **both** sides.

Expected shapes: every implementation overlaps on the sender side (the
baselines via RDMA-read rendezvous); only PIOMan overlaps on the receiver
side (handshake progressed by tasks on idle cores); on "both", the
baselines degrade to no overlap while PIOMan stays high.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Type

from repro.cluster.cluster import Cluster
from repro.net.driver import DriverSpec, IB_CONNECTX
from repro.threads.instructions import Compute
from repro.topology.builder import borderline
from repro.topology.machine import Machine

#: computation placements, paper figure numbering
PLACEMENTS = ("sender", "receiver", "both")


@dataclass
class OverlapPoint:
    compute_ns: int
    ratio: float
    total_ns: int


@dataclass
class OverlapSeries:
    impl: str
    placement: str
    size_bytes: int
    points: list[OverlapPoint] = field(default_factory=list)

    def ratio_at(self, compute_ns: int) -> float:
        for p in self.points:
            if p.compute_ns == compute_ns:
                return p.ratio
        raise KeyError(compute_ns)


def run_overlap_once(
    impl_cls: Type,
    placement: str,
    size_bytes: int,
    compute_ns: int,
    *,
    machine_factory: Callable[[], Machine] = borderline,
    driver: DriverSpec = IB_CONNECTX,
    reps: int = 3,
    seed: int = 0,
) -> OverlapPoint:
    """One point of one overlap curve.

    Protocol per repetition: the receiver posts ``irecv`` first and
    confirms with a tiny sync message (so the send is never unexpected —
    the micro-benchmark of [15] synchronizes the same way), then both
    sides post / compute / wait according to the placement.
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}")
    cluster = Cluster(2, machine_factory=machine_factory, drivers=(driver,), seed=seed)
    mpi = impl_cls(cluster)
    cs, cr = mpi.comm(0), mpi.comm(1)
    totals: list[int] = []
    SYNC_TAG, DATA_TAG = 99, 5

    def sender(ctx):
        for rep in range(reps):
            # wait for "receive posted" notification
            yield from cs.recv(ctx.core_id, 1, SYNC_TAG)
            t0 = ctx.now
            req = yield from cs.isend(ctx.core_id, 1, DATA_TAG, size_bytes, payload=rep)
            if placement in ("sender", "both"):
                yield Compute(compute_ns)
            yield from cs.wait(ctx.core_id, req)
            if placement in ("sender", "both"):
                totals.append(ctx.now - t0)

    def receiver(ctx):
        for rep in range(reps):
            req = yield from cr.irecv(ctx.core_id, 0, DATA_TAG)
            yield from cr.send(ctx.core_id, 0, SYNC_TAG, 4, payload=b"go")
            t0 = ctx.now
            if placement in ("receiver", "both"):
                yield Compute(compute_ns)
            yield from cr.wait(ctx.core_id, req)
            if placement in ("receiver", "both"):
                totals.append(ctx.now - t0)
            assert req.payload == rep, (req.payload, rep)

    cluster.nodes[0].scheduler.spawn(sender, 0, name="ov-send")
    cluster.nodes[1].scheduler.spawn(receiver, 0, name="ov-recv")
    cluster.run(until=reps * (compute_ns + 100_000_000))
    if not totals:
        raise RuntimeError(
            f"overlap bench produced no samples: {impl_cls.__name__} {placement}"
        )
    total = sum(totals) / len(totals)
    ratio = compute_ns / total if total > 0 else 0.0
    return OverlapPoint(compute_ns=compute_ns, ratio=min(ratio, 1.0), total_ns=int(total))


def compute_grid(size_bytes: int, npoints: int = 9) -> list[int]:
    """The paper's x-axes: 0..200 us for 32 KB, 0..2000 us for 1 MB."""
    span = 200_000 if size_bytes <= 64 * 1024 else 2_000_000
    return [round(i * span / (npoints - 1)) for i in range(npoints)]


def run_overlap_figure(
    placement: str,
    *,
    impls: Optional[Sequence[Type]] = None,
    sizes: Sequence[int] = (32 * 1024, 1024 * 1024),
    npoints: int = 9,
    machine_factory: Callable[[], Machine] = borderline,
    reps: int = 3,
    seed: int = 0,
) -> list[OverlapSeries]:
    """All curves of one paper figure (both message sizes)."""
    if impls is None:
        from repro.mpi import IMPLEMENTATIONS

        impls = list(IMPLEMENTATIONS.values())
    out: list[OverlapSeries] = []
    for size in sizes:
        for impl_cls in impls:
            series = OverlapSeries(
                impl=impl_cls.name, placement=placement, size_bytes=size
            )
            for comp in compute_grid(size, npoints):
                series.points.append(
                    run_overlap_once(
                        impl_cls,
                        placement,
                        size,
                        comp,
                        machine_factory=machine_factory,
                        reps=reps,
                        seed=seed,
                    )
                )
            out.append(series)
    return out
