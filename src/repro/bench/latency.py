"""Multi-threaded latency benchmark — paper Fig. 4.

OSU-style multi-threaded latency test (§V-B): one sending process
ping-pongs 4-byte messages with N receiver threads on the peer node.
Each receiver thread loops ``MPI_Recv`` + 4-byte reply; the sender
round-robins over the threads and the mean one-way latency is reported
per thread count.

Expected shape: the MVAPICH-like baseline's latency climbs with the
number of receiving threads (they all spin-poll under the global library
lock, and past the core count they queue behind each other's scheduling
quanta), while Mad-MPI/PIOMan stays nearly constant even past the core
count because receivers block on a condition and idle cores run the
polling tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Type

import numpy as np

from repro.cluster.cluster import Cluster
from repro.net.driver import DriverSpec, IB_CONNECTX
from repro.topology.builder import borderline
from repro.topology.machine import Machine


@dataclass
class LatencyPoint:
    threads: int
    mean_one_way_ns: float
    min_ns: float
    max_ns: float
    p50_ns: float = 0.0
    p99_ns: float = 0.0


@dataclass
class LatencySeries:
    impl: str
    points: list[LatencyPoint] = field(default_factory=list)

    def latency_at(self, threads: int) -> float:
        for p in self.points:
            if p.threads == threads:
                return p.mean_one_way_ns
        raise KeyError(threads)


def run_latency_once(
    impl_cls: Type,
    nthreads: int,
    *,
    machine_factory: Callable[[], Machine] = borderline,
    driver: DriverSpec = IB_CONNECTX,
    iters_per_thread: int = 4,
    warmup: int = 2,
    seed: int = 0,
    size_bytes: int = 4,
) -> LatencyPoint:
    """One (implementation, thread-count) cell of Fig. 4."""
    cluster = Cluster(2, machine_factory=machine_factory, drivers=(driver,), seed=seed)
    mpi = impl_cls(cluster)
    c_send = mpi.comm(0)
    c_recv = mpi.comm(1)
    ncores = cluster.nodes[1].machine.ncores
    total_iters = warmup + iters_per_thread
    samples: list[float] = []

    def receiver_body(tid: int):
        def body(ctx):
            for _ in range(total_iters):
                yield from c_recv.recv(ctx.core_id, 0, tid)
                yield from c_recv.send(ctx.core_id, 0, tid, size_bytes, payload=b"r")

        return body

    def sender_body(ctx):
        for it in range(total_iters):
            for tid in range(nthreads):
                t0 = ctx.now
                yield from c_send.send(ctx.core_id, 1, tid, size_bytes, payload=b"p")
                yield from c_send.recv(ctx.core_id, 1, tid)
                if it >= warmup:
                    samples.append((ctx.now - t0) / 2.0)

    for tid in range(nthreads):
        core = tid % ncores
        cluster.nodes[1].scheduler.spawn(
            receiver_body(tid), core, name=f"recv{tid}"
        )
    cluster.nodes[0].scheduler.spawn(sender_body, 0, name="sender")
    # Bound: generous per-iteration budget; hitting it means a stall.
    cluster.run(until=total_iters * nthreads * 3_000_000 + 50_000_000)
    if not samples:
        raise RuntimeError(
            f"latency bench stalled: impl={impl_cls.__name__} threads={nthreads}"
        )
    arr = np.asarray(samples, dtype=np.float64)
    return LatencyPoint(
        threads=nthreads,
        mean_one_way_ns=float(arr.mean()),
        min_ns=float(arr.min()),
        max_ns=float(arr.max()),
        p50_ns=float(np.percentile(arr, 50)),
        p99_ns=float(np.percentile(arr, 99)),
    )


def run_fig4(
    impls: Optional[Sequence[Type]] = None,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    *,
    machine_factory: Callable[[], Machine] = borderline,
    iters_per_thread: int = 4,
    seed: int = 0,
    include_unstable: bool = False,
) -> list[LatencySeries]:
    """The full Fig. 4 sweep.

    Implementations whose ``mt_stable`` is False are skipped unless
    ``include_unstable`` — the paper had to drop OpenMPI from this test
    ("segmentation faults occured").
    """
    if impls is None:
        from repro.mpi import IMPLEMENTATIONS

        impls = list(IMPLEMENTATIONS.values())
    series: list[LatencySeries] = []
    for impl_cls in impls:
        if not getattr(impl_cls, "mt_stable", True) and not include_unstable:
            continue
        s = LatencySeries(impl=impl_cls.name)
        for n in thread_counts:
            s.points.append(
                run_latency_once(
                    impl_cls,
                    n,
                    machine_factory=machine_factory,
                    iters_per_thread=iters_per_thread,
                    seed=seed + n,
                )
            )
        series.append(s)
    return series
