"""One executable unit per CLI target — the serial/parallel common path.

Historically ``repro.bench.cli`` ran each table/figure inline in its main
loop, which made the targets impossible to fan out over worker processes.
This module extracts each target into :func:`run_target`, a module-level
picklable callable returning a self-contained :class:`TargetOutput`
(header + body text, JSON payload, and — when instrumented — the metrics
snapshot and Chrome-trace document).

The CLI uses this for **both** execution modes: serially it calls the
same function in the same order the old loop did, and with ``--jobs N``
it submits the same calls as :class:`repro.par.JobSpec` jobs.  Because a
target's output depends only on its arguments (every run builds a fresh
seeded simulation), the two modes are bit-identical by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Sequence

#: placement per overlap figure (paper Figs. 5-7)
FIG_PLACEMENTS = {"fig5": "sender", "fig6": "receiver", "fig7": "both"}

#: every regenerable artifact, in canonical order ("all" expands to this)
ALL_TARGETS = (
    "table1", "table2", "fig4", "fig5", "fig6", "fig7",
    "scalability", "bandwidth", "ablations",
)

#: targets that can fan their own legs out when they are the only target
INNER_PARALLEL_TARGETS = ("scalability", "ablations")


def to_jsonable(obj: Any) -> Any:
    """Recursively convert bench result objects to plain JSON data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


@dataclass
class TargetOutput:
    """Everything one target produces, ready to print/merge/serialize.

    ``metrics`` / ``trace`` are populated only for the instrumented run
    (``observe=True``): the flat registry snapshot and the complete
    Chrome-trace document, both plain JSON data so they cross process
    boundaries and can be written verbatim by the parent.
    """

    target: str
    header: str
    text: str
    data: Any = None
    instrumented: Optional[str] = None
    metrics: Optional[dict] = None
    trace: Optional[dict] = None


def _observability(observe: bool):
    if not observe:
        return None, None
    from repro.obs import MetricsRegistry
    from repro.sim.trace import Tracer

    return MetricsRegistry(), Tracer(enabled=True)


def _trace_doc(tracer, *, source: str, machine=None) -> dict:
    from repro.obs import chrome_trace

    meta: dict[str, Any] = {"source": source}
    if machine is not None:
        meta["machine"] = machine.spec.name
        meta["ncores"] = machine.ncores
    return chrome_trace(tracer, meta=meta)


def run_target(
    name: str,
    *,
    reps: int = 200,
    seed: int = 1,
    threads: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    points: int = 9,
    iters: int = 4,
    observe: bool = False,
    jobs: int = 1,
) -> TargetOutput:
    """Regenerate one CLI target; picklable, shared-nothing, seed-driven.

    ``observe`` attaches a fresh registry + tracer exactly the way the
    old CLI loop attached its singletons to the first table target.
    ``jobs`` lets the targets with independent legs (``scalability``,
    ``ablations``) fan those legs out themselves — used when a single
    such target gets the whole ``--jobs`` budget.
    """
    from repro.bench.paper_targets import targets_for
    from repro.bench.reporting import (
        format_latency,
        format_microbench,
        format_overlap,
    )
    from repro.topology.builder import MACHINES

    registry, tracer = _observability(observe)

    if name in ("table1", "table2"):
        from repro.bench.task_microbench import run_task_microbench

        machine_name = "borderline" if name == "table1" else "kwak"
        machine = MACHINES[machine_name]()
        res = run_task_microbench(
            machine, reps=reps, seed=seed, registry=registry, tracer=tracer
        )
        out = TargetOutput(
            target=name,
            header=f"=== {name.upper()} ({machine_name}) ===",
            text=format_microbench(res, paper=targets_for(machine_name)),
            data=to_jsonable(res),
        )
        if observe:
            out.instrumented = f"{name} global-queue row ({machine_name})"
            out.metrics = registry.snapshot()
            out.trace = _trace_doc(tracer, source=out.instrumented, machine=machine)
        return out
    if name == "fig4":
        from repro.bench.latency import run_fig4

        series = run_fig4(
            thread_counts=list(threads), iters_per_thread=iters, seed=seed
        )
        return TargetOutput(
            target=name,
            header="=== FIG 4 (multi-threaded latency) ===",
            text=format_latency(series),
            data=to_jsonable(series),
        )
    if name in FIG_PLACEMENTS:
        from repro.bench.overlap import run_overlap_figure

        placement = FIG_PLACEMENTS[name]
        series = run_overlap_figure(placement, npoints=points, seed=seed)
        return TargetOutput(
            target=name,
            header=f"=== {name.upper()} (overlap, computation on {placement}) ===",
            text=format_overlap(series),
            data=to_jsonable(series),
        )
    if name == "scalability":
        from repro.bench.scalability import run_scalability

        study = run_scalability(reps=max(60, reps // 2), seed=seed, jobs=jobs)
        return TargetOutput(
            target=name,
            header="=== SCALABILITY (extension: global queue vs core count) ===",
            text=study.format(),
            data=to_jsonable(study),
        )
    if name == "bandwidth":
        from repro.bench.bandwidth import format_bandwidth, run_bandwidth

        bw = run_bandwidth(seed=seed)
        return TargetOutput(
            target=name,
            header="=== BANDWIDTH (extension: OSU-style streaming) ===",
            text=format_bandwidth(bw),
            data=to_jsonable(bw),
        )
    if name == "ablations":
        from repro.bench.ablations import run_ablation_suite

        suite = run_ablation_suite(reps=reps, jobs=jobs)
        return TargetOutput(
            target=name,
            header="=== ABLATIONS (design choices A1-A4) ===",
            text=suite.format(),
            data=to_jsonable(suite),
        )
    raise ValueError(f"unknown bench target {name!r}")


def run_dedicated_observed(*, reps: int = 200, seed: int = 1) -> TargetOutput:
    """The instrumentation-only run the CLI does when ``--metrics-out`` /
    ``--trace-out`` is requested without any table target: one small
    global-queue measurement on borderline, observed."""
    from repro.bench.task_microbench import measure_queue
    from repro.topology.builder import MACHINES

    registry, tracer = _observability(True)
    machine = MACHINES["borderline"]()
    measure_queue(
        machine,
        machine.all_cores(),
        label="global",
        reps=min(reps, 50),
        seed=seed,
        registry=registry,
        tracer=tracer,
    )
    label = "dedicated global-queue run (borderline)"
    return TargetOutput(
        target="_observed",
        header="",
        text="",
        instrumented=label,
        metrics=registry.snapshot(),
        trace=_trace_doc(tracer, source=label, machine=machine),
    )
