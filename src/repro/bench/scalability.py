"""Forward scalability study (the paper's motivating trend).

"The evolution of processors is leading to tens or maybe hundreds of
cores per node" (§I).  This harness extends Tables I/II beyond the
paper's 8/16-core hosts: generic NUMA machines of growing core counts
run the same microbenchmark, comparing the hierarchical queues against
the flat global list — the quantitative version of the paper's §III
argument that the big-lock organisation "is likely not to scale up".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.task_microbench import measure_queue
from repro.topology.builder import numa_machine
from repro.topology.machine import Level, Machine, MachineSpec


def scaled_machine(nnuma: int, cores_per_numa: int) -> Machine:
    """A kwak-like NUMA machine scaled to ``nnuma * cores_per_numa`` cores
    (same calibration constants as kwak, so results are comparable)."""
    spec = MachineSpec(
        name=f"numa{nnuma}x{cores_per_numa}",
        local_ns=6,
        cas_ns=12,
        xfer_ns={Level.CACHE: 10, Level.MACHINE: 155},
        contended_factor=25.0,
        inval_ns={Level.CACHE: 120, Level.MACHINE: 160},
    )
    return numa_machine(nnuma, 1, cores_per_numa, shared_l3=True, spec=spec)


@dataclass
class ScalePoint:
    ncores: int
    local_ns: float
    chip_ns: float
    global_ns: float
    flat_global_ns: float

    @property
    def global_blowup(self) -> float:
        """Global-queue cost relative to the local reference."""
        return self.global_ns / self.local_ns


@dataclass
class ScaleStudy:
    points: list[ScalePoint] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            "Global-queue scalability (kwak-calibrated NUMA machines)",
            f"{'cores':>6}{'local ns':>10}{'chip ns':>10}{'global ns':>11}"
            f"{'blowup':>8}{'flat ns':>10}",
        ]
        for p in self.points:
            lines.append(
                f"{p.ncores:>6}{p.local_ns:>10.0f}{p.chip_ns:>10.0f}"
                f"{p.global_ns:>11.0f}{p.global_blowup:>8.1f}{p.flat_global_ns:>10.0f}"
            )
        return "\n".join(lines)


def scale_point(nnuma: int, per: int, *, reps: int = 100, seed: int = 21) -> ScalePoint:
    """Measure one machine shape: the local per-core queue, one per-chip
    queue, the global queue, and the flat (no-hierarchy) organisation
    serving a core-affine task.  Module-level and argument-pure so it can
    run as a :class:`repro.par.JobSpec` job."""
    m = scaled_machine(nnuma, per)
    local = measure_queue(
        m, m.core_nodes[0].cpuset, label="core#0", reps=reps, seed=seed
    )
    chip_node = next(n for n in m.nodes if n.level == Level.CACHE)
    chip = measure_queue(
        m, chip_node.cpuset, label="chip", reps=reps, seed=seed + 1
    )
    glob = measure_queue(
        m, m.all_cores(), label="global", reps=reps, seed=seed + 2
    )
    # flat: a core-affine task forced through the single shared list
    flat = measure_queue(
        m,
        m.core_nodes[min(5, m.ncores - 1)].cpuset,
        label="flat",
        reps=reps,
        seed=seed + 3,
        hierarchical=False,
    )
    return ScalePoint(
        ncores=m.ncores,
        local_ns=local.mean_ns,
        chip_ns=chip.mean_ns,
        global_ns=glob.mean_ns,
        flat_global_ns=flat.mean_ns,
    )


def run_scalability(
    shapes: Sequence[tuple[int, int]] = ((2, 4), (4, 4), (4, 8), (8, 8)),
    *,
    reps: int = 100,
    seed: int = 21,
    jobs: int = 1,
    timeout_s: float | None = None,
) -> ScaleStudy:
    """Sweep machine sizes via :func:`scale_point`, one point per shape.

    Shapes are independent simulations with spec-carried seeds, so with
    ``jobs > 1`` they fan out over worker processes and merge back in
    shape order — bit-identical to the serial sweep.
    """
    from repro.par import JobSpec, run_jobs_strict

    specs = [
        JobSpec(
            name=f"numa{nnuma}x{per}",
            target="repro.bench.scalability:scale_point",
            kwargs={"nnuma": nnuma, "per": per, "reps": reps, "seed": seed},
        )
        for nnuma, per in shapes
    ]
    points = run_jobs_strict(specs, jobs=jobs, timeout_s=timeout_s)
    return ScaleStudy(points=points)
