"""The paper's published numbers, used for side-by-side reporting.

Values transcribed from Tables I and II of the paper.  The two anomalies
the authors could not explain (core #7 on borderline: 1819 ns; the fourth
per-chip queue on kwak: 5216 ns — "We assume this high overhead is due to
a race condition") are kept here for completeness but flagged so reports
and tests can exclude them.
"""

from __future__ import annotations

#: Table I — 4-way dual-core Opteron (borderline), nanoseconds.
TABLE1_BORDERLINE: dict[str, int] = {
    "core#0": 770,
    "core#1": 788,
    "core#2": 839,
    "core#3": 818,
    "core#4": 846,
    "core#5": 858,
    "core#6": 858,
    "core#7": 1819,  # anomaly
    "chip#0": 1114,
    "chip#1": 1059,
    "chip#2": 1157,
    "chip#3": 1199,
    "global": 4720,
}

#: Table II — 4-way quad-core Opteron (kwak), nanoseconds.
TABLE2_KWAK: dict[str, int] = {
    "core#0": 723,
    "core#1": 697,
    "core#2": 697,
    "core#3": 697,
    "core#4": 1777,
    "core#5": 1787,
    "core#6": 1776,
    "core#7": 1777,
    "core#8": 1777,
    "core#9": 1867,
    "core#10": 1866,
    "core#11": 1867,
    "core#12": 1747,
    "core#13": 1737,
    "core#14": 1737,
    "core#15": 1787,
    "cache#0": 1905,
    "cache#1": 2037,
    "cache#2": 2046,
    "cache#3": 5216,  # anomaly
    "global": 13585,
}

#: rows the paper itself flags as unexplained race-condition artifacts
ANOMALIES: dict[str, tuple[str, ...]] = {
    "borderline": ("core#7",),
    "kwak": ("cache#3",),
}

PAPER_TABLES = {
    "borderline": TABLE1_BORDERLINE,
    "kwak": TABLE2_KWAK,
}


def targets_for(machine_name: str, include_anomalies: bool = False) -> dict[str, int]:
    """Paper targets for a machine, anomalies excluded by default."""
    table = dict(PAPER_TABLES[machine_name])
    if not include_anomalies:
        for label in ANOMALIES.get(machine_name, ()):
            table.pop(label, None)
    return table
