"""Mad-MPI: the MPI interface to NewMadeleine + PIOMan (paper §V).

One :class:`MadMPI` instance covers a cluster; ``comm(rank)`` returns the
per-rank communicator whose methods are thread-context generators.  Ranks
map 1:1 to cluster nodes (one MPI process per node, threads inside — the
hybrid model the paper targets).

Behavioural signature (what the benchmarks measure):

* blocking waits use a **blocking condition** — the calling thread is
  descheduled and its core joins the pool that runs PIOMan tasks, so
  latency stays flat as receiver threads multiply (Fig. 4);
* all protocol steps run as PIOMan tasks on idle cores, so non-blocking
  communication progresses during application computation on *both* sides
  (Figs. 5-7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.nmad.library import NMad
from repro.nmad.requests import ANY, RecvRequest, SendRequest
from repro.nmad.strategies import Strategy
from repro.threads.instructions import Instr
from repro.topology.machine import Level

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

#: re-exported wildcards, MPI-flavoured
ANY_SOURCE = ANY
ANY_TAG = ANY


class MadMPIComm:
    """Communicator facade for one rank."""

    def __init__(self, mpi: "MadMPI", rank: int) -> None:
        self.mpi = mpi
        self.rank = rank
        self.nmad: NMad = mpi.nmad_for(rank)

    # Every method is a generator to be used with ``yield from`` inside a
    # simulated thread body.
    def isend(
        self, core: int, dest: int, tag: int, size: int, payload: Any = None
    ) -> Generator[Instr, Any, SendRequest]:
        req = yield from self.nmad.isend(core, dest, tag, size, payload)
        return req

    def irecv(
        self, core: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Instr, Any, RecvRequest]:
        req = yield from self.nmad.irecv(core, source, tag)
        return req

    def wait(self, core: int, req, mode: str = "block") -> Generator[Instr, Any, None]:
        yield from self.nmad.wait(core, req, mode=mode)

    def test(self, core: int, req) -> Generator[Instr, Any, bool]:
        done = yield from self.nmad.test(core, req)
        return done

    def waitall(self, core: int, reqs, mode: str = "block") -> Generator[Instr, Any, None]:
        yield from self.nmad.waitall(core, reqs, mode=mode)

    def waitany(self, core: int, reqs) -> Generator[Instr, Any, int]:
        idx = yield from self.nmad.waitany(core, reqs)
        return idx

    def sendrecv(
        self, core, dest, sendtag, sendsize, source, recvtag, payload=None
    ) -> Generator[Instr, Any, RecvRequest]:
        """Combined send+receive (deadlock-safe: both posted, then waited)."""
        sreq = yield from self.isend(core, dest, sendtag, sendsize, payload)
        rreq = yield from self.irecv(core, source, recvtag)
        yield from self.wait(core, rreq)
        yield from self.wait(core, sreq)
        return rreq

    def send(self, core, dest, tag, size, payload=None):
        req = yield from self.isend(core, dest, tag, size, payload)
        yield from self.wait(core, req)
        return req

    def recv(self, core, source=ANY_SOURCE, tag=ANY_TAG):
        req = yield from self.irecv(core, source, tag)
        yield from self.wait(core, req)
        return req


class MadMPI:
    """The PIOMan-backed MPI implementation."""

    name = "PIOMan"
    mt_stable = True

    def __init__(
        self,
        cluster: "Cluster",
        *,
        rdv_threshold: int = 16 * 1024,
        strategy: Optional[Strategy] = None,
        poll_affinity_level: Level = Level.CHIP,
        offload_submission: bool = True,
    ) -> None:
        self.cluster = cluster
        # One NMad per *local* node.  In the common whole-cluster build
        # ``nmads[rank]`` indexing still works (node i is the i-th list
        # entry); sharded clusters instantiate a node subset, so rank
        # lookup must go through :meth:`nmad_for`.
        self.nmads = [
            NMad(
                node,
                rdv_threshold=rdv_threshold,
                strategy=strategy,
                poll_affinity_level=poll_affinity_level,
                offload_submission=offload_submission,
            )
            for node in cluster.nodes
        ]
        self.nmad_by_id = {nm.node.id: nm for nm in self.nmads}

    def nmad_for(self, rank: int) -> NMad:
        """The NMad serving ``rank``; KeyError when the node is not local
        to this shard (a comm must be created where its rank lives)."""
        try:
            return self.nmad_by_id[rank]
        except KeyError:
            raise KeyError(
                f"rank {rank} is not hosted by this process "
                f"(local ranks: {sorted(self.nmad_by_id)})"
            ) from None

    def comm(self, rank: int) -> MadMPIComm:
        return MadMPIComm(self, rank)
