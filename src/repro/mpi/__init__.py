"""MPI-level interfaces: Mad-MPI and the baseline models."""

from repro.mpi.madmpi import ANY_SOURCE, ANY_TAG, MadMPI, MadMPIComm
from repro.mpi.baseline import BigLockMPI, BigLockComm, MVAPICHLike, OpenMPILike
from repro.mpi import collectives

#: the implementations compared in the paper's evaluation
IMPLEMENTATIONS = {
    "PIOMan": MadMPI,
    "MVAPICH": MVAPICHLike,
    "OpenMPI": OpenMPILike,
}

__all__ = [
    "collectives",
    "ANY_SOURCE",
    "ANY_TAG",
    "MadMPI",
    "MadMPIComm",
    "BigLockMPI",
    "BigLockComm",
    "MVAPICHLike",
    "OpenMPILike",
    "IMPLEMENTATIONS",
]
