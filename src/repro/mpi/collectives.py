"""Collective operations over the point-to-point layer.

The paper's scope is point-to-point progression, but a communication
library a downstream user would adopt needs collectives; these are the
classic log-P algorithms expressed as generators over any communicator
implementing the ``isend/irecv/wait`` interface (Mad-MPI or a baseline),
so collective traffic also exercises PIOMan's progression paths.

Algorithms:

* **barrier** — dissemination (log2 N rounds);
* **bcast** — binomial tree;
* **reduce** — binomial tree toward the root (payloads combined with a
  user ``op``);
* **allreduce** — reduce + bcast;
* **gather / scatter** — linear at the root (simple, predictable);
* **alltoall** — posted irecvs + round-robin sends.

Each call takes ``comms`` — one communicator per rank — plus this rank's
id and returns per MPI semantics.  Tags are drawn from a reserved space
so collectives never collide with application point-to-point traffic;
callers may run several distinct collectives concurrently by passing
different ``ctxtag``s.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

#: base of the reserved collective tag space
COLL_TAG_BASE = 1 << 20


def _tag(ctxtag: int, phase: int) -> int:
    return COLL_TAG_BASE + ctxtag * 64 + phase


def barrier(
    comm, core: int, rank: int, nranks: int, ctxtag: int = 0
) -> Generator:
    """Dissemination barrier: log2(N) rounds of pairwise notifications."""
    if nranks == 1:
        return
    round_no = 0
    dist = 1
    while dist < nranks:
        peer_to = (rank + dist) % nranks
        peer_from = (rank - dist) % nranks
        sreq = yield from comm.isend(core, peer_to, _tag(ctxtag, round_no), 4, payload=b"B")
        rreq = yield from comm.irecv(core, peer_from, _tag(ctxtag, round_no))
        yield from comm.wait(core, sreq)
        yield from comm.wait(core, rreq)
        dist *= 2
        round_no += 1


def bcast(
    comm,
    core: int,
    rank: int,
    nranks: int,
    value: Any = None,
    size: int = 64,
    root: int = 0,
    ctxtag: int = 1,
) -> Generator:
    """Binomial-tree broadcast; returns the value on every rank."""
    if nranks == 1:
        return value
    vrank = (rank - root) % nranks
    # receive from the parent (the rank that differs in our lowest set bit)
    mask = 1
    while mask < nranks:
        if vrank & mask:
            parent = ((vrank - mask) + root) % nranks
            req = yield from comm.irecv(core, parent, _tag(ctxtag, 0))
            yield from comm.wait(core, req)
            value = req.payload
            break
        mask *= 2
    # forward to children: vrank + m for each m below our received bit
    mask //= 2
    while mask > 0:
        if vrank + mask < nranks:
            dst = ((vrank + mask) + root) % nranks
            req = yield from comm.isend(core, dst, _tag(ctxtag, 0), size, payload=value)
            yield from comm.wait(core, req)
        mask //= 2
    return value


def reduce(
    comm,
    core: int,
    rank: int,
    nranks: int,
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int = 64,
    root: int = 0,
    ctxtag: int = 2,
) -> Generator:
    """Binomial-tree reduction; returns the combined value on the root
    (None elsewhere).  ``op`` must be associative and commutative."""
    if nranks == 1:
        return value
    vrank = (rank - root) % nranks
    acc = value
    mask = 1
    while mask < nranks:
        if vrank & mask:
            parent = ((vrank ^ mask) + root) % nranks
            req = yield from comm.isend(core, parent, _tag(ctxtag, 0), size, payload=acc)
            yield from comm.wait(core, req)
            return None
        child = vrank | mask
        if child < nranks:
            src = (child + root) % nranks
            req = yield from comm.irecv(core, src, _tag(ctxtag, 0))
            yield from comm.wait(core, req)
            acc = op(acc, req.payload)
        mask *= 2
    return acc


def allreduce(
    comm,
    core: int,
    rank: int,
    nranks: int,
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int = 64,
    ctxtag: int = 3,
) -> Generator:
    """Reduce to rank 0 then broadcast the result to everyone."""
    partial = yield from reduce(
        comm, core, rank, nranks, value, op, size=size, root=0, ctxtag=ctxtag
    )
    result = yield from bcast(
        comm, core, rank, nranks, partial, size=size, root=0, ctxtag=ctxtag + 8
    )
    return result


def gather(
    comm,
    core: int,
    rank: int,
    nranks: int,
    value: Any,
    size: int = 64,
    root: int = 0,
    ctxtag: int = 4,
) -> Generator:
    """Linear gather; the root returns the list ordered by rank."""
    if rank == root:
        out: list[Any] = [None] * nranks
        out[root] = value
        for src in range(nranks):
            if src == root:
                continue
            req = yield from comm.irecv(core, src, _tag(ctxtag, src))
            yield from comm.wait(core, req)
            out[src] = req.payload
        return out
    req = yield from comm.isend(core, root, _tag(ctxtag, rank), size, payload=value)
    yield from comm.wait(core, req)
    return None


def scatter(
    comm,
    core: int,
    rank: int,
    nranks: int,
    values: Optional[Sequence[Any]] = None,
    size: int = 64,
    root: int = 0,
    ctxtag: int = 5,
) -> Generator:
    """Linear scatter; every rank returns its slot of the root's list."""
    if rank == root:
        assert values is not None and len(values) == nranks
        reqs = []
        for dst in range(nranks):
            if dst == root:
                continue
            r = yield from comm.isend(core, dst, _tag(ctxtag, dst), size, payload=values[dst])
            reqs.append(r)
        for r in reqs:
            yield from comm.wait(core, r)
        return values[root]
    req = yield from comm.irecv(core, root, _tag(ctxtag, rank))
    yield from comm.wait(core, req)
    return req.payload


def alltoall(
    comm,
    core: int,
    rank: int,
    nranks: int,
    values: Sequence[Any],
    size: int = 64,
    ctxtag: int = 6,
) -> Generator:
    """Each rank sends ``values[dst]`` to every dst; returns the received
    list indexed by source (own slot passed through)."""
    assert len(values) == nranks
    out: list[Any] = [None] * nranks
    out[rank] = values[rank]
    rreqs = {}
    for src in range(nranks):
        if src == rank:
            continue
        rreqs[src] = yield from comm.irecv(core, src, _tag(ctxtag, rank))
    sreqs = []
    # rotate destinations so everyone does not hammer rank 0 first
    for k in range(1, nranks):
        dst = (rank + k) % nranks
        r = yield from comm.isend(core, dst, _tag(ctxtag, dst), size, payload=values[dst])
        sreqs.append(r)
    for src, req in rreqs.items():
        yield from comm.wait(core, req)
        out[src] = req.payload
    for r in sreqs:
        yield from comm.wait(core, r)
    return out
