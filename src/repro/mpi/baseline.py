"""Baseline MPI models: MVAPICH2-like and OpenMPI-like.

The paper attributes the baselines' behaviour to two design choices, and
these models implement exactly those choices (not the codebases):

1. **Progress only inside MPI calls** (no progression threads, no task
   offload): a blocked/waiting caller loops { take the *global library
   lock*; poll the NIC; release; yield }.  Nothing happens between calls,
   so a rendezvous that needs receiver CPU stalls while the receiver
   computes — no receiver-side overlap (Figs. 6-7).
2. **RDMA-read rendezvous** [10]: the RTS carries a memory handle; the
   *receiver* pulls the body with an RDMA read that consumes no sender
   CPU, then sends FIN.  Sender-side overlap therefore works (Fig. 5).

The global lock plus per-call polling is also what makes multi-threaded
latency climb with the number of receiving threads (Fig. 4): every waiting
thread burns its core polling, contending on the lock, and past the core
count they queue behind each other's scheduling quanta.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.net.frame import Completion, Frame
from repro.net.nic import Nic
from repro.nmad.requests import ANY, RecvRequest, ReqState, SendRequest
from repro.sync.spinlock import SpinLock
from repro.threads.instructions import (
    Acquire,
    Compute,
    Instr,
    Release,
    SetFlag,
    YieldCPU,
)
from repro.threads.flag import Flag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster, Node

_msg_ids = itertools.count(1)


class _BigLockNode:
    """Per-node library state for a big-lock MPI implementation."""

    def __init__(self, node: "Node", driver_name: str, eager_threshold: int) -> None:
        self.node = node
        self.nic: Nic = node.nic_by_driver(driver_name)
        self.eager_threshold = eager_threshold
        self.lock = SpinLock(
            node.machine, node.engine, home=0, name=f"mpilock@{node.id}"
        )
        self.expected: list[RecvRequest] = []
        self.unexpected: list[dict] = []
        self.rdv_out: dict[int, SendRequest] = {}
        self.rdv_in: dict[int, RecvRequest] = {}
        #: sequence counters for ordered matching
        self._send_seq: dict[tuple[int, int], int] = {}

    def next_seq(self, dst: int, tag: int) -> int:
        key = (dst, tag)
        s = self._send_seq.get(key, 0)
        self._send_seq[key] = s + 1
        return s

    # -- host-instant protocol machine (caller holds the big lock) -------
    def progress(self, core: int) -> int:
        """Drain the CQ; returns the number of entries handled."""
        comps = self.nic.poll()
        for comp in comps:
            self._handle(core, comp)
        return len(comps)

    def _handle(self, core: int, comp: Completion) -> None:
        if comp.kind == "send_done" or comp.kind == "rdma_served":
            return
        if comp.kind == "rdma_done":
            self._rdma_finished(core, comp.meta)
            return
        frame = comp.frame
        assert frame is not None
        meta = dict(frame.meta, kind=frame.kind)
        kind = meta["kind"]
        if kind == "eager":
            req = self._match_expected(meta["src"], meta["tag"])
            if req is None:
                self.unexpected.append(meta)
            else:
                self._finish_recv(core, req, meta)
        elif kind == "rts":
            req = self._match_expected(meta["src"], meta["tag"])
            if req is None:
                self.unexpected.append(meta)
            else:
                self._start_rdma(core, req, meta)
        elif kind == "fin":
            req = self.rdv_out.pop(meta["msg_id"], None)
            if req is not None:
                self._finish_send(core, req)
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"unexpected frame kind {kind!r}")

    def _start_rdma(self, core: int, req: RecvRequest, meta: dict) -> None:
        """Matched an RTS: pull the body with an RDMA read (no sender CPU)."""
        req.state = ReqState.DATA_INFLIGHT
        req.src = meta["src"]
        req.recv_tag = meta["tag"]
        req.size = meta["size"]
        req.payload = meta.get("payload")
        self.rdv_in[meta["msg_id"]] = req
        peer_nic = self.nic.fabric.peer_nic(self.nic, meta["src"])
        self.nic.rdma_read(peer_nic, meta["size"], meta={"msg_id": meta["msg_id"]})

    def _rdma_finished(self, core: int, meta: Any) -> None:
        req = self.rdv_in.pop(meta["msg_id"], None)
        if req is None:  # pragma: no cover - protocol guard
            raise ValueError(f"rdma_done for unknown rendezvous {meta}")
        fin = Frame("fin", self.node.id, req.src, 16, meta={"msg_id": meta["msg_id"]})
        self.nic.post_send(fin)
        self._finish_recv(core, req, None)

    def _match_expected(self, src: int, tag: int) -> Optional[RecvRequest]:
        for req in self.expected:
            if req.matches(src, tag):
                self.expected.remove(req)
                return req
        return None

    def match_unexpected(self, req: RecvRequest) -> Optional[dict]:
        best = None
        for meta in self.unexpected:
            if req.matches(meta["src"], meta["tag"]):
                if best is None or meta["seq"] < best["seq"]:
                    best = meta
        if best is not None:
            self.unexpected.remove(best)
        return best

    def _finish_recv(self, core: int, req: RecvRequest, meta: Optional[dict]) -> None:
        if meta is not None:
            req.src = meta["src"]
            req.recv_tag = meta["tag"]
            req.size = meta["size"]
            req.payload = meta.get("payload")
        req.state = ReqState.COMPLETE
        req.t_complete = self.node.engine.now
        req.flag.set(core)

    def _finish_send(self, core: int, req: SendRequest) -> None:
        if req.state is ReqState.COMPLETE:
            return
        req.state = ReqState.COMPLETE
        req.t_complete = self.node.engine.now
        req.flag.set(core)


class BigLockComm:
    """Communicator facade for one rank of a big-lock implementation."""

    def __init__(self, impl: "BigLockMPI", rank: int) -> None:
        self.impl = impl
        self.rank = rank
        self.state: _BigLockNode = impl.states[rank]

    # ------------------------------------------------------------------
    def isend(
        self, core: int, dest: int, tag: int, size: int, payload: Any = None
    ) -> Generator[Instr, Any, SendRequest]:
        st = self.state
        req = SendRequest(dest, tag, size, payload)
        req.flag = Flag(st.node.machine, st.node.engine, home=core, name=f"bsnd{req.seq}")
        req.t_post = st.node.engine.now
        yield Acquire(st.lock)
        yield Compute(st.nic.driver.post_cost_ns)
        seq = st.next_seq(dest, tag)
        if size <= st.eager_threshold:
            req.protocol = "eager"
            frame = Frame(
                "eager", st.node.id, dest, size,
                meta={"tag": tag, "seq": seq, "size": size, "payload": payload,
                      "src": st.node.id},
            )
            st.nic.post_send(frame)
            st._finish_send(core, req)
        else:
            req.protocol = "rdv"
            msg_id = next(_msg_ids)
            st.rdv_out[msg_id] = req
            req.state = ReqState.RTS_SENT
            frame = Frame(
                "rts", st.node.id, dest, 64,
                meta={"tag": tag, "seq": seq, "size": size, "src": st.node.id,
                      "msg_id": msg_id, "payload": payload},
            )
            st.nic.post_send(frame)
        st.progress(core)
        yield Release(st.lock)
        return req

    def irecv(
        self, core: int, source: int = ANY, tag: int = ANY
    ) -> Generator[Instr, Any, RecvRequest]:
        st = self.state
        req = RecvRequest(source, tag)
        req.flag = Flag(st.node.machine, st.node.engine, home=core, name=f"brcv{req.seq}")
        req.t_post = st.node.engine.now
        yield Acquire(st.lock)
        yield Compute(st.nic.driver.poll_cost_ns)
        st.progress(core)
        meta = st.match_unexpected(req)
        if meta is not None:
            if meta["kind"] == "eager":
                st._finish_recv(core, req, meta)
            else:
                st._start_rdma(core, req, meta)
        else:
            st.expected.append(req)
        yield Release(st.lock)
        return req

    def wait(self, core: int, req, mode: str = "poll") -> Generator[Instr, Any, None]:
        """Progress-inside-the-call waiting: lock, poll, release, yield."""
        st = self.state
        while not req.done:
            yield Acquire(st.lock)
            yield Compute(st.nic.driver.poll_cost_ns)
            st.progress(core)
            yield Release(st.lock)
            if req.done:
                break
            # Let other threads poll too (sched_yield in the real library).
            yield YieldCPU()

    def test(self, core: int, req) -> Generator[Instr, Any, bool]:
        """MPI_Test: one progress pass under the lock, then the verdict."""
        st = self.state
        yield Acquire(st.lock)
        yield Compute(st.nic.driver.poll_cost_ns)
        st.progress(core)
        yield Release(st.lock)
        return req.done

    def waitall(self, core: int, reqs, mode: str = "poll") -> Generator[Instr, Any, None]:
        for req in reqs:
            yield from self.wait(core, req)

    def waitany(self, core: int, reqs) -> Generator[Instr, Any, int]:
        """Poll-based waitany: progress under the lock until one is done."""
        if not reqs:
            raise ValueError("waitany needs at least one request")
        st = self.state
        while True:
            for i, req in enumerate(reqs):
                if req.done:
                    return i
            yield Acquire(st.lock)
            yield Compute(st.nic.driver.poll_cost_ns)
            st.progress(core)
            yield Release(st.lock)
            yield YieldCPU()

    def sendrecv(
        self, core, dest, sendtag, sendsize, source, recvtag, payload=None
    ) -> Generator[Instr, Any, RecvRequest]:
        sreq = yield from self.isend(core, dest, sendtag, sendsize, payload)
        rreq = yield from self.irecv(core, source, recvtag)
        yield from self.wait(core, rreq)
        yield from self.wait(core, sreq)
        return rreq

    def send(self, core, dest, tag, size, payload=None):
        req = yield from self.isend(core, dest, tag, size, payload)
        yield from self.wait(core, req)
        return req

    def recv(self, core, source=ANY, tag=ANY):
        req = yield from self.irecv(core, source, tag)
        yield from self.wait(core, req)
        return req


class BigLockMPI:
    """Shared machinery for the two baseline models."""

    name = "biglock"
    mt_stable = True
    eager_threshold = 12 * 1024
    driver_name = "ibverbs"

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.states = [
            _BigLockNode(node, self.driver_name, self.eager_threshold)
            for node in cluster.nodes
        ]

    def comm(self, rank: int) -> BigLockComm:
        return BigLockComm(self, rank)


class MVAPICHLike(BigLockMPI):
    """MVAPICH2 1.2p1 stand-in: global lock, RDMA-read rendezvous."""

    name = "MVAPICH"
    eager_threshold = 12 * 1024


class OpenMPILike(BigLockMPI):
    """OpenMPI 1.3.1 stand-in.

    Same two design choices as MVAPICH (the paper: "OPENMPI and MVAPICH
    have the same behavior"); its MPI_THREAD_MULTIPLE support segfaulted
    in the paper's Fig. 4 runs, recorded here as ``mt_stable = False`` so
    the latency harness skips it exactly like the paper had to.
    """

    name = "OpenMPI"
    mt_stable = False
    eager_threshold = 16 * 1024
