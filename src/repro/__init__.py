"""repro — a reproduction of *"A scalable and generic task scheduling
system for communication libraries"* (Trahay & Denis, CLUSTER 2009).

The package rebuilds the paper's whole stack on a deterministic
discrete-event simulator (see DESIGN.md for the substitution rationale):

* :mod:`repro.core` — **PIOMan**, the hierarchical lightweight task
  scheduler (the paper's contribution);
* :mod:`repro.topology`, :mod:`repro.mem`, :mod:`repro.sync`,
  :mod:`repro.threads`, :mod:`repro.sim` — the machine substrate
  (topology-aware cache-line costs, spinlocks, Marcel-like scheduler with
  keypoints, virtual clock);
* :mod:`repro.net`, :mod:`repro.nmad`, :mod:`repro.mpi`,
  :mod:`repro.cluster` — the communication substrate (NIC/fabric models,
  NewMadeleine, Mad-MPI and the MVAPICH/OpenMPI-like baselines);
* :mod:`repro.bench` — harnesses regenerating every table and figure.

Quickstart::

    from repro import Engine, Scheduler, PIOMan, LTask, CpuSet, borderline
    from repro.core import piom_wait

    machine = borderline()
    engine = Engine()
    sched = Scheduler(machine, engine)
    pioman = PIOMan(machine, engine, sched)

    def main(ctx):
        task = LTask(None, cpuset=CpuSet.single(3), name="hello")
        yield from pioman.submit(ctx.core_id, task)
        yield from piom_wait(pioman, ctx.core_id, task)

    sched.spawn(main, core=0)
    engine.run()
"""

from repro.sim import Engine, Rng, Tracer, NS, US, MS, fmt_ns
from repro.topology import (
    CpuSet,
    Level,
    Machine,
    MachineSpec,
    borderline,
    kwak,
    numa_machine,
    smp,
)
from repro.sync import AtomicCounter, Condition, LockStats, Mutex, SpinLock
from repro.threads import Flag, Prio, Scheduler, SimThread, ThreadCtx
from repro.core import (
    LTask,
    PIOMan,
    QueueHierarchy,
    TaskOption,
    TaskQueue,
    TaskState,
    piom_wait,
)
from repro.cluster import Cluster, Node
from repro.nmad import NMad
from repro.obs import MetricsRegistry, chrome_trace, write_chrome_trace
from repro.pioio import BlockDevice, PIOIo
from repro.mpi import MadMPI, MVAPICHLike, OpenMPILike

__version__ = "1.0.0"

__all__ = [
    "Engine", "Rng", "Tracer", "NS", "US", "MS", "fmt_ns",
    "MetricsRegistry", "chrome_trace", "write_chrome_trace",
    "CpuSet", "Level", "Machine", "MachineSpec",
    "borderline", "kwak", "smp", "numa_machine",
    "SpinLock", "Mutex", "Condition", "AtomicCounter", "LockStats",
    "Flag", "Prio", "Scheduler", "SimThread", "ThreadCtx",
    "LTask", "TaskOption", "TaskState", "TaskQueue", "QueueHierarchy",
    "PIOMan", "piom_wait",
    "Cluster", "Node", "NMad", "BlockDevice", "PIOIo",
    "MadMPI", "MVAPICHLike", "OpenMPILike",
    "__version__",
]
