"""Completion flags.

A :class:`Flag` is a one-word synchronization cell backed by a
:class:`~repro.mem.cacheline.CacheLine`.  It supports two waiting styles:

* **spin** — the waiter keeps its core and notices the store one line
  transfer after it happens (microbench completion words, lock-style
  waiting);
* **block** — the waiter is descheduled and woken through the scheduler
  (MPI blocking receives, thread join).

Both notice latencies are derived from the machine's transfer-cost matrix,
so a cross-NUMA completion is observed later than a local one — that
asymmetry is load-bearing for Tables I/II.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.mem.cacheline import CacheLine, MemStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine
    from repro.threads.thread import SimThread


class Flag:
    """One-shot (resettable) completion word with cost-modeled wakeups."""

    __slots__ = ("machine", "engine", "line", "is_set", "name", "_spinners", "_blockers", "set_time")

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        home: int = 0,
        name: str = "",
        stats: Optional[MemStats] = None,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.line = CacheLine(machine, home=home, name=name or "flag", stats=stats)
        self.is_set = False
        self.set_time: Optional[int] = None
        self.name = name
        #: (core, resume_cb) pairs busy-spinning on the word
        self._spinners: list[tuple[int, Callable[[], None]]] = []
        #: threads descheduled on the word
        self._blockers: list["SimThread"] = []

    # ------------------------------------------------------------------
    def read(self, core: int) -> int:
        """Check the word; returns the read latency in ns."""
        return self.line.read(core)

    def set(self, core: int) -> int:
        """Set the word from ``core``; wakes waiters; returns store cost.

        The store itself is fire-and-forget (store-buffer semantics): the
        setter is charged only its local store latency.  Each spinner
        resumes one line-transfer after the store — that transfer *is* the
        notification, so it is charged once, on the observer side.
        Blocked threads are handed to the scheduler, which adds its own
        dispatch cost.
        """
        cost = self.line.write_async(core)
        self.is_set = True
        self.set_time = self.engine.now
        if self._spinners:
            spinners, self._spinners = self._spinners, []
            for waiter_core, resume in spinners:
                self.engine.post(self.machine.xfer(core, waiter_core), resume)
        if self._blockers:
            blockers, self._blockers = self._blockers, []
            for thread in blockers:
                delay = self.machine.xfer(core, thread.core_id)
                self.engine.post(delay, thread.scheduler.wake, thread)
        return cost

    def reset(self, core: int) -> int:
        """Clear the word (must have no waiters)."""
        if self._spinners or self._blockers:
            raise RuntimeError(f"reset of {self.name!r} with waiters present")
        self.is_set = False
        self.set_time = None
        return self.line.write(core)

    # -- waiter registration (called by the scheduler) -------------------
    def add_spinner(self, core: int, resume: Callable[[], None]) -> tuple:
        entry = (core, resume)
        self._spinners.append(entry)
        return entry

    def remove_spinner(self, entry: tuple) -> bool:
        """Deregister a spinner (timer preemption); False if already woken."""
        try:
            self._spinners.remove(entry)
            return True
        except ValueError:
            return False

    def add_blocker(self, thread: "SimThread") -> None:
        self._blockers.append(thread)

    def remove_blocker(self, thread: "SimThread") -> bool:
        """Deregister a blocked thread (multi-flag waits); False if absent."""
        try:
            self._blockers.remove(thread)
            return True
        except ValueError:
            return False

    def waiter_count(self) -> int:
        return len(self._spinners) + len(self._blockers)

    def __repr__(self) -> str:
        state = "set" if self.is_set else "clear"
        return f"<Flag {self.name or id(self)} {state} waiters={self.waiter_count()}>"
