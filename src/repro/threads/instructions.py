"""Thread instruction set.

Simulated threads are Python generators.  Each ``yield`` hands the
scheduler one *instruction* describing what the thread does next in
virtual time — compute, take a spinlock, block on a flag, sleep...  The
scheduler interprets the instruction, charges the corresponding virtual
time to the thread's core, and resumes the generator when the operation
completes.  Library layers (PIOMan, NewMadeleine, MPI) are themselves
generators composed with ``yield from``, so a whole communication stack
unwinds into a flat stream of these instructions.

This generator encoding is the project's GIL substitution: concurrency is
exact interleaving in virtual time rather than preemptive host threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sync.spinlock import SpinLock
    from repro.sync.mutex import Mutex
    from repro.threads.flag import Flag


class Instr:
    """Base class for all thread instructions."""

    __slots__ = ()


class Compute(Instr):
    """Occupy the core for ``ns`` nanoseconds of application computation.

    Long computations are transparently sliced at timer-quantum boundaries
    so timer keypoints still fire during them.
    """

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        if ns < 0:
            raise ValueError("negative compute duration")
        self.ns = ns

    def __repr__(self) -> str:
        return f"Compute({self.ns})"


class Acquire(Instr):
    """Take a spinlock; the core busy-spins until the lock is granted."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock") -> None:
        self.lock = lock


class Release(Instr):
    """Release a spinlock previously acquired by this thread."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock") -> None:
        self.lock = lock


class MutexAcquire(Instr):
    """Take a blocking mutex; the thread is descheduled while waiting."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex") -> None:
        self.mutex = mutex


class MutexRelease(Instr):
    """Release a blocking mutex."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex") -> None:
        self.mutex = mutex


class BlockOn(Instr):
    """Deschedule until the flag is set (a blocking condition wait)."""

    __slots__ = ("flag",)

    def __init__(self, flag: "Flag") -> None:
        self.flag = flag


class BlockOnAny(Instr):
    """Deschedule until *any* of the flags is set (MPI waitany shape).

    The scheduler registers the thread on every flag and deregisters it
    from the rest on wake-up; callers re-check which flag fired (spurious
    wake-ups are allowed, Mesa style).
    """

    __slots__ = ("flags",)

    def __init__(self, flags) -> None:
        self.flags = list(flags)
        if not self.flags:
            raise ValueError("BlockOnAny needs at least one flag")


class SpinOn(Instr):
    """Busy-spin (core occupied) until the flag is set.

    Used by ``piom_wait``-style waiting where the waiter keeps its core —
    completion is noticed one cache-line transfer after the setter's store,
    exactly like a real spin on a completion word.
    """

    __slots__ = ("flag",)

    def __init__(self, flag: "Flag") -> None:
        self.flag = flag


class SetFlag(Instr):
    """Set a flag (store + invalidations) and wake its waiters."""

    __slots__ = ("flag",)

    def __init__(self, flag: "Flag") -> None:
        self.flag = flag


class Sleep(Instr):
    """Deschedule for ``ns`` nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        if ns < 0:
            raise ValueError("negative sleep duration")
        self.ns = ns


class YieldCPU(Instr):
    """Voluntarily yield the core (a context-switch keypoint)."""

    __slots__ = ()


class Park(Instr):
    """Idle-thread only: deschedule until the core's doorbell rings."""

    __slots__ = ()


def compute(ns: int) -> Iterator[Instr]:
    """``yield from compute(n)`` helper for library code."""
    yield Compute(ns)


def sleep(ns: int) -> Iterator[Instr]:
    """``yield from sleep(n)`` helper for library code."""
    yield Sleep(ns)
