"""Generator-coroutine thread scheduler (the Marcel stand-in)."""

from repro.threads.flag import Flag
from repro.threads.instructions import (
    Acquire,
    BlockOn,
    BlockOnAny,
    Compute,
    Instr,
    MutexAcquire,
    MutexRelease,
    Park,
    Release,
    SetFlag,
    Sleep,
    SpinOn,
    YieldCPU,
    compute,
    sleep,
)
from repro.threads.scheduler import Keypoint, Scheduler
from repro.threads.thread import Prio, SimThread, ThreadCtx, TState

__all__ = [
    "Flag",
    "Instr",
    "Compute",
    "Acquire",
    "Release",
    "MutexAcquire",
    "MutexRelease",
    "BlockOn",
    "BlockOnAny",
    "SpinOn",
    "SetFlag",
    "Sleep",
    "YieldCPU",
    "Park",
    "compute",
    "sleep",
    "Keypoint",
    "Scheduler",
    "Prio",
    "SimThread",
    "ThreadCtx",
    "TState",
]
