"""The thread scheduler (Marcel stand-in).

One :class:`Scheduler` drives the cores of one machine (one cluster node).
It owns per-core run queues, charges context-switch costs, slices long
computations at timer-quantum boundaries, and — the part the paper builds
on — invokes a *progression hook* at the scheduler keypoints:

* **idle**: each core runs an idle thread whose loop calls the hook;
* **timer interrupt**: a periodic tick on busy cores injects a one-shot
  SYSTEM-priority hook thread;
* **context switch**: switching between two application threads also
  injects the hook (rate-limited);
* **wait**: waiting threads may call the hook themselves via
  :func:`repro.core.progress.piom_wait`.

PIOMan attaches itself by assigning :attr:`Scheduler.progression_hook` —
the scheduler has no knowledge of task queues; it only provides keypoints,
exactly like Marcel provides triggers to PIOMan (paper §IV-A).

Hot-path layout
---------------
The interpreter fast path (:meth:`Scheduler._advance`, the most
frequently fired callback in the simulator) keys everything by core id:
the per-core state it touches — run queue, current thread, preempt flag,
busy time — lives in parallel lists (``_rqs``/``_cur``/``_preempt``/
``_busy``) indexed by core id rather than as attributes of the
:class:`CoreState` objects, and the engine posts it pre-built
``(core_id, thread)`` args tuples interned on the thread.  Event posts
on this path are inlined against the engine's queue layout (chosen by
``engine.is_wheel``): same-instant events go to the wheel's ``_nowq``
FIFO, short-horizon events heappush into the actively draining bucket
(``t <= engine._aend``, one compare), and everything else takes the
engine's ``_insert`` cold path — or a plain heap push on the legacy
heap core.

Doorbells
---------
Idle cores eventually *park* (no live events) rather than looping forever.
Submitting a task to a queue a core may serve — or a NIC writing to a
completion queue some core polls — *rings* that core's doorbell with a
delay equal to the cache-line transfer distance from the writer.  This is
the event-count-efficient model of spin-polling discussed in DESIGN.md §2:
a spinning core would notice the write exactly one coherence transfer
after it happens, which is precisely when the ring lands.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from heapq import heappush

from repro.obs.histogram import Histogram
from repro.sim.engine import Engine, Event
from repro.sim.rng import Rng
from repro.sim.trace import NULL_TRACER, Tracer
from repro.threads.flag import Flag
from repro.threads.instructions import (
    Acquire,
    BlockOn,
    BlockOnAny,
    Compute,
    Instr,
    MutexAcquire,
    MutexRelease,
    Park,
    Release,
    SetFlag,
    Sleep,
    SpinOn,
    YieldCPU,
)
from repro.threads.thread import Prio, SimThread, ThreadCtx, TState

#: bound once: TState.RUNNING is tested on every event fire in _advance
_RUNNING = TState.RUNNING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.topology.machine import Machine

#: signature of the progression hook: ``hook(core_id)`` is a generator
#: yielding instructions and returning ``(tasks_run, repeats_seen,
#: contended)`` — contended means the pass lost a dequeue race.
ProgressionHook = Callable[[int], Generator[Instr, Any, tuple[int, int, bool]]]


class Keypoint(enum.Enum):
    IDLE = "idle"
    TIMER = "timer"
    CTX_SWITCH = "ctx_switch"
    WAIT = "wait"

    # Enum.__hash__ is a Python-level function; these members key the
    # per-pass ``keypoint_counts`` dict increments on every idle pass.
    # Members are singletons compared by identity, so identity hashing
    # is equivalent — and C-speed.
    __hash__ = object.__hash__


class CoreState:
    """Per-core scheduling state.

    The hot fields read by the dispatch inner loop — ``run_queue``,
    ``current``, ``preempt_pending``, ``busy_ns`` — live in the owning
    scheduler's parallel lists (see the module docstring); this class
    exposes them as properties so diagnostics, reports, fault injectors
    and tests keep their one-object-per-core view, and holds the colder
    per-core state as real slots.
    """

    __slots__ = (
        "id",
        "_sched",
        "last_thread",
        "idle_thread",
        "timer_armed",
        "hook_live",
        "last_inject",
        "ctx_switches",
        "timer_ticks",
        "keypoint_counts",
        "backoff_streak",
        "last_wake",
    )

    def __init__(self, core_id: int, sched: "Scheduler") -> None:
        self.id = core_id
        self._sched = sched
        self.last_thread: Optional[SimThread] = None
        self.idle_thread: Optional[SimThread] = None
        self.timer_armed = False
        self.hook_live = False
        self.last_inject = -(10**12)
        self.ctx_switches = 0
        self.timer_ticks = 0
        self.keypoint_counts: dict[Keypoint, int] = {k: 0 for k in Keypoint}
        #: consecutive no-progress idle passes (adaptive backoff input)
        self.backoff_streak = 0
        #: causal-trace context: ``(wake_node, wake_ns)`` of the doorbell
        #: that last woke this core's idle loop, consumed by the task
        #: runner's dispatch edge (assigned only while tracing is enabled)
        self.last_wake: Optional[tuple] = None

    @property
    def run_queue(self) -> list[SimThread]:
        return self._sched._rqs[self.id]

    @property
    def current(self) -> Optional[SimThread]:
        return self._sched._cur[self.id]

    @current.setter
    def current(self, thread: Optional[SimThread]) -> None:
        self._sched._cur[self.id] = thread

    @property
    def preempt_pending(self) -> bool:
        return self._sched._preempt[self.id]

    @preempt_pending.setter
    def preempt_pending(self, flag: bool) -> None:
        self._sched._preempt[self.id] = flag

    @property
    def busy_ns(self) -> int:
        return self._sched._busy[self.id]

    @busy_ns.setter
    def busy_ns(self, ns: int) -> None:
        self._sched._busy[self.id] = ns


class Scheduler:
    """Per-node thread scheduler over simulated cores."""

    def __init__(
        self,
        machine: "Machine",
        engine: Engine,
        *,
        name: str = "node0",
        tracer: Tracer = NULL_TRACER,
        ctx_hook_min_interval_ns: int = 2_000,
        enable_ctx_hook: bool = True,
        enable_timer_hook: bool = True,
        rng: Optional[Rng] = None,
        true_spin: bool = False,
        registry: Optional["MetricsRegistry"] = None,
        idle_backoff: Optional[Any] = None,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.name = name
        self.tracer = tracer
        ncores = machine.ncores
        #: hot per-core state as parallel lists indexed by core id
        #: (array-of-struct layout; CoreState exposes them as properties)
        self._rqs: list[list[SimThread]] = [[] for _ in range(ncores)]
        self._cur: list[Optional[SimThread]] = [None] * ncores
        self._preempt: list[bool] = [False] * ncores
        self._busy: list[int] = [0] * ncores
        #: interned ``(core_id,)`` argument tuples for the inlined
        #: ``post_soon(self._dispatch, cid)`` dispatch kicks
        self._cid_args: list[tuple[int]] = [(i,) for i in range(ncores)]
        #: per-core marker: the idle generator is suspended at the fast
        #: path's batched-Compute yield (set/cleared by the idle body
        #: around that one yield).  The quiescence leap needs this to
        #: prove a mid-pass core is at the *known* suspension point —
        #: a slow-pass Compute of coincidentally equal cost would
        #: otherwise be indistinguishable from the outside.
        self._in_fast: list[bool] = [False] * ncores
        self.cores = [CoreState(i, self) for i in range(ncores)]
        self.progression_hook: Optional[ProgressionHook] = None
        #: O(1) empty-pass accessory to the hook (see PIOMan.fast_pass):
        #: ``progression_fast(core)`` returns the pass's single batched
        #: instruction when the core's scan path is proven settled-empty
        #: (having done the pass's host-side accounting), else None and
        #: the idle loop falls back to the full generator hook.
        #: ``progression_fast_done(ns)`` records the realized pass span.
        self.progression_fast: Optional[Callable[[int], Optional[Instr]]] = None
        self.progression_fast_done: Optional[Callable[[int], None]] = None
        self.ctx_hook_min_interval_ns = ctx_hook_min_interval_ns
        self.enable_ctx_hook = enable_ctx_hook
        self.enable_timer_hook = enable_timer_hook
        #: randomness source for doorbell probe phases (see ring_doorbell)
        self.rng = rng if rng is not None else Rng(0)
        #: validation mode: idle cores literally re-scan every probe cycle
        #: instead of parking on doorbells.  Orders of magnitude more
        #: events — only for checking the doorbell model's equivalence on
        #: small scenarios (DESIGN.md section 2).
        self.true_spin = true_spin
        #: adaptive idle backoff policy (``delay_ns(base_ns, streak)``
        #: duck-type, e.g. :class:`repro.core.variants.IdleBackoff`).
        #: None (the default) keeps the fixed re-poll periods: the policy
        #: trades empty passes for wakeup latency, so it ships as an
        #: opt-in variant quantified by the ablation bench.
        self.idle_backoff = idle_backoff
        #: per-core frequency skew (fault injection): ``core_skew[c]`` is
        #: a ``(num, den)`` multiplier stretching every fresh Compute
        #: interpreted on core ``c``, or None for a nominal core.  Set by
        #: :meth:`repro.faults.FaultInjector.install`; None (the default)
        #: leaves the interpreter's instruction stream untouched.
        self.core_skew: Optional[list] = None
        #: lookahead barriers consulted by the quiescence leap
        #: (:mod:`repro.core.leap`): callables ``barrier(now) ->
        #: Optional[int]`` returning the earliest future time an
        #: installed subsystem (e.g. a fault injector) could act outside
        #: the event queue, or None when all its activity is
        #: event-carried.  The leap never crosses a returned time.
        self.leap_barriers: list = []
        self._seq = 0
        self._rr_seq = 0
        #: timer quantum cached off the (immutable) spec: read once per
        #: Compute instruction on the interpreter fast path
        self._quantum_ns = machine.spec.timer_quantum_ns
        #: cpuset-mask -> tuple of ringable core ids (doorbell fan-out is
        #: per-submission hot; the mask universe is tiny and stable)
        self._ring_sets: dict[int, tuple[int, ...]] = {}
        #: per-keypoint progression-pass duration distributions: how long
        #: one hook invocation takes when driven from each keypoint kind
        #: (registry paths ``sched.<name>.keypoint_ns.idle.p99`` ...)
        self.keypoint_ns: dict[Keypoint, Histogram] = {k: Histogram() for k in Keypoint}
        #: live application threads (used to quiesce idle polling)
        self.normal_live = 0
        self.threads: list[SimThread] = []
        engine.blocked_reporters.append(self._count_hard_blocked)
        if registry is not None:
            registry.register(f"sched.{name}", self.core_metrics)
        for core in self.cores:
            core.idle_thread = self._spawn_idle(core.id)

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def spawn(
        self,
        body: Callable[[ThreadCtx], Generator[Instr, Any, Any]],
        core: int,
        *,
        name: str = "",
        prio: Prio = Prio.NORMAL,
    ) -> SimThread:
        """Create a thread pinned to ``core`` and make it runnable."""
        if not 0 <= core < len(self.cores):
            raise ValueError(f"no such core {core}")
        self._seq += 1
        flag = Flag(self.machine, self.engine, home=core, name=f"join:{name or self._seq}")
        t = SimThread(self, body, core, name or f"t{self._seq}", prio, self._seq, flag)
        self.threads.append(t)
        if prio == Prio.NORMAL:
            self.normal_live += 1
        t.state = TState.READY
        self._enqueue(t)
        return t

    def _spawn_idle(self, core_id: int) -> SimThread:
        t = self.spawn(self._idle_body, core_id, name=f"idle{core_id}", prio=Prio.IDLE)
        return t

    def join(self, thread: SimThread) -> Generator[Instr, Any, Any]:
        """``yield from scheduler.join(t)`` — wait for a thread to finish."""
        if thread.alive:
            yield BlockOn(thread.done_flag)
        return thread.result

    # ------------------------------------------------------------------
    # the idle loop (IDLE keypoint)
    # ------------------------------------------------------------------
    #: how many extra probe cycles an idle core lingers after losing a
    #: dequeue race before parking (a spinning core stays in its hot loop)
    idle_linger_probes = 4

    def _idle_body(self, ctx: ThreadCtx) -> Generator[Instr, Any, Any]:
        core_id = ctx.core_id
        spec = self.machine.spec
        engine = self.engine
        state = self.cores[core_id]
        counts = state.keypoint_counts
        hist = self.keypoint_ns[Keypoint.IDLE]
        kp_idle = Keypoint.IDLE
        # Instructions are read-only values to the interpreter, so the
        # idle loop reuses one instance of each instead of allocating per
        # pass (this loop runs on every core at every keypoint).
        park = Park()
        yield_cpu = YieldCPU()
        sleep_probe = Sleep(spec.probe_cycle_ns)
        sleep_repoll = Sleep(spec.idle_repoll_ns)
        backoff = self.idle_backoff
        linger = 0
        while self.progression_hook is None:
            yield park
        # Hooks are wired before the engine runs (PIOMan attaches itself at
        # construction) and never swapped mid-run, so the loop binds them
        # once instead of re-reading three attributes per pass.
        hook = self.progression_hook
        fast = self.progression_fast
        fast_done = self.progression_fast_done
        rq = self._rqs[core_id]
        true_spin = self.true_spin
        linger_max = self.idle_linger_probes
        in_fast = self._in_fast
        while True:
            counts[kp_idle] += 1
            hook_t0 = engine.now
            instr = fast(core_id) if fast is not None else None
            if instr is not None:
                # Settled-empty pass: the accessory already did the pass
                # accounting; yield its batched cost directly, skipping a
                # generator creation + two resumes per pass.  The marker
                # brackets exactly this yield: the quiescence leap may
                # only resume a generator it can prove is suspended here.
                in_fast[core_id] = True
                yield instr
                in_fast[core_id] = False
                span = engine.now - hook_t0
                hist.record(span)
                fast_done(span)
                ran = repeats = 0
                contended = False
            else:
                res = yield from hook(core_id)
                hist.record(engine.now - hook_t0)
                if res is None:
                    ran = repeats = 0
                    contended = False
                elif len(res) == 3:
                    ran, repeats, contended = res
                else:  # legacy 2-tuple hooks
                    ran, repeats, contended = (res + (False,))[:3]
            if backoff is not None:
                # streak of passes that completed nothing; any doorbell
                # (_ring_arrive) resets it, so a submission snaps the
                # core back to the base period
                if ran > repeats:
                    state.backoff_streak = 0
                else:
                    state.backoff_streak += 1
            if rq and self._has_ready_normal(core_id):
                yield yield_cpu
            elif ran > repeats:
                # made real progress (completed at least one task):
                # rescan immediately
                linger = 0
                continue
            elif contended and linger < linger_max:
                # Just lost a dequeue race: stay hot and re-probe, like a
                # real spinner would — this keeps contention alive across
                # back-to-back submissions (paper Tables I/II, level 2/3).
                # Deliberately never stretched: lingering exists to keep
                # contention behaviour realistic, not to save passes.
                linger += 1
                yield sleep_probe
            elif repeats and self.normal_live > 0:
                linger = 0
                if backoff is None:
                    yield sleep_repoll
                else:
                    yield Sleep(
                        backoff.delay_ns(spec.idle_repoll_ns, state.backoff_streak)
                    )
            elif true_spin and self.normal_live > 0:
                # literal spin-polling: re-scan one probe cycle from now
                linger = 0
                if backoff is None:
                    yield sleep_probe
                else:
                    yield Sleep(
                        backoff.delay_ns(spec.probe_cycle_ns, state.backoff_streak)
                    )
            else:
                linger = 0
                yield park

    def _has_ready_normal(self, core_id: int) -> bool:
        # plain loop: this runs once per idle pass, and a genexp + any()
        # allocates a generator and a frame every call
        ready = TState.READY
        for t in self._rqs[core_id]:
            if t.prio <= Prio.NORMAL and t.state is ready:
                return True
        return False

    # ------------------------------------------------------------------
    # doorbells
    # ------------------------------------------------------------------
    def ring_doorbell(
        self, core_id: int, from_core: int, extra_ns: int = 0, cause=None
    ) -> None:
        """Wake ``core_id``'s idle loop as its next poll probe would land.

        A continuously-spinning core re-probes every ``probe_cycle_ns``;
        the write that rings the bell lands at a uniform-random phase of
        that cycle, plus the line-transfer distance from the writer.  The
        random phase is what lets equidistant cores race in varying order
        (and is the source of the contention storms the paper measures on
        the global queue).

        ``cause`` is an optional ``(node_id, cause_ns)`` causal-trace
        origin carried to the arrival; when it is None the posted event is
        identical to the untraced one."""
        phase = self.rng.uniform(0.0, float(self.machine.spec.probe_cycle_ns))
        # A probe cannot observe the write before the invalidation reaches
        # this core: the ring lands no earlier than that propagation
        # (``notice`` is the precomputed max of transfer and invalidation).
        delay = int(phase) + self.machine.notice(from_core, core_id) + extra_ns
        if cause is None:
            self.engine.post(delay, self._ring_arrive, core_id)
        else:
            self.engine.post(delay, self._ring_arrive, core_id, cause)

    def ring_cpuset(self, cpuset, from_core: int, extra_ns: int = 0, cause=None) -> None:
        """Ring every core in a CPU set (used on task submission)."""
        cores = self._ring_sets.get(cpuset.mask)
        if cores is None:
            ncores = len(self.cores)
            cores = tuple(c for c in cpuset if c < ncores)
            self._ring_sets[cpuset.mask] = cores
        for c in cores:
            self.ring_doorbell(c, from_core, extra_ns, cause)

    def _ring_arrive(self, core_id: int, cause=None) -> None:
        core = self.cores[core_id]
        # a doorbell means work may be visible: reset the backoff streak
        # even if the idle thread is mid-pass (true_spin) or already awake
        core.backoff_streak = 0
        idle = core.idle_thread
        if idle is None or idle.state is not TState.BLOCKED:
            return
        if idle.sleep_event is not None:
            idle.sleep_event.cancel()
            idle.sleep_event = None
        if cause is not None and self.tracer.enabled:
            now = self.engine.now
            wake = f"C:{self.name}.{core_id}/wake@{now}"
            core.last_wake = (wake, now)
            self.tracer.edge(now, f"core{core_id}", "wakeup", cause[0], wake, cause[1])
        self.wake(idle)

    # ------------------------------------------------------------------
    # wake / dispatch machinery
    # ------------------------------------------------------------------
    def wake(self, thread: SimThread) -> None:
        """Transition a BLOCKED thread to READY and dispatch its core."""
        if thread.state is not TState.BLOCKED:
            return
        if thread.sleep_event is not None:
            thread.sleep_event.cancel()
            thread.sleep_event = None
        if thread.multi_flags is not None:
            # deregister from the flags that did not fire
            for f in thread.multi_flags:
                f.remove_blocker(thread)
            thread.multi_flags = None
        thread.state = TState.READY
        thread.blocked_on = ""
        self._enqueue(thread)

    def _enqueue(self, thread: SimThread) -> None:
        cid = thread.core_id
        thread.rq_seq = self._rr_seq
        self._rr_seq += 1
        self._rqs[cid].append(thread)
        cur = self._cur[cid]
        if cur is None:
            # engine.post_soon inlined on the wheel core: a dispatch kick
            # is a same-instant event, i.e. one FIFO append
            engine = self.engine
            if engine.is_wheel:
                seq = engine._seq
                engine._seq = seq + 1
                engine._live += 1
                engine._nowq.append(
                    (engine.now, seq, self._dispatch, self._cid_args[cid])
                )
            else:
                engine.post_soon(self._dispatch, cid)
        elif thread.prio < cur.prio:
            self._preempt[cid] = True
            if cur.spin_cancel is not None:
                # A higher-priority arrival must not wait behind an
                # unbounded busy-spin: cancel and re-issue the spin.
                self._cancel_spin(cid, cur)

    def _dispatch(self, core_id: int) -> None:
        rq = self._rqs[core_id]
        if self._cur[core_id] is not None or not rq:
            return
        if len(rq) == 1:  # the common case: nothing to arbitrate
            nxt = rq.pop()
        else:
            # min(rq, key=sort_key) without a method call per element:
            # order by (effective priority, FIFO arrival), first occurrence
            # wins ties.  prio_boost (priority inheritance) substitutes for
            # the base priority while set.
            nxt = rq[0]
            bp = nxt.prio if nxt.prio_boost is None else nxt.prio_boost
            bs = nxt.rq_seq
            for t in rq:
                p = t.prio if t.prio_boost is None else t.prio_boost
                if p < bp or (p == bp and t.rq_seq < bs):
                    nxt = t
                    bp = p
                    bs = t.rq_seq
            rq.remove(nxt)
        core = self.cores[core_id]
        prev = core.last_thread
        switch_cost = 0
        if prev is not nxt and prev is not None:
            switch_cost = self.machine.spec.context_switch_ns
            core.ctx_switches += 1
            self._maybe_inject_hook(core, Keypoint.CTX_SWITCH, prev, nxt)
        self._cur[core_id] = nxt
        core.last_thread = nxt
        nxt.state = TState.RUNNING
        if nxt.prio == Prio.NORMAL:
            self._arm_timer(core)
        engine = self.engine
        t = engine.now + switch_cost
        nxt.instr_start = t
        # engine.post/post_soon inlined: one dispatch per thread switch
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if engine.is_wheel:
            if t == engine.now:
                engine._nowq.append((t, seq, self._advance, nxt.adv_args))
            elif t <= engine._aend:
                heappush(engine._abuc, (t, seq, self._advance, nxt.adv_args))
            else:
                engine._insert((t, seq, self._advance, nxt.adv_args))
        else:
            pool = engine._pool
            if pool:
                ev = pool.pop()
                ev.time = t
                ev.seq = seq
                ev.fn = self._advance
                ev.args = nxt.adv_args
                ev.alive = True
            else:
                ev = Event(t, seq, self._advance, nxt.adv_args)
                ev._pooled = True
            heappush(engine._heap, (t, seq, ev))

    def _release_core(self, core_id: int) -> None:
        self._cur[core_id] = None
        self._preempt[core_id] = False
        if self._rqs[core_id]:
            engine = self.engine
            if engine.is_wheel:
                seq = engine._seq
                engine._seq = seq + 1
                engine._live += 1
                engine._nowq.append(
                    (engine.now, seq, self._dispatch, self._cid_args[core_id])
                )
            else:
                engine.post_soon(self._dispatch, core_id)

    # -- keypoint hook injection ---------------------------------------
    def _maybe_inject_hook(
        self, core: CoreState, kind: Keypoint, prev: Optional[SimThread], nxt: Optional[SimThread]
    ) -> None:
        if self.progression_hook is None or core.hook_live:
            return
        if kind is Keypoint.CTX_SWITCH:
            if not self.enable_ctx_hook:
                return
            # The idle loop already runs the hook; don't double up around it,
            # and never re-inject around a hook thread's own switches.
            for t in (prev, nxt):
                if t is not None and (t.prio != Prio.NORMAL or t.is_hook):
                    return
        if kind is Keypoint.TIMER and not self.enable_timer_hook:
            return
        now = self.engine.now
        if now - core.last_inject < self.ctx_hook_min_interval_ns:
            return
        core.last_inject = now
        core.hook_live = True
        core.keypoint_counts[kind] += 1
        hook = self.progression_hook
        hist = self.keypoint_ns[kind]

        def body(ctx: ThreadCtx) -> Generator[Instr, Any, Any]:
            t0 = self.engine.now
            yield from hook(ctx.core_id)
            hist.record(self.engine.now - t0)

        t = self.spawn(body, core.id, name=f"hook-{kind.value}@{core.id}", prio=Prio.SYSTEM)
        t.is_hook = True
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "sched", f"core{core.id}", f"inject {kind.value} hook"
            )

    def inject_keypoint(self, core_id: int) -> None:
        """Force a progression keypoint on a core as soon as possible.

        Used by the preemptive-task extension: the injected SYSTEM-priority
        hook preempts whatever normal thread is computing there at its next
        instruction/slice boundary."""
        core = self.cores[core_id]
        if self.progression_hook is None or core.hook_live:
            return
        core.hook_live = True
        core.keypoint_counts[Keypoint.CTX_SWITCH] += 1
        hook = self.progression_hook
        hist = self.keypoint_ns[Keypoint.CTX_SWITCH]

        def body(ctx: ThreadCtx) -> Generator[Instr, Any, Any]:
            t0 = self.engine.now
            yield from hook(ctx.core_id)
            hist.record(self.engine.now - t0)

        t = self.spawn(body, core_id, name=f"hook-inject@{core_id}", prio=Prio.SYSTEM)
        t.is_hook = True
        # behave like an interrupt: do not wait for a slice boundary
        self.interrupt_compute(core_id)

    # -- timer interrupts ------------------------------------------------
    def _arm_timer(self, core: CoreState) -> None:
        if core.timer_armed:
            return
        core.timer_armed = True
        self.engine.post(self.machine.spec.timer_quantum_ns, self._timer_tick, core.id)

    def _timer_tick(self, core_id: int) -> None:
        core = self.cores[core_id]
        core.timer_armed = False
        cur = self._cur[core_id]
        if cur is None or cur.prio != Prio.NORMAL:
            return  # re-armed lazily when a normal thread runs again
        core.timer_ticks += 1
        self._maybe_inject_hook(core, Keypoint.TIMER, cur, cur)
        # Round-robin among ready threads at or above the current priority.
        contender = False
        ready = TState.READY
        cur_prio = cur.prio
        for t in self._rqs[core_id]:
            if t.state is ready and t.prio <= cur_prio:
                contender = True
                break
        if contender:
            self._preempt[core_id] = True
            if cur.spin_cancel is not None:
                # Spinners have no instruction boundary; the timer is what
                # preempts a real busy-wait loop.  Cancel the registration
                # and re-issue the spin when the thread runs again.
                self._cancel_spin(core_id, cur)
        self._arm_timer(core)

    # ------------------------------------------------------------------
    # instruction interpreter
    # ------------------------------------------------------------------
    def _advance(self, cid: int, thread: SimThread) -> None:
        # The most frequently fired callback in the simulator: everything
        # it touches is either on the thread or in a flat per-core list,
        # and its args tuple is interned on the thread (thread.adv_args).
        if self._cur[cid] is not thread or thread.state is not _RUNNING:
            return  # stale event (thread moved on)
        # An in-flight Compute slice schedules _advance directly as its
        # completion callback (no trampoline), so the slice handle is
        # dropped here — before anything below can recycle the carrier.
        thread.compute_event = None
        if self._preempt[cid] and self._should_preempt(cid, thread):
            self._preempt_thread(cid, thread)
            return
        instr = thread.pending_instr
        if instr is not None:
            thread.pending_instr = None
        else:
            try:
                instr = thread.gen.send(thread.resume_value)
            except StopIteration as stop:
                thread.result = stop.value
                self._finish(cid, thread)
                return
            thread.resume_value = None
            skew = self.core_skew
            if skew is not None and instr.__class__ is Compute:
                # Slow-core fault: stretch *fresh* Compute work only — the
                # pending_instr path above re-issues remainders that are
                # already in skewed units (and pooled/shared instruction
                # instances are never mutated, so build a new one).
                f = skew[cid]
                if f is not None:
                    instr = Compute(instr.ns * f[0] // f[1])
        engine = self.engine
        thread.instr_start = engine.now
        # The single hottest branch — a Compute slice — is inlined here
        # (including the engine's queue insert): _advance runs once per
        # instruction, and the call fan-out dominates host time.
        if instr.__class__ is Compute:
            ns = instr.ns
            quantum = self._quantum_ns
            slice_ns = ns if ns <= quantum else quantum
            if type(slice_ns) is int:
                remaining = ns - slice_ns
                if remaining > 0:
                    thread.pending_instr = Compute(remaining)
                thread.cpu_ns += slice_ns
                self._busy[cid] += slice_ns
                now = engine.now
                seq = engine._seq
                engine._seq = seq + 1
                t = now + slice_ns
                # Pooled carrier is safe here: the handle in compute_event
                # is dropped at the top of _advance (the completion
                # callback) before any other engine work can reuse it.
                pool = engine._pool
                if pool:
                    ev = pool.pop()
                    ev.time = t
                    ev.seq = seq
                    ev.fn = self._advance
                    ev.args = thread.adv_args
                    ev.alive = True
                else:
                    ev = Event(t, seq, self._advance, thread.adv_args)
                    ev._pooled = True
                ev._engine = engine
                engine._live += 1
                if engine.is_wheel:
                    if t == now:
                        engine._nowq.append((t, seq, None, ev))
                    elif t <= engine._aend:
                        heappush(engine._abuc, (t, seq, None, ev))
                    else:
                        engine._insert((t, seq, None, ev))
                else:
                    heappush(engine._heap, (t, seq, ev))
                thread.compute_event = (ev, now, slice_ns)
                return
        self._exec(cid, thread, instr)

    def _should_preempt(self, cid: int, thread: SimThread) -> bool:
        """Preempt when a higher-priority thread waits, or — once the timer
        has requested rotation by setting ``preempt_pending`` — when a
        same-priority thread waits (FIFO requeueing makes this fair)."""
        ready = TState.READY
        prio = thread.prio if thread.prio_boost is None else thread.prio_boost
        for t in self._rqs[cid]:
            if t.state is ready:
                p = t.prio if t.prio_boost is None else t.prio_boost
                if p <= prio:
                    return True
        return False

    def _preempt_thread(self, cid: int, thread: SimThread) -> None:
        self._preempt[cid] = False
        thread.state = TState.READY
        thread.rq_seq = self._rr_seq
        self._rr_seq += 1
        self._rqs[cid].append(thread)
        self._cur[cid] = None
        engine = self.engine
        if engine.is_wheel:
            seq = engine._seq
            engine._seq = seq + 1
            engine._live += 1
            engine._nowq.append((engine.now, seq, self._dispatch, self._cid_args[cid]))
        else:
            engine.post_soon(self._dispatch, cid)

    def _cancel_spin(self, cid: int, thread: SimThread) -> None:
        """Preempt a busy-spinning thread (timer/priority): deregister its
        waiter entry and arrange for the spin instruction to be re-issued
        when the thread is dispatched again.  No-op if the grant/wake is
        already in flight (the thread will proceed imminently)."""
        cancel_fn, instr = thread.spin_cancel
        if not cancel_fn():
            return
        thread.spin_cancel = None
        thread.pending_instr = instr
        self._charge(cid, thread, self.engine.now - thread.instr_start)
        lock = getattr(instr, "lock", None)
        if lock is not None:
            # Priority inheritance: if the lock's owner sits READY at a
            # lower priority (descheduled mid-critical-section, or between
            # its grant and the generator resuming), the cancelled spinner
            # would starve it forever via the run-queue priority order.
            # Boost the holder to the spinner's priority until it releases.
            holder = getattr(lock, "holder_thread", None)
            if (
                holder is not None
                and holder.state is TState.READY
                and thread.prio < holder.prio
                and holder.prio_boost is None
            ):
                holder.prio_boost = thread.prio
        self._preempt_thread(cid, thread)

    def _charge(self, cid: int, thread: SimThread, ns: int) -> None:
        thread.cpu_ns += ns
        self._busy[cid] += ns

    def _resume_after(self, cid: int, thread: SimThread, cost: int) -> None:
        """Finish the current instruction ``cost`` ns from now."""
        thread.cpu_ns += cost
        self._busy[cid] += cost
        engine = self.engine
        if type(cost) is not int or cost < 0:
            # rare non-int costs: the engine's coercing/validating path
            engine.post(cost, self._advance, cid, thread)
            return
        # engine.post inlined (second-hottest event source after Compute)
        t = engine.now + cost
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if engine.is_wheel:
            if t == engine.now:
                engine._nowq.append((t, seq, self._advance, thread.adv_args))
            elif t <= engine._aend:
                heappush(engine._abuc, (t, seq, self._advance, thread.adv_args))
            else:
                engine._insert((t, seq, self._advance, thread.adv_args))
        else:
            pool = engine._pool
            if pool:
                ev = pool.pop()
                ev.time = t
                ev.seq = seq
                ev.fn = self._advance
                ev.args = thread.adv_args
                ev.alive = True
            else:
                ev = Event(t, seq, self._advance, thread.adv_args)
                ev._pooled = True
            heappush(engine._heap, (t, seq, ev))

    def interrupt_compute(self, core_id: int) -> bool:
        """Interrupt the current thread's in-flight Compute slice (the
        injected-keypoint / preemptive-task path).  The unused part of the
        slice is un-charged and re-issued as a pending instruction; the
        thread is requeued READY.  Returns True if something was
        interrupted."""
        cur = self._cur[core_id]
        if cur is None or cur.compute_event is None:
            return False
        ev, started, slice_ns = cur.compute_event
        if not ev.alive:
            return False
        ev.cancel()
        cur.compute_event = None
        elapsed = self.engine.now - started
        unused = slice_ns - elapsed
        self._charge(core_id, cur, -unused)
        carry = 0
        if isinstance(cur.pending_instr, Compute):
            carry = cur.pending_instr.ns
        total = unused + carry
        cur.pending_instr = Compute(total) if total > 0 else None
        self._preempt_thread(core_id, cur)
        return True

    def _block(self, cid: int, thread: SimThread, reason: str) -> None:
        thread.state = TState.BLOCKED
        thread.blocked_on = reason
        self._release_core(cid)

    def _finish(self, cid: int, thread: SimThread) -> None:
        thread.state = TState.DONE
        thread.prio_boost = None
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "sched", f"core{cid}", f"finish {thread.name}"
            )
        if thread.is_hook:
            self.cores[cid].hook_live = False
        if thread.prio == Prio.NORMAL:
            self.normal_live -= 1
            if self.normal_live == 0:
                self._nudge_idles()
        thread.done_flag.set(cid)
        self._release_core(cid)

    def _nudge_idles(self) -> None:
        """Wake sleeping idle loops so they can re-evaluate and park."""
        for core in self.cores:
            idle = core.idle_thread
            if (
                idle is not None
                and idle.state is TState.BLOCKED
                and idle.sleep_event is not None
            ):
                idle.sleep_event.cancel()
                idle.sleep_event = None
                self.wake(idle)

    # -- per-instruction handlers ----------------------------------------
    def _exec(self, cid: int, thread: SimThread, instr: Instr) -> None:
        # Exact-type dispatch: instruction classes are final in practice,
        # and ``__class__ is X`` beats an isinstance() chain on the hottest
        # interpreter path.  Unknown (subclassed) instructions fall through
        # to the isinstance-based slow path for compatibility.
        cls = instr.__class__
        if cls is Compute:
            ns = instr.ns
            quantum = self._quantum_ns
            slice_ns = ns if ns <= quantum else quantum
            remaining = ns - slice_ns
            if remaining > 0:
                thread.pending_instr = Compute(remaining)
            thread.cpu_ns += slice_ns
            self._busy[cid] += slice_ns
            engine = self.engine
            ev = engine.schedule(slice_ns, self._advance, cid, thread)
            thread.compute_event = (ev, engine.now, slice_ns)
        elif cls is Acquire:
            start = self.engine.now

            def granted() -> None:
                thread.spin_cancel = None
                if thread.state is _RUNNING and self._cur[cid] is thread:
                    engine = self.engine
                    spun_ns = engine.now - start
                    thread.cpu_ns += spun_ns
                    self._busy[cid] += spun_ns
                    # engine.post_soon inlined (one grant per acquisition)
                    seq = engine._seq
                    engine._seq = seq + 1
                    t = engine.now
                    engine._live += 1
                    if engine.is_wheel:
                        # a grant always lands at ``now``: straight to the
                        # same-instant FIFO
                        engine._nowq.append((t, seq, self._advance, thread.adv_args))
                    else:
                        pool = engine._pool
                        if pool:
                            ev = pool.pop()
                            ev.time = t
                            ev.seq = seq
                            ev.fn = self._advance
                            ev.args = thread.adv_args
                            ev.alive = True
                        else:
                            ev = Event(t, seq, self._advance, thread.adv_args)
                            ev._pooled = True
                        heappush(engine._heap, (t, seq, ev))
                else:  # pragma: no cover - defensive; cancel prevents this
                    raise RuntimeError(
                        f"lock {instr.lock.name!r} granted to descheduled "
                        f"thread {thread.name!r}"
                    )

            waiter = instr.lock.acquire(cid, granted, thread)
            if waiter is not None:
                lock = instr.lock
                thread.spin_cancel = (lambda: lock.cancel_waiter(waiter), instr)
                holder = lock.holder_thread
                if (
                    holder is not None
                    and holder.core_id == cid
                    and holder.state is TState.READY
                    and thread.prio < holder.prio
                ):
                    # Futile spin: the lock's owner was descheduled on THIS
                    # core, so spinning can only starve it (priority-
                    # inversion livelock).  Inherit: boost the holder to the
                    # spinner's priority and yield the CPU to it.
                    holder.prio_boost = thread.prio
                    self._cancel_spin(cid, thread)
        elif cls is Release:
            if thread.prio_boost is not None:
                thread.prio_boost = None  # inherited priority ends here
            cost = instr.lock.release(cid)
            self._resume_after(cid, thread, cost)
        elif cls is SetFlag:
            cost = instr.flag.set(cid)
            self._resume_after(cid, thread, cost)
        elif cls is Sleep:
            ns = instr.ns
            if type(ns) is int and ns >= 0:
                # engine.schedule inlined with a pooled carrier: idle
                # re-polls sleep once per pass, making this the third-
                # hottest event source.  The handle stays cancellable
                # (doorbells cancel it), so the engine ref is kept for
                # live-count upkeep; every cancel site drops the handle
                # immediately, which keeps recycling safe.
                engine = self.engine
                seq = engine._seq
                engine._seq = seq + 1
                t = engine.now + ns
                pool = engine._pool
                if pool:
                    ev = pool.pop()
                    ev.time = t
                    ev.seq = seq
                    ev.fn = self._sleep_wake
                    ev.args = thread.wake_args
                    ev.alive = True
                else:
                    ev = Event(t, seq, self._sleep_wake, thread.wake_args)
                    ev._pooled = True
                ev._engine = engine
                engine._live += 1
                if engine.is_wheel:
                    if ns == 0:
                        engine._nowq.append((t, seq, None, ev))
                    elif t <= engine._aend:
                        heappush(engine._abuc, (t, seq, None, ev))
                    else:
                        engine._insert((t, seq, None, ev))
                else:
                    heappush(engine._heap, (t, seq, ev))
                thread.sleep_event = ev
                self._block(cid, thread, "sleep")
                # an idle thread re-entering its sleeping steady state is
                # the quiescence-leap trigger; arming is a hint only —
                # attempt() re-proves eligibility from scratch
                if thread.prio is Prio.IDLE:
                    lp = engine.leap
                    if lp is not None:
                        lp.armed = True
            else:
                thread.sleep_event = self.engine.schedule(ns, self._sleep_wake, thread)
                self._block(cid, thread, f"sleep:{ns}")
        elif cls is YieldCPU:
            thread.state = TState.READY
            thread.rq_seq = self._rr_seq
            self._rr_seq += 1
            self._rqs[cid].append(thread)
            self._cur[cid] = None
            self._preempt[cid] = False
            engine = self.engine
            if engine.is_wheel:
                seq = engine._seq
                engine._seq = seq + 1
                engine._live += 1
                engine._nowq.append(
                    (engine.now, seq, self._dispatch, self._cid_args[cid])
                )
            else:
                engine.post_soon(self._dispatch, cid)
        elif cls is SpinOn:
            cost = instr.flag.read(cid)
            if instr.flag.is_set:
                self._resume_after(cid, thread, cost)
            else:
                start = self.engine.now

                def spun() -> None:
                    thread.spin_cancel = None
                    if thread.state is _RUNNING and self._cur[cid] is thread:
                        self._charge(cid, thread, self.engine.now - start)
                        self.engine.post_soon(self._advance, cid, thread)
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"flag {instr.flag.name!r} woke a descheduled "
                            f"spinner {thread.name!r}"
                        )

                entry = instr.flag.add_spinner(cid, spun)
                flag = instr.flag
                thread.spin_cancel = (lambda: flag.remove_spinner(entry), instr)
        elif cls is BlockOn:
            cost = instr.flag.read(cid)
            if instr.flag.is_set:
                self._resume_after(cid, thread, cost)
            else:
                self._charge(cid, thread, cost)
                instr.flag.add_blocker(thread)
                self._block(cid, thread, f"flag:{instr.flag.name}")
        elif cls is Park:
            if thread is not self.cores[cid].idle_thread:
                raise RuntimeError("only the idle thread may Park")
            self._block(cid, thread, "parked")
        else:
            self._exec_slow(cid, thread, instr)

    def _exec_slow(self, cid: int, thread: SimThread, instr: Instr) -> None:
        """isinstance-based dispatch for the rarer instructions (and any
        subclassed ones the exact-type fast path above cannot match)."""
        if isinstance(instr, Compute):
            quantum = self.machine.spec.timer_quantum_ns
            slice_ns = min(instr.ns, quantum)
            remaining = instr.ns - slice_ns
            if remaining > 0:
                thread.pending_instr = Compute(remaining)
            self._charge(cid, thread, slice_ns)
            ev = self.engine.schedule(slice_ns, self._advance, cid, thread)
            thread.compute_event = (ev, self.engine.now, slice_ns)
        elif isinstance(instr, Acquire):
            start = self.engine.now

            def granted() -> None:
                thread.spin_cancel = None
                if thread.state is _RUNNING and self._cur[cid] is thread:
                    self._charge(cid, thread, self.engine.now - start)
                    self.engine.post_soon(self._advance, cid, thread)
                else:  # pragma: no cover - defensive; cancel prevents this
                    raise RuntimeError(
                        f"lock {instr.lock.name!r} granted to descheduled "
                        f"thread {thread.name!r}"
                    )

            waiter = instr.lock.acquire(cid, granted, thread)
            if waiter is not None:
                lock = instr.lock
                thread.spin_cancel = (lambda: lock.cancel_waiter(waiter), instr)
                holder = lock.holder_thread
                if (
                    holder is not None
                    and holder.core_id == cid
                    and holder.state is TState.READY
                    and thread.prio < holder.prio
                ):
                    # futile spin against a descheduled same-core holder:
                    # inherit priority and yield (see the fast path)
                    holder.prio_boost = thread.prio
                    self._cancel_spin(cid, thread)
        elif isinstance(instr, Release):
            if thread.prio_boost is not None:
                thread.prio_boost = None
            cost = instr.lock.release(cid)
            self._resume_after(cid, thread, cost)
        elif isinstance(instr, MutexAcquire):
            cost = instr.mutex.acquire(thread)
            if cost is None:
                self._block(cid, thread, f"mutex:{instr.mutex.name}")
            else:
                self._resume_after(cid, thread, cost)
        elif isinstance(instr, MutexRelease):
            cost = instr.mutex.release(thread)
            self._resume_after(cid, thread, cost)
        elif isinstance(instr, BlockOn):
            cost = instr.flag.read(cid)
            if instr.flag.is_set:
                self._resume_after(cid, thread, cost)
            else:
                self._charge(cid, thread, cost)
                instr.flag.add_blocker(thread)
                self._block(cid, thread, f"flag:{instr.flag.name}")
        elif isinstance(instr, BlockOnAny):
            cost = 0
            fired = False
            for f in instr.flags:
                cost += f.read(cid)
                if f.is_set:
                    fired = True
                    break
            if fired:
                self._resume_after(cid, thread, cost)
            else:
                self._charge(cid, thread, cost)
                for f in instr.flags:
                    f.add_blocker(thread)
                thread.multi_flags = instr.flags
                self._block(cid, thread, f"any-of-{len(instr.flags)}-flags")
        elif isinstance(instr, SpinOn):
            cost = instr.flag.read(cid)
            if instr.flag.is_set:
                self._resume_after(cid, thread, cost)
            else:
                start = self.engine.now

                def spun() -> None:
                    thread.spin_cancel = None
                    if thread.state is _RUNNING and self._cur[cid] is thread:
                        self._charge(cid, thread, self.engine.now - start)
                        self.engine.post_soon(self._advance, cid, thread)
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"flag {instr.flag.name!r} woke a descheduled "
                            f"spinner {thread.name!r}"
                        )

                entry = instr.flag.add_spinner(cid, spun)
                flag = instr.flag
                thread.spin_cancel = (lambda: flag.remove_spinner(entry), instr)
        elif isinstance(instr, SetFlag):
            cost = instr.flag.set(cid)
            self._resume_after(cid, thread, cost)
        elif isinstance(instr, Sleep):
            thread.sleep_event = self.engine.schedule(instr.ns, self._sleep_wake, thread)
            self._block(cid, thread, f"sleep:{instr.ns}")
        elif isinstance(instr, YieldCPU):
            thread.state = TState.READY
            thread.rq_seq = self._rr_seq
            self._rr_seq += 1
            self._rqs[cid].append(thread)
            self._cur[cid] = None
            self._preempt[cid] = False
            self.engine.post_soon(self._dispatch, cid)
        elif isinstance(instr, Park):
            if thread is not self.cores[cid].idle_thread:
                raise RuntimeError("only the idle thread may Park")
            self._block(cid, thread, "parked")
        else:
            raise TypeError(f"unknown instruction {instr!r} from {thread!r}")

    def _sleep_wake(self, thread: SimThread) -> None:
        thread.sleep_event = None
        self.wake(thread)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def _count_hard_blocked(self) -> int:
        """Threads blocked with no pending event to free them (deadlock
        candidates once the queue drains).  Parked idle loops and sleepers
        are excluded — sleepers hold a live timer event anyway."""
        n = 0
        for t in self.threads:
            if t.state is TState.BLOCKED and t.sleep_event is None:
                if t.prio == Prio.IDLE:
                    continue
                n += 1
        return n

    def blocked_threads(self) -> list[SimThread]:
        return [
            t
            for t in self.threads
            if t.state is TState.BLOCKED and t.prio != Prio.IDLE and t.sleep_event is None
        ]

    def keypoint_count(self, kind: Keypoint) -> int:
        return sum(c.keypoint_counts[kind] for c in self.cores)

    def core_busy_ns(self) -> list[int]:
        return list(self._busy)

    def core_metrics(self) -> dict[str, Any]:
        """Per-core scheduler counters for the metrics registry.

        Flattens to ``sched.<node>.core<N>.busy_ns`` etc.; keypoint
        counts are broken out per kind (``keypoints.idle`` ...), and
        per-keypoint pass-duration histograms summarize under
        ``keypoint_ns.<kind>.p50/p99/...``.
        """
        out: dict[str, Any] = {}
        for core in self.cores:
            out[f"core{core.id}"] = {
                "busy_ns": core.busy_ns,
                "ctx_switches": core.ctx_switches,
                "timer_ticks": core.timer_ticks,
                "keypoints": {k.value: n for k, n in core.keypoint_counts.items()},
            }
        out["keypoint_ns"] = {k.value: h for k, h in self.keypoint_ns.items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler {self.name} cores={len(self.cores)} live={self.normal_live}>"
