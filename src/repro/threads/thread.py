"""Simulated threads.

A :class:`SimThread` wraps a generator ("body") that yields
:mod:`~repro.threads.instructions` objects.  Threads are pinned to a core
at spawn (Marcel binds its LWPs similarly; the paper's benchmarks spread
application threads across cores and keep them there).  Priorities order
dispatch on a core: injected keypoint hooks run above normal threads, the
idle loop below everything.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.threads.instructions import Instr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.threads.flag import Flag
    from repro.threads.scheduler import Scheduler


class Prio(enum.IntEnum):
    """Dispatch priority (lower value = runs first)."""

    SYSTEM = 0  # injected keypoint hooks
    NORMAL = 10  # application / library threads
    IDLE = 100  # the per-core idle loop


class TState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class ThreadCtx:
    """The API object handed to a thread body.

    Bodies receive exactly one argument — their ``ctx`` — and reach the
    whole simulated world through it.
    """

    __slots__ = ("thread",)

    def __init__(self, thread: "SimThread") -> None:
        self.thread = thread

    @property
    def scheduler(self) -> "Scheduler":
        return self.thread.scheduler

    @property
    def engine(self) -> "Engine":
        return self.thread.scheduler.engine

    @property
    def core_id(self) -> int:
        return self.thread.core_id

    @property
    def now(self) -> int:
        return self.thread.scheduler.engine.now

    def spawn(
        self,
        body: Callable[["ThreadCtx"], Generator[Instr, Any, Any]],
        core: int,
        *,
        name: str = "",
        prio: Prio = Prio.NORMAL,
    ) -> "SimThread":
        """Spawn a sibling thread (convenience passthrough)."""
        return self.thread.scheduler.spawn(body, core, name=name, prio=prio)


class SimThread:
    """One simulated thread, pinned to a core."""

    __slots__ = (
        "scheduler",
        "name",
        "core_id",
        "prio",
        "state",
        "gen",
        "ctx",
        "done_flag",
        "seq",
        "result",
        "pending_instr",
        "resume_value",
        "sleep_event",
        "is_hook",
        "cpu_ns",
        "blocked_on",
        "instr_start",
        "rq_seq",
        "spin_cancel",
        "compute_event",
        "multi_flags",
        "prio_boost",
        "adv_args",
        "wake_args",
    )

    def __init__(
        self,
        scheduler: "Scheduler",
        body: Callable[[ThreadCtx], Generator[Instr, Any, Any]],
        core_id: int,
        name: str,
        prio: Prio,
        seq: int,
        done_flag: "Flag",
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.core_id = core_id
        self.prio = prio
        self.seq = seq
        self.state = TState.NEW
        self.ctx = ThreadCtx(self)
        self.gen = body(self.ctx)
        #: set when the body returns; join() blocks on it
        self.done_flag = done_flag
        #: value returned by the body generator
        self.result: Any = None
        #: instruction to re-execute on next dispatch (preempted compute)
        self.pending_instr: Optional[Instr] = None
        #: value delivered into ``gen.send`` on next advance
        self.resume_value: Any = None
        #: live engine event for an in-progress Sleep (cancellable by rings)
        self.sleep_event: Any = None
        #: True for injected keypoint hook threads (never re-injected over)
        self.is_hook = False
        #: virtual ns this thread actually occupied a core
        self.cpu_ns: int = 0
        #: human-readable reason while BLOCKED (diagnostics, deadlock dumps)
        self.blocked_on: str = ""
        #: virtual time at which the in-flight instruction started
        self.instr_start: int = 0
        #: run-queue arrival stamp (FIFO rotation within a priority)
        self.rq_seq: int = 0
        #: (cancel_fn, instr) while busy-spinning on a lock or flag; lets
        #: the timer preempt a spinner and re-issue the spin later
        self.spin_cancel = None
        #: (event, start_ns, slice_ns) for an in-flight Compute slice so an
        #: injected keypoint can interrupt it mid-slice
        self.compute_event = None
        #: flags this thread is registered on for a BlockOnAny wait
        self.multi_flags = None
        #: temporary effective priority (priority inheritance): set when a
        #: higher-priority spinner would otherwise starve this thread while
        #: it owns a spinlock; cleared when the lock is released
        self.prio_boost: Optional[Prio] = None
        #: interned callback-args tuples: the scheduler posts
        #: ``_advance(core_id, thread)`` and ``_sleep_wake(thread)`` once
        #: or more per instruction, and threads never migrate cores, so
        #: the tuples are built once here instead of per event
        self.adv_args = (core_id, self)
        self.wake_args = (self,)

    @property
    def alive(self) -> bool:
        return self.state is not TState.DONE

    def sort_key(self) -> tuple[int, int]:
        """Run-queue ordering: priority, then FIFO arrival."""
        return (int(self.prio), self.rq_seq)

    def __repr__(self) -> str:
        return (
            f"<SimThread {self.name!r} core={self.core_id} prio={self.prio.name} "
            f"{self.state.value}{' (' + self.blocked_on + ')' if self.blocked_on else ''}>"
        )
