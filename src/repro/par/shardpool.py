"""Persistent forked workers holding live state — ``repro.par.shardpool``.

:func:`repro.par.run_jobs` is one-shot by design: a process per job, no
reuse, results merged at the end.  Sharded cluster simulation needs the
opposite shape — a *long-lived* worker per shard that keeps an
:class:`~repro.sim.engine.Engine` (plus fabric, nodes, workload
generators) alive across hundreds of synchronization windows, exchanging
small messages with the coordinator at each barrier.  Tearing the world
down and rebuilding it per window would dwarf the simulation itself.

:class:`ShardPool` is that shape:

* each worker is forked once, runs the spec's target to build its
  **state object**, then serves method calls over its pipe until told to
  stop — request/reply, strictly one outstanding call per worker;
* :meth:`ShardPool.scatter` sends per-worker arguments to *all* workers
  before collecting *any* reply, so shards genuinely run concurrently
  within a window;
* a worker that raises reports the exception in-band (with its remote
  traceback) and **stays alive** — simulation state is expensive, and a
  window-level protocol error should surface to the caller, not silently
  rebuild the world;
* ``serial=True`` (or a platform without ``fork``) keeps every state
  object in-process and calls methods directly — the same oracle
  equivalence :func:`run_jobs`'s serial fallback provides, and the only
  mode available inside a daemonic ``run_jobs`` worker (daemons may not
  fork children).

Determinism is the caller's contract, same as :mod:`repro.par.pool`:
state construction and every method call must depend only on the spec
and the call arguments, never on scheduling.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Optional, Sequence

from repro.par.jobs import JobSpec
from repro.par.pool import has_fork

#: wire tokens: parent -> worker requests, worker -> parent replies
_CALL, _STOP = "call", "stop"
_OK, _ERR = "ok", "err"


class ShardPoolError(RuntimeError):
    """A worker died, timed out, or could not build its state."""


def _shard_entry(spec: JobSpec, conn) -> None:
    """Worker body: build the state object, then serve calls until stop.

    Exceptions during a call are reported in-band and the loop continues;
    only an exception during *construction* ends the worker (there is no
    state to serve).  Runs inside the forked child.
    """
    try:
        state = spec.run()
    except BaseException as exc:
        try:
            conn.send((_ERR, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        conn.close()
        return
    conn.send((_OK, None))  # construction ack
    while True:
        try:
            request = conn.recv()
        except EOFError:
            break
        if request[0] == _STOP:
            try:
                conn.send((_OK, None))
            except Exception:
                pass
            break
        _, method, args, kwargs = request
        try:
            value = getattr(state, method)(*args, **kwargs)
            try:
                conn.send((_OK, value))
            except Exception as exc:  # unpicklable reply: report in-band
                conn.send((_ERR, f"reply not picklable: {exc!r}"))
        except BaseException:
            conn.send((_ERR, traceback.format_exc(limit=8)))
    conn.close()


class ShardPool:
    """N long-lived stateful workers, one per spec, request/reply pipes.

    ``specs[i]``'s target builds worker *i*'s state object; thereafter
    :meth:`call`, :meth:`broadcast` and :meth:`scatter` invoke methods on
    it.  Construction blocks until every worker acks its build, so a
    builder that raises fails the constructor — not the first window.

    ``timeout_s`` bounds every individual reply (None = unlimited).  Any
    worker death or timeout poisons the pool: it raises
    :class:`ShardPoolError` and every subsequent call raises too, because
    a shard's state cannot be reconstructed mid-protocol.
    """

    def __init__(
        self,
        specs: Sequence[JobSpec],
        *,
        serial: bool = False,
        timeout_s: Optional[float] = None,
    ) -> None:
        if not specs:
            raise ValueError("ShardPool needs at least one spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {names}")
        self.specs = list(specs)
        self.n = len(specs)
        self.timeout_s = timeout_s
        self.serial = bool(serial) or not has_fork()
        self._closed = False
        self._poisoned: Optional[str] = None
        self._states: list[Any] = []
        self._conns: list = []
        self._procs: list = []
        if self.serial:
            self._states = [spec.run() for spec in self.specs]
            return
        ctx = multiprocessing.get_context("fork")
        try:
            for spec in self.specs:
                parent_end, child_end = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_shard_entry, args=(spec, child_end),
                    name=f"repro-shard-{spec.name}", daemon=True,
                )
                proc.start()
                child_end.close()
                self._conns.append(parent_end)
                self._procs.append(proc)
            for i in range(self.n):
                status, payload = self._recv(i)
                if status != _OK:
                    raise ShardPoolError(
                        f"shard {self.specs[i].name!r} failed to build: {payload}"
                    )
        except BaseException:
            self._terminate()
            raise

    @property
    def pids(self) -> list[Optional[int]]:
        """Worker pids (``None`` per worker in serial mode)."""
        if self.serial:
            return [None] * self.n
        return [proc.pid for proc in self._procs]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _recv(self, index: int):
        conn = self._conns[index]
        if self.timeout_s is not None:
            deadline = time.monotonic() + self.timeout_s
            while not conn.poll(min(0.2, self.timeout_s)):
                if time.monotonic() >= deadline:
                    self._poison(
                        f"shard {self.specs[index].name!r} reply timed out "
                        f"after {self.timeout_s:g}s"
                    )
                if not self._procs[index].is_alive():
                    self._poison(
                        f"shard {self.specs[index].name!r} died "
                        f"(exit {self._procs[index].exitcode})"
                    )
        try:
            return conn.recv()
        except (EOFError, OSError):
            self._poison(
                f"shard {self.specs[index].name!r} died "
                f"(exit {self._procs[index].exitcode})"
            )

    def _poison(self, message: str):
        self._poisoned = message
        self._terminate()
        raise ShardPoolError(message)

    def _check(self) -> None:
        if self._poisoned is not None:
            raise ShardPoolError(f"pool is poisoned: {self._poisoned}")
        if self._closed:
            raise ShardPoolError("pool is closed")

    def _unwrap(self, index: int, reply):
        status, payload = reply
        if status != _OK:
            raise ShardPoolError(
                f"shard {self.specs[index].name!r} raised:\n{payload}"
            )
        return payload

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(self, index: int, method: str, *args, **kwargs):
        """Invoke ``method`` on worker ``index``'s state; return its value."""
        self._check()
        if self.serial:
            return getattr(self._states[index], method)(*args, **kwargs)
        self._conns[index].send((_CALL, method, args, kwargs))
        return self._unwrap(index, self._recv(index))

    def broadcast(self, method: str, *args, **kwargs) -> list:
        """Invoke ``method`` with the *same* arguments on every worker."""
        return self.scatter(method, [args] * self.n, [kwargs] * self.n)

    def scatter(
        self,
        method: str,
        args_per_worker: Sequence[tuple],
        kwargs_per_worker: Optional[Sequence[dict]] = None,
    ) -> list:
        """Invoke ``method`` with per-worker arguments; all requests are
        written before any reply is read, so forked workers overlap.
        Returns values in worker order."""
        self._check()
        if len(args_per_worker) != self.n:
            raise ValueError(
                f"scatter needs {self.n} argument tuples, "
                f"got {len(args_per_worker)}"
            )
        if kwargs_per_worker is None:
            kwargs_per_worker = [{}] * self.n
        if self.serial:
            return [
                getattr(state, method)(*args, **kwargs)
                for state, args, kwargs in zip(
                    self._states, args_per_worker, kwargs_per_worker
                )
            ]
        for conn, args, kwargs in zip(
            self._conns, args_per_worker, kwargs_per_worker
        ):
            conn.send((_CALL, method, tuple(args), dict(kwargs)))
        return [
            self._unwrap(i, self._recv(i)) for i in range(self.n)
        ]

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def _terminate(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
                if proc.is_alive():
                    proc.kill()
            proc.join()
        self._conns, self._procs = [], []

    def close(self) -> None:
        """Stop every worker (graceful stop, then terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        if self.serial or self._poisoned is not None:
            self._states = []
            return
        for conn in self._conns:
            try:
                conn.send((_STOP,))
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        self._terminate()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
