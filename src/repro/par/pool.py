"""The process pool: fork-per-job fan-out with deterministic merging.

Design choices, in order of importance:

* **Results merge in spec order.**  Workers finish in whatever order the
  host's scheduler likes; :func:`run_jobs` always returns ``results[i]``
  for ``specs[i]``.  Combined with spec-carried seeds this makes the
  parallel path bit-identical to the serial one.
* **One process per job, no reuse.**  ``fork`` on Linux makes process
  startup cheap (the worker inherits the parent's imported modules), and
  a fresh process per job means a crash or leak in one scenario cannot
  poison the next — the shared-nothing model taken literally.
* **Failure is data.**  A job that raises returns an ``ok=False`` result;
  a *crashed* worker (killed, segfault, ``os._exit``) is retried once —
  the simulator is deterministic, so an in-band exception will just
  recur, but a crash may be environmental (OOM killer, signal).
* **Serial fallback.**  ``jobs <= 1``, a platform without ``fork``
  (Windows, some macOS configs), or ``force_serial=True`` runs the same
  specs in-process, in order, through the very same :meth:`JobSpec.run`
  the workers use.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import connection as mp_connection
from typing import Optional, Sequence

from repro.par.jobs import JobFailure, JobResult, JobSpec

#: status tokens a worker sends back over its pipe
_OK, _ERR = "ok", "err"


def has_fork() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs) -> int:
    """Resolve a user-facing jobs knob to a concrete worker count.

    ``0``, ``None`` and ``"auto"`` (any case) mean "use every CPU" —
    ``os.cpu_count()``.  Positive ints pass through; anything else is a
    :class:`ValueError`.  Every entry point that takes a jobs knob calls
    this, so ``--jobs auto`` behaves identically everywhere.
    """
    if jobs is None:
        return os.cpu_count() or 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("auto", "0", ""):
            return os.cpu_count() or 1
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive int, 0, or 'auto'; got {jobs!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs!r}")
    return int(jobs)


def _worker_entry(spec: JobSpec, conn) -> None:
    """Worker body: run the job, send ``(status, payload, wall_ms)``.

    Runs inside the forked child.  Every exception — including a result
    that fails to pickle on the way back — is reported in-band as an
    ``err`` message; only a genuine crash leaves the pipe empty.
    """
    t0 = time.perf_counter()
    try:
        value = spec.run()
        wall_ms = (time.perf_counter() - t0) * 1e3
        try:
            conn.send((_OK, value, wall_ms))
        except Exception as exc:  # unpicklable result: report, don't crash
            conn.send((_ERR, f"result not picklable: {exc!r}", wall_ms))
    except BaseException as exc:
        wall_ms = (time.perf_counter() - t0) * 1e3
        try:
            conn.send((_ERR, f"{type(exc).__name__}: {exc}", wall_ms))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _run_serial(specs: Sequence[JobSpec], *, workers: int = 1) -> list[JobResult]:
    """In-process execution, spec order — the fallback and the oracle."""
    results: list[JobResult] = []
    for i, spec in enumerate(specs):
        t0 = time.perf_counter()
        try:
            value = spec.run()
            results.append(
                JobResult(
                    name=spec.name, index=i, ok=True, value=value,
                    wall_ms=(time.perf_counter() - t0) * 1e3,
                    workers=workers,
                )
            )
        except Exception as exc:
            results.append(
                JobResult(
                    name=spec.name, index=i, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    wall_ms=(time.perf_counter() - t0) * 1e3,
                    workers=workers,
                )
            )
    return results


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs=1,
    timeout_s: Optional[float] = None,
    crash_retries: int = 1,
    force_serial: bool = False,
) -> list[JobResult]:
    """Run every spec; return :class:`JobResult` objects **in spec order**.

    ``jobs`` is the worker-process cap (``0``/``"auto"``/``None`` resolve
    to ``os.cpu_count()`` via :func:`resolve_jobs`); ``timeout_s`` the
    default per-job wall-clock limit (``spec.timeout_s`` overrides per
    job; ``None`` = unlimited).  A worker that dies without reporting is
    retried up to ``crash_retries`` times; a job that *raises* is not
    retried (the simulator is deterministic — it would raise again).

    Every result carries ``workers`` — the resolved concurrency the batch
    actually ran under — so callers never have to guess what ``auto``
    meant on this host.

    Falls back to in-process serial execution when the resolved count is
    1, when there is at most one spec, when the platform lacks ``fork``,
    or when ``force_serial`` is set.  Both paths execute
    :meth:`JobSpec.run`, so the fallback is an equivalence, not an
    approximation.
    """
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate job names: {names}")
    jobs = resolve_jobs(jobs)
    if force_serial or jobs <= 1 or len(specs) <= 1 or not has_fork():
        return _run_serial(specs)
    workers = min(jobs, len(specs))

    ctx = multiprocessing.get_context("fork")
    results: list[Optional[JobResult]] = [None] * len(specs)
    pending: list[tuple[int, int]] = [(i, 1) for i in range(len(specs))]
    pending.reverse()  # pop() from the end -> dispatch in spec order
    #: conn -> (process, spec index, attempt, absolute deadline or None)
    running: dict = {}

    def launch(index: int, attempt: int) -> None:
        spec = specs[index]
        recv_end, send_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry, args=(spec, send_end),
            name=f"repro-par-{spec.name}", daemon=True,
        )
        proc.start()
        send_end.close()  # parent keeps only the read end
        limit = spec.timeout_s if spec.timeout_s is not None else timeout_s
        deadline = time.monotonic() + limit if limit is not None else None
        running[recv_end] = (proc, index, attempt, deadline)

    def reap(proc) -> None:
        """Stop a worker for good: SIGTERM, then SIGKILL if it lingers
        (a child that ignores/blocks SIGTERM must not hang the pool)."""
        proc.terminate()
        proc.join(5.0)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def finish(conn, proc, index: int, attempt: int, result: JobResult) -> None:
        results[index] = result
        try:
            conn.close()
        except Exception:
            pass
        proc.join()

    def record_timeout(conn, proc, index: int, attempt: int) -> None:
        spec = specs[index]
        limit = spec.timeout_s if spec.timeout_s is not None else timeout_s
        results[index] = JobResult(
            name=spec.name, index=index, ok=False,
            error=f"timed out after {limit:g}s",
            attempts=attempt, pid=proc.pid, parallel=True,
        )
        try:
            conn.close()
        except Exception:
            pass

    try:
        while pending or running:
            while pending and len(running) < jobs:
                index, attempt = pending.pop()
                launch(index, attempt)
            now = time.monotonic()
            deadlines = [d for (_, _, _, d) in running.values() if d is not None]
            wait_s = max(0.0, min(deadlines) - now) if deadlines else None
            ready = mp_connection.wait(list(running), timeout=wait_s)
            for conn in ready:
                proc, index, attempt, deadline = running.pop(conn)
                spec = specs[index]
                try:
                    status, payload, wall_ms = conn.recv()
                except (EOFError, OSError):
                    # pipe closed with nothing in it: the worker crashed
                    proc.join()
                    try:
                        conn.close()
                    except Exception:
                        pass
                    expired = (
                        deadline is not None and time.monotonic() >= deadline
                    )
                    if expired:
                        # A crash at/past the deadline is a timeout, not a
                        # retryable crash: relaunching would grant the job a
                        # fresh full time budget, so a wedged-then-killed
                        # worker could double or triple the intended limit.
                        limit = (
                            spec.timeout_s if spec.timeout_s is not None
                            else timeout_s
                        )
                        results[index] = JobResult(
                            name=spec.name, index=index, ok=False,
                            error=f"worker crashed at its {limit:g}s deadline "
                            f"(exit {proc.exitcode}), not retried",
                            attempts=attempt, pid=proc.pid, parallel=True,
                        )
                    elif attempt <= crash_retries:
                        pending.append((index, attempt + 1))
                    else:
                        results[index] = JobResult(
                            name=spec.name, index=index, ok=False,
                            error=f"worker crashed (exit {proc.exitcode}), "
                            f"{attempt} attempt(s)",
                            attempts=attempt, pid=proc.pid, parallel=True,
                        )
                    continue
                finish(
                    conn, proc, index, attempt,
                    JobResult(
                        name=spec.name, index=index, ok=status == _OK,
                        value=payload if status == _OK else None,
                        error=None if status == _OK else payload,
                        wall_ms=wall_ms, attempts=attempt,
                        pid=proc.pid, parallel=True,
                    ),
                )
            # Reap every job past its deadline on EVERY pass — not only
            # when the wait came back empty.  With a steady stream of
            # completions the wait never times out, and a wedged worker
            # used to outlive its deadline for as long as its siblings
            # kept finishing.
            now = time.monotonic()
            for conn, (proc, index, attempt, deadline) in list(running.items()):
                if deadline is None or now < deadline:
                    continue
                running.pop(conn)
                spec = specs[index]
                if conn.poll():
                    # Last-chance drain: the result landed in the pipe as
                    # the deadline expired.  The work is done — take it
                    # instead of discarding a finished job as a timeout.
                    try:
                        status, payload, wall_ms = conn.recv()
                    except (EOFError, OSError):
                        reap(proc)
                        record_timeout(conn, proc, index, attempt)
                        continue
                    finish(
                        conn, proc, index, attempt,
                        JobResult(
                            name=spec.name, index=index, ok=status == _OK,
                            value=payload if status == _OK else None,
                            error=None if status == _OK else payload,
                            wall_ms=wall_ms, attempts=attempt,
                            pid=proc.pid, parallel=True,
                        ),
                    )
                    continue
                reap(proc)
                record_timeout(conn, proc, index, attempt)
    finally:
        # belt-and-braces: never leak workers on an unexpected error
        for conn, (proc, _, _, _) in running.items():
            proc.terminate()
            proc.join(5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            try:
                conn.close()
            except Exception:
                pass
    assert all(r is not None for r in results)
    for result in results:
        result.workers = workers
    return results  # type: ignore[return-value]


def run_jobs_strict(
    specs: Sequence[JobSpec],
    *,
    jobs=1,
    timeout_s: Optional[float] = None,
    crash_retries: int = 1,
    force_serial: bool = False,
) -> list:
    """Like :func:`run_jobs` but returns bare values, raising
    :class:`JobFailure` (listing every failed job) if any job failed."""
    results = run_jobs(
        specs, jobs=jobs, timeout_s=timeout_s,
        crash_retries=crash_retries, force_serial=force_serial,
    )
    failures = [r for r in results if not r.ok]
    if failures:
        raise JobFailure(failures)
    return [r.value for r in results]


def _job_pid(_: object = None) -> int:
    """Tiny importable job target: the executing process id (used by the
    fallback / fan-out tests to prove where a job actually ran)."""
    return os.getpid()
