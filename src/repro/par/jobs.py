"""The job abstraction: picklable specs, deterministic seeds, results.

A job names a module-level callable by dotted path (``"pkg.mod:func"``)
plus keyword arguments.  Specs cross the process boundary by pickle, so
everything in ``kwargs`` must be picklable — plain data, or classes /
functions importable at module level.  The callable's return value is the
job's *value* and crosses back the same way.

Seeds are part of the spec, never of the execution: :func:`derive_seed`
maps ``(root_seed, job_key)`` to a stable 32-bit seed, so a job's random
stream is fixed the moment the spec is built — identical whether the job
runs serially, first on worker 3, or last after a crash retry.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


def derive_seed(root_seed: int, key: str) -> int:
    """A stable per-job seed from a root seed and the job's identity.

    Uses SHA-256 over ``"{root_seed}:{key}"`` truncated to 32 bits —
    order-free (no shared counter), collision-resistant across keys, and
    identical on every platform and Python version (unlike ``hash()``,
    which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def resolve_target(target: str) -> Callable[..., Any]:
    """Import ``"pkg.mod:callable"`` and return the callable."""
    module_name, sep, attr = target.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"job target must be 'module:callable', got {target!r}")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise ValueError(f"{module_name!r} has no attribute {attr!r}") from None
    if not callable(fn):
        raise ValueError(f"job target {target!r} is not callable")
    return fn


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: a named call to a module-level function.

    ``timeout_s`` overrides the pool-wide timeout for this job only;
    ``None`` means inherit.  ``name`` is the job's identity for reporting
    and seed derivation — unique within one :func:`run_jobs` batch.
    """

    name: str
    target: str
    kwargs: dict = field(default_factory=dict)
    timeout_s: Optional[float] = None

    def run(self) -> Any:
        """Execute in the current process (the serial path and the worker
        body are this same call, which is what makes them equivalent)."""
        return resolve_target(self.target)(**self.kwargs)


@dataclass
class JobResult:
    """Outcome of one job, in canonical (spec) order.

    ``ok`` jobs carry ``value``; failed jobs carry ``error`` (a string —
    exception reprs don't always pickle).  ``attempts`` counts executions
    including the crash retry; ``pid`` is the worker process (``None``
    when run in-process); ``parallel`` records which path executed it;
    ``workers`` is the resolved worker-process cap the batch ran under
    (1 for the serial path — ``jobs=0``/``auto`` resolves to the host's
    CPU count before it lands here, so consumers never see a 0).
    """

    name: str
    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    wall_ms: float = 0.0
    attempts: int = 1
    pid: Optional[int] = None
    parallel: bool = False
    workers: int = 1


class JobFailure(RuntimeError):
    """Raised by :func:`repro.par.run_jobs_strict` when any job failed."""

    def __init__(self, failures: list[JobResult]):
        self.failures = failures
        lines = [f"{len(failures)} job(s) failed:"]
        lines += [f"  {r.name}: {r.error}" for r in failures]
        super().__init__("\n".join(lines))
