"""Process-level experiment parallelism — ``repro.par``.

The simulator is deterministic, seeded and shared-nothing: every bench
scenario builds its own :class:`~repro.sim.engine.Engine`, scheduler and
machine, so two scenarios never share mutable state.  CPython's GIL makes
in-process threading useless for this workload (DESIGN.md band-2 note),
but *process*-level fan-out is free parallelism — the model Dask's
distributed workers use, applied to a single host.

The contract is **bit-identical to serial**: a job's outcome depends only
on its spec (target + kwargs, seed included), never on which worker ran
it, in what order, or how many workers there were.  :func:`run_jobs`
returns results re-sorted into spec order, so callers see exactly what a
serial loop would have produced.

* :class:`JobSpec` / :class:`JobResult` — the picklable unit of work and
  its outcome (value or error, wall time, attempts, worker pid);
* :func:`derive_seed` — stable per-job seeds from one root seed;
* :func:`run_jobs` / :func:`run_jobs_strict` — the pool: ``fork``-based
  workers with per-job timeout, one bounded retry on worker crash, and a
  clean in-process serial fallback (resolved ``jobs<=1`` or no ``fork``);
* :func:`resolve_jobs` — ``0``/``"auto"``/``None`` → ``os.cpu_count()``,
  so every CLI and API jobs knob speaks the same dialect;
* :class:`ShardPool` — the *stateful* sibling: long-lived forked workers
  each holding a live state object (a cluster shard's engine + fabric),
  serving method calls over pipes until closed — the substrate for
  :mod:`repro.cluster.shard`'s window-synchronized parallel simulation.
"""

from repro.par.jobs import JobFailure, JobResult, JobSpec, derive_seed, resolve_target
from repro.par.pool import has_fork, resolve_jobs, run_jobs, run_jobs_strict
from repro.par.shardpool import ShardPool, ShardPoolError

__all__ = [
    "JobFailure",
    "JobResult",
    "JobSpec",
    "ShardPool",
    "ShardPoolError",
    "derive_seed",
    "has_fork",
    "resolve_jobs",
    "resolve_target",
    "run_jobs",
    "run_jobs_strict",
]
