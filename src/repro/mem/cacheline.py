"""Cache-line cost model.

The paper's scalability results are, at bottom, stories about cache lines:

* Algorithm 2's emptiness check without the lock is cheap because an empty
  queue's state line settles into a *shared* state across all polling cores
  — reads cost local latency and generate no coherence traffic.
* Enqueueing into a widely-polled queue is expensive because the write must
  invalidate every sharer, and each subsequent reader misses.
* Lock handoff cost equals a line transfer between the previous and next
  holder, hence the NUMA distance between them.

:class:`CacheLine` models exactly that much — an owner (last writer) and a
sharer set — and returns a *cost in nanoseconds* from every access, which
the caller charges to the acting core's virtual time.  It deliberately does
not model capacity/conflict misses: the structures of interest (queue
heads, lock words, completion flags) are hot lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.machine import Machine


@dataclass
class MemStats:
    """Aggregate coherence-traffic counters (shared by related lines)."""

    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    write_hits: int = 0
    invalidations: int = 0
    transfer_ns_total: int = 0

    def merge(self, other: "MemStats") -> "MemStats":
        out = MemStats()
        for f in (
            "reads",
            "read_hits",
            "read_misses",
            "writes",
            "write_hits",
            "invalidations",
            "transfer_ns_total",
        ):
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out


class CacheLine:
    """One hot cache line: MESI reduced to {owner, sharers}.

    ``read(core)``/``write(core)`` mutate the coherence state and return
    the access latency in ns.  Ownership means "last writer"; a line with
    several sharers and an owner corresponds to MESI Shared with the
    owner's copy also Shared (we keep the owner id to price the next miss).
    """

    __slots__ = ("machine", "owner", "sharers", "name", "stats")

    def __init__(
        self,
        machine: "Machine",
        home: int = 0,
        name: str = "",
        stats: Optional[MemStats] = None,
    ) -> None:
        self.machine = machine
        self.owner = home
        self.sharers: set[int] = {home}
        self.name = name
        self.stats = stats if stats is not None else MemStats()

    # ------------------------------------------------------------------
    def read(self, core: int) -> int:
        """Load by ``core``; returns latency in ns."""
        st = self.stats
        st.reads += 1
        if core in self.sharers:
            st.read_hits += 1
            return self.machine.spec.local_ns
        st.read_misses += 1
        cost = self.machine.xfer(self.owner, core)
        st.transfer_ns_total += cost
        self.sharers.add(core)
        return cost

    def write(self, core: int) -> int:
        """Store by ``core``; invalidates all other sharers; latency in ns."""
        machine = self.machine
        st = self.stats
        sharers = self.sharers
        st.writes += 1
        # owner is always a sharer, so owner==core + one sharer == {core}
        if self.owner == core and len(sharers) == 1:
            st.write_hits += 1
            return machine.spec.local_ns
        # Fetch the line if we do not hold a copy at all.
        if core in sharers:
            cost = machine.spec.local_ns
        else:
            cost = machine.xfer(self.owner, core)
        # Invalidate every other sharer; the writer observes the latency of
        # the farthest acknowledgement.  Loop instead of list + max(): this
        # runs on every contended store.
        inval = 0
        farthest = 0
        xrow = machine.xfer_row(core)
        for s in sharers:
            if s != core:
                inval += 1
                d = xrow[s]
                if d > farthest:
                    farthest = d
        if inval:
            st.invalidations += inval
            cost += farthest
        st.transfer_ns_total += cost
        self.owner = core
        self.sharers = {core}
        return cost

    def write_async(self, core: int) -> int:
        """Fire-and-forget store (store-buffer semantics).

        The writer is charged only its local store latency; the coherence
        transfer cost surfaces later as read misses by other cores (and,
        for notification words, as the doorbell/wake latency).  Using this
        for list-head and completion words avoids double-charging one
        physical transfer to both the writer and the notified reader.
        """
        st = self.stats
        sharers = self.sharers
        st.writes += 1
        others = len(sharers) - (1 if core in sharers else 0)
        if others:
            st.invalidations += others
        else:
            st.write_hits += 1
        self.owner = core
        self.sharers = {core}
        return self.machine.spec.local_ns

    def rmw(self, core: int) -> int:
        """Atomic read-modify-write (CAS): a write plus the ALU cost."""
        return self.write(core) + self.machine.spec.cas_ns

    def is_shared_by(self, core: int) -> bool:
        return core in self.sharers

    def __repr__(self) -> str:
        return f"<CacheLine {self.name or id(self)} owner={self.owner} sharers={sorted(self.sharers)}>"
