"""MESI-like cache-line cost model."""

from repro.mem.cacheline import CacheLine, MemStats

__all__ = ["CacheLine", "MemStats"]
