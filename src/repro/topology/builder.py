"""Machine builders.

Two machines are modeled after the paper's evaluation hosts:

* :func:`borderline` — 4-socket dual-core Opteron 8218 (8 cores).  No L3
  cache, so sibling cores share only the memory bank of their chip; the
  queue hierarchy has three levels: per-core, per-chip, global (Table I).
* :func:`kwak` — 4-socket quad-core Opteron 8347HE (16 cores), one NUMA
  node per socket, 4 cores sharing an L3 per chip (Fig. 3, Table II).

Transfer-latency constants are calibrated from the paper's *uncontended*
measurements: remote-core task scheduling shows ~+100 ns on borderline and
~+1 µs on kwak versus local (paper §V-A, level-1 analysis).

Generic builders (:func:`smp`, :func:`numa_machine`) cover arbitrary shapes
for scalability studies beyond the paper's two hosts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.topology.machine import Level, Machine, MachineSpec, TopoNode


def borderline() -> Machine:
    """The paper's 8-core host: 4 chips x 2 cores, no shared cache."""
    spec = MachineSpec(
        name="borderline",
        local_ns=6,
        cas_ns=12,
        xfer_ns={
            Level.CHIP: 8,  # sibling core, same memory bank
            Level.MACHINE: 16,  # cross-chip HyperTransport hop (clean)
        },
        contended_factor=55.0,
        inval_ns={Level.CHIP: 90, Level.MACHINE: 110},
    )
    root = TopoNode(Level.MACHINE, 0, name="machine")
    core_id = 0
    for chip in range(4):
        chip_node = TopoNode(Level.CHIP, chip, parent=root)
        for _ in range(2):
            TopoNode(Level.CORE, core_id, parent=chip_node)
            core_id += 1
    return Machine(spec, root)


def kwak() -> Machine:
    """The paper's 16-core host: 4 NUMA nodes x (1 chip x 4 cores + L3)."""
    spec = MachineSpec(
        name="kwak",
        local_ns=6,
        cas_ns=12,
        xfer_ns={
            Level.CACHE: 10,  # within the shared L3
            Level.MACHINE: 155,  # cross-NUMA HyperTransport (clean)
        },
        contended_factor=25.0,
        inval_ns={Level.CACHE: 120, Level.MACHINE: 160},
    )
    root = TopoNode(Level.MACHINE, 0, name="machine")
    core_id = 0
    for numa in range(4):
        numa_node = TopoNode(Level.NUMA, numa, parent=root)
        cache = TopoNode(Level.CACHE, numa, parent=numa_node, name=f"l3#{numa}")
        for _ in range(4):
            TopoNode(Level.CORE, core_id, parent=cache)
            core_id += 1
    return Machine(spec, root)


def smp(
    nchips: int,
    cores_per_chip: int,
    *,
    name: Optional[str] = None,
    sibling_xfer_ns: int = 30,
    cross_chip_xfer_ns: int = 100,
    spec: Optional[MachineSpec] = None,
) -> Machine:
    """A flat SMP: ``nchips`` chips of ``cores_per_chip`` cores, no NUMA."""
    if nchips < 1 or cores_per_chip < 1:
        raise ValueError("need at least one chip and one core per chip")
    if spec is None:
        spec = MachineSpec(
            name=name or f"smp{nchips}x{cores_per_chip}",
            xfer_ns={
                Level.CHIP: sibling_xfer_ns,
                Level.MACHINE: cross_chip_xfer_ns,
            },
        )
    root = TopoNode(Level.MACHINE, 0, name="machine")
    core_id = 0
    for chip in range(nchips):
        chip_node = TopoNode(Level.CHIP, chip, parent=root)
        for _ in range(cores_per_chip):
            TopoNode(Level.CORE, core_id, parent=chip_node)
            core_id += 1
    return Machine(spec, root)


def numa_machine(
    nnuma: int,
    chips_per_numa: int,
    cores_per_chip: int,
    *,
    name: Optional[str] = None,
    shared_l3: bool = True,
    l3_xfer_ns: int = 26,
    chip_xfer_ns: int = 60,
    numa_xfer_ns: int = 250,
    cross_numa_xfer_ns: int = 1_000,
    spec: Optional[MachineSpec] = None,
) -> Machine:
    """A generic NUMA machine with the full four-level hierarchy."""
    for v, label in ((nnuma, "NUMA nodes"), (chips_per_numa, "chips"), (cores_per_chip, "cores")):
        if v < 1:
            raise ValueError(f"need at least one of: {label}")
    if spec is None:
        xfer = {
            Level.CHIP: chip_xfer_ns,
            Level.NUMA: numa_xfer_ns,
            Level.MACHINE: cross_numa_xfer_ns,
        }
        if shared_l3:
            xfer[Level.CACHE] = l3_xfer_ns
        spec = MachineSpec(
            name=name or f"numa{nnuma}x{chips_per_numa}x{cores_per_chip}",
            xfer_ns=xfer,
        )
    root = TopoNode(Level.MACHINE, 0, name="machine")
    core_id = 0
    cache_id = 0
    for numa in range(nnuma):
        numa_node = TopoNode(Level.NUMA, numa, parent=root)
        for chip in range(chips_per_numa):
            chip_node = TopoNode(Level.CHIP, numa * chips_per_numa + chip, parent=numa_node)
            parent: TopoNode = chip_node
            if shared_l3:
                parent = TopoNode(Level.CACHE, cache_id, parent=chip_node, name=f"l3#{cache_id}")
                cache_id += 1
            for _ in range(cores_per_chip):
                TopoNode(Level.CORE, core_id, parent=parent)
                core_id += 1
    return Machine(spec, root)


def ccx_machine(
    nnuma: int = 2,
    chips_per_numa: int = 2,
    ccx_per_chip: int = 2,
    cores_per_ccx: int = 3,
    *,
    name: Optional[str] = None,
    l3_xfer_ns: int = 26,
    chip_xfer_ns: int = 60,
    numa_xfer_ns: int = 250,
    cross_numa_xfer_ns: int = 1_000,
    spec: Optional[MachineSpec] = None,
) -> Machine:
    """A chiplet machine: several L3 complexes ("CCX") per chip.

    Unlike :func:`numa_machine` — whose single L3 spans its whole chip, so
    the chip level collapses into the cache level in the queue hierarchy —
    a multi-CCX chip keeps all five levels distinct (core, L3, chip, NUMA,
    machine).  This is the deepest scan path the topology model can
    express, and matches post-2017 chiplet parts where an 8-core die holds
    two 4-core L3 complexes.
    """
    for v, label in (
        (nnuma, "NUMA nodes"), (chips_per_numa, "chips"),
        (ccx_per_chip, "CCX per chip"), (cores_per_ccx, "cores per CCX"),
    ):
        if v < 1:
            raise ValueError(f"need at least one of: {label}")
    if spec is None:
        spec = MachineSpec(
            name=name
            or f"ccx{nnuma}x{chips_per_numa}x{ccx_per_chip}x{cores_per_ccx}",
            xfer_ns={
                Level.CACHE: l3_xfer_ns,
                Level.CHIP: chip_xfer_ns,
                Level.NUMA: numa_xfer_ns,
                Level.MACHINE: cross_numa_xfer_ns,
            },
        )
    root = TopoNode(Level.MACHINE, 0, name="machine")
    core_id = 0
    cache_id = 0
    for numa in range(nnuma):
        numa_node = TopoNode(Level.NUMA, numa, parent=root)
        for chip in range(chips_per_numa):
            chip_node = TopoNode(
                Level.CHIP, numa * chips_per_numa + chip, parent=numa_node
            )
            for _ in range(ccx_per_chip):
                ccx = TopoNode(
                    Level.CACHE, cache_id, parent=chip_node, name=f"l3#{cache_id}"
                )
                cache_id += 1
                for _ in range(cores_per_ccx):
                    TopoNode(Level.CORE, core_id, parent=ccx)
                    core_id += 1
    return Machine(spec, root)


def from_counts(counts: Sequence[int], spec: MachineSpec) -> Machine:
    """Build from a ``[nnuma, nchips_per_numa, ncores_per_chip]``-style list.

    Lengths 1..3 are accepted: ``[8]`` is 8 cores on one chip, ``[4, 2]``
    is 4 chips x 2 cores, ``[4, 1, 4]`` is 4 NUMA x 1 chip x 4 cores.
    """
    if not 1 <= len(counts) <= 3:
        raise ValueError("counts must have 1..3 entries")
    if len(counts) == 1:
        return smp(1, counts[0], spec=spec)
    if len(counts) == 2:
        return smp(counts[0], counts[1], spec=spec)
    return numa_machine(counts[0], counts[1], counts[2], spec=spec)


def nehalem_ex_64() -> Machine:
    """The machine the paper's introduction anticipates (§I): "Intel
    announces the 8-core Nehalem-EX for late 2009.  An 8-way motherboard
    with such processors will lead to 64 cores per node."

    Eight NUMA nodes of eight cores sharing an L3, with kwak-calibrated
    latency constants — the forward-scalability study's largest point.
    """
    spec = MachineSpec(
        name="nehalem_ex_64",
        local_ns=6,
        cas_ns=12,
        xfer_ns={Level.CACHE: 10, Level.MACHINE: 155},
        contended_factor=25.0,
        inval_ns={Level.CACHE: 120, Level.MACHINE: 160},
    )
    return numa_machine(8, 1, 8, shared_l3=True, spec=spec)


#: Registry used by the bench CLI (``--machine kwak``).
MACHINES = {
    "borderline": borderline,
    "kwak": kwak,
    "ccx24": ccx_machine,
    "nehalem_ex_64": nehalem_ex_64,
}
