"""CPU sets.

A :class:`CpuSet` is an immutable bitmask of core ids, mirroring
``cpu_set_t`` / Marcel's vpsets.  The communication library attaches one to
each task to restrict which cores may execute it (paper §III); PIOMan maps
the set to the narrowest topology node whose core span covers it.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of a non-negative int, lowest first.

    Shared helper for bitmask walks (CPU sets, the queue hierarchy's
    occupancy summary): isolating the lowest set bit with ``mask & -mask``
    jumps straight between set bits instead of shifting through every
    zero in between, which matters for sparse masks over many positions.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CpuSet:
    """Immutable set of core ids backed by an int bitmask."""

    __slots__ = ("mask",)

    def __init__(self, cores: Iterable[int] | int = ()) -> None:
        if isinstance(cores, int):
            if cores < 0:
                raise ValueError("mask must be non-negative")
            self.mask = cores
        else:
            m = 0
            for c in cores:
                if c < 0:
                    raise ValueError(f"negative core id {c}")
                m |= 1 << c
            self.mask = m

    # -- constructors ---------------------------------------------------
    @classmethod
    def single(cls, core: int) -> "CpuSet":
        """The set containing exactly one core."""
        return cls(1 << core)

    @classmethod
    def range(cls, lo: int, hi: int) -> "CpuSet":
        """Cores ``lo..hi-1`` (half-open, like :func:`range`)."""
        if hi < lo:
            raise ValueError("empty or inverted range")
        return cls(((1 << (hi - lo)) - 1) << lo)

    @classmethod
    def all(cls, ncores: int) -> "CpuSet":
        """The full set for a machine with ``ncores`` cores."""
        return cls((1 << ncores) - 1)

    # -- set algebra -----------------------------------------------------
    def __or__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self.mask | other.mask)

    def __and__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self.mask & other.mask)

    def __sub__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self.mask & ~other.mask)

    def __xor__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self.mask ^ other.mask)

    def issubset(self, other: "CpuSet") -> bool:
        return self.mask & ~other.mask == 0

    def issuperset(self, other: "CpuSet") -> bool:
        return other.mask & ~self.mask == 0

    def intersects(self, other: "CpuSet") -> bool:
        return bool(self.mask & other.mask)

    def contains(self, core: int) -> bool:
        return bool(self.mask >> core & 1)

    __contains__ = contains

    # -- inspection --------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.mask)

    def __len__(self) -> int:
        return self.mask.bit_count()

    def __bool__(self) -> bool:
        return self.mask != 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CpuSet) and self.mask == other.mask

    def __hash__(self) -> int:
        return hash(("CpuSet", self.mask))

    def first(self) -> int:
        """Lowest core id in the set (the set must be non-empty)."""
        if not self.mask:
            raise ValueError("empty CpuSet")
        return (self.mask & -self.mask).bit_length() - 1

    def __repr__(self) -> str:
        return f"CpuSet({list(self)})"


#: The empty CPU set (meaning "no restriction" is expressed by an explicit
#: full set, never by emptiness — an empty set in a task is an error).
EMPTY = CpuSet(0)
