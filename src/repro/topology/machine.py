"""Machine topology tree.

The paper (Fig. 2) maps one task queue onto every node of the machine's
hardware topology: per-core, per-shared-cache, per-chip, per-NUMA-node and
a global queue.  This module provides that tree, plus the *transfer cost*
function used by the memory model: moving a cache line between two cores
costs a latency determined by their deepest common topology level.

The calibration constants live in :class:`MachineSpec`, so a machine is
entirely described by data — the named builders in
:mod:`repro.topology.builder` only assemble specs and trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.topology.cpuset import CpuSet


class Level(enum.IntEnum):
    """Topology levels, innermost first.

    A machine need not use every level (borderline has no shared cache and
    no distinct NUMA level); the tree simply omits the missing ones.
    """

    CORE = 0
    CACHE = 1
    CHIP = 2
    NUMA = 3
    MACHINE = 4


@dataclass
class MachineSpec:
    """All latency calibration constants of a simulated machine.

    Transfer costs are the *uncontended* cache-line move latencies between
    two cores whose deepest common topology level is the key.  Contention
    effects (handoff queueing, invalidation storms) are modeled by the
    lock/memory layers on top of these base numbers, not baked in here.
    """

    name: str
    #: ns to read/write a line already owned by this core
    local_ns: int = 6
    #: ns of pure ALU bookkeeping for a compare-and-swap on an owned line
    cas_ns: int = 12
    #: uncontended line transfer latency keyed by deepest common level
    xfer_ns: dict[Level, int] = field(default_factory=dict)
    #: multiplier applied to a line transfer that happens under contention
    #: (CAS retry storms / queued handoffs); dimensionless
    contended_factor: float = 3.0
    #: cost of a thread context switch (motivates spinlocks over mutexes)
    context_switch_ns: int = 2_000
    #: spin-waiters older than this win lock handoffs regardless of
    #: proximity (hardware arbitration is eventually fair; without a bound
    #: two nearby cores can ping-pong a lock while remote spinners starve)
    lock_starvation_ns: int = 25_000
    #: scheduler timer-interrupt period (Marcel keypoint)
    timer_quantum_ns: int = 1_000_000
    #: base cost of invoking an empty ltask's function
    task_run_ns: int = 150
    #: cost of allocating/initialising a task structure before submit
    task_init_ns: int = 320
    #: cost of routing a CPU set to its queue during submission
    submit_route_ns: int = 160
    #: cost of one emptiness check in Algorithm 2 when the flag line is
    #: locally cached (remote states pay xfer on top)
    spin_check_ns: int = 10
    #: invalidation-propagation latency keyed by deepest common level: how
    #: long a remote core keeps serving a stale cached copy of a written
    #: word.  Distinct from the clean-transfer cost — invalidation
    #: broadcasts queue behind probe traffic on these HyperTransport
    #: parts.  Falls back to the transfer cost where unset.
    inval_ns: dict[Level, int] = field(default_factory=dict)
    #: period of one full queue-scan probe loop on a spinning/idle core;
    #: a doorbell ring lands a uniform-random phase of this cycle after
    #: the write it models (continuous polling abstracted to one event)
    probe_cycle_ns: int = 120
    #: how long an idle core waits between repeat-task polling rounds when
    #: every repeat task reported "not complete" (models timer-driven
    #: progression granularity for polling loops)
    idle_repoll_ns: int = 2_000

    def inval(self, level: Level) -> int:
        """Invalidation-propagation latency for a given common level."""
        if level == Level.CORE:
            return self.local_ns
        for lv in range(level, Level.MACHINE + 1):
            if Level(lv) in self.inval_ns:
                return self.inval_ns[Level(lv)]
        return self.xfer(level)

    def xfer(self, level: Level) -> int:
        """Uncontended transfer cost for a given common level."""
        if level == Level.CORE:
            return self.local_ns
        # fall back to the nearest defined outer level so sparse specs work
        for lv in range(level, Level.MACHINE + 1):
            if Level(lv) in self.xfer_ns:
                return self.xfer_ns[Level(lv)]
        raise KeyError(f"{self.name}: no transfer cost at/above {level!r}")


class TopoNode:
    """One node of the topology tree (a machine, NUMA node, chip, cache or
    core).  Leaves are cores; every node knows its covered :class:`CpuSet`.
    """

    __slots__ = ("level", "index", "name", "parent", "children", "cpuset", "attrs")

    def __init__(
        self,
        level: Level,
        index: int,
        parent: Optional["TopoNode"] = None,
        name: Optional[str] = None,
    ) -> None:
        self.level = level
        self.index = index
        self.parent = parent
        self.children: list[TopoNode] = []
        self.cpuset = CpuSet(0)
        self.name = name or f"{level.name.lower()}#{index}"
        self.attrs: dict = {}
        if parent is not None:
            parent.children.append(self)

    # -- structure ----------------------------------------------------
    def ancestors(self) -> Iterator["TopoNode"]:
        """Self, then each ancestor up to the root."""
        node: Optional[TopoNode] = self
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        return sum(1 for _ in self.ancestors()) - 1

    def iter_subtree(self) -> Iterator["TopoNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def cores(self) -> list["TopoNode"]:
        """Leaf core nodes below (or equal to) this node, ordered by id."""
        return sorted(
            (n for n in self.iter_subtree() if n.level == Level.CORE),
            key=lambda n: n.index,
        )

    def __repr__(self) -> str:
        return f"<TopoNode {self.name} cpuset={list(self.cpuset)}>"


class Machine:
    """A fully built machine: topology tree + spec + distance matrix.

    ``machine.core_nodes[i]`` is the :class:`TopoNode` leaf of core ``i``;
    ``machine.xfer(a, b)`` the uncontended line-transfer cost between cores.
    """

    def __init__(self, spec: MachineSpec, root: TopoNode) -> None:
        self.spec = spec
        self.root = root
        self.core_nodes: list[TopoNode] = root.cores()
        if [c.index for c in self.core_nodes] != list(range(len(self.core_nodes))):
            raise ValueError("core ids must be dense 0..n-1")
        self.ncores = len(self.core_nodes)
        self._fill_cpusets(root)
        self._xfer = self._build_xfer_matrix()
        self._inval = [
            [self.spec.inval(self._common_level(a, b)) for b in range(self.ncores)]
            for a in range(self.ncores)
        ]
        #: elementwise max of transfer and invalidation latency — the
        #: earliest a write by ``a`` becomes observable on ``b`` (doorbell
        #: notice time); precomputed because every ring consults it
        self._notice = [
            [max(x, i) for x, i in zip(xrow, irow)]
            for xrow, irow in zip(self._xfer, self._inval)
        ]
        #: every topology node, outermost first (useful to build queues)
        self.nodes: list[TopoNode] = list(root.iter_subtree())

    def _fill_cpusets(self, node: TopoNode) -> CpuSet:
        if node.level == Level.CORE:
            node.cpuset = CpuSet.single(node.index)
        else:
            acc = CpuSet(0)
            for child in node.children:
                acc = acc | self._fill_cpusets(child)
            node.cpuset = acc
        return node.cpuset

    def _common_level(self, a: int, b: int) -> Level:
        if a == b:
            return Level.CORE
        node = self.core_nodes[a]
        for anc in node.ancestors():
            if anc.cpuset.contains(b):
                return anc.level
        raise ValueError(f"cores {a} and {b} share no ancestor")

    def _build_xfer_matrix(self) -> list[list[int]]:
        n = self.ncores
        return [
            [self.spec.xfer(self._common_level(a, b)) for b in range(n)]
            for a in range(n)
        ]

    # -- queries --------------------------------------------------------
    def xfer(self, src_core: int, dst_core: int) -> int:
        """Uncontended cache-line transfer cost between two cores (ns)."""
        return self._xfer[src_core][dst_core]

    def xfer_row(self, src_core: int) -> list[int]:
        """One row of the transfer matrix: costs from ``src_core`` to every
        core.  Hot scans (idle-core search, lock handoff arbitration) bind
        this once instead of paying two indexing calls per candidate."""
        return self._xfer[src_core]

    def inval(self, src_core: int, dst_core: int) -> int:
        """Invalidation-propagation latency between two cores (ns)."""
        return self._inval[src_core][dst_core]

    def inval_row(self, src_core: int) -> list[int]:
        """One row of the invalidation matrix (hot-path row binding)."""
        return self._inval[src_core]

    def notice(self, src_core: int, dst_core: int) -> int:
        """When a store by ``src_core`` becomes observable on ``dst_core``:
        ``max(xfer, inval)`` — a probe cannot see the write before the
        invalidation reaches it, nor before the line itself can."""
        return self._notice[src_core][dst_core]

    def common_level(self, a: int, b: int) -> Level:
        """Deepest topology level shared by two cores."""
        return self._common_level(a, b)

    def node_covering(self, cpuset: CpuSet) -> TopoNode:
        """The *narrowest* topology node whose span covers ``cpuset``.

        This is the routing rule of paper §III-A: a task restricted to one
        core lands in that core's queue; one spanning a chip in the chip
        queue; anything wider in the global queue.
        """
        if not cpuset:
            raise ValueError("cannot route an empty CpuSet")
        if not cpuset.issubset(self.root.cpuset):
            raise ValueError(f"{cpuset!r} exceeds machine cores")
        node = self.core_nodes[cpuset.first()]
        for anc in node.ancestors():
            if cpuset.issubset(anc.cpuset):
                return anc
        raise AssertionError("unreachable: root covers every valid set")

    def siblings_sharing(self, core: int, level: Level) -> CpuSet:
        """Cores sharing the given topology level with ``core``.

        NewMadeleine uses this to build polling-task CPU sets ("the cores
        that share a cache with the current CPU", paper §IV-B).  If the
        machine lacks that level the next outer existing level is used.
        """
        node = self.core_nodes[core]
        best = node.cpuset
        for anc in node.ancestors():
            if anc.level <= level:
                best = anc.cpuset
            else:
                break
        return best

    def all_cores(self) -> CpuSet:
        return self.root.cpuset

    def describe(self) -> str:
        """ASCII rendering of the topology tree (for docs and debugging)."""
        lines: list[str] = [f"machine {self.spec.name!r} ({self.ncores} cores)"]

        def rec(node: TopoNode, indent: int) -> None:
            lines.append("  " * indent + f"{node.name}: cores {list(node.cpuset)}")
            for child in node.children:
                rec(child, indent + 1)

        rec(self.root, 1)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Machine {self.spec.name} ncores={self.ncores}>"
