"""Machine topology: CPU sets, the topology tree and machine builders."""

from repro.topology.cpuset import CpuSet
from repro.topology.machine import Level, Machine, MachineSpec, TopoNode
from repro.topology.builder import (
    MACHINES,
    borderline,
    from_counts,
    kwak,
    nehalem_ex_64,
    numa_machine,
    smp,
)

__all__ = [
    "CpuSet",
    "Level",
    "Machine",
    "MachineSpec",
    "TopoNode",
    "MACHINES",
    "borderline",
    "kwak",
    "nehalem_ex_64",
    "smp",
    "numa_machine",
    "from_counts",
]
