"""The PIOMan task manager.

Ties the pieces together:

* :meth:`PIOMan.submit` — thread-context generator implementing §III-A
  submission: initialise the task, route its CPU set to the narrowest
  queue, enqueue under that queue's lock, and ring the doorbells of the
  cores allowed to run it (the modeled equivalent of their spin-polling
  noticing the list becoming non-empty).
* :meth:`PIOMan.schedule_once` — paper **Algorithm 1**: scan queues from
  the local per-core queue up to the global queue, running every task
  found; repeat tasks whose function reports "not complete" are
  re-enqueued into the same queue.  Returns ``(tasks_run,
  repeats_pending, contended)`` so the idle loop can pace its re-polling
  and stay hot after losing a dequeue race.
* attaches itself to the thread scheduler as the progression hook, so
  idle / timer / context-switch keypoints all drive it (§IV-A).

The manager is deliberately independent of NewMadeleine: any client that
can express work as ``LTask``s can use it (the "generic" in the title —
see ``examples/io_offload.py`` for a non-networking client).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.hierarchy import QueueFactory, QueueHierarchy
from repro.core.leap import DEFAULT_LEAP, QuiescenceLeap
from repro.core.queues import TaskQueue
from repro.core.task import LTask, TaskState
from repro.obs.histogram import Histogram
from repro.sim.trace import NULL_TRACER, Tracer
from repro.threads.flag import Flag
from repro.threads.instructions import Compute, Instr, SetFlag
from repro.threads.thread import Prio, TState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.sim.engine import Engine
    from repro.threads.scheduler import Scheduler
    from repro.topology.machine import Machine


@dataclass
class PIOManStats:
    """Aggregate manager counters."""

    submits: int = 0
    tasks_completed: int = 0
    executions: int = 0
    repeat_requeues: int = 0
    schedule_passes: int = 0
    #: cancels that caught an *in-flight* task (dequeued or mid-run) —
    #: honored by suppressing the re-enqueue instead of a list removal
    cancels_inflight: int = 0
    executions_by_core: dict[int, int] = field(default_factory=dict)

    def note_exec(self, core: int) -> None:
        self.executions += 1
        self.executions_by_core[core] = self.executions_by_core.get(core, 0) + 1


@dataclass
class PIOManLatency:
    """Lifecycle-span distributions, registered under ``<name>.latency``.

    Field names are metric-path segments (``pioman.latency.
    submit_to_complete.p99`` ...): renaming one is an API change.
    """

    #: submission → completion, the full round the paper's tables time
    submit_to_complete: Histogram = field(default_factory=Histogram)
    #: submission → first poll by any core (aggregate across queues; each
    #: queue also keeps its own per-poll ``wait_ns`` distribution)
    queue_wait: Histogram = field(default_factory=Histogram)
    #: Algorithm-1 pass duration when at least one task ran
    schedule_pass_productive: Histogram = field(default_factory=Histogram)
    #: Algorithm-1 pass duration when the whole scan came up empty — the
    #: steady-state cost every idle core pays per keypoint
    schedule_pass_empty: Histogram = field(default_factory=Histogram)


class PIOMan:
    """The lightweight task scheduling system (the paper's contribution)."""

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        scheduler: Optional["Scheduler"] = None,
        *,
        queue_factory: QueueFactory = TaskQueue,
        hierarchical: bool = True,
        tracer: Tracer = NULL_TRACER,
        name: str = "pioman",
        registry: Optional["MetricsRegistry"] = None,
        summary_fastpath: bool = True,
        quiescence_leap: Optional[bool] = None,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.scheduler = scheduler
        self.tracer = tracer
        self.name = name
        self.registry = registry
        self.hierarchy = QueueHierarchy(
            machine, engine, queue_factory=queue_factory, hierarchical=hierarchical
        )
        self.stats = PIOManStats()
        self.latency = PIOManLatency()
        #: monotonic per-queue-scan stamp (see LTask.polled_stamp)
        self._poll_stamp = 0
        #: names for anonymous tasks' completion flags (id() would leak
        #: heap addresses into names, which must be process-independent)
        self._anon_seq = 0
        # Bound-method caches for the per-pass histogram records: every
        # Algorithm-1 pass ends in exactly one of these, and the two
        # attribute hops per call are measurable at scan frequency.
        self._rec_pass_empty = self.latency.schedule_pass_empty.record
        self._rec_pass_productive = self.latency.schedule_pass_productive.record
        # The hierarchy's per-core scan paths are fixed after construction;
        # index them directly instead of a method call per Algorithm-1 pass.
        self._scan_paths = self.hierarchy._scan_paths
        # Occupancy-summary fast path (see schedule_once): per-core tables
        # precomputed so the primed empty pass touches no queue objects.
        # _fast_pairs replays the probe counters of a settled-empty path
        # ((queue stats, line stats) per level), _fast_compute is the
        # reusable batched-cost instruction (instructions are read-only to
        # the interpreter, like the idle loop's pooled instances), and
        # _scan_entries carries the per-queue replay tuple for the dequeue
        # loop: (queue, bit, queue stats, line, line stats, replayable).
        self.summary_fastpath = bool(summary_fastpath)
        local_ns = machine.spec.local_ns
        self._local_ns = local_ns
        self._xfer_m = machine._xfer
        self._scan_masks = self.hierarchy.scan_masks
        self._fast_pairs = []
        self._fast_compute = []
        self._scan_entries = []
        for path in self._scan_paths:
            self._fast_pairs.append(
                [(q.stats, q.state_line.stats) for q in path]
            )
            self._fast_compute.append(Compute(len(path) * local_ns))
            self._scan_entries.append(
                [
                    (
                        q,
                        q._bitmask,
                        q.stats,
                        q.state_line,
                        q.state_line.stats,
                        type(q).replayable_empty_scan,
                    )
                    for q in path
                ]
            )
        # One tuple load per fast_pass call instead of five attribute
        # chains (stats, summary stats, pairs, batched instruction).
        self._fast_ctx = [
            (self.stats, self.hierarchy.summary_stats, pairs, comp)
            for pairs, comp in zip(self._fast_pairs, self._fast_compute)
        ]
        # Locks report contended handoffs onto the same trace stream, so
        # the analyzer can line contention intervals up with task slices;
        # queues add the submit->enqueue causal edge.
        for queue in self.hierarchy.queues():
            queue.lock.tracer = tracer
            queue.tracer = tracer
        if registry is not None:
            registry.register(name, self.stats)
            registry.register(f"{name}.shares", self.execution_shares)
            registry.register(f"{name}.latency", self.latency)
            registry.register(f"{name}.summary", self.hierarchy.summary_stats)
            for queue in self.hierarchy.queues():
                queue.register_into(registry, prefix=name)
        # Quiescence leap (repro.core.leap): opt-out via the
        # ``quiescence_leap`` argument or ``REPRO_LEAP=0``; requires the
        # summary fast path (the leap replays its accounting) and a
        # true_spin scheduler (the only world with provably periodic
        # idle carriers).  One controller per engine: the first eligible
        # manager installs it.
        self.quiescence_leap = (
            DEFAULT_LEAP if quiescence_leap is None else bool(quiescence_leap)
        )
        if scheduler is not None:
            scheduler.progression_hook = self.schedule_once
            if self.summary_fastpath:
                scheduler.progression_fast = self.fast_pass
                scheduler.progression_fast_done = self._rec_pass_empty
                if (
                    self.quiescence_leap
                    and scheduler.true_spin
                    and engine.leap is None
                ):
                    engine.leap = QuiescenceLeap(engine, scheduler, self)

    # ------------------------------------------------------------------
    # task construction & submission
    # ------------------------------------------------------------------
    def make_task(self, func, arg=None, **kwargs) -> LTask:
        """Convenience constructor (see :class:`~repro.core.task.LTask`)."""
        return LTask(func, arg, **kwargs)

    def submit(self, core: int, task: LTask) -> Generator[Instr, Any, LTask]:
        """Submit ``task`` from ``core`` (thread-context generator).

        Binds the completion flag (home = submitting core, like the
        paper's task structure embedded in the submitter's packet
        wrapper), routes the CPU set, enqueues, rings doorbells.
        """
        if task.state is not TaskState.CREATED:
            raise RuntimeError(f"submit of {task.name!r} in state {task.state}")
        spec = self.machine.spec
        yield Compute(spec.task_init_ns)
        if not task.name:
            self._anon_seq += 1
        task.completion = Flag(
            self.machine, self.engine, home=core,
            name=f"done:{task.name or f'anon{self._anon_seq}'}",
        )
        task.submit_core = core
        task.submit_time = self.engine.now
        queue = self.hierarchy.queue_for_cpuset(task.cpuset)
        yield Compute(spec.submit_route_ns)
        yield from queue.enqueue(core, task)
        self.stats.submits += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "pioman", f"core{core}",
                f"submit {task.name} -> {queue.name}",
                phase="submit", task=task.name, queue=queue.name, core=core,
            )
        if self.scheduler is not None:
            # Only cores that may run the task spin on its queue.
            ringable = task.cpuset & queue.node.cpuset
            cause = None
            if self.tracer.enabled and task.name:
                cause = (f"T:{task.name}/enq", self.engine.now)
            self.scheduler.ring_cpuset(ringable, core, cause=cause)
        return task

    def submit_nowait(self, core: int, task: LTask) -> LTask:
        """Host-instant submission from task context (tasks spawning tasks).

        A running task's function cannot yield instructions; its own
        ``cost_ns`` is expected to cover the submission work.  Routing,
        completion-flag binding, statistics and doorbells behave exactly
        like :meth:`submit`.
        """
        if task.state is not TaskState.CREATED:
            raise RuntimeError(f"submit of {task.name!r} in state {task.state}")
        if not task.name:
            self._anon_seq += 1
        task.completion = Flag(
            self.machine, self.engine, home=core,
            name=f"done:{task.name or f'anon{self._anon_seq}'}",
        )
        task.submit_core = core
        task.submit_time = self.engine.now
        queue = self.hierarchy.queue_for_cpuset(task.cpuset)
        queue.enqueue_nowait(core, task)
        self.stats.submits += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "pioman", f"core{core}",
                f"submit {task.name} -> {queue.name}",
                phase="submit", task=task.name, queue=queue.name, core=core,
            )
        if self.scheduler is not None:
            ringable = task.cpuset & queue.node.cpuset
            cause = None
            if self.tracer.enabled and task.name:
                cause = (f"T:{task.name}/enq", self.engine.now)
            self.scheduler.ring_cpuset(ringable, core, cause=cause)
        return task

    def submit_preemptive(self, core: int, task: LTask) -> Generator[Instr, Any, LTask]:
        """Future-work extension (§VI): run ``task`` at once on a remote
        CPU by injecting a keypoint there, instead of waiting for the
        target's next natural keypoint.

        The task is routed to the *specific* best core's own queue (idle
        preferred, nearest first) and that core gets an immediate kick.
        """
        from repro.topology.cpuset import CpuSet

        target = self.find_idle_core(core, task.cpuset)
        if target is None:
            # Nobody idle: preempt the nearest allowed core instead of
            # waiting for its next natural keypoint.
            allowed = [c for c in task.cpuset if c < self.machine.ncores]
            if not allowed:
                raise ValueError("preemptive task has no core on this machine")
            target = min(allowed, key=lambda c: self.machine.xfer(core, c))
            task.cpuset = CpuSet.single(target)
            result = yield from self.submit(core, task)
            if self.scheduler is not None:
                self.scheduler.inject_keypoint(target)
            return result
        task.cpuset = CpuSet.single(target)
        result = yield from self.submit(core, task)
        return result

    def find_idle_core(self, from_core: int, cpuset) -> Optional[int]:
        """§IV-B submission offload: nearest idle core allowed by the set.

        "the state of each core is evaluated in order to find an idle core
        that could process the task ... the nearest idle core is specified
        in the CPU set".  Returns None when every allowed core is busy.

        The nearest-first candidate order is a per-(cpuset, origin) memo
        on the hierarchy — only the idleness check runs per call.
        """
        sched = self.scheduler
        if sched is None:
            return None
        running = sched._cur  # parallel list: one indexed load per probe
        cores = sched.cores
        for c in self.hierarchy.candidate_order(cpuset, from_core):
            cur = running[c]
            if cur is None or cur is cores[c].idle_thread or cur.prio == Prio.IDLE:
                return c
        return None

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def fast_pass(self, core: int) -> Optional[Instr]:
        """O(1) empty-pass accessory for the idle loop (plain call, no
        generator).  When ``core`` is primed — its whole scan path proven
        settled-empty and unwritten since — do the pass's host accounting
        (pass/summary counters, the per-level probe replay) and return the
        batched Compute the caller must yield; the caller then reports the
        realized span via ``progression_fast_done``.  Returns None when
        the core is not primed, sending the caller to
        :meth:`schedule_once`.  Together the two paths are observationally
        identical to the slow scan: same virtual cost, same counters, same
        single-instruction stream.
        """
        hier = self.hierarchy
        if not hier.primed_mask >> core & 1:
            return None
        stats, sstats, pairs, compute = self._fast_ctx[core]
        stats.schedule_passes += 1
        sstats.summary_hits += 1
        for qstats, lstats in pairs:
            lstats.reads += 1
            lstats.read_hits += 1
            qstats.empty_checks += 1
        return compute

    def leap_ready(self, core: int) -> Optional[int]:
        """Quiescence-leap eligibility probe: when ``core`` is primed
        (its next pass would take :meth:`fast_pass`), return the batched
        pass cost in ns — *without* doing any accounting — else None.
        """
        if not self.hierarchy.primed_mask >> core & 1:
            return None
        return self._fast_compute[core].ns

    def leap_commit(self, core: int, k1: int, k2: int, span_ns: int) -> None:
        """Replay elided :meth:`fast_pass` rounds in O(1).

        The two sides of a poll cycle are batched separately because the
        leap may replay one of them through a real generator resume:
        ``k1`` pass *starts* (the fast_pass counter bumps) and ``k2``
        pass *completions* (the ``progression_fast_done`` record the
        idle loop issues after each).  ``span_ns`` is the realized
        per-pass span (the batched Compute cost, skew-stretched by the
        caller) — same counters, same histogram state as ``k1``/``k2``
        slow iterations.
        """
        stats, sstats, pairs, _compute = self._fast_ctx[core]
        if k1:
            stats.schedule_passes += k1
            sstats.summary_hits += k1
            for qstats, lstats in pairs:
                lstats.reads += k1
                lstats.read_hits += k1
                qstats.empty_checks += k1
        if k2:
            self.latency.schedule_pass_empty.record_many(span_ns, k2)

    def schedule_once(self, core: int) -> Generator[Instr, Any, tuple[int, int, bool]]:
        """One full Algorithm-1 pass on ``core``.

        Walks the queue scan path (per-core ... global).  Within a queue,
        keeps dequeuing until empty, but each task is run at most once per
        pass: a repeat task seen again after its own re-enqueue ends the
        queue's inner loop (one poll attempt per task per keypoint —
        PIOMan's real behaviour; a literal reading of Algorithm 1 would
        poll a never-completing task forever).

        Returns ``(ran, repeats, contended)``: tasks executed this pass,
        how many of them reported "not complete" and were re-enqueued, and
        whether the pass locked a visibly non-empty queue only to find it
        drained (lost a dequeue race to another core).

        The occupancy-summary fast path (``summary_fastpath``, default on)
        answers the all-empty pass — the steady state of every idle core —
        in O(1): once a pass proves the whole path settled-empty (every
        probe saw empty *and* the summary agrees, so no stale window can
        be hiding work), the core's bit in ``hierarchy.primed_mask`` is
        set, and the *next* pass replays the identical batched probe cost
        and counters without touching a queue.  Any write to a covered
        queue clears the bit, so the replay is provably what the slow walk
        would have done — metrics, trace and virtual timeline stay
        bit-identical with the fast path on or off.
        """
        ran = 0
        repeats = 0
        contended = False
        engine = self.engine
        pass_start = engine.now
        self.stats.schedule_passes += 1
        hier = self.hierarchy
        fast_on = self.summary_fastpath
        if fast_on:
            sstats = hier.summary_stats
            if hier.primed_mask >> core & 1:
                # O(1) empty pass: the path is settled-empty and nothing
                # was written since it was proven so.  Replay the slow
                # walk's exact accounting: each level's probe would be a
                # local hit on an empty queue (priming guarantees this
                # core is a sharer of every level's emptiness line).
                sstats.summary_hits += 1
                for qstats, lstats in self._fast_pairs[core]:
                    lstats.reads += 1
                    lstats.read_hits += 1
                    qstats.empty_checks += 1
                yield self._fast_compute[core]
                self._rec_pass_empty(engine.now - pass_start)
                return 0, 0, False
            if hier.summary & self._scan_masks[core]:
                sstats.summary_misses += 1
            else:
                sstats.stale_bits += 1
        # Batched-probe path: probe the whole scan path first and charge
        # one batch of read costs.  When everything is (visibly) empty,
        # the pass costs a single event.
        path = self._scan_paths[core]
        total_cost = 0
        any_hot = False
        for queue in path:
            visible, cost = queue.probe(core)
            total_cost += cost
            if visible:
                any_hot = True
        if not any_hot and fast_on and not hier.summary & self._scan_masks[core]:
            # Every probe observed empty and the summary confirms nothing
            # is actually queued: the path is settled for this core.
            # Prime *before* yielding — the probes happen at one virtual
            # instant, and any write landing during the Compute below
            # un-primes via the covering masks.
            hier.primed_mask |= 1 << core
        yield Compute(total_cost)
        if not any_hot:
            self._rec_pass_empty(engine.now - pass_start)
            return 0, 0, False
        local_ns = self._local_ns
        xfer_m = self._xfer_m
        for queue, qbit, qstats, line, lstats, replayable in self._scan_entries[core]:
            if (
                fast_on
                and replayable
                and not hier.summary & qbit
                and engine.now >= queue._quiet_after
            ):
                # Settled-empty level on a hot pass: ``get_task`` would
                # probe (visible == actual == empty once the last
                # transition's slowest invalidation has landed), charge
                # the read, and bail before the lock.  Replay exactly
                # that — including the coherence side effect — and move
                # to the next level.
                lstats.reads += 1
                if core in line.sharers:
                    lstats.read_hits += 1
                    cost = local_ns
                else:
                    lstats.read_misses += 1
                    cost = xfer_m[line.owner][core]
                    lstats.transfer_ns_total += cost
                    line.sharers.add(core)
                qstats.empty_checks += 1
                yield Compute(cost)
                continue
            self._poll_stamp += 1
            stamp = self._poll_stamp
            while True:
                lost_before = qstats.lost_races
                task = yield from queue.get_task(core)
                if task is None:
                    if qstats.lost_races > lost_before:
                        contended = True  # raced another core and lost
                    break
                if task.polled_stamp == stamp:
                    # already polled this pass; put it back and move on —
                    # unless a cancel landed while it was in our hands
                    # (re-enqueueing would resurrect it)
                    if task.state is not TaskState.CANCELLED:
                        yield from queue.enqueue(core, task)
                    break
                task.polled_stamp = stamp
                complete = yield from self._run_task(core, queue, task)
                ran += 1
                if not complete:
                    repeats += 1
        pass_ns = self.engine.now - pass_start
        if ran:
            self._rec_pass_productive(pass_ns)
        else:
            self._rec_pass_empty(pass_ns)
        return ran, repeats, contended

    def _run_task(
        self, core: int, queue: TaskQueue, task: LTask
    ) -> Generator[Instr, Any, bool]:
        spec = self.machine.spec
        t0 = self.engine.now
        if task.executions == 0 and task.submit_time is not None:
            # First poll of this submission: close the queue-wait span.
            first = task.first_polled_at if task.first_polled_at is not None else t0
            self.latency.queue_wait.record(first - task.submit_time)
        tracer = self.tracer
        run_node = None
        if tracer.enabled and task.name:
            run_node = f"T:{task.name}/run{task.executions}"
            if task.executions == 0 and task.submit_time is not None:
                enq = task.enqueued_at if task.enqueued_at is not None else task.submit_time
                tracer.edge(t0, f"core{core}", "queue_wait",
                            f"T:{task.name}/enq", run_node, enq, queue=queue.name)
            elif task.trace_prev_run is not None:
                # repeat task: chain this poll to the previous one
                prev = task.trace_prev_run
                tracer.edge(t0, f"core{core}", "poll", prev[0], run_node, prev[1],
                            queue=queue.name)
            if self.scheduler is not None:
                cs = self.scheduler.cores[core]
                if cs.last_wake is not None:
                    wake, wake_ns = cs.last_wake
                    cs.last_wake = None
                    tracer.edge(t0, f"core{core}", "dispatch", wake, run_node, wake_ns)
        yield Compute(spec.task_run_ns + task.cost_ns)
        if task.state is TaskState.CANCELLED:
            # A cancel landed between our dequeue and the execution (the
            # task was in flight, in no queue): honor it — running the
            # function or re-enqueueing now would resurrect the task.
            return True
        if run_node is not None:
            # Causal context for host-instant work the function triggers
            # (NIC posts, CQ handlers); cleared before anything can yield.
            tracer.cursor = run_node
            complete = task.run(core)
            tracer.cursor = None
        else:
            complete = task.run(core)
        self.stats.note_exec(core)
        if task.repeat and not complete:
            if task.state is TaskState.CANCELLED:
                # cancelled during its own run (storm racing a repeat
                # task): stop here, no re-enqueue, no completion record
                return True
            self.stats.repeat_requeues += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.engine.now, "pioman", f"core{core}", f"repeat {task.name}",
                    phase="run", task=task.name, queue=queue.name, core=core,
                    start=t0, complete=False,
                )
                if run_node is not None:
                    task.trace_prev_run = (run_node, self.engine.now)
            yield from queue.enqueue(core, task)
            return False
        task.state = TaskState.DONE
        task.complete_time = self.engine.now
        if task.submit_time is not None:
            self.latency.submit_to_complete.record(
                self.engine.now - task.submit_time
            )
        self.stats.tasks_completed += 1
        if task.completion is not None:
            yield SetFlag(task.completion)
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "pioman", f"core{core}", f"completed {task.name}",
                phase="run", task=task.name, queue=queue.name, core=core,
                start=t0, complete=True,
            )
            if run_node is not None:
                self.tracer.edge(
                    self.engine.now, f"core{core}", "compute",
                    run_node, f"T:{task.name}/done", t0, queue=queue.name,
                )
        return True

    # ------------------------------------------------------------------
    # cancellation & inspection
    # ------------------------------------------------------------------
    def cancel(self, task: LTask) -> bool:
        """Cancel ``task`` (host-instant; teardown and fault storms).

        Queued tasks are removed from their list (the queue keeps its
        emptiness line and occupancy-summary bookkeeping consistent, see
        :meth:`TaskQueue.remove`).  A task that is *in flight* — already
        dequeued by a scanning core (still ``QUEUED``, in no list) or a
        repeat task mid-run — cannot be removed from anywhere, but it
        can still be marked: every re-enqueue path checks for
        ``CANCELLED`` and drops the task instead of resurrecting it.
        Earlier revisions returned False here and the next repeat
        re-enqueue brought the task back from the dead, with a summary
        bit set for work the caller believed gone.

        Returns True when the task will not run (again); False when it
        is unknown or completing anyway (``RUNNING`` non-repeat, which
        finishes regardless, or already ``DONE``/``CANCELLED``).
        """
        for queue in self.hierarchy.queues():
            if queue.remove(task):
                task.state = TaskState.CANCELLED
                return True
        st = task.state
        if st is TaskState.QUEUED or (st is TaskState.RUNNING and task.repeat):
            task.state = TaskState.CANCELLED
            self.stats.cancels_inflight += 1
            return True
        return False

    def pending_tasks(self) -> int:
        return self.hierarchy.total_queued()

    def execution_shares(self) -> dict[int, float]:
        """Fraction of all executions done by each core (Tables I/II
        commentary: balance within a chip, imbalance on the global queue).
        """
        total = self.stats.executions
        if not total:
            return {}
        return {
            c: n / total for c, n in sorted(self.stats.executions_by_core.items())
        }

    def __repr__(self) -> str:
        return f"<PIOMan {self.name} pending={self.pending_tasks()} run={self.stats.executions}>"
