"""Task queues — paper Algorithm 2.

A :class:`TaskQueue` sits on one topology node and is protected by a
spinlock.  ``get_task`` implements the paper's double-checked pattern:

    if notempty(Queue):        # read, NO lock
        LOCK(Queue)
        if notempty(Queue):    # re-check under the lock
            Result <- dequeue(Queue)
        UNLOCK(Queue)

so scanning an empty queue costs one shared-state cache read and produces
no lock traffic — the property that lets every idle core scan the whole
hierarchy constantly without creating contention (paper §III-A/§IV-A).

The emptiness word is its own cache line (``state_line``), distinct from
the lock word, as in a real implementation where the list head and the
lock do not share a line.

:class:`AlwaysLockTaskQueue` is the ablation-A3 variant that takes the
lock before checking, quantifying what Algorithm 2 saves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.mem.cacheline import CacheLine, MemStats
from repro.obs.histogram import Histogram
from repro.sim.trace import NULL_TRACER, Tracer
from repro.sync.spinlock import SpinLock
from repro.sync.stats import LockStats
from repro.threads.instructions import Acquire, Compute, Instr, Release
from repro.core.task import LTask, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine, TopoNode


@dataclass
class QueueStats:
    """Counters for one task queue."""

    enqueues: int = 0
    dequeues: int = 0
    removes: int = 0  # cancelled while queued (see TaskQueue.remove)
    empty_checks: int = 0
    nonempty_checks: int = 0
    lock_sections: int = 0
    lost_races: int = 0  # saw non-empty, locked, found empty
    max_len: int = 0
    dequeued_by: dict[int, int] = field(default_factory=dict)
    #: per-poll queue-wait distribution: enqueue → dequeue span of every
    #: task this queue handed out (registry paths ``wait_ns.p50`` ...)
    wait_ns: Histogram = field(default_factory=Histogram)


class TaskQueue:
    """One spinlock-protected task list bound to a topology node."""

    #: Whether an idle scan of this queue while it is *settled-empty*
    #: (actually empty and past every core's stale window) is a pure
    #: probe — one emptiness read, no lock traffic — so the hierarchy's
    #: occupancy-summary fast path may replay that probe's exact cost and
    #: counters without calling :meth:`get_task`.  True for Algorithm-2
    #: queues (the probe short-circuits before the lock); the always-lock
    #: ablation locks even when empty, so it opts out.
    replayable_empty_scan = True

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        node: "TopoNode",
        *,
        lock_stats: Optional[LockStats] = None,
        mem_stats: Optional[MemStats] = None,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.node = node
        self.name = f"q:{node.name}"
        home = node.cpuset.first() if node.cpuset else 0
        #: home core of this queue's lines (narrowest covered core)
        self.home = home
        self.lock = SpinLock(
            machine, engine, home=home, name=f"lock:{self.name}", stats=lock_stats, mem_stats=mem_stats
        )
        #: cache line holding the emptiness word / list head
        self.state_line = CacheLine(machine, home=home, name=f"state:{self.name}", stats=mem_stats)
        self._tasks: deque[LTask] = deque()
        self.stats = QueueStats()
        #: wired by the manager alongside ``lock.tracer``; emits the
        #: submit->enqueue causal edge (zero work while disabled)
        self.tracer: Tracer = NULL_TRACER
        # Invalidation-propagation state: a core reading within one line
        # transfer of the last emptiness *transition* still sees its stale
        # cached copy (the invalidate has not reached it yet).  The stale
        # window is what makes several pollers pile onto the lock of a
        # just-emptied global queue — the contention the paper measures at
        # level 3 — while the under-lock re-check keeps them correct.
        self._trans_time = -(10**12)
        self._trans_writer = home
        self._prev_nonempty = False
        # Probe fast-path caches: the machine's distance matrices and the
        # local-hit cost are immutable after construction, and probe() runs
        # once per queue per scan — method-call and attribute-chain costs
        # there dominate an idle core's host time.
        self._inval_m = machine._inval
        self._xfer_m = machine._xfer
        self._local_ns = machine.spec.local_ns
        # Occupancy-summary attachment (see QueueHierarchy): the board is
        # the hierarchy object carrying the shared ``summary`` bitmap (one
        # bit per queue, tracking *actual* emptiness) and the per-core
        # ``primed_mask`` of the O(1) empty-pass fast path.  Any write to
        # this queue's emptiness state un-primes exactly the cores whose
        # scan path contains it (``_keep_primed`` = ~covered-cores mask).
        self._board: Any = None
        self._bitmask = 0
        self._keep_primed = -1
        # The settle deadline of the last transition: once ``engine.now``
        # reaches it, the slowest core's invalidation has landed, so every
        # core's ``_visible_nonempty`` equals the actual emptiness.
        self._quiet_after = -(10**12)
        self._max_inval = [max(row) for row in machine._inval]

    def _visible_nonempty(self, core: int) -> bool:
        """Emptiness as observed by ``core`` (stale within one transfer)."""
        actual = bool(self._tasks)
        if core == self._trans_writer:
            return actual
        lag = self._inval_m[self._trans_writer][core]
        if self.engine.now < self._trans_time + lag:
            return self._prev_nonempty
        return actual

    def attach_summary(self, board: Any, bitmask: int, keep_primed: int) -> None:
        """Wire this queue into a hierarchy's occupancy summary.

        ``board`` carries the mutable ``summary``/``primed_mask`` ints;
        ``bitmask`` is this queue's bit; ``keep_primed`` is the core mask
        to AND into ``primed_mask`` whenever this queue's emptiness state
        is written (the complement of the cores that scan this queue).
        """
        self._board = board
        self._bitmask = bitmask
        self._keep_primed = keep_primed

    def _note_state_write(self) -> None:
        """A write touched the emptiness line: un-prime the covering cores."""
        board = self._board
        if board is not None:
            board.primed_mask &= self._keep_primed

    def _note_transition(self, core: int, prev_nonempty: bool) -> None:
        now = self.engine.now
        self._trans_time = now
        self._trans_writer = core
        self._prev_nonempty = prev_nonempty
        self._quiet_after = now + self._max_inval[core]
        board = self._board
        if board is not None:
            # ``summary`` tracks the *actual* emptiness exactly: a
            # transition with prev_nonempty=True just drained the queue,
            # one with prev_nonempty=False is about to make it non-empty.
            # Staleness lives entirely in ``_quiet_after``/``primed_mask``.
            if prev_nonempty:
                board.summary &= ~self._bitmask
            else:
                board.summary |= self._bitmask
            board.primed_mask &= self._keep_primed

    # ------------------------------------------------------------------
    def _acquire(self) -> Instr:
        return Acquire(self.lock)

    def _release(self) -> Instr:
        return Release(self.lock)

    def __len__(self) -> int:
        return len(self._tasks)

    def probe(self, core: int) -> tuple[bool, int]:
        """Host-instant emptiness probe: ``(visible_nonempty, cost_ns)``.

        The observed value is resolved at the *start* of the read: a core
        whose cached copy has not been invalidated yet reads that copy —
        a local hit returning the stale value.  Only an up-to-date read
        pays the transfer miss.  The caller charges the cost (so a full
        scan of empty queues can be charged as one batch).
        """
        # _visible_nonempty inlined: this is the single hottest queue
        # operation (every queue on every scan path, every keypoint).
        actual = True if self._tasks else False
        writer = self._trans_writer
        if core == writer:
            visible = actual
        else:
            lag = self._inval_m[writer][core]
            if self.engine.now < self._trans_time + lag:
                visible = self._prev_nonempty
            else:
                visible = actual
        stats = self.stats
        line = self.state_line
        line_stats = line.stats
        line_stats.reads += 1
        if visible != actual:
            cost = self._local_ns  # stale copy, local hit
            line_stats.read_hits += 1
        elif core in line.sharers:  # CacheLine.read inlined (hot)
            line_stats.read_hits += 1
            cost = self._local_ns
        else:
            line_stats.read_misses += 1
            cost = self._xfer_m[line.owner][core]
            line_stats.transfer_ns_total += cost
            line.sharers.add(core)
        if visible:
            stats.nonempty_checks += 1
        else:
            stats.empty_checks += 1
        return visible, cost

    def peek_nonempty(self, core: int) -> Generator[Instr, Any, bool]:
        """The lock-free emptiness probe (first check of Algorithm 2)."""
        visible, cost = self.probe(core)
        yield Compute(cost)
        return visible

    def enqueue(self, core: int, task: LTask) -> Generator[Instr, Any, None]:
        """Append a task under the queue lock (thread-context generator)."""
        yield self._acquire()
        cost = self.state_line.write_async(core)
        self._note_state_write()
        yield Compute(cost)
        if task.state is TaskState.CANCELLED:
            # Cancelled while we were acquiring the lock (a cancellation
            # storm racing an in-flight re-enqueue): leave the list
            # untouched — appending would resurrect the task and set a
            # summary bit for work that must not exist.  The line write
            # above already happened; that is just a spurious
            # invalidation, same as a lost dequeue race.
            yield self._release()
            return
        if not self._tasks:
            self._note_transition(core, prev_nonempty=False)
        self._tasks.append(task)
        task.state = TaskState.QUEUED
        task.queue_name = self.name
        task.enqueued_at = self.engine.now
        self.stats.enqueues += 1
        if len(self._tasks) > self.stats.max_len:
            self.stats.max_len = len(self._tasks)
        if self.tracer.enabled:
            self._trace_enqueue(core, task)
        yield self._release()

    def enqueue_nowait(self, core: int, task: LTask) -> None:
        """Host-instant enqueue for task/interrupt context.

        Used when a running task spawns another task (e.g. a data-filter
        stage): the caller cannot yield instructions, and its own task
        cost already accounts for the submission work.  Transition
        bookkeeping matches :meth:`enqueue`; lock traffic is not modeled
        for this rare path.
        """
        if task.state is TaskState.CANCELLED:
            return  # never resurrect a cancelled task (see enqueue)
        if not self._tasks:
            self._note_transition(core, prev_nonempty=False)
        self.state_line.write_async(core)
        self._note_state_write()
        self._tasks.append(task)
        task.state = TaskState.QUEUED
        task.queue_name = self.name
        task.enqueued_at = self.engine.now
        self.stats.enqueues += 1
        if len(self._tasks) > self.stats.max_len:
            self.stats.max_len = len(self._tasks)
        if self.tracer.enabled:
            self._trace_enqueue(core, task)

    def _trace_enqueue(self, core: int, task: LTask) -> None:
        """Causal edge for a *first* enqueue: ``T:<t>/sub -> T:<t>/enq``.

        Repeat re-enqueues are chained by the runner's poll edge instead
        (``first_polled_at`` is set once a core has picked the task up)."""
        if task.name and task.submit_time is not None and task.first_polled_at is None:
            self.tracer.edge(
                task.enqueued_at, f"core{core}", "submit",
                f"T:{task.name}/sub", f"T:{task.name}/enq",
                task.submit_time, queue=self.name,
            )

    def get_task(self, core: int) -> Generator[Instr, Any, Optional[LTask]]:
        """Algorithm 2: double-checked dequeue."""
        # peek_nonempty inlined: avoids a sub-generator per scan
        nonempty, cost = self.probe(core)
        yield Compute(cost)
        if not nonempty:
            return None
        yield self._acquire()
        self.stats.lock_sections += 1
        cost = self.state_line.read(core)
        task = self._pop_eligible(core)
        if task is not None:
            cost += self.state_line.write_async(core)
            self._note_state_write()
            if not self._tasks:
                self._note_transition(core, prev_nonempty=True)
            self._note_dequeued(core, task)
        elif not self._tasks:
            self.stats.lost_races += 1
        yield Compute(cost)
        yield self._release()
        return task

    def _note_dequeued(self, core: int, task: LTask) -> None:
        """Span bookkeeping for a successful dequeue (host-instant)."""
        self.stats.dequeues += 1
        self.stats.dequeued_by[core] = self.stats.dequeued_by.get(core, 0) + 1
        if task.enqueued_at is not None:
            self.stats.wait_ns.record(self.engine.now - task.enqueued_at)
        if task.first_polled_at is None:
            task.first_polled_at = self.engine.now

    def _pop_eligible(self, core: int) -> Optional[LTask]:
        """Remove and return the first task ``core`` may execute.

        A task's CPU set can be narrower than this queue's span (e.g. a
        two-distant-cores set routed to the global queue), so eligibility
        is checked at dequeue time; ineligible tasks stay queued in order.
        """
        for i, task in enumerate(self._tasks):
            if task.cpuset.contains(core):
                del self._tasks[i]
                return task
        return None

    def remove(self, task: LTask) -> bool:
        """Remove a queued task (host-instant; cancellation/teardown path).

        The public counterpart of reaching into ``_tasks``: keeps the
        queue's counters consistent (``stats.removes``) and notes the
        emptiness transition when the removal drains the queue, so pollers
        observe the state change with the same stale-window semantics as a
        dequeue.  The removal is attributed to the queue's home core (the
        canceller's core is unknown on this host-instant path).  Returns
        False if the task is not queued here.

        Like every mutation of the task list, the removal *writes* the
        emptiness line: remote cached copies are invalidated (their next
        probe pays a transfer miss, exactly as after a dequeue) and the
        occupancy summary is updated — a drain clears the queue's bit; a
        non-draining removal leaves it set but still un-primes scanners.
        Earlier revisions skipped the line write, leaving stale sharers
        that read the post-removal state as a free local hit.

        Works unchanged for every variant (mutex, lock-free, always-lock):
        they all share the underlying task list.
        """
        try:
            self._tasks.remove(task)
        except ValueError:
            return False
        self.stats.removes += 1
        self.state_line.write_async(self.home)
        self._note_state_write()
        if not self._tasks:
            self._note_transition(self.home, prev_nonempty=True)
        return True

    def register_into(self, registry, prefix: str = "") -> None:
        """Register this queue's counters — list traffic, lock behaviour
        (including the derived ``contention_ratio``), and the emptiness
        line's coherence stats — into a :class:`repro.obs.MetricsRegistry`
        under ``<prefix>.<queue name>``."""
        base = f"{prefix}.{self.name}" if prefix else self.name
        registry.register(base, self.stats)
        self.lock.register_into(registry, f"{base}.lock")
        registry.register(f"{base}.mem", self.state_line.stats)

    def drain(self) -> list[LTask]:
        """Testing/shutdown helper: remove everything without cost.

        Charges nothing and notes no transition, but does keep the
        occupancy summary truthful (bit cleared, covering cores un-primed)
        so a hierarchy outlives its drained queues.
        """
        out = list(self._tasks)
        self._tasks.clear()
        if out:
            board = self._board
            if board is not None:
                board.summary &= ~self._bitmask
                board.primed_mask &= self._keep_primed
        return out

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} len={len(self._tasks)}>"


class AlwaysLockTaskQueue(TaskQueue):
    """Ablation A3: no lock-free pre-check — every scan takes the lock.

    This is the naive reading of "each of these lists has to be protected
    against concurrent access": idle cores scanning empty queues now
    generate constant lock traffic.
    """

    #: an empty scan still takes the lock here — never replay it as a probe
    replayable_empty_scan = False

    def get_task(self, core: int) -> Generator[Instr, Any, Optional[LTask]]:
        yield self._acquire()
        self.stats.lock_sections += 1
        cost = self.state_line.read(core)
        task = self._pop_eligible(core)
        if task is not None:
            self.stats.nonempty_checks += 1
            cost += self.state_line.write_async(core)
            self._note_state_write()
            if not self._tasks:
                self._note_transition(core, prev_nonempty=True)
            self._note_dequeued(core, task)
        else:
            self.stats.empty_checks += 1
        yield Compute(cost)
        yield self._release()
        return task
