"""PIOMan — the paper's scalable, generic lightweight task scheduler."""

from repro.core.task import LTask, TaskFn, TaskOption, TaskState
from repro.core.queues import AlwaysLockTaskQueue, QueueStats, TaskQueue
from repro.core.variants import LockFreeTaskQueue, MutexTaskQueue
from repro.core.hierarchy import QueueHierarchy
from repro.core.manager import PIOMan, PIOManStats
from repro.core.progress import piom_wait, wait_all

__all__ = [
    "LTask",
    "TaskFn",
    "TaskOption",
    "TaskState",
    "TaskQueue",
    "AlwaysLockTaskQueue",
    "MutexTaskQueue",
    "LockFreeTaskQueue",
    "QueueStats",
    "QueueHierarchy",
    "PIOMan",
    "PIOManStats",
    "piom_wait",
    "wait_all",
]
