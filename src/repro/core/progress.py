"""Waiting on tasks — the WAIT keypoint.

Three waiting disciplines, matching how the paper's components behave:

* ``piom_wait(..., mode="active")`` — the waiter drives progression itself
  in a loop (``{ check done; task_schedule(); }``), like PIOMan's own wait
  primitive.  Used by the Tables I/II microbenchmark, where core #0 both
  creates tasks and executes the local ones.
* ``mode="spin"`` — pure busy-wait on the completion word: the waiter
  burns its core but does not help; completion is noticed one cache-line
  transfer after the executing core's store.
* ``mode="block"`` — the waiter is descheduled on a blocking condition and
  its core becomes available to run tasks; this is how Mad-MPI receivers
  wait (paper §V-B: "receiving threads wait their data using a blocking
  condition"), which is why its latency stays flat as threads multiply.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.core.task import LTask
from repro.threads.instructions import BlockOn, Compute, Instr, SpinOn
from repro.threads.scheduler import Keypoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import PIOMan


def piom_wait(
    pioman: "PIOMan",
    core: int,
    task: LTask,
    mode: str = "active",
) -> Generator[Instr, Any, None]:
    """Wait until ``task`` completes (thread-context generator)."""
    flag = task.completion
    if flag is None:
        raise RuntimeError(f"task {task.name!r} was never submitted")
    if mode == "block":
        if not flag.is_set:
            yield BlockOn(flag)
        return
    if mode == "spin":
        if not flag.is_set:
            yield SpinOn(flag)
        return
    if mode != "active":
        raise ValueError(f"unknown wait mode {mode!r}")
    sched = pioman.scheduler
    if sched is not None:
        sched.cores[core].keypoint_counts[Keypoint.WAIT] += 1
    engine = pioman.engine
    wait_hist = sched.keypoint_ns[Keypoint.WAIT] if sched is not None else None
    # hot-loop bindings: the active wait is itself a scheduler keypoint
    # and runs once per spin_check_ns while the task is in flight
    schedule_once = pioman.schedule_once
    spin_check = Compute(pioman.machine.spec.spin_check_ns)
    misses = 0
    while not flag.is_set:
        t0 = engine.now
        ran = (yield from schedule_once(core))[0]
        if wait_hist is not None:
            wait_hist.record(engine.now - t0)
        if flag.is_set:
            return
        if ran == 0:
            misses += 1
            if misses >= 2:
                # Two empty scans in a row: the task is in some other
                # core's hands (its doorbell already rang).  Spin on the
                # completion word — we observe the remote store one line
                # transfer after it lands, without hammering the queues.
                # (This escalation is the WAIT keypoint's native backoff;
                # the idle keypoint's opt-in analogue is IdleBackoff.)
                yield SpinOn(flag)
                return
            yield spin_check
        else:
            misses = 0


def wait_all(
    pioman: "PIOMan",
    core: int,
    tasks: list[LTask],
    mode: str = "active",
) -> Generator[Instr, Any, None]:
    """Wait for several tasks (in order; completion order is irrelevant)."""
    for t in tasks:
        yield from piom_wait(pioman, core, t, mode=mode)
