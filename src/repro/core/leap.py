"""Quiescence leaping: O(1) fast-forward over settled idle-poll cycles.

A ``true_spin`` machine whose cores are all primed-settled-empty (the
occupancy-summary fast path, PR 5) spends its steady state firing the
same four events per core per probe cycle — sleep-wake, dispatch kick,
generator resume, batched-Compute completion — none of which can change
any simulation state until something *external* arrives: a task submit,
a NIC delivery, a far timer, a fault-stream tick.  The leap recognizes
that window, computes ``k``, the number of whole poll cycles that fit
before the next non-elidable event, and replays all ``k`` cycles of
per-core accounting in O(cores) host work instead of O(k × cores)
event fires.

Cores join the leap in either of two provable states:

* **asleep** — idle thread BLOCKED on its recognized sleep carrier
  (the steady state between cycles);
* **mid-cycle** — idle thread RUNNING with its batched-Compute
  completion carrier in flight, its generator suspended at the fast
  path's Compute yield (the scheduler's ``_in_fast`` marker proves the
  suspension point; a slow-pass Compute of coincidentally equal cost is
  indistinguishable from the outside, which is why the marker exists).
  Poll phases drift apart across cores, so at almost any instant *some*
  core is mid-cycle — without this case the leap would only ever fire
  in the vanishingly rare all-asleep instants.  The half-open cycle is
  finished by resuming the generator once with the clock staged to its
  completion instant (the generator itself replays the pass's histogram
  samples), after which the core is in the asleep state and its
  remaining cycles batch like everyone else's.

The contract is the same one the summary fast path and the wheel core
shipped under: **bit-identical**.  Leap-on and leap-off runs produce the
same fingerprints, the same metrics snapshots, the same engine ``fired``
count and internal ``seq`` numbering — the leap replays the exact
per-cycle accounting (pass/summary/queue counters, histogram samples via
:meth:`Histogram.record_many`, virtual Compute cost, run-queue arrival
seqs, the engine's global event-seq allocation order) and re-arms each
core's sleep carrier with the very ``(time, seq)`` the slow path would
have assigned.  Anything it cannot prove inert bounds the leap instead
(conservative, never wrong): tracer-enabled runs, idle backoff,
non-primed cores, pending run-queue entries, and every fault lookahead
barrier registered in ``scheduler.leap_barriers`` fall back to the slow
path.

Enablement: on by default when a :class:`~repro.core.manager.PIOMan`
with the summary fast path attaches to a ``true_spin`` scheduler;
``REPRO_LEAP=0`` in the environment or
``PIOMan(..., quiescence_leap=False)`` opts a process / an instance out.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Event
from repro.threads.instructions import Compute, Sleep
from repro.threads.scheduler import Keypoint
from repro.threads.thread import TState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import PIOMan
    from repro.sim.engine import Engine
    from repro.threads.scheduler import Scheduler

#: process-wide default, overridable per run without touching call
#: sites: ``REPRO_LEAP=0 python -m repro.bench perf ...``
DEFAULT_LEAP = os.environ.get("REPRO_LEAP", "1") != "0"

#: micro-merge event kinds, in per-cycle firing order (values are only
#: compared for heap tie-breaks that cannot happen — seq is unique)
_WAKE, _DISPATCH, _ADV1, _ADV2 = 0, 1, 2, 3

#: plan-entry shapes (how a core joins the leap)
_ASLEEP, _MIDCYCLE = 0, 1


class QuiescenceLeap:
    """One leap controller per engine, installed by :class:`PIOMan`.

    The engine's run loops call :meth:`attempt` when ``armed`` is set
    (the scheduler arms it whenever an idle thread re-enters its
    sleeping steady state).  ``attempt`` re-validates everything from
    scratch — arming is a cheap hint, never a proof.
    """

    __slots__ = (
        "engine",
        "sched",
        "manager",
        "armed",
        "min_cycles",
        "cool_ns",
        "cool_until",
        "leaps",
        "cycles_elided",
    )

    def __init__(self, engine: "Engine", sched: "Scheduler", manager: "PIOMan") -> None:
        self.engine = engine
        self.sched = sched
        self.manager = manager
        self.armed = False
        #: smallest total cycle count worth a leap: below this the
        #: attempt's own bookkeeping costs more host time than it saves
        self.min_cycles = 2
        #: failed-attempt cooldown (virtual ns): a failed attempt costs
        #: an O(cores) eligibility scan, and the arm hint re-fires every
        #: probe cycle on every core — without a cooldown a busy phase
        #: pays that scan per cycle.  One wheel bucket's worth of virtual
        #: time bounds failures to the wheel's own boundary cadence.
        self.cool_ns = 4096
        self.cool_until = 0
        # Host-side diagnostics only — deliberately NOT registered in any
        # metrics registry, so snapshots stay identical leap-on/leap-off.
        self.leaps = 0
        self.cycles_elided = 0

    def attempt(self, hi: Optional[int]) -> bool:
        """Try to leap; returns True if virtual time advanced.

        ``hi`` is the run loop's ``until`` bound (events at ``hi`` still
        fire, so it enters the stop-time computation as ``hi + 1``).
        Every exit path leaves the simulation in a state the slow path
        could have produced; False means "nothing provably inert enough".
        """
        self.armed = False
        now = self.engine.now
        if now < self.cool_until:
            return False
        if self._attempt(hi):
            return True
        self.cool_until = now + self.cool_ns
        return False

    def _attempt(self, hi: Optional[int]) -> bool:
        sched = self.sched
        manager = self.manager
        engine = self.engine
        if (
            sched.tracer.enabled
            or manager.tracer.enabled
            or sched.idle_backoff is not None
            or not sched.true_spin
            or sched.normal_live <= 0
        ):
            return False
        if engine.is_wheel and engine._nowq:
            return False

        # -- per-core eligibility -------------------------------------
        # A core joins the leap only when it is provably mid-steady-state
        # (asleep or mid-cycle, see module docstring), core empty, scan
        # path primed.  Everything else makes its events external.
        sleep_wake = sched._sleep_wake
        advance = sched._advance
        period = sched.machine.spec.probe_cycle_ns
        quantum = sched._quantum_ns
        skew = sched.core_skew
        cur = sched._cur
        rqs = sched._rqs
        in_fast = sched._in_fast
        leap_ready = manager.leap_ready
        blocked = TState.BLOCKED
        running = TState.RUNNING
        plan: list = []  # (cid, idle, carrier, shape, anchor, C_eff)
        carriers: set = set()
        for core in sched.cores:
            cid = core.id
            idle = core.idle_thread
            if idle is None:
                continue
            if (
                idle.multi_flags is not None
                or idle.pending_instr is not None
                or core.last_thread is not idle
                or rqs[cid]
            ):
                continue
            st = idle.state
            if st is blocked:
                ev = idle.sleep_event
                # NB: bound-method *equality* (same __self__, same
                # __func__) — attribute access mints a fresh bound
                # object, so ``is`` would never match the one stored on
                # the carrier
                if (
                    ev is None
                    or not ev.alive
                    or ev.fn != sleep_wake
                    or ev.args is not idle.wake_args
                    or cur[cid] is not None
                ):
                    continue
                shape = _ASLEEP
                anchor = ev.time  # next wake
            elif st is running:
                # mid-cycle: batched Compute in flight, generator
                # provably suspended at the fast yield
                ce = idle.compute_event
                if (
                    ce is None
                    or not in_fast[cid]
                    or cur[cid] is not idle
                    or idle.resume_value is not None
                ):
                    continue
                ev = ce[0]
                if not ev.alive or ev.fn != advance or ev.args is not idle.adv_args:
                    continue
                shape = _MIDCYCLE
                anchor = ev.time  # the cycle's completion instant
            else:
                continue
            c = leap_ready(cid)
            if c is None:
                continue
            if skew is not None:
                f = skew[cid]
                if f is not None:
                    c = c * f[0] // f[1]
            # the batched Compute must fit one quantum (no slicing) and
            # the cycle must advance time (guards a degenerate spec);
            # a mid-cycle slice must be the whole batched cost
            if c > quantum or c + period <= 0:
                continue
            if shape == _MIDCYCLE and ce[2] != c:
                continue
            plan.append((cid, idle, ev, shape, anchor, c))
            carriers.add(ev)
        if not plan:
            return False

        # -- leap bound: next event that is not one of our carriers ----
        t_stop = engine.next_external_time(carriers)
        if hi is not None:
            b = hi + 1  # events at hi fire; hi+1 is the exclusive bound
            if t_stop is None or b < t_stop:
                t_stop = b
        for barrier in sched.leap_barriers:
            t = barrier(engine.now)
            if t is not None and (t_stop is None or t < t_stop):
                t_stop = t
        if t_stop is None:
            # no external event and no bound: the slow path would spin
            # these carriers forever — preserve that behaviour
            return False

        # -- commit set ------------------------------------------------
        # Every planned fire strictly before t_stop commits; nothing
        # after does.  A core whose first pending event is already at or
        # past t_stop stays untouched (its carrier remains queued).
        # Crucially, a cycle may *straddle* t_stop: its wake/dispatch/
        # resume prefix commits and the core exits the leap mid-cycle
        # with its batched-Compute carrier left pending — without this,
        # a leap would need an instant where no core is mid-cycle, which
        # with many phase-drifted cores essentially never exists.
        committed: list = []  # (cid, idle, ev, shape, anchor, c)
        merge: list = []
        for cid, idle, ev, shape, anchor, c in plan:
            if anchor >= t_stop:
                continue
            committed.append((cid, idle, ev, shape, anchor, c))
            heappush(
                merge,
                (anchor, ev.seq, _WAKE if shape == _ASLEEP else _ADV2,
                 len(committed) - 1),
            )
        if not committed:
            return False

        # -- micro-merge: replay the slow path's seq allocation order --
        # The slow path allocates one engine seq at each of the four
        # fires of a cycle (for the event that fire posts) and one
        # run-queue arrival seq at each wake.  Fires interleave across
        # cores in global (time, seq) order, so a 4-kind heap walk over
        # the committed cycles reproduces the allocation stream exactly.
        nseq = engine._seq
        rr = sched._rr_seq
        ncom = len(committed)
        last_adv2 = [0] * ncom
        last_rq = [-1] * ncom
        survivor: list = [None] * ncom  # (wake time, seq) if core exits asleep
        pend: list = [None] * ncom  # (wake, adv2 time, seq) if it exits mid-cycle
        wakes = [0] * ncom
        adv2s = [0] * ncom
        pops = 0
        now_final = engine.now
        # The quiescent stream is periodic: every cycle length the same
        # 4·ncores fires repeat, shifted by L in time and 4·ncores in
        # seq (same-instant cohort order is stable because each wake
        # carrier's seq is allocated at the previous period's matching
        # slot).  Once two consecutive blocks match, the whole remaining
        # middle is a uniform shift of the pending heap — O(cores)
        # instead of O(cycles) — leaving the last few periods to replay
        # explicitly (the terminal survivor/pending decisions happen
        # there).  Per-core skew breaks the common cycle length, so
        # those (rare, fault-run) leaps stay on the explicit walk;
        # identity holds either way.
        n4 = 4 * ncom
        cl0 = committed[0][5] + period
        ring: list = [None] * (2 * n4)
        shifted = any(e[5] != committed[0][5] for e in committed)
        terminal = False
        while merge:
            t, _seq, kind, i = heappop(merge)
            now_final = t
            if kind == _WAKE:
                wakes[i] += 1
                last_rq[i] = rr
                rr += 1
                heappush(merge, (t, nseq, _DISPATCH, i))
            elif kind == _DISPATCH:
                heappush(merge, (t, nseq, _ADV1, i))
            elif kind == _ADV1:
                ta = t + committed[i][5]
                if ta < t_stop:
                    heappush(merge, (ta, nseq, _ADV2, i))
                else:
                    # the cycle straddles t_stop: its completion carrier
                    # stays pending and the core exits mid-cycle
                    pend[i] = (t, ta, nseq)
                    terminal = True
            else:  # _ADV2: cycle complete; arm the next wake
                adv2s[i] += 1
                last_adv2[i] = t
                nt = t + period
                if nt < t_stop:
                    heappush(merge, (nt, nseq, _WAKE, i))
                else:
                    survivor[i] = (nt, nseq)
                    terminal = True
            nseq += 1
            if shifted:
                continue
            ring[pops % (2 * n4)] = (t, kind, i)
            pops += 1
            if terminal or pops < 2 * n4 or pops % n4:
                continue
            base = pops - 2 * n4
            for j in range(n4):
                ea = ring[(base + j) % (2 * n4)]
                eb = ring[(base + n4 + j) % (2 * n4)]
                if ea[1] != eb[1] or ea[2] != eb[2] or eb[0] - ea[0] != cl0:
                    break
            else:
                # two identical blocks: jump all but the last ~3 periods
                # (any cl0-periodic stream has exactly one wake and one
                # completion per core in any whole-period span, so the
                # per-core tallies advance uniformly)
                rem = (t_stop - t) // cl0 - 3
                shifted = True
                if rem > 0:
                    dt = rem * cl0
                    ds = rem * n4
                    # uniform shifts preserve heap order — no re-heapify
                    merge = [(mt + dt, ms + ds, mk, mi) for mt, ms, mk, mi in merge]
                    nseq += ds
                    rr += rem * ncom
                    for x in range(ncom):
                        wakes[x] += rem
                        adv2s[x] += rem
        if sum(wakes) + sum(adv2s) < 2 * self.min_cycles:
            # not worth the attempt bookkeeping — and nothing has been
            # mutated yet (the merge is pure), so bailing is free
            return False

        # -- apply: per-core batched accounting + fresh carriers -------
        # Accounting sides are split per cycle: the wake/dispatch/resume
        # prefix books the IDLE keypoint count, the fast-pass counters
        # and the virtual Compute cost (ADV1 side); the completion books
        # the histogram samples (ADV2 side).  A generator resume replays
        # its own side for real — an entry tail's completion and an exit
        # straddler's prefix — so those are excluded from the batches.
        kp_idle = Keypoint.IDLE
        idle_hist = sched.keypoint_ns[kp_idle]
        busy = sched._busy
        preempt = sched._preempt
        leap_commit = manager.leap_commit
        pool = engine._pool
        is_wheel = engine.is_wheel
        for i, (cid, idle, ev, shape, anchor, c) in enumerate(committed):
            nw = wakes[i]
            exit_mid = pend[i] is not None
            k1 = nw - 1 if exit_mid else nw
            k2 = adv2s[i] - 1 if shape == _MIDCYCLE else adv2s[i]
            if k1:
                sched.cores[cid].keypoint_counts[kp_idle] += k1
            if k2:
                idle_hist.record_many(c, k2)
            leap_commit(cid, k1, k2, c)
            if nw:
                # every replayed prefix charged one batched Compute (the
                # exit straddler's too — its resume below does not)
                idle.cpu_ns += nw * c
                busy[cid] += nw * c
            if shape == _MIDCYCLE:
                # Entry tail: finish the half-open cycle by resuming the
                # generator across its batched-Compute yield with the
                # clock staged to the completion instant — the generator
                # records the pass's histogram samples itself and lands
                # suspended at the cycle Sleep, the asleep steady state.
                engine.now = anchor
                nxt = idle.gen.send(None)
                if nxt.__class__ is not Sleep or nxt.ns != period:
                    raise RuntimeError(
                        "quiescence leap: mid-cycle resume did not yield "
                        f"the probe sleep (got {nxt!r})"
                    )
                idle.compute_event = None
            # the old carrier's fire was replayed as this core's seed
            # event; kill the queued entry (lazily drained + recycled)
            ev.cancel()
            if exit_mid:
                # Exit straddler: move the generator from the cycle
                # Sleep to the fast-path Compute yield (one resume — it
                # books the pass's count and fast-pass counters itself),
                # then emulate _advance's inline Compute slice: pending
                # completion carrier, core left running the batch.
                wlast, ta, cseq = pend[i]
                engine.now = wlast
                instr = idle.gen.send(None)
                ns = instr.ns if instr.__class__ is Compute else None
                if ns is not None and skew is not None:
                    f = skew[cid]
                    if f is not None:
                        ns = ns * f[0] // f[1]
                if ns != c:
                    raise RuntimeError(
                        "quiescence leap: straddling-cycle resume did not "
                        f"yield the batched pass Compute (got {instr!r})"
                    )
                if pool:
                    nev = pool.pop()
                    nev.time = ta
                    nev.seq = cseq
                    nev.fn = advance
                    nev.args = idle.adv_args
                    nev.alive = True
                else:
                    nev = Event(ta, cseq, advance, idle.adv_args)
                    nev._pooled = True
                nev._engine = engine
                engine._live += 1
                if is_wheel:
                    engine._insert((ta, cseq, None, nev))
                else:
                    heappush(engine._heap, (ta, cseq, nev))
                idle.compute_event = (nev, wlast, c)
                idle.sleep_event = None
                idle.state = TState.RUNNING
                idle.blocked_on = ""
                cur[cid] = idle
                idle.instr_start = wlast
            else:
                # exits asleep: what the slow path's Sleep handler would
                # leave — BLOCKED on "sleep", core released (run queue
                # empty: checked at eligibility, nothing enqueues during
                # a leap), fresh carrier at the merge-computed slot
                idle.state = TState.BLOCKED
                idle.blocked_on = "sleep"
                cur[cid] = None
                preempt[cid] = False
                st, ss = survivor[i]
                if pool:
                    nev = pool.pop()
                    nev.time = st
                    nev.seq = ss
                    nev.fn = sleep_wake
                    nev.args = idle.wake_args
                    nev.alive = True
                else:
                    nev = Event(st, ss, sleep_wake, idle.wake_args)
                    nev._pooled = True
                nev._engine = engine
                engine._live += 1
                if is_wheel:
                    engine._insert((st, ss, None, nev))
                else:
                    heappush(engine._heap, (st, ss, nev))
                idle.sleep_event = nev
                idle.instr_start = last_adv2[i]
            if last_rq[i] >= 0:
                idle.rq_seq = last_rq[i]
        engine._seq = nseq
        sched._rr_seq = rr
        engine.fired += 3 * sum(wakes) + sum(adv2s)
        engine.now = now_final
        self.leaps += 1
        self.cycles_elided += sum(adv2s)
        return True
