"""Lightweight tasks (ltasks).

A task is "running a function with a given parameter" (paper §III) plus:

* a **CPU set** restricting which cores may execute it;
* an optional **repeat** flag: the task is re-enqueued into the same queue
  until its function reports completion (used for NIC polling);
* a **completion flag** other threads can spin or block on;
* an embedded-allocation convention: NewMadeleine embeds the task in its
  packet wrapper so submission allocates nothing (paper §IV-B) — here the
  ``owner`` back-pointer plays that role and :class:`LTask` construction is
  cheap and reusable via :meth:`reset`.

The task function runs *host-instant*; its virtual duration is
``MachineSpec.task_run_ns + cost_ns``.  For repeat tasks the function
returns truthy when the task is complete (e.g. the poll succeeded).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.topology.cpuset import CpuSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.threads.flag import Flag


class TaskOption(enum.Flag):
    NONE = 0
    #: re-enqueue until the function returns truthy (polling tasks)
    REPEAT = enum.auto()
    #: extension (paper §VI future work): may be executed immediately on a
    #: remote CPU by injecting a keypoint there
    PREEMPTIVE = enum.auto()


class TaskState(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"


TaskFn = Callable[["LTask"], Any]


class LTask:
    """One lightweight task."""

    __slots__ = (
        "func",
        "arg",
        "cpuset",
        "options",
        "cost_ns",
        "name",
        "state",
        "completion",
        "owner",
        "submit_core",
        "submit_time",
        "complete_time",
        "executions",
        "executed_by",
        "queue_name",
        "current_core",
        "enqueued_at",
        "first_polled_at",
        "trace_prev_run",
        "polled_stamp",
    )

    def __init__(
        self,
        func: Optional[TaskFn],
        arg: Any = None,
        *,
        cpuset: CpuSet,
        options: TaskOption = TaskOption.NONE,
        cost_ns: int = 0,
        name: str = "",
        owner: Any = None,
    ) -> None:
        if not cpuset:
            raise ValueError("a task needs a non-empty CPU set")
        if cost_ns < 0:
            raise ValueError("negative task cost")
        self.func = func
        self.arg = arg
        self.cpuset = cpuset
        self.options = options
        self.cost_ns = cost_ns
        self.name = name
        self.state = TaskState.CREATED
        #: bound by the manager at submit time (needs machine + engine)
        self.completion: Optional["Flag"] = None
        self.owner = owner
        self.submit_core: Optional[int] = None
        self.submit_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        self.executions = 0
        #: core id -> times this task's function ran there
        self.executed_by: dict[int, int] = {}
        self.queue_name = ""
        #: core currently (or last) executing this task's function
        self.current_core: Optional[int] = None
        #: lifecycle spans (virtual-time stamps, set by queue/manager):
        #: when the task last entered a queue (re-stamped on repeat
        #: re-enqueues, so dequeue-time minus this is the *per-poll* wait)
        self.enqueued_at: Optional[int] = None
        #: when a core first picked the task up (queue-wait span end)
        self.first_polled_at: Optional[int] = None
        #: causal-trace chaining for repeat tasks: ``(run_node, end_ns)``
        #: of the previous poll (assigned only while tracing is enabled)
        self.trace_prev_run: Optional[tuple] = None
        #: scan-pass stamp: equals the manager's current per-queue poll
        #: stamp iff this task was already polled in that scan (dedup must
        #: not key on ``id()`` — a freed task's address can be reused by a
        #: new task mid-pass, making behaviour depend on heap layout)
        self.polled_stamp = 0

    # ------------------------------------------------------------------
    # lifecycle spans
    # ------------------------------------------------------------------
    @property
    def submitted_at(self) -> Optional[int]:
        """Span alias: virtual time of submission (``submit_time``)."""
        return self.submit_time

    @property
    def completed_at(self) -> Optional[int]:
        """Span alias: virtual time of completion (``complete_time``)."""
        return self.complete_time

    @property
    def poll_attempts(self) -> int:
        """How many times a core polled (ran) this task's function."""
        return self.executions

    def queue_wait_ns(self) -> Optional[int]:
        """Submission → first poll: how long the task sat unserved."""
        if self.submit_time is None or self.first_polled_at is None:
            return None
        return self.first_polled_at - self.submit_time

    def latency_ns(self) -> Optional[int]:
        """Submission → completion: the full lifecycle span."""
        if self.submit_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.submit_time

    # ------------------------------------------------------------------
    @property
    def repeat(self) -> bool:
        return bool(self.options & TaskOption.REPEAT)

    @property
    def preemptive(self) -> bool:
        return bool(self.options & TaskOption.PREEMPTIVE)

    @property
    def done(self) -> bool:
        return self.state is TaskState.DONE

    def run(self, core: int) -> bool:
        """Invoke the function on ``core``; returns completion verdict."""
        self.state = TaskState.RUNNING
        self.current_core = core
        self.executions += 1
        self.executed_by[core] = self.executed_by.get(core, 0) + 1
        if self.func is None:
            return True
        result = self.func(self)
        if not self.repeat:
            return True
        return bool(result)

    def reset(self) -> None:
        """Make the task submittable again (embedded-reuse convention)."""
        if self.state in (TaskState.QUEUED, TaskState.RUNNING):
            raise RuntimeError(f"cannot reset in-flight task {self.name!r}")
        self.state = TaskState.CREATED
        self.completion = None
        self.submit_core = None
        self.submit_time = None
        self.complete_time = None
        self.enqueued_at = None
        self.first_polled_at = None
        self.trace_prev_run = None

    def __repr__(self) -> str:
        return (
            f"<LTask {self.name or id(self)} {self.state.value} "
            f"cpuset={list(self.cpuset)}{' repeat' if self.repeat else ''}>"
        )
