"""Hierarchical queue tree — paper Fig. 2.

One task queue per topology node, so the queue tree *is* the machine tree:
Per-Core Queues at the leaves, Per-Cache / Per-Chip / Per-NUMA queues at
interior nodes (whichever levels the machine has), and the Global Queue at
the root.

Two lookups dominate and are precomputed:

* ``queue_for_cpuset`` — submission routing: the queue of the narrowest
  node covering the task's CPU set (§III-A);
* ``scan_path(core)`` — Algorithm 1's iteration order: the core's own
  queue, then each ancestor up to the global queue.

``hierarchical=False`` collapses the whole tree to the single Global Queue
— the "naive solution" strawman of §III and ablation A1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.queues import TaskQueue
from repro.topology.cpuset import CpuSet, iter_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine, TopoNode

QueueFactory = Callable[..., TaskQueue]


@dataclass
class SummaryStats:
    """Occupancy-summary fast-path counters (registry: ``<name>.summary``).

    * ``summary_hits`` — Algorithm-1 passes answered by the O(1) primed
      fast path: no queue was probed, the batched cost was replayed.
    * ``summary_misses`` — passes that walked the scan path because the
      summary showed work (``summary & mask != 0``).
    * ``stale_bits`` — passes that walked the scan path even though the
      summary was clear: the core was not primed yet, typically because a
      recent transition's stale-visibility window had to be re-observed
      before the emptiness is provably settled for this core.
    """

    summary_hits: int = 0
    summary_misses: int = 0
    stale_bits: int = 0


class QueueHierarchy:
    """The tree of task queues mapped onto a machine topology."""

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        *,
        queue_factory: QueueFactory = TaskQueue,
        hierarchical: bool = True,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.hierarchical = hierarchical
        self.by_node: dict[int, TaskQueue] = {}
        if hierarchical:
            # Collapse redundant levels: when an interior node spans exactly
            # the same cores as its only child (e.g. a NUMA node holding a
            # single chip/L3), one queue serves both — keep the innermost.
            nodes = [
                node
                for node in machine.nodes
                if node is machine.root
                or not (
                    len(node.children) == 1
                    and node.children[0].cpuset == node.cpuset
                )
            ]
        else:
            nodes = [machine.root]
        for node in nodes:
            self.by_node[id(node)] = queue_factory(machine, engine, node)
        self.global_queue = self.by_node[id(machine.root)]
        #: scan order per core: per-core queue first, global queue last
        self._scan_paths: list[list[TaskQueue]] = []
        for core in machine.core_nodes:
            path = [
                self.by_node[id(anc)]
                for anc in core.ancestors()
                if id(anc) in self.by_node
            ]
            self._scan_paths.append(path)
        #: cpuset-mask -> queue memo for queue_for_cpuset: every submission
        #: routes, and real workloads reuse a handful of CPU sets (single
        #: cores, cache/chip spans, the full machine) over and over
        self._route_cache: dict[int, TaskQueue] = {}
        #: (cpuset-mask, from_core) -> cores ordered nearest-first; the
        #: find_idle_core memo (topology distances are immutable)
        self._candidate_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        # --- occupancy summary -----------------------------------------
        #: one bit per queue, set iff that queue is *actually* non-empty;
        #: maintained by the queues on every empty<->non-empty transition
        self.summary = 0
        #: one bit per core, set iff the core's whole scan path is proven
        #: settled-empty (summary clear *and* every stale window expired),
        #: so its next Algorithm-1 pass may replay the batched probe cost
        #: without walking the path; any write to a covered queue clears it
        self.primed_mask = 0
        self.summary_stats = SummaryStats()
        #: bit index -> queue, for walking ``summary & mask`` set bits
        self.bit_queues: tuple[TaskQueue, ...] = tuple(self.by_node.values())
        for bit, queue in enumerate(self.bit_queues):
            # a queue's writes un-prime exactly the cores that scan it,
            # i.e. the cores its node spans
            queue.attach_summary(self, 1 << bit, ~queue.node.cpuset.mask)
        #: per-core OR of the scan path's queue bits (Algorithm 1's mask)
        self.scan_masks: list[int] = []
        for path in self._scan_paths:
            mask = 0
            for queue in path:
                mask |= queue._bitmask
            self.scan_masks.append(mask)

    # ------------------------------------------------------------------
    def queue_for_cpuset(self, cpuset: CpuSet) -> TaskQueue:
        """Submission routing: narrowest covering node's queue."""
        queue = self._route_cache.get(cpuset.mask)
        if queue is None:
            if not self.hierarchical:
                if not cpuset.issubset(self.machine.root.cpuset):
                    raise ValueError(f"{cpuset!r} exceeds machine cores")
                queue = self.global_queue
            else:
                node = self.machine.node_covering(cpuset)
                queue = self.by_node[id(node)]
            self._route_cache[cpuset.mask] = queue
        return queue

    def scan_path(self, core: int) -> list[TaskQueue]:
        """Algorithm 1 order for a core (local queue ... global queue)."""
        return self._scan_paths[core]

    def candidate_order(self, cpuset: CpuSet, from_core: int) -> tuple[int, ...]:
        """Cores of ``cpuset`` on this machine, nearest to ``from_core``
        first (ties by core id) — the §IV-B idle-core search order.

        Memoized per (mask, origin): distances are immutable and the CPU
        sets in flight repeat, so ``find_idle_core`` walks a precomputed
        tuple instead of re-deriving the order per submission.
        """
        key = (cpuset.mask, from_core)
        order = self._candidate_cache.get(key)
        if order is None:
            ncores = self.machine.ncores
            xfer_row = self.machine.xfer_row(from_core)
            order = tuple(
                sorted(
                    (c for c in cpuset if c < ncores),
                    key=lambda c: (xfer_row[c], c),
                )
            )
            self._candidate_cache[key] = order
        return order

    def hot_queues(self, core: int) -> list[TaskQueue]:
        """Queues on ``core``'s scan path whose summary bit is set, in bit
        order — the "iterate only the set bits" view of the occupancy
        summary (diagnostics/tests; Algorithm 1 itself keeps the paper's
        local-to-global order)."""
        bq = self.bit_queues
        return [bq[b] for b in iter_bits(self.summary & self.scan_masks[core])]

    def queues(self) -> list[TaskQueue]:
        return list(self.by_node.values())

    def queue_of_node(self, node: "TopoNode") -> Optional[TaskQueue]:
        return self.by_node.get(id(node))

    def total_queued(self) -> int:
        return sum(len(q) for q in self.by_node.values())

    def __repr__(self) -> str:
        kind = "hierarchical" if self.hierarchical else "flat"
        return f"<QueueHierarchy {kind} queues={len(self.by_node)}>"
