"""Hierarchical queue tree — paper Fig. 2.

One task queue per topology node, so the queue tree *is* the machine tree:
Per-Core Queues at the leaves, Per-Cache / Per-Chip / Per-NUMA queues at
interior nodes (whichever levels the machine has), and the Global Queue at
the root.

Two lookups dominate and are precomputed:

* ``queue_for_cpuset`` — submission routing: the queue of the narrowest
  node covering the task's CPU set (§III-A);
* ``scan_path(core)`` — Algorithm 1's iteration order: the core's own
  queue, then each ancestor up to the global queue.

``hierarchical=False`` collapses the whole tree to the single Global Queue
— the "naive solution" strawman of §III and ablation A1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.queues import TaskQueue
from repro.topology.cpuset import CpuSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine, TopoNode

QueueFactory = Callable[..., TaskQueue]


class QueueHierarchy:
    """The tree of task queues mapped onto a machine topology."""

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        *,
        queue_factory: QueueFactory = TaskQueue,
        hierarchical: bool = True,
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.hierarchical = hierarchical
        self.by_node: dict[int, TaskQueue] = {}
        if hierarchical:
            # Collapse redundant levels: when an interior node spans exactly
            # the same cores as its only child (e.g. a NUMA node holding a
            # single chip/L3), one queue serves both — keep the innermost.
            nodes = [
                node
                for node in machine.nodes
                if node is machine.root
                or not (
                    len(node.children) == 1
                    and node.children[0].cpuset == node.cpuset
                )
            ]
        else:
            nodes = [machine.root]
        for node in nodes:
            self.by_node[id(node)] = queue_factory(machine, engine, node)
        self.global_queue = self.by_node[id(machine.root)]
        #: scan order per core: per-core queue first, global queue last
        self._scan_paths: list[list[TaskQueue]] = []
        for core in machine.core_nodes:
            path = [
                self.by_node[id(anc)]
                for anc in core.ancestors()
                if id(anc) in self.by_node
            ]
            self._scan_paths.append(path)
        #: cpuset-mask -> queue memo for queue_for_cpuset: every submission
        #: routes, and real workloads reuse a handful of CPU sets (single
        #: cores, cache/chip spans, the full machine) over and over
        self._route_cache: dict[int, TaskQueue] = {}

    # ------------------------------------------------------------------
    def queue_for_cpuset(self, cpuset: CpuSet) -> TaskQueue:
        """Submission routing: narrowest covering node's queue."""
        queue = self._route_cache.get(cpuset.mask)
        if queue is None:
            if not self.hierarchical:
                if not cpuset.issubset(self.machine.root.cpuset):
                    raise ValueError(f"{cpuset!r} exceeds machine cores")
                queue = self.global_queue
            else:
                node = self.machine.node_covering(cpuset)
                queue = self.by_node[id(node)]
            self._route_cache[cpuset.mask] = queue
        return queue

    def scan_path(self, core: int) -> list[TaskQueue]:
        """Algorithm 1 order for a core (local queue ... global queue)."""
        return self._scan_paths[core]

    def queues(self) -> list[TaskQueue]:
        return list(self.by_node.values())

    def queue_of_node(self, node: "TopoNode") -> Optional[TaskQueue]:
        return self.by_node.get(id(node))

    def total_queued(self) -> int:
        return sum(len(q) for q in self.by_node.values())

    def __repr__(self) -> str:
        kind = "hierarchical" if self.hierarchical else "flat"
        return f"<QueueHierarchy {kind} queues={len(self.by_node)}>"
