"""Queue variants for the paper's design-choice ablations.

* :class:`MutexTaskQueue` — ablation A2.  The paper argues (§IV-A) that a
  blocking mutex is the wrong tool for queue-length critical sections: a
  waiter pays a context switch both ways, dwarfing the section itself.
* :class:`LockFreeTaskQueue` — ablation A4 / paper future work (§VI).  A
  CAS-based MS-queue-style list: no lock word at all, but every operation
  is an RMW on the head/tail line, with a retry penalty when several cores
  hit the same line in a short window.
* :class:`IdleBackoff` — the adaptive idle-backoff policy (off by default):
  an idle core that keeps coming up empty stretches its re-poll interval
  exponentially instead of hammering the queues at a fixed period, and
  snaps back to the base period on any doorbell.  Pass an instance as
  ``Scheduler(idle_backoff=...)``; the ablation bench quantifies saved
  empty passes against the added wakeup latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.mem.cacheline import MemStats
from repro.sync.mutex import Mutex
from repro.sync.stats import LockStats
from repro.threads.instructions import Compute, Instr, MutexAcquire, MutexRelease
from repro.core.queues import TaskQueue
from repro.core.task import LTask, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.topology.machine import Machine, TopoNode


class MutexTaskQueue(TaskQueue):
    """TaskQueue protected by a blocking mutex instead of a spinlock."""

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        node: "TopoNode",
        *,
        lock_stats: Optional[LockStats] = None,
        mem_stats: Optional[MemStats] = None,
    ) -> None:
        super().__init__(machine, engine, node, lock_stats=lock_stats, mem_stats=mem_stats)
        home = node.cpuset.first() if node.cpuset else 0
        self.mutex = Mutex(
            machine, engine, home=home, name=f"mutex:{self.name}",
            stats=self.lock.stats, mem_stats=mem_stats,
        )

    def _acquire(self) -> Instr:
        return MutexAcquire(self.mutex)

    def _release(self) -> Instr:
        return MutexRelease(self.mutex)


class LockFreeTaskQueue(TaskQueue):
    """CAS-based queue: each enqueue/dequeue is one RMW on a hot line.

    The contention model charges a retry penalty proportional to how many
    *distinct* cores performed an RMW on the line within the last
    ``retry_window_ns`` — a simple stand-in for CAS retry loops.
    """

    retry_window_ns = 200

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._recent_rmw: list[tuple[int, int]] = []  # (time, core)

    def _rmw_cost(self, core: int) -> int:
        now = self.engine.now
        self._recent_rmw = [
            (t, c) for (t, c) in self._recent_rmw if now - t <= self.retry_window_ns
        ]
        rivals = {c for (_, c) in self._recent_rmw if c != core}
        self._recent_rmw.append((now, core))
        base = self.state_line.rmw(core)
        # every CAS writes the head/tail line: un-prime the covering cores
        self._note_state_write()
        if rivals:
            # one extra line round-trip per rival caught in the window
            penalty = sum(self.machine.xfer(c, core) for c in rivals)
            return base + penalty
        return base

    def enqueue(self, core: int, task: LTask) -> Generator[Instr, Any, None]:
        yield Compute(self._rmw_cost(core))
        if task.state is TaskState.CANCELLED:
            return  # never resurrect a cancelled task (see TaskQueue.enqueue)
        if not self._tasks:
            self._note_transition(core, prev_nonempty=False)
        self._tasks.append(task)
        task.state = TaskState.QUEUED
        task.queue_name = self.name
        self.stats.enqueues += 1
        if len(self._tasks) > self.stats.max_len:
            self.stats.max_len = len(self._tasks)

    def get_task(self, core: int) -> Generator[Instr, Any, Optional[LTask]]:
        nonempty, cost = self.probe(core)
        yield Compute(cost)
        if not nonempty:
            return None
        yield Compute(self._rmw_cost(core))
        task = self._pop_eligible(core)
        if task is not None:
            if not self._tasks:
                self._note_transition(core, prev_nonempty=True)
            self.stats.dequeues += 1
            self.stats.dequeued_by[core] = self.stats.dequeued_by.get(core, 0) + 1
            return task
        if not self._tasks:
            self.stats.lost_races += 1
        return None


@dataclass(frozen=True)
class IdleBackoff:
    """Adaptive idle backoff: stretch the re-poll period when nothing bites.

    After ``free_passes`` consecutive empty Algorithm-1 passes, an idle
    core multiplies its sleep between re-polls by ``factor`` per further
    empty pass, saturating at ``max_ns``; any doorbell (task submission
    reaching the core) or productive pass resets the streak, so the next
    sleep is the base period again.  The trade is explicit: fewer empty
    passes (and their probe traffic) in exchange for up to ``max_ns`` of
    extra latency noticing work that arrives *without* ringing a doorbell
    — which is why it is off by default and shipped as a variant for the
    ablation bench rather than wired into the golden configurations.

    Integer-only arithmetic: the stretched intervals are exact, so runs
    stay deterministic for any (factor, max_ns) choice.
    """

    factor: int = 2
    free_passes: int = 2
    max_ns: int = 64_000

    def delay_ns(self, base_ns: int, streak: int) -> int:
        """Sleep before the next re-poll after ``streak`` empty passes."""
        exp = streak - self.free_passes
        if exp <= 0:
            return base_ns
        if exp > 30:  # 2**30 * any base saturates; avoid huge int powers
            exp = 30
        stretched = base_ns * self.factor**exp
        return stretched if stretched < self.max_ns else self.max_ns
