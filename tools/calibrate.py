"""Calibration helper: side-by-side measured vs paper targets.

Run:  python3 tools/calibrate.py
Not part of the library — a development tool kept for reproducibility.
"""

from repro.topology import borderline, kwak
from repro.bench.task_microbench import run_task_microbench

PAPER = {
    "borderline": {
        "core#0": 770, "core#1": 788, "core#2": 839, "core#3": 818,
        "core#4": 846, "core#5": 858, "core#6": 858,  # core#7=1819 anomaly
        "chip#0": 1114, "chip#1": 1059, "chip#2": 1157, "chip#3": 1199,
        "global": 4720,
    },
    "kwak": {
        "core#0": 723, "core#1": 697, "core#2": 697, "core#3": 697,
        "core#4": 1777, "core#5": 1787, "core#6": 1776, "core#7": 1777,
        "core#8": 1777, "core#9": 1867, "core#10": 1866, "core#11": 1867,
        "core#12": 1747, "core#13": 1737, "core#14": 1737, "core#15": 1787,
        "cache#0": 1905, "cache#1": 2037, "cache#2": 2046,  # cache#3=5216 anomaly
        "global": 13585,
    },
}


def main() -> None:
    for mf in (borderline, kwak):
        m = mf()
        res = run_task_microbench(m, reps=200)
        targets = PAPER[res.machine]
        print(f"=== {res.machine} ===")
        print(f"{'row':<10} {'paper':>8} {'ours':>8} {'ratio':>6}")
        for row in res.all_rows():
            t = targets.get(row.label)
            if t is None:
                continue
            print(f"{row.label:<10} {t:>8} {row.mean_ns:>8.0f} {row.mean_ns / t:>6.2f}")
        g = res.global_row
        print(" global shares:", {k: round(v, 2) for k, v in g.shares.items()})
        print()


if __name__ == "__main__":
    main()
