#!/usr/bin/env python3
"""PIOMan as a *generic* task system: the PIO-I/O storage library.

The paper's conclusion sketches this direction: "we also plan to
integrate the task mechanism in an I/O library ... a generic framework
able to optimize both communication and I/O in a scalable way" (§VI).
:mod:`repro.pioio` is that integration: an asynchronous block-I/O API
whose completions are reaped by a PIOMan repeat polling task with
chip-local affinity — the same offload shape NewMadeleine uses for NICs.

The demo issues a batch of SSD reads, computes for 2 ms, and shows the
final wait costing nothing: idle sibling cores reaped everything during
the computation.  A second run with a slow SATA disk shows the same code
overlapping an 8 ms seek.

Run:  python3 examples/io_offload.py
"""

from repro import Engine, PIOMan, Scheduler, borderline, fmt_ns
from repro.pioio import SATA_DISK, SSD, BlockDevice, PIOIo
from repro.threads.instructions import Compute


def run(spec, compute_ns, nreads, label):
    machine = borderline()
    engine = Engine()
    scheduler = Scheduler(machine, engine)
    pioman = PIOMan(machine, engine, scheduler)
    device = BlockDevice(engine, spec)
    aio = PIOIo(pioman, device)
    out = {}

    def app(ctx):
        reqs = []
        for i in range(nreads):
            req = yield from aio.aio_read(ctx.core_id, i * 64 * 1024, 64 * 1024)
            reqs.append(req)
        t0 = ctx.now
        yield Compute(compute_ns)
        t_compute = ctx.now - t0
        yield from aio.wait_all(ctx.core_id, reqs)
        out["compute"] = t_compute
        out["total"] = ctx.now - t0
        out["wait_cost"] = out["total"] - t_compute

    scheduler.spawn(app, core=0, name="app")
    engine.run()

    print(f"--- {label} ---")
    print(f"  {nreads} x 64 KB reads, {fmt_ns(compute_ns)} of computation")
    print(f"  computation took      {fmt_ns(out['compute'])}")
    print(f"  final wait cost       {fmt_ns(out['wait_cost'])}")
    print(f"  total                 {fmt_ns(out['total'])}")
    print(f"  completions reaped by idle cores: {aio.reaped}, "
          f"task executions: {pioman.stats.executions}")
    hidden = out["wait_cost"] < 0.05 * out["compute"]
    print(f"  I/O fully hidden behind computation: {hidden}")
    print()


def main() -> None:
    run(SSD, 2_000_000, 8, "SSD (80 us ops)")
    run(SATA_DISK, 20_000_000, 2, "SATA disk (8 ms seeks)")


if __name__ == "__main__":
    main()
