#!/usr/bin/env python3
"""Communication/computation overlap: PIOMan vs an MVAPICH-like baseline.

The scenario of paper Fig. 6 (the headline result): a receiver posts a
non-blocking receive for a 1 MB message, computes for a while, then waits.
With PIOMan the rendezvous handshake is executed by tasks on idle cores
while the receiver computes; with the baseline nothing moves until the
receiver re-enters MPI.

Run:  python3 examples/overlap_demo.py
"""

from repro import Cluster, MadMPI, MVAPICHLike, fmt_ns
from repro.bench.reporting import sparkline
from repro.threads.instructions import Compute

SIZE = 1024 * 1024
COMPUTES_US = [0, 250, 500, 750, 1000, 1250, 1500, 1750, 2000]


def measure(impl_cls, compute_ns: int) -> float:
    cluster = Cluster(2, seed=1)
    mpi = impl_cls(cluster)
    cs, cr = mpi.comm(0), mpi.comm(1)
    out = {}

    def sender(ctx):
        yield from cs.recv(ctx.core_id, 1, 99)  # wait for "recv posted"
        req = yield from cs.isend(ctx.core_id, 1, 5, SIZE, payload=b"body")
        yield from cs.wait(ctx.core_id, req)

    def receiver(ctx):
        req = yield from cr.irecv(ctx.core_id, 0, 5)
        yield from cr.send(ctx.core_id, 0, 99, 4, payload=b"go")
        t0 = ctx.now
        yield Compute(compute_ns)
        yield from cr.wait(ctx.core_id, req)
        out["total"] = ctx.now - t0

    cluster.nodes[0].scheduler.spawn(sender, 0, name="send")
    cluster.nodes[1].scheduler.spawn(receiver, 0, name="recv")
    cluster.run(until=1_000_000_000)
    total = out["total"]
    return compute_ns / total if total else 0.0


def main() -> None:
    print(f"Receiver-side overlap, {SIZE // 1024} KB rendezvous message")
    print(f"{'compute':>10} {'PIOMan':>8} {'MVAPICH-like':>13}")
    curves = {"PIOMan": [], "MVAPICH": []}
    for us in COMPUTES_US:
        p = measure(MadMPI, us * 1000)
        m = measure(MVAPICHLike, us * 1000)
        curves["PIOMan"].append(p)
        curves["MVAPICH"].append(m)
        print(f"{us:>8} us {p:>8.2f} {m:>13.2f}")
    print()
    for name, vals in curves.items():
        print(f"  {name:<12} {sparkline(vals)}")
    print("\nPIOMan saturates once computation exceeds the wire time;")
    print("the baseline stays on the no-overlap hyperbola T/(T+Tcomm).")


if __name__ == "__main__":
    main()
