#!/usr/bin/env python3
"""NewMadeleine's optimization layer: aggregation and multirail split.

Reproduces the paper's Fig. 1 idea: multiplexing application flows gives
the library a global view before anything touches a NIC, enabling
cross-flow optimizations.  Two scenarios on a BORDERLINE-like node with
two NICs (ConnectX InfiniBand + Myri-10G):

* **aggregation** — a burst of small messages lands while the rails are
  busy; the collect layer pools them and the strategy packs them into a
  handful of frames instead of one frame each;
* **multirail split** — a single 2 MB body is striped across both rails
  proportionally to their bandwidth, finishing faster than either rail
  alone.

Run:  python3 examples/multirail_aggregation.py
"""

from repro import Cluster, fmt_ns
from repro.net.driver import IB_CONNECTX, MYRI10G_MX
from repro.nmad.library import NMad
from repro.nmad.strategies import StratAggregSplit, StratDefault


def _world(strategy):
    cluster = Cluster(2, drivers=(IB_CONNECTX, MYRI10G_MX), seed=3)
    n0 = NMad(cluster.nodes[0], strategy=strategy)
    n1 = NMad(cluster.nodes[1], strategy=strategy)
    return cluster, n0, n1


def aggregation_scenario(strategy, label):
    """A 64 KB eager keeps the rails busy; 12 small messages pool behind."""
    cluster, n0, n1 = _world(strategy)
    out = {}

    def sender(ctx):
        reqs = []
        # occupy both rails with medium eager bodies...
        for tag in (90, 91):
            r = yield from n0.isend(ctx.core_id, 1, tag, 12 * 1024, payload=b"m")
            reqs.append(r)
        # ...then the burst of small messages
        for i in range(12):
            r = yield from n0.isend(ctx.core_id, 1, i, 256, payload=i)
            reqs.append(r)
        for r in reqs:
            yield from n0.wait(ctx.core_id, r)

    def receiver(ctx):
        for tag in (90, 91):
            yield from n1.recv(ctx.core_id, 0, tag)
        for i in range(12):
            req = yield from n1.recv(ctx.core_id, 0, i)
            assert req.payload == i
        out["done"] = ctx.now

    cluster.nodes[0].scheduler.spawn(sender, 0, name="s")
    cluster.nodes[1].scheduler.spawn(receiver, 0, name="r")
    cluster.run(until=100_000_000)
    gate = n0.gates[1]
    print(f"  {label:<28} frames={gate.stats.frames_out:<3} "
          f"aggregated_wrappers={gate.stats.aggregated_pw:<3} "
          f"done at {fmt_ns(out['done'])}")


def split_scenario(strategy, label):
    """One 2 MB rendezvous body across both rails."""
    cluster, n0, n1 = _world(strategy)
    out = {}
    SIZE = 2 * 1024 * 1024

    def sender(ctx):
        req = yield from n0.isend(ctx.core_id, 1, 5, SIZE, payload=b"big")
        yield from n0.wait(ctx.core_id, req)

    def receiver(ctx):
        req = yield from n1.recv(ctx.core_id, 0, 5)
        assert req.size == SIZE
        out["done"] = ctx.now

    cluster.nodes[0].scheduler.spawn(sender, 0, name="s")
    cluster.nodes[1].scheduler.spawn(receiver, 0, name="r")
    cluster.run(until=100_000_000)
    gate = n0.gates[1]
    ib = cluster.nodes[0].nic_by_driver("ibverbs")
    mx = cluster.nodes[0].nic_by_driver("mx")
    print(f"  {label:<28} chunks={gate.stats.split_chunks:<2} "
          f"IB/MX bytes={ib.stats.bytes_sent}/{mx.stats.bytes_sent} "
          f"done at {fmt_ns(out['done'])}")
    return out["done"]


def filter_scenario():
    """A 1 MB body over slow TCP, with and without idle-core compression
    (paper §IV-B: "tasks could be created to apply data filters such as
    data compression ... to exploit efficiently slow networks")."""
    from repro.net.driver import TCP_ETH
    from repro.nmad.filters import LZO_FAST

    times = {}
    for label, filt in (("raw", None), ("lzo-compressed", LZO_FAST)):
        cluster = Cluster(2, drivers=(TCP_ETH,), seed=3)
        n0 = NMad(cluster.nodes[0], data_filter=filt)
        n1 = NMad(cluster.nodes[1], data_filter=filt)
        done = {}

        def sender(ctx):
            req = yield from n0.isend(ctx.core_id, 1, 0, 1024 * 1024, payload=b"x")
            yield from n0.wait(ctx.core_id, req)

        def receiver(ctx):
            req = yield from n1.recv(ctx.core_id, 0, 0)
            assert req.size == 1024 * 1024
            done["t"] = ctx.now

        cluster.nodes[0].scheduler.spawn(sender, 0, name="s")
        cluster.nodes[1].scheduler.spawn(receiver, 0, name="r")
        cluster.run(until=2_000_000_000)
        times[label] = done["t"]
        print(f"  {label:<18} 1 MB over TCP in {fmt_ns(done['t'])}")
    print(f"  compression gains {times['raw'] / times['lzo-compressed']:.2f}x "
          f"(idle cores pay the encode/decode CPU)")


def main() -> None:
    print("Scenario 1: small-message burst behind busy rails (aggregation)")
    aggregation_scenario(StratDefault(), "default (FIFO)")
    aggregation_scenario(StratAggregSplit(), "aggregation strategy")
    print()
    print("Scenario 2: one 2 MB body (multirail split)")
    t_plain = split_scenario(StratDefault(), "default (single rail)")
    t_split = split_scenario(StratAggregSplit(), "split strategy")
    print(f"\n  split completes {t_plain / t_split:.2f}x faster "
          f"(cumulated bandwidth of both rails)")
    print()
    print("Scenario 3: slow network + data-filter tasks (compression)")
    filter_scenario()


if __name__ == "__main__":
    main()
