#!/usr/bin/env python3
"""Exploiting scheduling holes (paper §II-B).

"More cores implies longer intra-node synchronization.  These
synchronization issues often leave holes in thread scheduling.  We showed
that it is possible to exploit these holes to make the communication
library progress."

Node 0 runs a bulk-synchronous application: eight worker threads compute
in phases separated by a barrier-style join.  Workers finish their phases
at slightly different times, so cores idle briefly while waiting — the
*holes*.  Meanwhile the application keeps a 256 KB rendezvous receive in
flight per phase.  PIOMan's idle keypoints run the rendezvous handshake
inside those holes, so the communication costs the application almost
nothing; the baseline model (progress only inside MPI calls) pays for it
at every wait.

Run:  python3 examples/scheduling_holes.py
"""

from repro import Cluster, MadMPI, MVAPICHLike, fmt_ns
from repro.threads.instructions import Compute

PHASES = 6
SIZE = 256 * 1024
PHASE_NS = 300_000  # mean per-phase compute


def run(impl_cls, label):
    cluster = Cluster(2, seed=31)
    mpi = impl_cls(cluster)
    c_app, c_peer = mpi.comm(0), mpi.comm(1)
    node0 = cluster.nodes[0]
    out = {}

    def worker(wid, phase):
        # deterministic per-worker jitter: early finishers idle at the
        # phase barrier — these are the scheduling holes
        def body(ctx):
            yield Compute(PHASE_NS + (wid * 7919 + phase * 104729) % 60_000)

        return body

    def app_main(ctx):
        t0 = ctx.now
        longest = 0
        for phase in range(PHASES):
            req = yield from c_app.irecv(ctx.core_id, 1, phase)
            workers = [
                ctx.spawn(worker(w, phase), core=w, name=f"w{w}p{phase}")
                for w in range(1, node0.machine.ncores)
            ]
            yield Compute(PHASE_NS)  # the main thread's share on core 0
            for w in workers:
                yield from ctx.scheduler.join(w)  # phase barrier
            longest += PHASE_NS + max(
                (w * 7919 + phase * 104729) % 60_000
                for w in range(1, node0.machine.ncores)
            )
            yield from c_app.wait(ctx.core_id, req)
        out["elapsed"] = ctx.now - t0
        out["compute_bound"] = longest

    def peer(ctx):
        for phase in range(PHASES):
            yield from c_peer.send(ctx.core_id, 0, phase, SIZE, payload=phase)

    cluster.nodes[0].scheduler.spawn(app_main, 0, name="app")
    cluster.nodes[1].scheduler.spawn(peer, 0, name="peer")
    cluster.run(until=2_000_000_000)

    overhead = out["elapsed"] - out["compute_bound"]
    print(f"  {label:<14} {PHASES} phases + {PHASES} x {SIZE // 1024} KB recv: "
          f"{fmt_ns(out['elapsed'])} "
          f"(beyond the compute critical path: {fmt_ns(max(overhead, 0))})")
    return out["elapsed"]


def main() -> None:
    print("Bulk-synchronous app with per-phase 256 KB receives (node 0 fully "
          "threaded)\n")
    t_pioman = run(MadMPI, "PIOMan")
    t_base = run(MVAPICHLike, "MVAPICH-like")
    print()
    comm_serial = PHASES * (SIZE * 1000 // 1500)  # wire bound per phase
    print(f"  fully serial communication would add {fmt_ns(comm_serial)} — the")
    print(f"  baseline pays almost exactly that (it progresses only inside")
    print(f"  MPI calls).  PIOMan starts each handshake at the first")
    print(f"  scheduling hole (the phase barrier's straggler window), hiding")
    print(f"  part of every transfer: {t_base / t_pioman:.2f}x faster end-to-end.")


if __name__ == "__main__":
    main()
