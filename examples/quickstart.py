#!/usr/bin/env python3
"""Quickstart: PIOMan's task scheduling on a simulated 16-core NUMA host.

Demonstrates the core API surface:

* build a machine topology and a thread scheduler;
* submit lightweight tasks with CPU-set affinity;
* watch the hierarchy route them (per-core / per-L3 / global queues);
* use a repeat task as a poll loop;
* read back execution statistics.

Run:  python3 examples/quickstart.py
"""

from repro import CpuSet, Engine, LTask, PIOMan, Scheduler, TaskOption, fmt_ns, kwak
from repro.core import piom_wait, wait_all


def main() -> None:
    machine = kwak()
    print(machine.describe())

    engine = Engine()
    scheduler = Scheduler(machine, engine)
    pioman = PIOMan(machine, engine, scheduler)

    events = []

    def app(ctx):
        # 1. a task pinned to one remote core
        pinned = LTask(
            lambda t: events.append(("pinned ran on", t.current_core)),
            cpuset=CpuSet.single(9),
            name="pinned",
        )
        yield from pioman.submit(ctx.core_id, pinned)
        yield from piom_wait(pioman, ctx.core_id, pinned, mode="spin")

        # 2. a task for any core of NUMA node #1 (cores 4-7: per-L3 queue)
        node1 = LTask(
            lambda t: events.append(("numa-node task ran on", t.current_core)),
            cpuset=CpuSet.range(4, 8),
            name="numa1",
        )
        yield from pioman.submit(ctx.core_id, node1)
        yield from piom_wait(pioman, ctx.core_id, node1, mode="spin")

        # 3. a repeat (polling-style) task: completes on its third attempt
        attempts = []

        def poll(task):
            attempts.append(ctx.now)
            return len(attempts) >= 3

        poller = LTask(
            poll, cpuset=CpuSet.single(2), options=TaskOption.REPEAT, name="poll"
        )
        yield from pioman.submit(ctx.core_id, poller)
        yield from piom_wait(pioman, ctx.core_id, poller, mode="spin")
        events.append(("poll attempts", len(attempts)))

        # 4. a burst across the whole machine through the global queue
        burst = [
            LTask(None, cpuset=machine.all_cores(), name=f"burst{i}")
            for i in range(8)
        ]
        for task in burst:
            yield from pioman.submit(ctx.core_id, task)
        yield from wait_all(pioman, ctx.core_id, burst, mode="spin")

    scheduler.spawn(app, core=0, name="app")
    engine.run()

    print()
    for what, value in events:
        print(f"  {what}: {value}")
    print(f"\nvirtual time elapsed: {fmt_ns(engine.now)}")
    print(f"tasks executed: {pioman.stats.executions}, "
          f"completed: {pioman.stats.tasks_completed}")
    shares = pioman.execution_shares()
    print("execution shares by core:",
          {c: f"{s:.0%}" for c, s in shares.items()})
    gq = pioman.hierarchy.global_queue
    print(f"global queue: {gq.stats.enqueues} enqueues, "
          f"{gq.stats.dequeues} dequeues, "
          f"{gq.lock.stats.contended} contended lock acquisitions")

    from repro.sim.report import full_report

    print()
    print(full_report(scheduler, pioman))


if __name__ == "__main__":
    main()
