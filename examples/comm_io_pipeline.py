#!/usr/bin/env python3
"""Communication + I/O in one progression engine (the paper's §VI goal).

"In the long term, the goal is to provide a generic framework able to
optimize both communication and I/O in a scalable way."  This demo runs
a two-node ingest pipeline where *one* PIOMan instance per node
progresses both subsystems:

* node 0 streams data blocks over InfiniBand (Mad-MPI / NewMadeleine,
  NIC polling tasks);
* node 1 receives each block and immediately issues an asynchronous
  NVRAM-log write through PIO-I/O (device polling tasks), while already
  receiving the next block.

Network receive latency and storage write latency are both hidden by the
same hierarchical task queues.

Run:  python3 examples/comm_io_pipeline.py
"""

from repro import Cluster, MadMPI, fmt_ns
from repro.pioio import NVRAM, BlockDevice, PIOIo

NBLOCKS = 12
BLOCK = 256 * 1024  # rendezvous-sized


def main() -> None:
    cluster = Cluster(2, seed=9)
    mpi = MadMPI(cluster)
    c_src, c_dst = mpi.comm(0), mpi.comm(1)
    device = BlockDevice(cluster.engine, NVRAM, name="nvram@node1")
    aio = PIOIo(cluster.nodes[1].pioman, device)
    stats = {}

    def producer(ctx):
        for i in range(NBLOCKS):
            yield from c_src.send(ctx.core_id, 1, i, BLOCK, payload=("block", i))
        stats["sent_at"] = ctx.now

    def consumer(ctx):
        writes = []
        for i in range(NBLOCKS):
            req = yield from c_dst.recv(ctx.core_id, 0, i)
            assert req.payload == ("block", i)
            w = yield from aio.aio_write(ctx.core_id, i * BLOCK, BLOCK)
            writes.append(w)
        stats["last_recv"] = ctx.now
        yield from aio.wait_all(ctx.core_id, writes)
        stats["all_written"] = ctx.now

    cluster.nodes[0].scheduler.spawn(producer, 0, name="producer")
    cluster.nodes[1].scheduler.spawn(consumer, 0, name="consumer")
    cluster.run(until=1_000_000_000)

    wire_time = NBLOCKS * BLOCK * 1000 // 1500  # ~IB bandwidth bound
    write_time = NVRAM.op_latency_ns + NBLOCKS * BLOCK * 1000 // NVRAM.bytes_per_us
    print(f"{NBLOCKS} x {BLOCK // 1024} KB blocks: network + storage pipeline")
    print(f"  last block received   {fmt_ns(stats['last_recv'])}")
    print(f"  all blocks on disk    {fmt_ns(stats['all_written'])}")
    print(f"  drain after last recv {fmt_ns(stats['all_written'] - stats['last_recv'])}")
    print()
    print(f"  serial lower bounds:  wire {fmt_ns(wire_time)}, "
          f"writes {fmt_ns(write_time)}, sum {fmt_ns(wire_time + write_time)}")
    speedup = (wire_time + write_time) / stats["all_written"]
    print(f"  pipeline achieved     {fmt_ns(stats['all_written'])} "
          f"({speedup:.2f}x vs running the phases back-to-back)")
    print()
    print(f"  node-1 task executions: {cluster.nodes[1].pioman.stats.executions} "
          f"(NIC polling + SSD polling through one task manager)")


if __name__ == "__main__":
    main()
