#!/usr/bin/env python3
"""Multi-threaded latency (the scenario of paper Fig. 4), miniature.

One sender process ping-pongs 4-byte messages with N receiver threads on
the peer node.  With PIOMan, receivers block on a condition and polling
tasks run on idle cores — latency stays flat past the core count.  With
the big-lock baseline every waiting thread spin-polls the NIC under one
lock and latency climbs.

Run:  python3 examples/multithread_latency.py
"""

from repro.bench.latency import run_latency_once
from repro.bench.reporting import sparkline
from repro.mpi import MadMPI, MVAPICHLike

THREADS = [1, 2, 4, 8, 16, 32]


def main() -> None:
    print("One-way 4-byte latency vs number of receiving threads")
    print(f"(receiver node has 8 cores)\n")
    print(f"{'threads':>8} {'PIOMan':>10} {'MVAPICH-like':>13}")
    curves = {"PIOMan": [], "MVAPICH-like": []}
    for n in THREADS:
        p = run_latency_once(MadMPI, n, iters_per_thread=3, seed=n)
        m = run_latency_once(MVAPICHLike, n, iters_per_thread=3, seed=n)
        curves["PIOMan"].append(p.mean_one_way_ns)
        curves["MVAPICH-like"].append(m.mean_one_way_ns)
        print(f"{n:>8} {p.mean_one_way_ns / 1000:>9.2f}u {m.mean_one_way_ns / 1000:>12.2f}u")
    hi = max(max(v) for v in curves.values())
    print()
    for name, vals in curves.items():
        print(f"  {name:<14} {sparkline(vals, 0, hi)}")
    print("\nPIOMan's receivers wait on a blocking condition; idle cores run")
    print("the polling tasks, so concurrency while polling is minimal (§V-B).")


if __name__ == "__main__":
    main()
