"""Flag: set/reset semantics, spinner/blocker wakeups, costs."""

import pytest

from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.flag import Flag
from repro.threads.instructions import BlockOn, Compute, SetFlag, SpinOn
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline, kwak


def test_initial_state_clear():
    m, eng = borderline(), Engine()
    f = Flag(m, eng, home=0, name="f")
    assert not f.is_set and f.set_time is None
    assert f.waiter_count() == 0


def test_set_records_time_and_state():
    m, eng = borderline(), Engine()
    f = Flag(m, eng, home=0)
    f.set(0)
    assert f.is_set and f.set_time == 0


def test_reset_allows_reuse():
    m, eng = borderline(), Engine()
    f = Flag(m, eng, home=0)
    f.set(0)
    f.reset(0)
    assert not f.is_set and f.set_time is None


def test_reset_with_waiters_raises():
    m, eng = borderline(), Engine()
    f = Flag(m, eng, home=0)
    f.add_spinner(1, lambda: None)
    with pytest.raises(RuntimeError):
        f.reset(0)


def test_read_cost_hits_after_first():
    m, eng = kwak(), Engine()
    f = Flag(m, eng, home=0)
    assert f.read(12) == m.xfer(0, 12)
    assert f.read(12) == m.spec.local_ns


def test_spinner_wake_delay_is_one_transfer():
    m, eng = kwak(), Engine()
    f = Flag(m, eng, home=0)
    woken = []
    f.add_spinner(15, lambda: woken.append(eng.now))
    f.set(0)
    eng.run()
    assert woken == [m.xfer(0, 15)]


def test_remove_spinner_prevents_wake():
    m, eng = borderline(), Engine()
    f = Flag(m, eng, home=0)
    woken = []
    entry = f.add_spinner(3, lambda: woken.append(1))
    assert f.remove_spinner(entry) is True
    assert f.remove_spinner(entry) is False
    f.set(0)
    eng.run()
    assert woken == []


def test_multiple_spinners_all_wake():
    m, eng = kwak(), Engine()
    f = Flag(m, eng, home=0)
    woken = []
    for c in (1, 7, 15):
        f.add_spinner(c, lambda c=c: woken.append((c, eng.now)))
    f.set(0)
    eng.run()
    assert {c for c, _ in woken} == {1, 7, 15}
    # nearer spinners notice earlier
    times = dict(woken)
    assert times[1] < times[7] <= times[15]


def test_blocked_thread_wakes_via_scheduler():
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(1))
    f = Flag(m, eng, home=0)
    log = {}

    def waiter(ctx):
        yield BlockOn(f)
        log["woke"] = ctx.now

    def setter(ctx):
        yield Compute(3_000)
        yield SetFlag(f)
        log["set"] = ctx.now

    sched.spawn(waiter, 5, name="w")
    sched.spawn(setter, 0, name="s")
    eng.run()
    assert log["woke"] > log["set"]


def test_spin_then_block_mixed_waiters():
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(1))
    f = Flag(m, eng, home=0)
    woke = []

    def spinner(ctx):
        yield SpinOn(f)
        woke.append("spin")

    def blocker(ctx):
        yield BlockOn(f)
        woke.append("block")

    def setter(ctx):
        yield Compute(1_000)
        yield SetFlag(f)

    sched.spawn(spinner, 2, name="sp")
    sched.spawn(blocker, 4, name="bl")
    sched.spawn(setter, 0, name="st")
    eng.run()
    assert sorted(woke) == ["block", "spin"]
