"""Preemption machinery: compute interrupts, spin cancellation, hooks."""

from repro.core.manager import PIOMan
from repro.core.progress import piom_wait
from repro.core.task import LTask, TaskOption
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sync.spinlock import SpinLock
from repro.threads.instructions import Acquire, Compute, Release, SetFlag, SpinOn
from repro.threads.flag import Flag
from repro.threads.scheduler import Scheduler
from repro.threads.thread import Prio
from repro.topology.builder import borderline
from repro.topology.cpuset import CpuSet


def _world(seed=4):
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(seed))
    return m, eng, sched


def test_interrupt_compute_mid_slice():
    m, eng, sched = _world()
    stamps = {}

    def hog(ctx):
        yield Compute(800_000)
        stamps["hog_done"] = ctx.now

    def sys_thread(ctx):
        yield Compute(100)
        stamps["sys_ran"] = ctx.now

    sched.spawn(hog, 1)

    def inject():
        t = sched.spawn(sys_thread, 1, name="sys", prio=Prio.SYSTEM)
        sched.interrupt_compute(1)

    eng.schedule(50_000, inject)
    eng.run()
    # the system thread ran mid-compute, not after 800 us
    assert stamps["sys_ran"] < 100_000
    # the hog still accumulated its full compute time
    assert stamps["hog_done"] >= 800_000


def test_interrupt_compute_preserves_cpu_accounting():
    m, eng, sched = _world()

    def hog(ctx):
        yield Compute(300_000)

    t = sched.spawn(hog, 2)

    def sys_body(ctx):
        yield Compute(10)

    def inject():
        sched.spawn(sys_body, 2, name="sys", prio=Prio.SYSTEM)
        sched.interrupt_compute(2)

    eng.schedule(100_000, inject)
    eng.run()
    assert t.cpu_ns == 300_000  # the unused slice part was un-charged


def test_interrupt_compute_noop_when_idle():
    m, eng, sched = _world()
    assert sched.interrupt_compute(0) is False


def test_timer_cancels_lock_spin_for_contender():
    """A thread spinning on a lock is preempted at the timer tick when a
    same-priority thread waits, so the runnable thread is not starved by
    an unbounded busy-wait."""
    m, eng, sched = _world()
    lock = SpinLock(m, eng, home=0, name="L")
    progress = []

    # core 5 holds the lock for 5 ms (host-level, so the hold is in place
    # before any thread runs)
    lock.acquire(5, lambda: None)
    eng.schedule(5_000_000, lock.release, 5)

    def spinner(ctx):
        yield Acquire(lock)  # will spin for milliseconds
        progress.append(("spinner", ctx.now))
        yield Release(lock)

    def co_thread(ctx):
        yield Compute(10_000)
        progress.append(("co", ctx.now))

    sched.spawn(spinner, 0, name="spin")
    sched.spawn(co_thread, 0, name="co")
    eng.run()
    names = [n for n, _ in progress]
    assert names == ["co", "spinner"]
    co_time = dict(progress)["co"]
    # the co-thread ran within a couple of quanta, not after 5 ms
    assert co_time < 3 * m.spec.timer_quantum_ns


def test_timer_cancels_flag_spin_for_contender():
    m, eng, sched = _world()
    flag = Flag(m, eng, home=0, name="f")
    progress = []

    def spinner(ctx):
        yield SpinOn(flag)
        progress.append(("spinner", ctx.now))

    def co_thread(ctx):
        yield Compute(10_000)
        progress.append(("co", ctx.now))

    def setter(ctx):
        yield Compute(4_000_000)
        yield SetFlag(flag)

    sched.spawn(spinner, 0, name="spin")
    sched.spawn(co_thread, 0, name="co")
    sched.spawn(setter, 4, name="set")
    eng.run()
    names = [n for n, _ in progress]
    assert names == ["co", "spinner"]


def test_preemptive_task_interrupts_computing_core():
    """End-to-end future-work path: submit_preemptive on a busy single
    allowed core executes within interrupt latency, not after the hog."""
    m, eng, sched = _world()
    pio = PIOMan(m, eng, sched)
    stamps = {}

    def hog(ctx):
        yield Compute(900_000)

    def submitter(ctx):
        yield Compute(5_000)
        task = LTask(None, cpuset=CpuSet([3]), options=TaskOption.PREEMPTIVE)
        yield from pio.submit_preemptive(0, task)
        yield from piom_wait(pio, 0, task, mode="spin")
        stamps["done"] = ctx.now

    sched.spawn(hog, 3)
    sched.spawn(submitter, 0)
    eng.run()
    assert stamps["done"] < 100_000
