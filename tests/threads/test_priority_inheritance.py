"""Priority inheritance on the spinlock: the inversion-livelock fix.

The race: a low-priority thread takes a queue lock and is preempted (or
handed the lock with the grant still in flight) before it enters the
critical section.  A higher-priority thread on the *same core* then
spins on that lock — and the dispatcher, always preferring the higher
priority, re-runs the spinner forever while the READY holder starves one
rung below.  The timer tick cancels the spin, re-dispatches... the
spinner again.  Livelock.

The fix (scheduler + spinlock): the lock tracks its owning thread, and
when a strictly higher-priority thread starts a futile spin the holder
inherits the spinner's priority (``prio_boost``) until it releases.  The
boost is gated on strict inversion, so priority-equal contention — every
clean benchmark — is untouched (the golden fingerprints prove that).
"""

from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sync.spinlock import SpinLock
from repro.threads.instructions import Acquire, Compute, Release
from repro.threads.scheduler import Scheduler
from repro.threads.thread import Prio
from repro.topology.builder import borderline


def _world(seed=4):
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(seed))
    return m, eng, sched


def test_idle_holder_is_boosted_past_normal_spinner_on_same_core():
    """IDLE thread holds the lock, NORMAL thread on the same core spins:
    without inheritance the spinner wins every dispatch and the holder
    never gets to release — the exact livelock shape."""
    m, eng, sched = _world()
    lock = SpinLock(m, eng, name="pi-lock")
    order = []

    def idle_holder(ctx):
        yield Acquire(lock)
        # chunked critical section: preemption happens at instruction
        # boundaries, so the NORMAL arrival preempts between chunks with
        # the lock still held
        for _ in range(10):
            yield Compute(5_000)
        yield Release(lock)
        order.append(("idle-done", ctx.now))

    def normal_contender(ctx):
        yield Acquire(lock)
        yield Compute(1_000)
        yield Release(lock)
        order.append(("normal-done", ctx.now))

    sched.spawn(idle_holder, 2, name="holder", prio=Prio.IDLE)
    # arrive mid-critical-section (spawn latency means the holder only
    # reaches its Acquire a couple of microseconds in): the NORMAL
    # spinner preempts the IDLE holder on its own core with the lock held
    eng.post(
        10_000,
        lambda: sched.spawn(normal_contender, 2, name="spinner", prio=Prio.NORMAL),
    )
    eng.run(until=5_000_000)
    # the inversion really happened: the spinner registered a waiter
    # (the boost + spin-cancel path re-acquires after the release, so
    # the *contended handoff* counter stays 0 by design)
    assert lock.stats.max_waiters >= 1
    names = [n for n, _ in order]
    assert sorted(names) == ["idle-done", "normal-done"], order
    # the holder finished first (it owns the lock), the spinner after
    assert names[0] == "idle-done"


def test_boost_is_cleared_after_release():
    """Inheritance is a loan, not a promotion: after the release the
    boosted thread drops back to its own priority."""
    m, eng, sched = _world()
    lock = SpinLock(m, eng, name="pi-lock")
    threads = {}

    def idle_holder(ctx):
        yield Acquire(lock)
        for _ in range(10):
            yield Compute(5_000)
        yield Release(lock)
        yield Compute(10)

    def normal_contender(ctx):
        yield Acquire(lock)
        yield Release(lock)

    threads["h"] = sched.spawn(idle_holder, 2, name="holder", prio=Prio.IDLE)
    eng.post(
        10_000,
        lambda: threads.__setitem__(
            "s",
            sched.spawn(normal_contender, 2, name="spinner", prio=Prio.NORMAL),
        ),
    )
    eng.run(until=5_000_000)
    assert lock.stats.max_waiters >= 1
    assert threads["h"].prio_boost is None
    assert threads["s"].prio_boost is None
    assert threads["h"].prio is Prio.IDLE  # the real priority never moved


def test_equal_priority_contention_takes_no_boost():
    """No inversion, no inheritance: the strict gate keeps clean runs on
    the exact pre-fix instruction stream (bit-identical fingerprints)."""
    m, eng, sched = _world()
    lock = SpinLock(m, eng, name="eq-lock")
    boosts = []

    def body(ctx):
        yield Acquire(lock)
        yield Compute(2_000)
        boosts.append(ctx.thread.prio_boost)
        yield Release(lock)

    for core in (1, 1, 2):
        sched.spawn(body, core, name=f"eq{core}", prio=Prio.NORMAL)
    eng.run(until=5_000_000)
    assert len(boosts) == 3
    assert boosts == [None, None, None]


def test_hostile_combined_faults_run_completes():
    """The end-to-end shape that exposed the livelock: a 2-node exchange
    under slow cores + lock-holder preemption + packet loss, which froze
    mid-run before priority inheritance.  It must now drain completely."""
    from repro.cluster.cluster import Cluster
    from repro.faults.plan import (
        FaultPlan,
        LockPreemption,
        NetFaults,
        SlowCores,
    )
    from repro.mpi import MadMPI

    plan = FaultPlan(
        seed=23,
        net=NetFaults(drop_p=0.15, reorder_p=0.2),
        slow_cores=SlowCores(cores=(1,), factor=3.0),
        lock_preemption=LockPreemption(p=0.25, window_ns=30_000),
    )
    cl = Cluster(2, seed=23, faults=plan)
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    done = []

    def sender(ctx):
        for i in range(8):
            yield from c0.send(ctx.core_id, 1, i, 4096, payload=b"x")
        done.append("send")

    def receiver(ctx):
        for i in range(8):
            yield from c1.recv(ctx.core_id, 0, i)
        done.append("recv")

    cl.nodes[0].scheduler.spawn(sender, 0)
    cl.nodes[1].scheduler.spawn(receiver, 0)
    cl.run(until=100_000_000)
    assert sorted(done) == ["recv", "send"]
