"""Property tests: random thread programs against scheduler invariants.

For arbitrary mixes of compute/sleep/yield/lock work spread over random
cores, the scheduler must (a) finish every thread, (b) never lose or
double-charge CPU time, (c) keep mutual exclusion, and (d) be exactly
reproducible.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sync.spinlock import SpinLock
from repro.threads.instructions import Acquire, Compute, Release, Sleep, YieldCPU
from repro.threads.scheduler import Scheduler
from repro.threads.thread import TState
from repro.topology.builder import borderline

# one program step: (kind, arg)
step_st = st.one_of(
    st.tuples(st.just("compute"), st.integers(min_value=1, max_value=50_000)),
    st.tuples(st.just("sleep"), st.integers(min_value=1, max_value=20_000)),
    st.tuples(st.just("yield"), st.just(0)),
    st.tuples(st.just("lock"), st.integers(min_value=1, max_value=5_000)),
)

program_st = st.lists(step_st, min_size=1, max_size=8)


def _build_and_run(programs, cores, seed):
    machine = borderline()
    engine = Engine()
    sched = Scheduler(machine, engine, rng=Rng(seed))
    lock = SpinLock(machine, engine, home=0, name="shared")
    in_section = []

    def make_body(program):
        def body(ctx):
            for kind, arg in program:
                if kind == "compute":
                    yield Compute(arg)
                elif kind == "sleep":
                    yield Sleep(arg)
                elif kind == "yield":
                    yield YieldCPU()
                else:  # lock
                    yield Acquire(lock)
                    in_section.append(1)
                    assert len(in_section) == 1, "mutual exclusion violated"
                    yield Compute(arg)
                    in_section.pop()
                    yield Release(lock)
            return ctx.now

        return body

    threads = [
        sched.spawn(make_body(p), c, name=f"p{i}")
        for i, (p, c) in enumerate(zip(programs, cores))
    ]
    engine.run()
    return machine, engine, sched, threads


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_all_threads_finish_and_time_conserved(data):
    programs = data.draw(st.lists(program_st, min_size=1, max_size=5))
    cores = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=7),
            min_size=len(programs),
            max_size=len(programs),
        )
    )
    machine, engine, sched, threads = _build_and_run(programs, cores, seed=3)
    for t, program in zip(threads, programs):
        assert t.state is TState.DONE
        # a thread's core time covers at least its own compute work
        compute_total = sum(a for k, a in program if k in ("compute", "lock"))
        assert t.cpu_ns >= compute_total
        # and its finish time is at least its serial busy+sleep demand
        serial = sum(a for k, a in program if k != "yield")
        assert t.result >= serial
    # per-core busy time equals the sum of its threads' charged time
    # (idle/hook threads may add a little, never subtract)
    for core_state in sched.cores:
        thread_time = sum(
            t.cpu_ns for t in sched.threads if t.core_id == core_state.id
        )
        assert core_state.busy_ns == thread_time


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_property_runs_are_reproducible(data):
    programs = data.draw(st.lists(program_st, min_size=1, max_size=4))
    cores = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=7),
            min_size=len(programs),
            max_size=len(programs),
        )
    )

    def run():
        _, engine, _, threads = _build_and_run(programs, cores, seed=9)
        return engine.now, engine.fired, [t.result for t in threads]

    assert run() == run()
