"""Scheduler edge behaviours: doorbell bounds, quiesce, hook guards."""

from repro.core.manager import PIOMan
from repro.core.task import LTask, TaskOption
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.instructions import Compute, Sleep
from repro.threads.scheduler import Keypoint, Scheduler
from repro.topology import CpuSet
from repro.topology.builder import borderline


def _world(seed=2):
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(seed))
    return m, eng, sched


def test_ring_cpuset_ignores_out_of_range_cores():
    m, eng, sched = _world()
    sched.ring_cpuset(CpuSet([2, 40]), from_core=0)  # 40 does not exist
    eng.run()  # no exception; the valid ring lands harmlessly


def test_idles_park_when_no_work_left():
    """With the hook attached but nothing pending, idle loops park and the
    heap drains (no busy-wait in virtual time)."""
    m, eng, sched = _world()
    pio = PIOMan(m, eng, sched)

    def body(ctx):
        yield Compute(1_000)

    sched.spawn(body, 0)
    eng.run()
    fired_after = eng.fired
    # nothing left: a further run is a no-op
    eng.run()
    assert eng.fired == fired_after


def test_repeat_polling_stops_when_app_exits():
    """A never-completing repeat task must not keep the engine alive after
    the last application thread finishes (idle quiesce)."""
    m, eng, sched = _world()
    pio = PIOMan(m, eng, sched)
    polls = []
    task = LTask(
        lambda t: (polls.append(1), False)[1],
        cpuset=CpuSet.single(2),
        options=TaskOption.REPEAT,
        name="forever",
    )

    def body(ctx):
        yield from pio.submit(0, task)
        yield Sleep(50_000)  # let it poll a while

    sched.spawn(body, 0)
    eng.run()  # must terminate despite the immortal repeat task
    assert polls, "the poll ran while the app lived"
    assert not task.done


def test_hook_injection_rate_limited():
    m, eng, sched = _world()
    pio = PIOMan(m, eng, sched)

    def a(ctx):
        for _ in range(6):
            yield Compute(100)
            from repro.threads.instructions import YieldCPU

            yield YieldCPU()

    def b(ctx):
        for _ in range(6):
            yield Compute(100)
            from repro.threads.instructions import YieldCPU

            yield YieldCPU()

    sched.spawn(a, 0)
    sched.spawn(b, 0)
    eng.run()
    # many context switches happened; injection fires on some but is
    # rate-limited well below one-per-switch
    switches = sched.cores[0].ctx_switches
    injections = sched.keypoint_count(Keypoint.CTX_SWITCH)
    assert switches >= 6
    assert 0 < injections < switches


def test_ctx_hook_can_be_disabled():
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(2), enable_ctx_hook=False)
    pio = PIOMan(m, eng, sched)

    def a(ctx):
        from repro.threads.instructions import YieldCPU

        for _ in range(4):
            yield Compute(100)
            yield YieldCPU()

    sched.spawn(a, 0)
    sched.spawn(a, 0)
    eng.run()
    assert sched.keypoint_count(Keypoint.CTX_SWITCH) == 0
