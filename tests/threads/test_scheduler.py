"""Scheduler: dispatch, priorities, quantum slicing, sleep, park/ring,
keypoints, preemption, deadlock reporting."""

import pytest

from repro.sim.engine import DeadlockError, Engine
from repro.sim.rng import Rng
from repro.threads.flag import Flag
from repro.threads.instructions import (
    BlockOn,
    Compute,
    Park,
    SetFlag,
    Sleep,
    SpinOn,
    YieldCPU,
)
from repro.threads.scheduler import Keypoint, Scheduler
from repro.threads.thread import Prio, TState
from repro.topology.builder import borderline

from tests.conftest import run_thread, run_threads


def test_single_thread_compute(machine):
    def body(ctx):
        yield Compute(1_000)
        return ctx.now

    result, eng = run_thread(machine, body)
    assert result == 1_000


def test_spawn_rejects_bad_core(machine, engine):
    sched = Scheduler(machine, engine)
    with pytest.raises(ValueError):
        sched.spawn(lambda ctx: iter(()), 99)


def test_two_threads_one_core_interleave(machine):
    order = []

    def a(ctx):
        yield Compute(100)
        order.append("a")
        yield YieldCPU()
        yield Compute(100)
        order.append("a2")

    def b(ctx):
        yield Compute(100)
        order.append("b")

    run_threads(machine, [(a, 0), (b, 0)])
    assert order == ["a", "b", "a2"]


def test_threads_on_distinct_cores_run_in_parallel(machine):
    stamps = {}

    def make(name):
        def body(ctx):
            yield Compute(10_000)
            stamps[name] = ctx.now

        return body

    run_threads(machine, [(make("x"), 0), (make("y"), 1)])
    # both finish at ~10us: true parallelism in virtual time
    assert abs(stamps["x"] - stamps["y"]) < 1_000


def test_context_switch_cost_charged(machine):
    def a(ctx):
        yield YieldCPU()
        yield Compute(10)

    def b(ctx):
        yield Compute(10)

    threads, eng = run_threads(machine, [(a, 0), (b, 0)])
    # at least one real switch happened, costing context_switch_ns
    assert eng.now >= machine.spec.context_switch_ns


def test_long_compute_sliced_by_quantum(machine):
    quantum = machine.spec.timer_quantum_ns

    def body(ctx):
        yield Compute(3 * quantum + 17)
        return ctx.now

    result, eng = run_thread(machine, body)
    assert result == 3 * quantum + 17  # no time lost to slicing


def test_round_robin_between_equal_threads(machine):
    quantum = machine.spec.timer_quantum_ns
    finish = {}

    def make(name):
        def body(ctx):
            yield Compute(3 * quantum)
            finish[name] = ctx.now

        return body

    run_threads(machine, [(make("a"), 0), (make("b"), 0)])
    # with rotation both finish within ~one quantum of each other,
    # rather than a completing fully before b starts
    assert abs(finish["a"] - finish["b"]) <= 2 * quantum


def test_sleep_wakes_on_time(machine):
    def body(ctx):
        t0 = ctx.now
        yield Sleep(5_000)
        return ctx.now - t0

    result, _ = run_thread(machine, body)
    assert result >= 5_000


def test_block_on_flag_and_set(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    flag = Flag(machine, eng, home=0, name="f")
    log = []

    def waiter(ctx):
        yield BlockOn(flag)
        log.append(("woke", ctx.now))

    def setter(ctx):
        yield Compute(2_000)
        yield SetFlag(flag)

    sched.spawn(waiter, 3, name="w")
    sched.spawn(setter, 0, name="s")
    eng.run()
    assert log and log[0][1] >= 2_000


def test_block_on_already_set_flag_returns_fast(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    flag = Flag(machine, eng, home=0)
    flag.set(0)

    def body(ctx):
        yield BlockOn(flag)
        return ctx.now

    t = sched.spawn(body, 0)
    eng.run()
    assert t.result < 1_000


def test_spin_on_flag_notices_after_transfer(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    flag = Flag(machine, eng, home=0, name="f")
    log = {}

    def spinner(ctx):
        yield SpinOn(flag)
        log["noticed"] = ctx.now

    def setter(ctx):
        yield Compute(1_000)
        yield SetFlag(flag)
        log["set"] = ctx.now

    sched.spawn(spinner, 7, name="sp")
    sched.spawn(setter, 0, name="st")
    eng.run()
    assert log["noticed"] >= 1_000 + machine.xfer(0, 7) - 5


def test_join_returns_result(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))

    def child(ctx):
        yield Compute(500)
        return "payload"

    def parent(ctx):
        t = ctx.spawn(child, 1, name="child")
        res = yield from ctx.scheduler.join(t)
        return res

    p = sched.spawn(parent, 0)
    eng.run()
    assert p.result == "payload"


def test_join_finished_thread_immediate(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))

    def child(ctx):
        yield Compute(10)
        return 42

    def parent(ctx):
        t = ctx.spawn(child, 1)
        yield Compute(50_000)  # child long done
        res = yield from ctx.scheduler.join(t)
        return res

    p = sched.spawn(parent, 0)
    eng.run()
    assert p.result == 42


def test_park_only_for_idle_thread(machine):
    def body(ctx):
        yield Park()

    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    sched.spawn(body, 0)
    with pytest.raises(RuntimeError):
        eng.run()


def test_hook_runs_at_idle_keypoint(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    calls = []

    def hook(core):
        calls.append(core)
        return (0, 0, False)
        yield  # pragma: no cover - make it a generator

    sched.progression_hook = hook

    def body(ctx):
        yield Compute(100)

    sched.spawn(body, 0)
    eng.run()
    assert calls, "idle loops must invoke the progression hook"
    assert sched.keypoint_count(Keypoint.IDLE) > 0


def test_deadlock_detected_for_blocked_thread(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    flag = Flag(machine, eng, home=0, name="never")

    def body(ctx):
        yield BlockOn(flag)

    sched.spawn(body, 0)
    with pytest.raises(DeadlockError):
        eng.run()
    assert sched.blocked_threads()


def test_sleeping_thread_is_not_deadlock(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))

    def body(ctx):
        yield Sleep(1_000)

    sched.spawn(body, 0)
    eng.run()  # must not raise


def test_system_prio_preempts_normal(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    order = []

    def normal(ctx):
        for _ in range(4):
            yield Compute(1_000)
            order.append("n")

    def system(ctx):
        yield Compute(10)
        order.append("S")

    sched.spawn(normal, 0)

    def spawn_sys():
        t = sched.spawn(system, 0, name="sys", prio=Prio.SYSTEM)

    eng.schedule(1_500, spawn_sys)
    eng.run()
    # the system thread runs before the normal thread finishes
    assert "S" in order and order.index("S") < len(order) - 1


def test_cpu_time_accounting(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))

    def body(ctx):
        yield Compute(7_000)

    t = sched.spawn(body, 2)
    eng.run()
    assert t.cpu_ns >= 7_000
    assert sched.cores[2].busy_ns >= 7_000
    assert sched.core_busy_ns()[2] == sched.cores[2].busy_ns


def test_normal_live_tracks_threads(machine):
    eng = Engine()
    sched = Scheduler(machine, eng, rng=Rng(0))
    assert sched.normal_live == 0

    def body(ctx):
        yield Compute(10)

    sched.spawn(body, 0)
    assert sched.normal_live == 1
    eng.run()
    assert sched.normal_live == 0
