"""Cluster harness: assembly, shared clock, NIC lookup."""

import pytest

from repro.cluster.cluster import Cluster
from repro.net.driver import IB_CONNECTX, MYRI10G_MX
from repro.threads.instructions import Compute
from repro.topology.builder import kwak


def test_default_two_node_cluster():
    cl = Cluster(2)
    assert len(cl.nodes) == 2
    assert cl.nodes[0].machine.spec.name == "borderline"
    assert len(cl.nodes[0].nics) == 1


def test_nodes_share_engine_and_fabric():
    cl = Cluster(3)
    assert all(n.engine is cl.engine for n in cl.nodes)
    assert len(cl.fabric.nics()) == 3


def test_machine_factory_and_drivers():
    cl = Cluster(2, machine_factory=kwak, drivers=(IB_CONNECTX, MYRI10G_MX))
    assert cl.nodes[0].machine.ncores == 16
    assert len(cl.nodes[1].nics) == 2
    assert cl.nodes[1].nic_by_driver("mx").driver.name == "mx"
    with pytest.raises(KeyError):
        cl.nodes[1].nic_by_driver("elan")


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        Cluster(0)


def test_each_node_has_own_pioman_and_scheduler():
    cl = Cluster(2)
    assert cl.nodes[0].pioman is not cl.nodes[1].pioman
    assert cl.nodes[0].scheduler is not cl.nodes[1].scheduler
    assert cl.nodes[0].scheduler.progression_hook is not None


def test_shared_virtual_clock_across_nodes():
    cl = Cluster(2)
    stamps = {}

    def a(ctx):
        yield Compute(10_000)
        stamps["a"] = ctx.now

    def b(ctx):
        yield Compute(20_000)
        stamps["b"] = ctx.now

    cl.nodes[0].scheduler.spawn(a, 0)
    cl.nodes[1].scheduler.spawn(b, 0)
    cl.run()
    assert stamps["a"] == 10_000 and stamps["b"] == 20_000


def test_run_until_bound():
    cl = Cluster(2)

    def spin(ctx):
        yield Compute(10_000_000)

    cl.nodes[0].scheduler.spawn(spin, 0)
    assert cl.run(until=1_000_000) == 1_000_000
