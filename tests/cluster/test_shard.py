"""Sharded-cluster identity: the partitioning must be invisible.

The load-bearing contract of :mod:`repro.cluster.shard` is that the
merged metric snapshot and the multiset of trace records are
**bit-identical** to the single-process run at any shard count, faults
on or off, forked or serial — and stable across repeated runs in one
process (a regression guard for heap-layout-dependent behaviour: the
scan-pass dedup used to key on ``id(task)``, so a recycled address could
flip a pass outcome depending on allocator history).
"""

import pytest

from repro.cluster.shard import ShardSpec, run_sharded, shard_of
from repro.cluster.workload import WorkloadSpec, verify_completion
from repro.faults import FaultPlan, NetFaults
from repro.par.pool import has_fork

BUILDER = "repro.cluster.workload:build_workload_cluster"


def small_spec(**overrides) -> WorkloadSpec:
    base = dict(
        nnodes=6, requests_per_node=3, pattern="ring", arrival="closed",
        mean_gap_ns=20_000, think_ns=5_000, rdv_fraction=0.5, seed=3,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def run_one(spec, nshards, *, serial=True, faults=None, trace=True):
    kwargs = {"spec": spec, "machine": "smp1x2", "trace": trace,
              "faults": faults}
    return run_sharded(BUILDER, kwargs, nshards=nshards, serial=serial)


class TestShardSpec:
    def test_round_robin_ownership(self):
        spec = ShardSpec(1, 3)
        owned = [i for i in range(12) if spec.owns(i)]
        assert owned == [1, 4, 7, 10]
        assert all(shard_of(i, 3) == i % 3 for i in range(12))

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ShardSpec(3, 3)
        with pytest.raises(ValueError):
            ShardSpec(-1, 2)
        with pytest.raises(ValueError):
            ShardSpec(0, 0)


class TestIdentity:
    def test_bit_identical_at_1_2_4_shards(self):
        spec = small_spec()
        runs = {k: run_one(spec, k) for k in (1, 2, 4)}
        ref = runs[1]
        assert ref.trace_fingerprint, "tracing must be on for this gate"
        for k in (2, 4):
            assert runs[k].snapshot == ref.snapshot, f"snapshot diverged at k={k}"
            assert runs[k].trace_fingerprint == ref.trace_fingerprint
            assert runs[k].fired == ref.fired
            assert runs[k].virtual_ns == ref.virtual_ns
            assert runs[k].fingerprint() == ref.fingerprint()
        verify_completion(ref.snapshot, spec)

    def test_bit_identical_with_faults(self):
        spec = small_spec(seed=9)
        plan = FaultPlan(seed=5, net=NetFaults(drop_p=0.05, reorder_p=0.05))
        runs = {k: run_one(spec, k, faults=plan) for k in (1, 2, 4)}
        ref = runs[1]
        drops = [v for p, v in ref.snapshot.items()
                 if p.startswith("faults.") and p.endswith(".drops")]
        assert sum(drops) > 0, "fault plan never fired — test is vacuous"
        for k in (2, 4):
            assert runs[k].fingerprint() == ref.fingerprint()
        verify_completion(ref.snapshot, spec)

    def test_repeat_runs_in_one_process_are_stable(self):
        # Regression: the scan-pass dedup keyed on id(task); after enough
        # allocator churn (e.g. a prior run's cluster still alive) a
        # recycled address could falsely match and flip a pass outcome.
        spec = small_spec(pattern="hotspot", seed=11)
        first = run_one(spec, 1)
        keep_alive = [run_one(spec, 1), run_one(spec, 1)]
        again = run_one(spec, 1)
        assert again.fingerprint() == first.fingerprint()
        assert all(r.fingerprint() == first.fingerprint() for r in keep_alive)

    @pytest.mark.skipif(not has_fork(), reason="platform cannot fork")
    def test_forked_matches_serial(self):
        spec = small_spec(seed=4)
        serial = run_one(spec, 2, serial=True)
        forked = run_one(spec, 2, serial=False)
        assert forked.fingerprint() == serial.fingerprint()
        assert forked.snapshot == serial.snapshot

    def test_partition_is_disjoint(self):
        # union_snapshots raises on overlap; also check node coverage
        spec = small_spec()
        result = run_one(spec, 3)
        flat = [n for nodes in result.shard_nodes for n in nodes]
        assert sorted(flat) == list(range(spec.nnodes))
        assert sum(result.shard_fired) == result.fired


class TestProtocol:
    def test_until_caps_the_run(self):
        spec = small_spec()
        capped = run_one_until(spec, until=50_000)
        assert capped.virtual_ns <= 50_000

    def test_lookahead_is_positive_and_capped(self):
        spec = small_spec()
        full = run_one(spec, 2)
        assert full.lookahead_ns > 0
        kwargs = {"spec": spec, "machine": "smp1x2", "trace": False}
        shrunk = run_sharded(
            BUILDER, kwargs, nshards=2, serial=True,
            lookahead_ns=full.lookahead_ns // 2,
        )
        assert shrunk.lookahead_ns == full.lookahead_ns // 2
        # a smaller window means more barriers, same simulation
        assert shrunk.windows >= full.windows
        assert shrunk.fired == full.fired
        # the override may only shrink: asking for more gets the fabric cap
        capped = run_sharded(
            BUILDER, kwargs, nshards=2, serial=True,
            lookahead_ns=full.lookahead_ns * 1000,
        )
        assert capped.lookahead_ns == full.lookahead_ns

    def test_nshards_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sharded(BUILDER, {"spec": small_spec()}, nshards=0)


def run_one_until(spec, *, until):
    kwargs = {"spec": spec, "machine": "smp1x2", "trace": False}
    return run_sharded(BUILDER, kwargs, nshards=2, serial=True, until=until)
