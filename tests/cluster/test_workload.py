"""Workload-generator unit tests: the traffic matrix is a pure function
of the spec, patterns shape routes the way their names promise, and a
generated world actually runs to completion with the counters the spec
predicts — in every arrival mode, with collectives and rendezvous
transfers in the mix."""

import math
from dataclasses import replace

import pytest

from repro.cluster.shard import run_sharded
from repro.cluster.workload import (
    WorkloadSpec,
    _gap_ns,
    build_workload_cluster,
    expected_counters,
    verify_completion,
)
from repro.par.jobs import derive_seed
from repro.sim.rng import Rng

BUILDER = "repro.cluster.workload:build_workload_cluster"


class TestSpecValidation:
    def test_rejects_degenerate_worlds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(nnodes=1)
        with pytest.raises(ValueError):
            WorkloadSpec(pattern="mesh")
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="batch")
        with pytest.raises(ValueError):
            WorkloadSpec(pattern="incast", incast_fanin=1)
        with pytest.raises(ValueError):
            WorkloadSpec(diurnal_amp=1.0)

    def test_spec_is_frozen_and_replaceable(self):
        spec = WorkloadSpec(nnodes=4, seed=1)
        with pytest.raises(Exception):
            spec.nnodes = 8
        assert replace(spec, seed=2).seed == 2


class TestRoutes:
    def test_routes_are_a_pure_function_of_the_spec(self):
        spec = WorkloadSpec(nnodes=10, requests_per_node=5, seed=42)
        assert spec.routes() == spec.routes()
        assert spec.routes() == WorkloadSpec(
            nnodes=10, requests_per_node=5, seed=42
        ).routes()
        assert spec.routes() != replace(spec, seed=43).routes()

    def test_uniform_never_targets_self(self):
        spec = WorkloadSpec(nnodes=7, requests_per_node=40, seed=5)
        for i, reqs in enumerate(spec.routes()):
            for entry in reqs:
                assert entry is not None
                assert entry[0] != i
                assert 0 <= entry[0] < spec.nnodes

    def test_ring_targets_the_neighbor(self):
        spec = WorkloadSpec(nnodes=5, requests_per_node=3, pattern="ring", seed=0)
        for i, reqs in enumerate(spec.routes()):
            assert all(entry[0] == (i + 1) % 5 for entry in reqs)

    def test_hotspot_concentrates_on_node_zero(self):
        spec = WorkloadSpec(
            nnodes=12, requests_per_node=50, pattern="hotspot", seed=3
        )
        counts = spec.inbound_counts()
        assert counts[0] > sum(counts) * 0.5, "node 0 is not hot"
        # node 0 itself still spreads uniformly
        assert all(entry[0] != 0 for entry in spec.routes()[0])

    def test_incast_sinks_serve_and_sources_fan_in(self):
        spec = WorkloadSpec(
            nnodes=16, requests_per_node=4, pattern="incast",
            incast_fanin=4, seed=7,
        )
        routes = spec.routes()
        for i, reqs in enumerate(routes):
            if i % 4 == 0:  # sink: issues nothing
                assert all(entry is None for entry in reqs)
            else:  # source: everything to its group's sink
                assert all(entry[0] == (i // 4) * 4 for entry in reqs)
        counts = spec.inbound_counts()
        assert all(counts[i] == 0 for i in range(16) if i % 4 != 0)
        assert spec.total_requests() == 12 * 4

    def test_rdv_fraction_forces_large_payloads(self):
        spec = WorkloadSpec(
            nnodes=4, requests_per_node=30, rdv_fraction=1.0, seed=9
        )
        sizes = [entry[1] for reqs in spec.routes() for entry in reqs]
        assert min(sizes) >= 32 * 1024
        none = WorkloadSpec(nnodes=4, requests_per_node=30, seed=9)
        assert max(e[1] for r in none.routes() for e in r) < 16 * 1024


class TestArrivalShaping:
    def test_gaps_are_deterministic_per_node_stream(self):
        spec = WorkloadSpec(nnodes=3, seed=21)
        rng_a = Rng(derive_seed(spec.seed, "gap0"))
        rng_b = Rng(derive_seed(spec.seed, "gap0"))
        gaps_a = [_gap_ns(spec, rng_a, r) for r in range(20)]
        gaps_b = [_gap_ns(spec, rng_b, r) for r in range(20)]
        assert gaps_a == gaps_b
        assert any(gaps_a), "exponential draws all zero — broken stream"

    def test_bursts_stretch_the_inter_burst_gap(self):
        base = WorkloadSpec(nnodes=3, mean_gap_ns=10_000, seed=4)
        bursty = replace(base, burst_len=5, burst_gap_factor=100.0)
        # compare the same draw at a burst boundary vs unshaped
        rng_plain = Rng(derive_seed(base.seed, "gap1"))
        rng_burst = Rng(derive_seed(base.seed, "gap1"))
        for r in range(10):
            plain = _gap_ns(base, rng_plain, r)
            shaped = _gap_ns(bursty, rng_burst, r)
            if r and r % 5 == 0:
                assert shaped >= plain * 50 or plain == 0
            else:
                assert shaped == plain

    def test_diurnal_modulation_swings_the_rate(self):
        spec = WorkloadSpec(
            nnodes=3, mean_gap_ns=100_000, diurnal_period=16,
            diurnal_amp=0.9, seed=4,
        )
        # at the sine peak the gap shrinks; in the trough it grows
        peak_r, trough_r = 4, 12  # sin=+1 / sin=-1 for period 16
        rng = Rng(1)
        draws = [rng.expovariate(1.0 / spec.mean_gap_ns) for _ in range(2)]
        rng_a = Rng(1)
        # rate = 1 + amp*sin(phase); the gap divides by it: sin=+1 at the
        # peak (divisor 1.9, shorter gaps), sin=-1 in the trough
        # (divisor 0.1, 10x longer gaps)
        assert _gap_ns(spec, rng_a, peak_r) == max(0, int(draws[0] / 1.9))
        assert _gap_ns(spec, rng_a, trough_r) == max(
            0, int(draws[1] / (1.0 + 0.9 * math.sin(2 * math.pi * 12 / 16)))
        )
        assert _gap_ns(spec, Rng(1), trough_r) > _gap_ns(spec, Rng(1), peak_r)

    def test_collective_rounds_accounting(self):
        spec = WorkloadSpec(nnodes=4, requests_per_node=10, collective_every=3)
        assert spec.collective_rounds() == 3
        assert WorkloadSpec(nnodes=4).collective_rounds() == 0
        want = expected_counters(spec)
        assert want["collectives"] == 3 * 4


class TestEndToEnd:
    def run_spec(self, spec):
        result = run_sharded(
            BUILDER,
            {"spec": spec, "machine": "smp1x2", "trace": False},
            nshards=1,
            serial=True,
        )
        verify_completion(result.snapshot, spec)
        return result

    def test_closed_loop_completes_with_replies(self):
        spec = WorkloadSpec(
            nnodes=4, requests_per_node=3, arrival="closed",
            pattern="ring", think_ns=2_000, mean_gap_ns=5_000, seed=13,
        )
        result = self.run_spec(spec)
        want = expected_counters(spec)
        assert want["replies"] == spec.total_requests() > 0
        served = sum(
            v for p, v in result.snapshot.items()
            if p.startswith("workload.") and p.endswith(".served")
        )
        assert served == spec.total_requests()

    def test_open_loop_with_collectives_and_rdv(self):
        spec = WorkloadSpec(
            nnodes=4, requests_per_node=4, arrival="open",
            mean_gap_ns=20_000, rdv_fraction=0.5, collective_every=2,
            window=2, seed=17,
        )
        result = self.run_spec(spec)
        colls = sum(
            v for p, v in result.snapshot.items()
            if p.startswith("workload.") and p.endswith(".collectives")
        )
        assert colls == spec.collective_rounds() * spec.nnodes > 0

    def test_verify_completion_catches_a_stall(self):
        spec = WorkloadSpec(nnodes=4, requests_per_node=2, seed=1)
        with pytest.raises(RuntimeError, match="workload incomplete"):
            verify_completion({}, spec)

    def test_builder_rejects_unknown_machine(self):
        spec = WorkloadSpec(nnodes=4, seed=1)
        with pytest.raises(ValueError, match="unknown machine"):
            build_workload_cluster(spec=spec, machine="numa96")
