"""Miscellaneous public-surface behaviours not covered elsewhere."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.queues import TaskQueue
from repro.core.variants import LockFreeTaskQueue
from repro.nmad.requests import PacketWrapper, PwKind
from repro.net.driver import IB_CONNECTX
from repro.net.fabric import Fabric
from repro.net.frame import Frame
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.topology import CpuSet, kwak, nehalem_ex_64
from repro.topology.cpuset import EMPTY


def test_engine_run_until_idle_alias():
    eng = Engine()
    eng.schedule(5, lambda: None)
    assert eng.run_until_idle() == 5


def test_cpuset_empty_export():
    assert not EMPTY and len(EMPTY) == 0


def test_machine_describe_kwak():
    text = kwak().describe()
    assert "l3#3" in text and "numa#0" in text


def test_machine_describe_64core():
    text = nehalem_ex_64().describe()
    assert "core#63" in text


def test_cluster_flat_and_custom_queue_factory():
    cl = Cluster(2, hierarchical=False, queue_factory=LockFreeTaskQueue)
    for node in cl.nodes:
        queues = node.pioman.hierarchy.queues()
        assert len(queues) == 1
        assert isinstance(queues[0], LockFreeTaskQueue)


def test_wire_jitter_is_deterministic_per_seed():
    def sample(seed):
        eng = Engine()
        fabric = Fabric(eng, rng=Rng(seed))
        nic = fabric.new_nic(0, IB_CONNECTX)
        fabric.new_nic(1, IB_CONNECTX)
        return [fabric.wire_ns(nic, Frame("eager", 0, 1, 1024)) for _ in range(5)]

    assert sample(3) == sample(3)
    assert sample(3) != sample(4)


def test_packet_wrapper_arm_reuse():
    pw = PacketWrapper(PwKind.EAGER, 1, 256)
    t1 = pw.arm(lambda t: True, CpuSet.single(2), cost_ns=100)
    assert t1 is pw.ltask and t1.cost_ns == 100 and list(t1.cpuset) == [2]
    # simulate a completed run, then re-arm without allocation
    t1.state = __import__("repro.core.task", fromlist=["TaskState"]).TaskState.DONE
    t2 = pw.arm(lambda t: True, CpuSet.single(4), cost_ns=50)
    assert t2 is t1 and list(t2.cpuset) == [4] and t2.cost_ns == 50


def test_gate_send_seq_monotone_per_tag():
    from repro.nmad.gate import Gate

    eng = Engine()
    fabric = Fabric(eng)
    a = fabric.new_nic(0, IB_CONNECTX)
    fabric.new_nic(1, IB_CONNECTX)
    g = Gate(0, 1, [a])
    assert [g.next_send_seq(7) for _ in range(3)] == [0, 1, 2]
    assert g.next_send_seq(8) == 0  # independent per tag


def test_format_microbench_without_shares():
    from repro.bench.reporting import format_microbench
    from repro.bench.task_microbench import MicrobenchResult, RowResult

    res = MicrobenchResult(machine="x", ncores=2)
    res.per_core.append(RowResult("core#0", [0], 700.0, 690, 710))
    text = format_microbench(res)
    assert "core#0" in text and "execution shares" not in text


def test_tracer_dump_filtering():
    from repro.sim.trace import Tracer

    t = Tracer(enabled=True)
    t.emit(1, "a", "x", "one")
    t.emit(2, "b", "y", "two")
    assert "one" in t.dump(["a"]) and "two" not in t.dump(["a"])


def test_enqueue_nowait_transitions():
    from repro.core.task import LTask

    m = kwak()
    eng = Engine()
    q = TaskQueue(m, eng, m.root)
    task = LTask(None, cpuset=m.all_cores(), name="h")
    q.enqueue_nowait(0, task)
    assert len(q) == 1 and q.stats.enqueues == 1
    assert q._visible_nonempty(0) is True  # writer sees it immediately
