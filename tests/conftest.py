"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline, kwak, smp


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def machine():
    """Default small machine for scheduler-level tests."""
    return borderline()


@pytest.fixture
def kwak_machine():
    return kwak()


@pytest.fixture
def tiny_machine():
    """2 chips x 2 cores — smallest machine with a real hierarchy."""
    return smp(2, 2, name="tiny")


@pytest.fixture
def sched(machine, engine):
    return Scheduler(machine, engine, rng=Rng(42))


def run_thread(machine, body, *, core=0, until=None, seed=42, engine=None):
    """Spawn one thread and run the engine to completion.

    Returns ``(result, engine)`` — the generator's return value and the
    engine (for clock inspection).
    """
    eng = engine if engine is not None else Engine()
    scheduler = Scheduler(machine, eng, rng=Rng(seed))
    thread = scheduler.spawn(body, core, name="test-main")
    eng.run(until=until)
    assert not thread.alive, f"test thread did not finish: {thread!r}"
    return thread.result, eng


def run_threads(machine, bodies, *, until=None, seed=42):
    """Spawn ``bodies`` as ``(body, core)`` pairs; returns (threads, engine)."""
    eng = Engine()
    scheduler = Scheduler(machine, eng, rng=Rng(seed))
    threads = [
        scheduler.spawn(body, core, name=f"test-t{i}")
        for i, (body, core) in enumerate(bodies)
    ]
    eng.run(until=until)
    return threads, eng
