"""Machine topology: tree structure, transfer matrix, routing."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.builder import borderline, from_counts, kwak, numa_machine, smp
from repro.topology.cpuset import CpuSet
from repro.topology.machine import Level, MachineSpec


def test_borderline_shape():
    m = borderline()
    assert m.ncores == 8
    assert len(m.root.children) == 4  # chips
    assert all(len(chip.children) == 2 for chip in m.root.children)


def test_kwak_shape():
    m = kwak()
    assert m.ncores == 16
    assert len(m.root.children) == 4  # NUMA nodes
    caches = [n for n in m.nodes if n.level == Level.CACHE]
    assert len(caches) == 4
    assert all(len(c.cpuset) == 4 for c in caches)


def test_core_nodes_dense_and_ordered():
    m = kwak()
    assert [c.index for c in m.core_nodes] == list(range(16))


def test_cpusets_fill_bottom_up():
    m = borderline()
    assert list(m.root.cpuset) == list(range(8))
    assert list(m.root.children[1].cpuset) == [2, 3]


def test_xfer_symmetry_and_diagonal():
    for m in (borderline(), kwak()):
        local = m.spec.local_ns
        for a in range(m.ncores):
            assert m.xfer(a, a) == local
            for b in range(m.ncores):
                assert m.xfer(a, b) == m.xfer(b, a)


def test_xfer_ordering_by_distance():
    m = kwak()
    assert m.xfer(0, 1) < m.xfer(0, 4)  # shared L3 < cross NUMA


def test_inval_at_least_defined():
    m = borderline()
    assert m.inval(0, 7) >= m.xfer(0, 7)  # invalidation is the slow path here


def test_common_level():
    m = kwak()
    assert m.common_level(0, 0) == Level.CORE
    assert m.common_level(0, 3) == Level.CACHE
    assert m.common_level(0, 15) == Level.MACHINE


def test_node_covering_narrowest():
    m = kwak()
    assert m.node_covering(CpuSet.single(5)).level == Level.CORE
    assert m.node_covering(CpuSet([4, 5, 6])).level == Level.CACHE
    assert m.node_covering(CpuSet([0, 15])).level == Level.MACHINE


def test_node_covering_rejects_bad_sets():
    m = borderline()
    with pytest.raises(ValueError):
        m.node_covering(CpuSet(0))
    with pytest.raises(ValueError):
        m.node_covering(CpuSet.single(99))


def test_siblings_sharing():
    m = kwak()
    assert m.siblings_sharing(0, Level.CACHE) == CpuSet([0, 1, 2, 3])
    bl = borderline()
    # no cache level on borderline: CACHE stops at the core itself,
    # CHIP picks up the sibling pair
    assert bl.siblings_sharing(0, Level.CHIP) == CpuSet([0, 1])


def test_describe_mentions_all_cores():
    text = borderline().describe()
    assert "chip#3" in text and "core#7" in text


def test_spec_xfer_fallback_outward():
    spec = MachineSpec(name="x", xfer_ns={Level.MACHINE: 100})
    assert spec.xfer(Level.CHIP) == 100  # falls out to machine level
    assert spec.xfer(Level.CORE) == spec.local_ns


def test_spec_xfer_missing_raises():
    spec = MachineSpec(name="x")
    with pytest.raises(KeyError):
        spec.xfer(Level.MACHINE)


def test_generic_smp_builder():
    m = smp(3, 4)
    assert m.ncores == 12
    assert m.common_level(0, 3) == Level.CHIP
    assert m.common_level(0, 4) == Level.MACHINE


def test_generic_numa_builder_with_l3():
    m = numa_machine(2, 2, 2, shared_l3=True)
    assert m.ncores == 8
    assert m.common_level(0, 1) == Level.CACHE
    # different chip, same NUMA node
    assert m.common_level(0, 2) == Level.NUMA
    assert m.common_level(0, 4) == Level.MACHINE


def test_numa_builder_without_l3():
    m = numa_machine(2, 1, 2, shared_l3=False)
    assert m.common_level(0, 1) == Level.CHIP


def test_from_counts_variants():
    spec = MachineSpec(name="c", xfer_ns={Level.MACHINE: 50})
    assert from_counts([6], spec).ncores == 6
    assert from_counts([2, 3], spec).ncores == 6
    assert from_counts([2, 1, 3], spec).ncores == 6
    with pytest.raises(ValueError):
        from_counts([], spec)


def test_builders_reject_zero():
    with pytest.raises(ValueError):
        smp(0, 2)
    with pytest.raises(ValueError):
        numa_machine(1, 0, 2)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_property_node_covering_is_narrowest(nchips, ncores, data):
    m = smp(nchips, ncores)
    cores = data.draw(
        st.sets(st.integers(min_value=0, max_value=m.ncores - 1), min_size=1)
    )
    cpuset = CpuSet(cores)
    node = m.node_covering(cpuset)
    # covers
    assert cpuset.issubset(node.cpuset)
    # narrowest: no child of the node covers the whole set
    for child in node.children:
        assert not cpuset.issubset(child.cpuset)


def test_nehalem_ex_preset():
    from repro.topology.builder import MACHINES, nehalem_ex_64

    m = nehalem_ex_64()
    assert m.ncores == 64
    assert m.common_level(0, 7) == Level.CACHE
    assert m.common_level(0, 8) == Level.MACHINE
    assert MACHINES["nehalem_ex_64"] is nehalem_ex_64
