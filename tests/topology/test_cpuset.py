"""CpuSet: construction, algebra, iteration, hypothesis laws."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.cpuset import EMPTY, CpuSet

core_sets = st.sets(st.integers(min_value=0, max_value=63), max_size=16)


def test_from_iterable_and_mask_agree():
    assert CpuSet([0, 2, 5]) == CpuSet(0b100101)


def test_single():
    s = CpuSet.single(7)
    assert list(s) == [7] and len(s) == 1


def test_range_half_open():
    assert list(CpuSet.range(2, 6)) == [2, 3, 4, 5]
    assert list(CpuSet.range(3, 3)) == []


def test_range_inverted_raises():
    with pytest.raises(ValueError):
        CpuSet.range(5, 2)


def test_all():
    assert list(CpuSet.all(4)) == [0, 1, 2, 3]


def test_negative_core_raises():
    with pytest.raises(ValueError):
        CpuSet([-1])
    with pytest.raises(ValueError):
        CpuSet(-5)


def test_contains():
    s = CpuSet([1, 3])
    assert 1 in s and 3 in s and 2 not in s


def test_first():
    assert CpuSet([9, 4, 30]).first() == 4
    with pytest.raises(ValueError):
        EMPTY.first()


def test_bool_len():
    assert not EMPTY and len(EMPTY) == 0
    assert CpuSet([0]) and len(CpuSet([0, 63])) == 2


def test_hashable_in_dict():
    d = {CpuSet([1, 2]): "a"}
    assert d[CpuSet([2, 1])] == "a"


def test_repr_lists_cores():
    assert repr(CpuSet([3, 1])) == "CpuSet([1, 3])"


@given(core_sets, core_sets)
def test_property_algebra_matches_sets(a, b):
    ca, cb = CpuSet(a), CpuSet(b)
    assert set(ca | cb) == a | b
    assert set(ca & cb) == a & b
    assert set(ca - cb) == a - b
    assert set(ca ^ cb) == a ^ b


@given(core_sets, core_sets)
def test_property_subset_relations(a, b):
    ca, cb = CpuSet(a), CpuSet(b)
    assert ca.issubset(cb) == (a <= b)
    assert ca.issuperset(cb) == (a >= b)
    assert ca.intersects(cb) == bool(a & b)


@given(core_sets)
def test_property_iteration_sorted_roundtrip(a):
    c = CpuSet(a)
    assert list(c) == sorted(a)
    assert CpuSet(list(c)) == c


@given(core_sets)
def test_property_demorgan_within_universe(a):
    universe = CpuSet.all(64)
    c = CpuSet(a)
    assert (universe - c) | c == universe
    assert (universe - c) & c == EMPTY
