"""Mutex: blocking semantics, FIFO wake order, context-switch cost."""

import pytest

from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.instructions import Compute, MutexAcquire, MutexRelease
from repro.threads.scheduler import Scheduler
from repro.sync.mutex import Mutex
from repro.topology.builder import borderline


def _setup():
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(1))
    return m, eng, sched


def test_uncontended_acquire_release():
    m, eng, sched = _setup()
    mtx = Mutex(m, eng, name="M")
    events = []

    def body(ctx):
        yield MutexAcquire(mtx)
        events.append("locked")
        yield Compute(100)
        yield MutexRelease(mtx)
        events.append("released")

    sched.spawn(body, 0)
    eng.run()
    assert events == ["locked", "released"]
    assert not mtx.held


def test_contended_thread_blocks_and_wakes_fifo():
    m, eng, sched = _setup()
    mtx = Mutex(m, eng, name="M")
    order = []

    def body(name, core, hold_ns):
        def gen(ctx):
            yield MutexAcquire(mtx)
            order.append(name)
            yield Compute(hold_ns)
            yield MutexRelease(mtx)

        return gen

    sched.spawn(body("a", 0, 5_000), 0)
    sched.spawn(body("b", 2, 100), 2)
    sched.spawn(body("c", 4, 100), 4)
    eng.run()
    assert order == ["a", "b", "c"]  # FIFO despite core distances


def test_blocked_waiter_frees_its_core():
    """While blocked on a mutex, the waiter's core can run other threads."""
    m, eng, sched = _setup()
    mtx = Mutex(m, eng, name="M")
    progress = []

    def holder(ctx):
        yield MutexAcquire(mtx)
        yield Compute(50_000)
        yield MutexRelease(mtx)

    def waiter(ctx):
        yield MutexAcquire(mtx)
        progress.append(("waiter", ctx.now))
        yield MutexRelease(mtx)

    def bystander(ctx):
        yield Compute(1_000)
        progress.append(("bystander", ctx.now))

    sched.spawn(holder, 0)
    sched.spawn(waiter, 2, name="w")
    sched.spawn(bystander, 2, name="b")
    eng.run()
    names = [n for n, _ in progress]
    assert names.index("bystander") < names.index("waiter")


def test_release_by_non_holder_raises():
    m, eng, sched = _setup()
    mtx = Mutex(m, eng, name="M")

    def bad(ctx):
        yield MutexRelease(mtx)

    sched.spawn(bad, 0)
    with pytest.raises(RuntimeError):
        eng.run()


def test_mutex_wait_costs_more_than_hold_time():
    """The waiter pays scheduling latency on top of the hold time."""
    m, eng, sched = _setup()
    mtx = Mutex(m, eng, name="M")
    t = {}

    def holder(ctx):
        yield MutexAcquire(mtx)
        yield Compute(200)
        yield MutexRelease(mtx)

    def waiter(ctx):
        t["start"] = ctx.now
        yield MutexAcquire(mtx)
        t["locked"] = ctx.now
        yield MutexRelease(mtx)

    sched.spawn(holder, 0)
    sched.spawn(waiter, 4, name="w")
    eng.run()
    waited = t["locked"] - t["start"]
    assert waited > 200  # hold time plus wake/dispatch path
    assert mtx.stats.contended == 1
