"""SpinLock: mutual exclusion, handoff policy, stats, starvation bound."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sync.spinlock import SpinLock
from repro.topology.builder import borderline, kwak


def test_uncontended_acquire_grants_quickly():
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng, name="L")
    granted = []
    lock.acquire(0, lambda: granted.append(eng.now))
    eng.run()
    assert granted and granted[0] <= m.xfer(0, 0) + m.spec.cas_ns + 5
    assert lock.held and lock.holder == 0


def test_release_without_hold_raises():
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng)
    with pytest.raises(RuntimeError):
        lock.release(0)


def test_release_by_non_holder_raises():
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng)
    lock.acquire(0, lambda: None)
    eng.run()
    with pytest.raises(RuntimeError):
        lock.release(3)


def test_contended_handoff_to_nearest():
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng, name="L")
    order = []
    lock.acquire(0, lambda: order.append(0))
    eng.run()
    # cores 7 (far) then 1 (sibling) start spinning
    lock.acquire(7, lambda: order.append(7))
    lock.acquire(1, lambda: order.append(1))
    lock.release(0)
    eng.run()
    assert order == [0, 1]  # sibling wins despite arriving second
    lock.release(1)
    eng.run()
    assert order == [0, 1, 7]
    lock.release(7)
    assert not lock.held


def test_handoff_delay_scales_with_distance():
    m = kwak()
    # near waiter
    eng1 = Engine()
    l1 = SpinLock(m, eng1)
    l1.acquire(0, lambda: None)
    eng1.run()
    t_near = []
    l1.acquire(1, lambda: t_near.append(eng1.now))
    base = eng1.now
    l1.release(0)
    eng1.run()
    near_delay = t_near[0] - base
    # far waiter
    eng2 = Engine()
    l2 = SpinLock(m, eng2)
    l2.acquire(0, lambda: None)
    eng2.run()
    t_far = []
    l2.acquire(15, lambda: t_far.append(eng2.now))
    base = eng2.now
    l2.release(0)
    eng2.run()
    far_delay = t_far[0] - base
    assert far_delay > near_delay


def test_contended_factor_applies_with_multiple_waiters():
    m = kwak()
    eng = Engine()
    lock = SpinLock(m, eng)
    lock.acquire(0, lambda: None)
    eng.run()
    granted = []
    lock.acquire(4, lambda: granted.append(("a", eng.now)))
    lock.acquire(8, lambda: granted.append(("b", eng.now)))
    t0 = eng.now
    lock.release(0)
    eng.run(until=t0 + 10_000_000)
    # the first handoff (2 waiters present) pays the contended multiplier
    first_delay = granted[0][1] - t0
    assert first_delay >= m.xfer(0, 4) * m.spec.contended_factor * 0.9


def test_starvation_bound_promotes_oldest():
    m = borderline()
    eng = Engine()
    lock = SpinLock(m, eng, name="L")
    order = []
    lock.acquire(0, lambda: order.append(0))
    eng.run()
    # a far core waits first...
    lock.acquire(6, lambda: order.append(6))
    # ...time passes beyond the starvation bound...
    eng.schedule(m.spec.lock_starvation_ns + 1, lambda: None)
    eng.run()
    # ...then a nearby core joins and the lock is released
    lock.acquire(1, lambda: order.append(1))
    lock.release(0)
    eng.run()
    assert order[1] == 6, "starved distant waiter must win over the sibling"


def test_cancel_waiter():
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng)
    lock.acquire(0, lambda: None)
    eng.run()
    granted = []
    w = lock.acquire(5, lambda: granted.append(5))
    assert w is not None
    assert lock.cancel_waiter(w) is True
    assert lock.cancel_waiter(w) is False  # already gone
    lock.release(0)
    eng.run()
    assert granted == [] and not lock.held


def test_stats_counters():
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng)
    lock.acquire(0, lambda: None)
    eng.run()
    lock.acquire(2, lambda: None)
    lock.acquire(3, lambda: None)
    lock.release(0)
    eng.run()
    lock.release(lock.holder)
    eng.run()
    st_ = lock.stats
    assert st_.acquires == 3
    assert st_.uncontended == 1 and st_.contended == 2
    assert st_.handoffs == 2
    assert st_.max_waiters == 2
    assert st_.total_spin_ns > 0
    assert 0 < st_.contention_ratio < 1
    assert st_.mean_spin_ns() > 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=12))
def test_property_mutual_exclusion_and_liveness(cores):
    """Random acquire sequences: never two concurrent holders; everyone
    eventually gets the lock; release count matches acquire count."""
    m, eng = borderline(), Engine()
    lock = SpinLock(m, eng, name="P")
    active = []
    completed = []

    def make_user(idx, core):
        def on_grant():
            active.append(idx)
            assert len(active) == 1, "two holders at once"
            # hold briefly, then release
            def drop():
                active.remove(idx)
                completed.append(idx)
                lock.release(core)

            eng.schedule(50, drop)

        return on_grant

    for i, core in enumerate(cores):
        lock.acquire(core, make_user(i, core))
    eng.run()
    assert sorted(completed) == list(range(len(cores)))
    assert not lock.held
