"""Condition variable (Mesa semantics) and atomic counter."""

import pytest

from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sync.condition import AtomicCounter, Condition
from repro.threads.instructions import Compute
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline


def _world(seed=8):
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(seed))
    return m, eng, sched


def test_producer_consumer_bounded_queue():
    m, eng, sched = _world()
    cond = Condition(m, eng, name="q")
    queue = []
    consumed = []
    CAP = 2

    def producer(ctx):
        for i in range(6):
            yield cond.acquire()
            while len(queue) >= CAP:
                yield from cond.wait(ctx)
            queue.append(i)
            yield from cond.notify_all(ctx)
            yield cond.release()
            yield Compute(500)

    def consumer(ctx):
        for _ in range(6):
            yield cond.acquire()
            while not queue:
                yield from cond.wait(ctx)
            consumed.append(queue.pop(0))
            yield from cond.notify_all(ctx)
            yield cond.release()
            yield Compute(2_000)

    sched.spawn(producer, 0, name="prod")
    sched.spawn(consumer, 3, name="cons")
    eng.run()
    assert consumed == list(range(6))
    assert cond.waiter_count() == 0


def test_wait_without_mutex_raises():
    m, eng, sched = _world()
    cond = Condition(m, eng, name="c")

    def body(ctx):
        yield from cond.wait(ctx)

    sched.spawn(body, 0)
    with pytest.raises(RuntimeError):
        eng.run()


def test_notify_with_no_waiters_is_noop():
    m, eng, sched = _world()
    cond = Condition(m, eng, name="c")

    def body(ctx):
        yield cond.acquire()
        yield from cond.notify(ctx)
        yield cond.release()
        return True

    t = sched.spawn(body, 0)
    eng.run()
    assert t.result is True and cond.signals == 1


def test_notify_all_wakes_everyone():
    m, eng, sched = _world()
    cond = Condition(m, eng, name="c")
    woke = []
    state = {"go": False}

    def waiter(idx, core):
        def body(ctx):
            yield cond.acquire()
            while not state["go"]:
                yield from cond.wait(ctx)
            woke.append(idx)
            yield cond.release()

        return body

    def releaser(ctx):
        yield Compute(50_000)
        yield cond.acquire()
        state["go"] = True
        yield from cond.notify_all(ctx)
        yield cond.release()

    for i, core in enumerate((1, 2, 4)):
        sched.spawn(waiter(i, core), core, name=f"w{i}")
    sched.spawn(releaser, 0)
    eng.run()
    assert sorted(woke) == [0, 1, 2]


def test_atomic_counter_fetch_add():
    m, eng, sched = _world()
    counter = AtomicCounter(m, eng, home=0, name="n")
    seen = []

    def body(core, times):
        def gen(ctx):
            for _ in range(times):
                old = yield from counter.fetch_add(ctx.core_id)
                seen.append(old)
                yield Compute(100)

        return gen

    sched.spawn(body(0, 5), 0)
    sched.spawn(body(4, 5), 4)
    eng.run()
    assert counter.value == 10
    assert sorted(seen) == list(range(10))  # every ticket unique


def test_atomic_counter_load():
    m, eng, sched = _world()
    counter = AtomicCounter(m, eng, initial=7)

    def body(ctx):
        v = yield from counter.load(ctx.core_id)
        return v

    t = sched.spawn(body, 2)
    eng.run()
    assert t.result == 7
