"""Docstring examples must stay executable."""

import doctest

import repro.sim.units


def test_units_doctests():
    results = doctest.testmod(repro.sim.units, verbose=False)
    assert results.attempted >= 3
    assert results.failed == 0
