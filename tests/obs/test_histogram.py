"""Histogram: bucketing, percentiles, merge, registry scraping."""

import pytest

from repro.obs import Histogram, MetricsRegistry


def test_empty_histogram():
    h = Histogram()
    assert h.count == 0 and len(h) == 0
    assert h.min == 0 and h.max == 0 and h.total == 0
    assert h.mean() == 0.0
    assert h.percentile(50) == 0
    assert h.buckets() == []


def test_record_updates_count_min_max_sum():
    h = Histogram()
    for v in (5, 100, 3, 77):
        h.record(v)
    assert h.count == 4
    assert h.min == 3 and h.max == 100
    assert h.total == 185
    assert h.mean() == pytest.approx(185 / 4)


def test_negative_and_float_samples_are_clamped_and_truncated():
    h = Histogram()
    h.record(-5)
    h.record(2.9)
    assert h.min == 0 and h.max == 2
    assert h.count == 2


def test_power_of_two_buckets():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 7, 8, 1000):
        h.record(v)
    triples = h.buckets()
    # bucket 0 = {0}; bucket [1,1]; [2,3]; [4,7]; [8,15]; [512,1023]
    assert (0, 0, 1) in triples
    assert (1, 1, 1) in triples
    assert (2, 3, 2) in triples
    assert (4, 7, 2) in triples
    assert (8, 15, 1) in triples
    assert (512, 1023, 1) in triples
    assert sum(n for _, _, n in triples) == h.count


def test_percentile_bucket_resolution_and_clamping():
    h = Histogram()
    for v in [10] * 90 + [1000] * 10:
        h.record(v)
    # p50 lands in the [8,15] bucket; clamped into [min, max]
    assert h.percentile(50) == 15
    # p100 is always the exact max, p0 never undershoots the min
    assert h.percentile(100) == 1000
    assert h.percentile(0) >= h.min
    # the tail bucket upper bound (1023) is clamped to the true max
    assert h.percentile(99.5) == 1000


def test_percentile_out_of_range_rejected():
    h = Histogram()
    h.record(1)
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_single_value_percentiles_are_exact():
    h = Histogram()
    h.record(37)
    for p in (1, 50, 90, 99, 100):
        assert h.percentile(p) == 37


def test_merge_folds_samples():
    a, b = Histogram(), Histogram()
    for v in (1, 2, 3):
        a.record(v)
    for v in (100, 200):
        b.record(v)
    a.merge(b)
    assert a.count == 5
    assert a.min == 1 and a.max == 200
    assert a.total == 306
    # merging an empty histogram is a no-op
    before = a.to_metrics()
    a.merge(Histogram())
    assert a.to_metrics() == before
    # merge into an empty histogram copies min/max
    c = Histogram()
    c.merge(b)
    assert c.min == 100 and c.max == 200 and c.count == 2


def test_to_metrics_exposes_stable_summary_keys():
    h = Histogram()
    for v in range(1, 101):
        h.record(v)
    m = h.to_metrics()
    assert set(m) == {"count", "min", "max", "mean", "p50", "p90", "p99", "p999"}
    assert m["count"] == 100 and m["min"] == 1 and m["max"] == 100
    assert m["p50"] <= m["p90"] <= m["p99"] <= m["p999"] <= m["max"]


def _state(h):
    return (h.count, h.min, h.max, h.total, h.buckets(), h.to_metrics())


def test_record_many_is_snapshot_identical_to_k_records():
    for v, k in ((0, 1), (1, 3), (7, 1000), (126, 17), (2**40, 5)):
        a, b = Histogram(), Histogram()
        a.record_many(v, k)
        for _ in range(k):
            b.record(v)
        assert _state(a) == _state(b), (v, k)


def test_record_many_interleaves_with_record():
    a, b = Histogram(), Histogram()
    for h in (a, b):
        h.record(3)
    a.record_many(100, 4)
    for _ in range(4):
        b.record(100)
    for h in (a, b):
        h.record(-2)  # clamped to 0, drags min down
    a.record_many(5, 2)
    b.record(5)
    b.record(5)
    assert _state(a) == _state(b)
    assert a.min == 0 and a.max == 100 and a.count == 8


def test_record_many_zero_or_negative_count_is_a_noop():
    h = Histogram()
    h.record_many(42, 0)
    h.record_many(42, -3)
    assert h.count == 0 and _state(h) == _state(Histogram())


def test_record_many_clamps_and_truncates_like_record():
    a, b = Histogram(), Histogram()
    a.record_many(-9, 2)
    a.record_many(2.9, 3)
    for v in (-9, -9, 2.9, 2.9, 2.9):
        b.record(v)
    assert _state(a) == _state(b)


def test_record_many_grows_buckets_beyond_prealloc():
    huge = 1 << 100
    a, b = Histogram(), Histogram()
    a.record_many(huge, 7)
    for _ in range(7):
        b.record(huge)
    assert _state(a) == _state(b)
    assert a.max == huge and a.count == 7


def test_registry_scrapes_histogram_directly_and_nested():
    reg = MetricsRegistry()
    h = Histogram()
    h.record(50)
    reg.register("pioman.latency.submit_to_complete", h)
    reg.register("group", {"wait": h, "plain": 3})
    snap = reg.snapshot()
    assert snap["pioman.latency.submit_to_complete.p99"] == 50
    assert snap["pioman.latency.submit_to_complete.count"] == 1
    assert snap["group.wait.p50"] == 50
    assert snap["group.plain"] == 3
