"""Offline trace analysis: synthetic traces, doc parity, registry consistency."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.task_microbench import measure_queue
from repro.obs import (
    MetricsRegistry,
    analyze_trace,
    analyze_trace_file,
    chrome_trace,
    format_analysis,
)
from repro.obs.analyze import queue_level
from repro.sim.trace import Tracer
from repro.topology.builder import MACHINES


def test_queue_level_mapping():
    assert queue_level("q:core#3") == "core"
    assert queue_level("q:cache#0") == "cache"
    assert queue_level("q:chip#1") == "chip"
    assert queue_level("q:numa#0") == "node"
    assert queue_level("q:machine") == "global"
    assert queue_level("machine") == "global"
    assert queue_level("q:custom#9") == "custom"


def _synthetic_tracer() -> Tracer:
    """One submitted task, run on core 1; one contended lock handoff."""
    tr = Tracer(enabled=True)
    tr.emit(1000, "pioman", "core0", "submit t1 -> q:machine",
            phase="submit", task="t1", queue="q:machine", core=0)
    tr.emit(5000, "pioman", "core1", "completed t1",
            phase="run", task="t1", queue="q:machine", core=1,
            start=2000, complete=True)
    tr.emit(4000, "lock", "core1", "contended q:machine.lock",
            phase="lock", lock="q:machine.lock", core=1,
            wait_ns=700, start=3300)
    return tr


def test_analyze_synthetic_tracer():
    a = analyze_trace(_synthetic_tracer())
    assert a.submits == 1 and a.runs == 1 and a.completions == 1
    assert a.unmatched_submits == 0
    assert (a.t_start, a.t_end) == (1000, 5000)

    # core 1 was busy 2000..5000 over a 4000 ns span
    assert len(a.cores) == 2
    assert a.cores[1].busy_ns == 3000 and a.cores[1].runs == 1
    assert a.cores[1].utilization == pytest.approx(3000 / 4000)
    assert a.cores[0].busy_ns == 0

    # submit at 1000, first run start at 2000 -> 1000 ns at the global level
    lv = a.level("global")
    assert lv is not None
    assert lv.count == 1 and lv.p50_ns == 1000 and lv.p99_ns == 1000

    assert a.slowest[0].task == "t1"
    assert a.slowest[0].latency_ns == 5000 - 1000

    assert a.locks[0].lock == "q:machine.lock"
    assert a.locks[0].contended == 1 and a.locks[0].max_wait_ns == 700


def test_analyze_chrome_doc_matches_live_tracer():
    tr = _synthetic_tracer()
    live = analyze_trace(tr)
    doc = chrome_trace(tr, meta={"ncores": 2})
    from_doc = analyze_trace(doc)
    assert from_doc.submits == live.submits
    assert from_doc.runs == live.runs
    assert from_doc.completions == live.completions
    assert from_doc.level("global").count == live.level("global").count
    assert from_doc.level("global").p50_ns == live.level("global").p50_ns
    assert [c.busy_ns for c in from_doc.cores] == [c.busy_ns for c in live.cores]
    assert from_doc.locks[0].contended == 1


def test_unmatched_submits_and_ncores_padding():
    tr = Tracer(enabled=True)
    tr.emit(10, "pioman", "core0", "submit ghost -> q:core#0",
            phase="submit", task="ghost", queue="q:core#0", core=0)
    a = analyze_trace(tr, ncores=4)
    assert a.submits == 1 and a.runs == 0
    assert a.unmatched_submits == 1
    assert a.levels == [] and a.slowest == []
    # idle cores are reported, not omitted
    assert [c.core for c in a.cores] == [0, 1, 2, 3]
    # a zero-span trace has no denominator: utilization is n/a, not 0%
    assert all(c.utilization is None for c in a.cores)


def test_submit_matches_only_runs_at_or_after_it():
    """A run slice that started before the submit belongs to a prior life."""
    tr = Tracer(enabled=True)
    tr.emit(100, "pioman", "core0", "completed t",
            phase="run", task="t", queue="q:machine", core=0,
            start=50, complete=True)
    tr.emit(200, "pioman", "core0", "submit t -> q:machine",
            phase="submit", task="t", queue="q:machine", core=0)
    tr.emit(900, "pioman", "core1", "completed t",
            phase="run", task="t", queue="q:machine", core=1,
            start=600, complete=True)
    a = analyze_trace(tr)
    lv = a.level("global")
    assert lv.count == 1 and lv.p50_ns == 400  # 600 - 200, not 50 - 200
    assert a.slowest[0].latency_ns == 700  # 900 - 200


def test_format_analysis_sections_and_empty_placeholders():
    text = format_analysis(analyze_trace(_synthetic_tracer()))
    for header in (
        "== trace analysis",
        "== per-core utilization ==",
        "== submit→run latency by queue level ==",
        "== lock contention ==",
        "slowest tasks (submit→complete) ==",
    ):
        assert header in text
    assert "core0" in text and "core1" in text
    empty = format_analysis(analyze_trace(Tracer(enabled=True)))
    assert "(no core activity traced)" in empty
    assert "(no submit/run pairs traced)" in empty
    assert "(no contended lock handoffs traced)" in empty


def test_analysis_counts_match_registry_counters():
    """Trace-derived totals agree with the MetricsRegistry scrape."""
    machine = MACHINES["borderline"]()
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    measure_queue(
        machine, machine.all_cores(), label="global",
        reps=10, seed=3, registry=registry, tracer=tracer,
    )
    snap = registry.snapshot()
    a = analyze_trace(tracer, ncores=machine.ncores)
    assert a.submits == snap["pioman.submits"]
    assert a.completions == snap["pioman.tasks_completed"]
    assert sum(c.runs for c in a.cores) == a.runs
    assert len(a.cores) == machine.ncores
    # every analyzed latency also landed in the live histogram
    assert snap["pioman.latency.submit_to_complete.count"] == a.completions
    assert a.level("global").count > 0


def test_cli_analyze_subcommand(tmp_path, capsys):
    t_out = tmp_path / "t.json"
    a_out = tmp_path / "a.json"
    assert main(["table1", "--reps", "8", "--trace-out", str(t_out)]) == 0
    capsys.readouterr()
    rc = main(["analyze", "--trace", str(t_out), "--analysis-out", str(a_out)])
    out = capsys.readouterr().out
    assert rc == 0
    # borderline has 8 cores; every one must be named even if idle
    for c in range(8):
        assert f"core{c}" in out
    doc = json.loads(a_out.read_text())
    assert len(doc["cores"]) == 8
    assert doc["submits"] > 0 and doc["span_ns"] > 0
    levels = {lv["level"]: lv for lv in doc["levels"]}
    assert levels["global"]["p50_ns"] > 0

    # the file-loading path agrees with the CLI output
    again = analyze_trace_file(str(t_out))
    assert again.submits == doc["submits"]


def test_meta_header_in_text_and_json():
    tr = _synthetic_tracer()
    a = analyze_trace(tr, scenario="unit")
    assert a.meta["makespan_ns"] == a.span_ns == 4000
    assert a.meta["events"] == len(tr.records) == 3
    # 3 events over 4000 ns of virtual time
    assert a.meta["events_per_sec"] == pytest.approx(3 / 4e-6, rel=0.01)
    assert a.meta["scenario"] == "unit"
    text = format_analysis(a)
    meta_line = next(ln for ln in text.splitlines() if "meta:" in ln)
    assert "makespan=4000 ns" in meta_line
    assert "events=3" in meta_line
    assert "scenario=unit" in meta_line
    assert a.to_jsonable()["meta"] == a.meta


def test_meta_scenario_read_from_doc_otherdata():
    doc = chrome_trace(_synthetic_tracer(), meta={"ncores": 2,
                                                  "scenario": "from_doc"})
    a = analyze_trace(doc)
    assert a.meta["scenario"] == "from_doc"
    # an explicit argument wins over the recorded name
    assert analyze_trace(doc, scenario="override").meta["scenario"] == "override"


def test_format_empty_trace_meta_is_na():
    a = analyze_trace(Tracer(enabled=True))
    assert a.meta["makespan_ns"] == 0
    assert a.meta["events"] == 0
    assert a.meta["events_per_sec"] is None
    text = format_analysis(a)
    meta_line = next(ln for ln in text.splitlines() if "meta:" in ln)
    assert "events/sim-sec=n/a" in meta_line
    assert "scenario=" not in meta_line


def test_format_fault_only_trace():
    """Fault events but no completions: section appears, nothing crashes."""
    tr = Tracer(enabled=True)
    tr.emit(500, "faults", "net", "drop frame", phase="fault", fault="drop")
    tr.emit(900, "faults", "net", "retransmit", phase="fault",
            fault="retransmit")
    a = analyze_trace(tr)
    assert a.fault_events == 2
    assert [fi.kind for fi in a.faults] == ["drop", "retransmit"]
    assert all(fi.impacted_tasks == 0 and fi.tail_ratio is None
               for fi in a.faults)
    text = format_analysis(a)
    assert "== injected-fault tail impact ==" in text
    assert "drop" in text and "retransmit" in text
    assert "n/a" in text  # percentiles have no completions to draw from


def test_format_fault_impact_renders_p999():
    tr = _synthetic_tracer()
    tr.emit(1500, "faults", "net", "drop frame", phase="fault", fault="drop")
    a = analyze_trace(tr)
    (fi,) = a.faults
    assert fi.kind == "drop" and fi.impacted_tasks >= 1
    text = format_analysis(a)
    assert "p999" in text and "drop" in text


def test_format_single_core_trace():
    tr = Tracer(enabled=True)
    tr.emit(100, "pioman", "core0", "submit solo -> q:core#0",
            phase="submit", task="solo", queue="q:core#0", core=0)
    tr.emit(800, "pioman", "core0", "completed solo", phase="run",
            task="solo", queue="q:core#0", core=0, start=300, complete=True)
    a = analyze_trace(tr)
    assert len(a.cores) == 1
    assert a.cores[0].utilization == pytest.approx(500 / 700)
    text = format_analysis(a)
    assert "core0" in text and "core1" not in text
    assert "level=core" in text or "core " in text
