"""One registry threaded through a whole cluster: nodes, NICs, nmad."""

import json

from repro.cluster.cluster import Cluster
from repro.nmad.library import NMad
from repro.obs import MetricsRegistry, chrome_trace
from repro.sim.trace import NULL_TRACER, Tracer


def _exchange(registry=None, tracer=None, size=256 * 1024):
    # NB: an empty Tracer is falsy (it has __len__), so test `is None`
    cl = Cluster(
        2, seed=5, registry=registry,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    n0, n1 = NMad(cl.nodes[0]), NMad(cl.nodes[1])

    def s(ctx):
        yield from n0.send(ctx.core_id, 1, 3, size, payload=b"T")

    def r(ctx):
        yield from n1.recv(ctx.core_id, 0, 3)

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=200_000_000)
    return cl


def test_cluster_registry_covers_every_layer():
    reg = MetricsRegistry()
    _exchange(registry=reg)
    snap = reg.snapshot()
    # every layer of the stack reports into the one registry
    assert snap["pioman@0.submits"] > 0
    assert snap["pioman@0.q:machine.enqueues"] >= 0
    assert snap["sched.node0.core0.busy_ns"] > 0
    assert any(k.startswith("nic.") and k.endswith(".frames_sent") for k in snap)
    assert snap["nmad.node0.rdv_sends"] == 1
    assert snap["nmad.node0.gate1.frames_out"] > 0
    # per-node paths do not collide
    assert "pioman@1.submits" in snap and "nmad.node1.recvs" in snap


def test_cluster_diff_isolates_one_exchange():
    reg = MetricsRegistry()
    cl = _exchange(registry=reg)
    before = reg.snapshot()
    n0, n1 = cl.nodes[0].comm, cl.nodes[1].comm

    def s(ctx):
        yield from n0.send(ctx.core_id, 1, 9, 64, payload=b"x")

    def r(ctx):
        yield from n1.recv(ctx.core_id, 0, 9)

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=400_000_000)
    delta = MetricsRegistry.diff(before, reg.snapshot())
    assert delta["nmad.node0.eager_sends"] == 1
    assert "nmad.node0.rdv_sends" not in delta  # did not move
    assert all(v != 0 for v in delta.values())


def test_cluster_trace_exports_nmad_and_task_events():
    tracer = Tracer(enabled=True)
    _exchange(tracer=tracer)
    doc = json.loads(json.dumps(chrome_trace(tracer)))
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert "nmad" in cats and "wire" in cats and "pioman" in cats
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # polling / submission-offload tasks appear as per-core slices
    assert slices
    assert any(e["args"].get("queue") for e in slices)
    # repeat polling executions are visible as incomplete runs
    assert any(e["args"].get("complete") is False for e in slices)
