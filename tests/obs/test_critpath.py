"""Critical-path extraction: synthetic chains, fault_net attribution,
sum-to-makespan invariant, zero-overhead of the edge instrumentation."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults import FaultPlan, NetFaults
from repro.mpi import MadMPI
from repro.obs import (
    analyze_trace,
    chrome_trace,
    extract_critical_path,
    format_critical_path,
)
from repro.obs.critpath import CATEGORIES
from repro.sim.trace import NULL_TRACER, Tracer


def _chain_tracer() -> Tracer:
    """Hand-built causal chain: sub -> enq -> run -> done with a NIC hop."""
    tr = Tracer(enabled=True)
    tr.edge(150, "core0", "submit", "T:t/sub", "T:t/enq", 100, queue="q:machine")
    tr.edge(400, "core1", "queue_wait", "T:t/enq", "T:t/run0", 150,
            queue="q:machine")
    tr.edge(900, "core1", "compute", "T:t/run0", "T:t/done", 400,
            queue="q:machine")
    return tr


def test_synthetic_chain_totals_sum_to_makespan():
    cp = extract_critical_path(_chain_tracer())
    assert cp.terminal == "T:t/done"
    assert (cp.t_start, cp.terminal_time) == (100, 900)
    assert cp.makespan_ns == 800
    assert sum(cp.totals.values()) == 800
    assert cp.totals["compute"] == 50 + 500  # submit hop + final run
    assert cp.totals["queue_wait"] == 250
    assert cp.totals["untraced"] == 0
    assert cp.level_ns == {"global": 250}
    assert set(cp.totals) == set(CATEGORIES)


def test_latest_cause_wins_at_a_join():
    tr = _chain_tracer()
    # a doorbell wake arriving later than the enqueue must explain the run
    tr.edge(350, "core1", "dispatch", "C:node0.1/wake@350", "T:t/run0", 330)
    cp = extract_critical_path(tr)
    kinds = [s.kind for s in cp.segments]
    assert "dispatch" in kinds and "queue_wait" not in kinds
    assert sum(cp.totals.values()) == cp.makespan_ns


def test_untraced_head_and_empty_trace():
    tr = Tracer(enabled=True)
    # a run record widens the trace span beyond the causal chain
    tr.emit(5000, "pioman", "core0", "completed x", phase="run", task="x",
            queue="q:machine", core=0, start=20, complete=True)
    tr.edge(4000, "core0", "compute", "T:y/run0", "T:y/done", 3000)
    cp = extract_critical_path(tr)
    assert cp.t_start == 20 and cp.terminal_time == 4000
    assert cp.segments[0].category == "untraced"
    assert cp.segments[0].start == 20 and cp.segments[0].end == 3000
    assert sum(cp.totals.values()) == cp.makespan_ns == 3980

    empty = extract_critical_path(Tracer(enabled=True))
    assert empty.segments == [] and empty.makespan_ns == 0
    assert "no traced makespan" in format_critical_path(empty)


def test_edgeless_trace_is_all_untraced():
    tr = Tracer(enabled=True)
    tr.emit(1000, "pioman", "core0", "submit t -> q:machine",
            phase="submit", task="t", queue="q:machine", core=0)
    tr.emit(5000, "pioman", "core0", "completed t", phase="run", task="t",
            queue="q:machine", core=0, start=2000, complete=True)
    cp = extract_critical_path(tr)
    assert [s.category for s in cp.segments] == ["untraced"]
    assert cp.totals["untraced"] == cp.makespan_ns == 4000


def test_lock_overlay_reallocates_wait_time():
    tr = _chain_tracer()
    # a contended handoff covering 200..300 inside the queue wait
    tr.emit(300, "lock", "core1", "contended lock:q:machine",
            phase="lock", lock="lock:q:machine", core=1,
            wait_ns=100, start=200)
    cp = extract_critical_path(tr)
    assert cp.totals["lock_wait"] == 100
    assert cp.totals["queue_wait"] == 150
    assert cp.level_ns == {"global": 150}
    assert sum(cp.totals.values()) == cp.makespan_ns


def _fault_cluster_run(tracer):
    plan = FaultPlan(seed=42, net=NetFaults(drop_p=0.15, reorder_p=0.2))
    cl = Cluster(2, seed=7, tracer=tracer, faults=plan)
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    done = []

    def sender(ctx):
        for i in range(12):
            yield from c0.send(ctx.core_id, 1, i, 4096, payload=b"x")
        done.append("send")

    def receiver(ctx):
        for i in range(12):
            yield from c1.recv(ctx.core_id, 0, i)
        done.append("recv")

    cl.nodes[0].scheduler.spawn(sender, 0)
    cl.nodes[1].scheduler.spawn(receiver, 0)
    cl.run(until=100_000_000)
    assert sorted(done) == ["recv", "send"]
    return cl


@pytest.fixture(scope="module")
def fault_net_tracer():
    tracer = Tracer(enabled=True)
    _fault_cluster_run(tracer)
    return tracer


def test_fault_net_attributes_retransmit_wait(fault_net_tracer):
    """Acceptance: nonzero retransmit share, totals sum to makespan."""
    cp = extract_critical_path(fault_net_tracer)
    assert cp.edge_count > 0
    assert cp.terminal.endswith("/done")
    assert sum(cp.totals.values()) == cp.makespan_ns > 0
    assert cp.totals["retransmit"] > 0
    assert cp.shares()["retransmit"] > 0
    assert cp.totals["nic"] > 0
    # the rendered report names the bucket
    text = format_critical_path(cp)
    assert "retransmit" in text and "ns makespan" in text


def test_fault_net_doc_roundtrip_identical(fault_net_tracer):
    """Chrome-trace export preserves every edge the walker needs."""
    live = extract_critical_path(fault_net_tracer)
    doc = chrome_trace(fault_net_tracer, meta={"ncores": 8})
    from_doc = extract_critical_path(doc)
    assert from_doc.totals == live.totals
    assert from_doc.terminal == live.terminal
    assert len(from_doc.segments) == len(live.segments)


def test_edge_instrumentation_changes_no_simulated_outcome():
    """Zero-overhead contract: tracing on vs off, same virtual world."""
    cl_off = _fault_cluster_run(NULL_TRACER)
    cl_on = _fault_cluster_run(Tracer(enabled=True))
    assert cl_off.engine.now == cl_on.engine.now
    assert cl_off.engine.fired == cl_on.engine.fired
    for n_off, n_on in zip(cl_off.nodes, cl_on.nodes):
        s_off, s_on = n_off.nics[0].stats, n_on.nics[0].stats
        assert s_off.frames_sent == s_on.frames_sent
        assert s_off.retransmits == s_on.retransmits
        assert s_off.drops == s_on.drops
        assert n_off.pioman.stats.executions == n_on.pioman.stats.executions


def test_analysis_meta_counts_edges(fault_net_tracer):
    a = analyze_trace(fault_net_tracer)
    assert a.meta["events"] == len(fault_net_tracer.records)
    assert a.meta["makespan_ns"] == a.span_ns > 0
    assert a.meta["events_per_sec"] > 0
