"""Gantt rendering: SVG structure, terminal chart shape, CLI wiring."""

import json

from repro.bench.cli import main as bench_main
from repro.obs import (
    chrome_trace,
    extract_critical_path,
    render_gantt_svg,
    render_gantt_term,
    write_gantt_svg,
)
from repro.sim.trace import Tracer


def _tracer() -> Tracer:
    """Two cores, a completing run, a repeat poll, a fault, one edge chain."""
    tr = Tracer(enabled=True)
    tr.emit(1000, "pioman", "core0", "submit t -> q:machine",
            phase="submit", task="t", queue="q:machine", core=0)
    tr.emit(3000, "pioman", "core0", "polled u", phase="run", task="u",
            queue="q:machine", core=0, start=2500, complete=False)
    tr.emit(6000, "pioman", "core1", "completed t", phase="run", task="t",
            queue="q:machine", core=1, start=2000, complete=True)
    tr.emit(4200, "faults", "net", "drop frame", phase="fault", fault="drop")
    tr.edge(1500, "core0", "submit", "T:t/sub", "T:t/enq", 1000,
            queue="q:machine")
    tr.edge(2000, "core1", "queue_wait", "T:t/enq", "T:t/run0", 1500,
            queue="q:machine")
    tr.edge(6000, "core1", "compute", "T:t/run0", "T:t/done", 2000,
            queue="q:machine")
    return tr


def test_svg_has_lanes_slices_faults_and_legend():
    svg = render_gantt_svg(_tracer(), title="unit gantt")
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    for label in ("critpath", "faults", "core0", "core1"):
        assert f">{label}</text>" in svg
    assert "unit gantt" in svg
    assert '#4e79a7' in svg  # completing run slice
    assert '#a0cbe8' in svg  # repeat poll slice
    assert "<title>drop</title>" in svg
    # legend names the buckets the path actually used
    assert ">compute</text>" in svg and ">queue_wait</text>" in svg
    assert ">retransmit</text>" not in svg
    # utilization labels present
    assert "%</text>" in svg


def test_svg_escapes_markup_in_names():
    tr = Tracer(enabled=True)
    tr.emit(2000, "pioman", "core0", "completed x", phase="run",
            task="<evil&task>", queue="q:machine", core=0, start=1000,
            complete=True)
    svg = render_gantt_svg(tr)
    assert "<evil&task>" not in svg
    assert "&lt;evil&amp;task&gt;" in svg


def test_terminal_chart_shape():
    out = render_gantt_term(_tracer(), width=40)
    lines = out.splitlines()
    assert lines[0].startswith("gantt over 5 µs")
    cpath = next(ln for ln in lines if "cpath" in ln)
    body = cpath.split("|")[1]
    assert len(body) == 40
    assert "C" in body and "Q" in body  # compute + queue-wait bins
    core_rows = [ln for ln in lines if ln.lstrip().startswith("core")]
    assert len(core_rows) == 2
    assert "█" in core_rows[1]  # completing run on core1
    assert "░" in core_rows[0]  # repeat poll on core0
    assert all(ln.rstrip().endswith("%") for ln in core_rows)
    fault_row = next(ln for ln in lines if "fault" in ln and "|" in ln)
    assert "!" in fault_row
    assert lines[-1].lstrip().startswith("key:")


def test_precomputed_critical_path_is_reused():
    tr = _tracer()
    cp = extract_critical_path(tr)
    assert render_gantt_svg(tr, critical_path=cp) == render_gantt_svg(tr)
    assert render_gantt_term(tr, critical_path=cp) == render_gantt_term(tr)


def test_doc_rendering_matches_tracer(tmp_path):
    tr = _tracer()
    doc = chrome_trace(tr, meta={"ncores": 2})
    assert render_gantt_term(doc) == render_gantt_term(tr)
    path = write_gantt_svg(str(tmp_path / "g.svg"), doc)
    text = (tmp_path / "g.svg").read_text()
    assert path.endswith("g.svg") and text.startswith("<svg")


def test_empty_trace_renders_without_error():
    tr = Tracer(enabled=True)
    svg = render_gantt_svg(tr)
    assert svg.startswith("<svg")
    term = render_gantt_term(tr)
    assert term.startswith("gantt over")


def test_cli_render_subcommand(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    trace_path.write_text(json.dumps(chrome_trace(_tracer(),
                                                  meta={"ncores": 2})))
    svg_path = tmp_path / "g.svg"
    rc = bench_main([
        "render", "--trace", str(trace_path),
        "--gantt-out", str(svg_path), "--term", "--term-width", "48",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cpath" in out and "core0" in out
    assert svg_path.read_text().startswith("<svg")

    # default (no --gantt-out) prints the terminal chart
    rc = bench_main(["render", "--trace", str(trace_path)])
    assert rc == 0
    assert "core0" in capsys.readouterr().out
