"""Order-independent merging of per-job snapshots and trace documents."""

import random

import pytest

from repro.obs import merge_snapshots, merge_trace_docs, sum_snapshots


def _doc(events, **other):
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"recorded": len(events), "dropped": 0, **other},
    }


def test_merge_snapshots_namespaces_and_sorts():
    merged = merge_snapshots(
        [
            ("jobB", {"pioman.submits": 4, "engine.fired": 10}),
            ("jobA", {"pioman.submits": 7}),
        ]
    )
    assert merged == {
        "jobA.pioman.submits": 7,
        "jobB.engine.fired": 10,
        "jobB.pioman.submits": 4,
    }
    assert list(merged) == sorted(merged)


def test_merge_snapshots_is_order_independent():
    shards = [(f"job{i}", {"x.count": i, "y.ns": i * 10}) for i in range(6)]
    reference = merge_snapshots(shards)
    rng = random.Random(3)
    for _ in range(5):
        shuffled = shards[:]
        rng.shuffle(shuffled)
        assert merge_snapshots(shuffled) == reference


def test_merge_snapshots_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        merge_snapshots([("a", {}), ("a", {})])


def test_sum_snapshots_adds_pathwise_missing_as_zero():
    total = sum_snapshots(
        [
            {"q.enqueued": 3, "q.dequeued": 2},
            {"q.enqueued": 5, "lock.acquires": 1},
        ]
    )
    assert total == {"lock.acquires": 1, "q.dequeued": 2, "q.enqueued": 8}


def test_sum_snapshots_is_order_independent():
    shards = [{"a": i, "b": 2 * i} for i in range(5)]
    assert sum_snapshots(shards) == sum_snapshots(list(reversed(shards)))


def test_merge_trace_docs_remaps_pids_and_sorts_events():
    doc_a = _doc(
        [
            {"name": "t1", "ph": "X", "ts": 5.0, "pid": 0, "tid": 1},
            {"name": "t2", "ph": "X", "ts": 1.0, "pid": 0, "tid": 2},
        ],
        machine="borderline",
    )
    doc_b = _doc([{"name": "u1", "ph": "X", "ts": 3.0, "pid": 0, "tid": 1}])
    merged = merge_trace_docs([("beta", doc_b), ("alpha", doc_a)])
    # jobs keyed in name-sorted order: alpha -> pid 0, beta -> pid 1
    assert merged["otherData"]["jobs"]["alpha"]["pid"] == 0
    assert merged["otherData"]["jobs"]["alpha"]["machine"] == "borderline"
    assert merged["otherData"]["jobs"]["beta"]["pid"] == 1
    assert merged["otherData"]["recorded"] == 3
    assert [e["ts"] for e in merged["traceEvents"]] == [1.0, 3.0, 5.0]
    assert [e["pid"] for e in merged["traceEvents"]] == [0, 1, 0]


def test_merge_trace_docs_is_order_independent():
    docs = [
        (f"job{i}", _doc([{"name": f"e{i}", "ph": "X", "ts": float(i), "pid": 0, "tid": 0}]))
        for i in range(4)
    ]
    reference = merge_trace_docs(docs)
    shuffled = docs[:]
    random.Random(7).shuffle(shuffled)
    assert merge_trace_docs(shuffled) == reference


def test_merge_trace_docs_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        merge_trace_docs([("x", _doc([])), ("x", _doc([]))])


def _edge_doc(task: str, base: int):
    """A real exported doc containing one causal chain for ``task``."""
    from repro.obs import chrome_trace
    from repro.sim.trace import Tracer

    tr = Tracer(enabled=True)
    tr.edge(base + 50, "core0", "submit", f"T:{task}/sub", f"T:{task}/enq",
            base, queue="q:machine")
    tr.edge(base + 200, "core0", "queue_wait", f"T:{task}/enq",
            f"T:{task}/run0", base + 50, queue="q:machine")
    tr.edge(base + 900, "core0", "compute", f"T:{task}/run0",
            f"T:{task}/done", base + 200, queue="q:machine")
    tr.emit(base + 900, "pioman", "core0", f"completed {task}", phase="run",
            task=task, queue="q:machine", core=0, start=base + 200,
            complete=True)
    return chrome_trace(tr, meta={"ncores": 1})


def test_merge_preserves_causal_edges_across_pid_remap():
    """Edge instants survive the remap/re-sort and stay analyzable."""
    import json

    from repro.obs import extract_critical_path

    named = [("beta", _edge_doc("b", 10_000)), ("alpha", _edge_doc("a", 0))]
    merged = merge_trace_docs(named)
    assert merge_trace_docs(list(reversed(named))) == merged
    assert json.dumps(merged, sort_keys=True) == json.dumps(
        merge_trace_docs(list(reversed(named))), sort_keys=True
    )

    edge_events = [
        e for e in merged["traceEvents"]
        if (e.get("args") or {}).get("edge")
    ]
    assert len(edge_events) == 6
    # args intact after the remap; pids follow name-sorted job order
    by_pid = {e["pid"] for e in edge_events}
    assert by_pid == {0, 1}
    for ev in edge_events:
        args = ev["args"]
        assert {"edge", "cause", "effect", "start"} <= set(args)

    # the critical-path walker understands the merged namespace: the
    # terminal is the later job's completion, nodes pid-prefixed
    cp = extract_critical_path(merged)
    assert cp.terminal == "p1:T:b/done"
    assert cp.edge_count == 6
    assert sum(cp.totals.values()) == cp.makespan_ns
