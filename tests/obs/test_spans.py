"""Task lifecycle spans, latency histograms, and the zero-overhead guarantee."""

from repro.core.manager import PIOMan
from repro.core.progress import piom_wait
from repro.core.task import LTask
from repro.obs import MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.sim.trace import NULL_TRACER, Tracer
from repro.threads.instructions import Compute
from repro.threads.scheduler import Keypoint, Scheduler
from repro.topology.builder import borderline
from repro.topology.cpuset import CpuSet


def _run_workload(registry=None, tracer=NULL_TRACER, seed=2, ntasks=4):
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(seed), registry=registry, tracer=tracer)
    pio = PIOMan(m, eng, sched, registry=registry, tracer=tracer)
    done = []

    def body(ctx):
        yield Compute(5_000)
        for i in range(ntasks):
            task = LTask(None, cpuset=CpuSet.single(3), name=f"t{i}")
            yield from pio.submit(0, task)
            yield from piom_wait(pio, 0, task, mode="spin")
            done.append(task)

    sched.spawn(body, 0)
    eng.run()
    return eng, sched, pio, done


# ------------------------------------------------------------- LTask spans
def test_task_lifecycle_fields_are_stamped():
    _, _, _, done = _run_workload()
    for task in done:
        assert task.submitted_at is not None
        assert task.first_polled_at is not None
        assert task.completed_at is not None
        assert task.submitted_at <= task.first_polled_at <= task.completed_at
        assert task.poll_attempts >= 1
        assert task.queue_wait_ns() == task.first_polled_at - task.submitted_at
        assert task.latency_ns() == task.completed_at - task.submitted_at


def test_task_reset_clears_span_fields():
    _, _, _, done = _run_workload(ntasks=1)
    task = done[0]
    task.reset()
    assert task.enqueued_at is None and task.first_polled_at is None
    assert task.queue_wait_ns() is None and task.latency_ns() is None


def test_unrun_task_has_no_span():
    task = LTask(None, cpuset=CpuSet.single(0), name="idle")
    assert task.submitted_at is None and task.completed_at is None
    assert task.queue_wait_ns() is None and task.latency_ns() is None
    assert task.poll_attempts == 0


# ------------------------------------------------- histogram-fed registry
def test_latency_histograms_populate_registry_paths():
    reg = MetricsRegistry()
    _, _, pio, done = _run_workload(registry=reg)
    snap = reg.snapshot()
    n = len(done)
    assert snap["pioman.latency.submit_to_complete.count"] == n
    assert snap["pioman.latency.queue_wait.count"] == n
    assert snap["pioman.latency.submit_to_complete.p50"] > 0
    assert snap["pioman.latency.submit_to_complete.p99"] >= snap[
        "pioman.latency.submit_to_complete.p50"
    ]
    # the live histogram agrees with the per-task stamps
    lat = pio.latency.submit_to_complete
    assert lat.max >= max(t.latency_ns() for t in done)
    # schedule passes were timed, split productive vs empty
    passes = (
        snap["pioman.latency.schedule_pass_productive.count"]
        + snap["pioman.latency.schedule_pass_empty.count"]
    )
    assert passes == snap["pioman.schedule_passes"]
    # queue-side wait histogram fed by dequeue stamps
    assert any(
        k.startswith("pioman.q:") and k.endswith(".wait_ns.count") and v > 0
        for k, v in snap.items()
    )


def test_keypoint_duration_histograms():
    reg = MetricsRegistry()
    _, sched, _, _ = _run_workload(registry=reg)
    assert sched.keypoint_ns[Keypoint.IDLE].count > 0
    snap = reg.snapshot()
    idle_keys = [k for k in snap if ".keypoint_ns.idle." in k]
    assert idle_keys, "scheduler keypoint histograms must be scraped"


def test_lock_wait_and_hold_histograms():
    reg = MetricsRegistry()
    _, _, pio, _ = _run_workload(registry=reg)
    q = pio.hierarchy.queue_for_cpuset(CpuSet.single(3))
    stats = q.lock.stats
    assert stats.wait_ns.count == stats.acquires
    assert stats.hold_ns.count > 0
    snap = reg.snapshot()
    assert any(k.endswith(".lock.wait_ns.count") and v > 0 for k, v in snap.items())
    assert any(k.endswith(".lock.hold_ns.count") and v > 0 for k, v in snap.items())


# ------------------------------------------- the zero-overhead guarantee
def test_instrumentation_adds_zero_simulator_events():
    """With tracing disabled, spans and histograms must not change the
    simulation: same virtual end time, same number of fired events."""
    eng_bare, _, _, _ = _run_workload(registry=None)
    eng_inst, _, pio, _ = _run_workload(registry=MetricsRegistry())
    assert eng_inst.fired == eng_bare.fired
    assert eng_inst.now == eng_bare.now
    # ...and the histograms still filled up, host-side only
    assert pio.latency.submit_to_complete.count > 0
    assert pio.tracer is NULL_TRACER


def test_enabled_tracer_also_leaves_simulation_unchanged():
    eng_bare, _, _, _ = _run_workload()
    tracer = Tracer(enabled=True)
    eng_traced, _, _, _ = _run_workload(registry=MetricsRegistry(), tracer=tracer)
    assert eng_traced.fired == eng_bare.fired
    assert eng_traced.now == eng_bare.now
    assert tracer.records
