"""bench diff: ranked regression blame between two recorded documents."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.obs import diff_docs, diff_files, format_diff
from repro.obs.diff import doc_kind


def _hostperf_doc(*, fault_ev_s=100_000.0, retransmits=10):
    def scen(name, ev_s, fp):
        return {
            "name": name,
            "events_per_sec": ev_s,
            "virtual_ns": 1_000_000,
            "fingerprint": fp,
        }

    return {
        "meta": {"kind": "host_perf"},
        "scenarios": [
            scen("steady", 200_000.0, {"submits": 64, "executions": 64}),
            scen(
                "fault_net",
                fault_ev_s,
                {"retransmits": retransmits, "drops": 4, "messages": 24},
            ),
        ],
        "aggregate": {"events_per_sec": 150_000.0 + fault_ev_s / 2},
    }


def test_hostperf_diff_ranks_regressed_scenario_first():
    """Acceptance: regressed scenario first, dominant names the subsystem."""
    a = _hostperf_doc()
    b = _hostperf_doc(fault_ev_s=88_000.0, retransmits=18)
    report = diff_docs(a, b)
    assert report.kind == "host_perf"
    assert report.entries[0].name == "fault_net"
    assert report.entries[0].ratio == pytest.approx(0.88)
    assert "nic/retransmit" in report.entries[0].dominant
    assert "retransmits" in report.entries[0].dominant
    text = format_diff(report)
    assert text.splitlines()[1].lstrip().startswith("1. fault_net")
    assert "-12.0% ev/s" in text
    assert "retransmits: 10 -> 18 (+80.0%)" in text


def test_hostperf_diff_improvement_is_not_ranked_first():
    a = _hostperf_doc()
    b = _hostperf_doc(fault_ev_s=140_000.0)
    report = diff_docs(a, b)
    assert report.entries[0].name == "steady"  # ratio 1.0 < 1.4
    assert report.entries[1].ratio == pytest.approx(1.4)


def _analysis_doc(*, makespan=80_000, retx_events=2):
    return {
        "meta": {"kind": "trace_analysis", "makespan_ns": makespan,
                 "scenario": "fault_net"},
        "span_ns": makespan,
        "cores": [],
        "levels": [{"level": "machine", "mean_ns": 900, "count": 4}],
        "locks": [{"lock": "lock:q", "total_wait_ns": 300}],
        "faults": [{"kind": "retransmit", "events": retx_events}],
        "completion_p50_ns": 4000,
        "completion_p99_ns": 9000,
    }


def test_analysis_diff_blames_fault_counters():
    a = _analysis_doc()
    b = _analysis_doc(makespan=96_000, retx_events=6)
    report = diff_docs(a, b)
    assert report.kind == "analysis"
    (entry,) = report.entries
    assert entry.name == "fault_net"
    assert entry.ratio == pytest.approx(80_000 / 96_000)
    assert "makespan +20.0%" in entry.headline
    assert "nic/retransmit" in entry.dominant
    names = [it.name for it in entry.items]
    assert "fault.retransmit.events" in names and "makespan_ns" in names


def test_metrics_diff_lists_moved_counters():
    a = {"metrics": {"nic.0.retransmits": 2, "pioman.executions": 50,
                     "note": "text"}}
    b = {"metrics": {"nic.0.retransmits": 8, "pioman.executions": 50,
                     "note": "other"}}
    report = diff_docs(a, b)
    assert report.kind == "metrics"
    items = report.entries[0].items
    assert [it.name for it in items] == ["nic.0.retransmits"]
    assert items[0].subsystem == "nic"


def test_kind_mismatch_and_unknown_doc_raise():
    with pytest.raises(ValueError, match="cannot diff"):
        diff_docs(_hostperf_doc(), _analysis_doc())
    with pytest.raises(ValueError, match="unrecognized"):
        doc_kind({"what": "ever"})


def test_trace_docs_are_analyzed_then_diffed():
    from repro.obs import chrome_trace
    from repro.sim.trace import Tracer

    tr = Tracer(enabled=True)
    tr.emit(5000, "pioman", "core0", "completed t", phase="run", task="t",
            queue="q:machine", core=0, start=2000, complete=True)
    doc = chrome_trace(tr, meta={"ncores": 1})
    report = diff_docs(doc, doc)
    assert report.kind == "analysis"
    assert report.entries[0].items == []  # identical runs: nothing moved


def test_cli_diff_subcommand(tmp_path, capsys):
    pa = tmp_path / "a.json"
    pb = tmp_path / "b.json"
    pa.write_text(json.dumps(_hostperf_doc()))
    pb.write_text(json.dumps(_hostperf_doc(fault_ev_s=88_000.0,
                                           retransmits=18)))
    out_json = tmp_path / "diff.json"
    rc = bench_main(["diff", str(pa), str(pb), "--json-out", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bench diff (host_perf)" in out
    assert "fault_net" in out
    doc = json.loads(out_json.read_text())
    assert doc["kind"] == "host_perf"
    assert doc["entries"][0]["name"] == "fault_net"

    # mismatched kinds exit nonzero with a message on stderr
    pc = tmp_path / "c.json"
    pc.write_text(json.dumps(_analysis_doc()))
    rc = bench_main(["diff", str(pa), str(pc)])
    assert rc == 1
    assert "cannot diff" in capsys.readouterr().err


def _matrix_doc(names, ev_s=100_000.0):
    return {
        "meta": {"kind": "host_perf"},
        "scenarios": [
            {
                "name": n,
                "events_per_sec": ev_s,
                "virtual_ns": 1_000_000,
                "fingerprint": {"fired": 100},
            }
            for n in names
        ],
        "aggregate": {"events_per_sec": ev_s},
    }


# the matrix before the fault/core/leap scenarios were added — the shape
# of a committed BENCH_host_perf.json recorded several PRs ago
_OLD7 = [
    "micro_local", "micro_global", "latency_mt", "scal_numa32",
    "cluster_ring", "idle_spin", "idle_spin_nosummary",
]
_NEW = _OLD7[:-1] + [
    "fault_net", "fault_slowcore", "fault_storm",
    "core_wheel", "core_heap", "leap_on", "leap_off",
]


def test_hostperf_diff_reports_added_and_removed_scenarios():
    """Matrix growth: an old baseline diffs cleanly against a wider run,
    with the set change reported explicitly instead of raising."""
    report = diff_docs(_matrix_doc(_OLD7), _matrix_doc(_NEW, ev_s=110_000.0))
    assert report.kind == "host_perf"
    assert report.added == sorted(set(_NEW) - set(_OLD7))
    assert report.removed == ["idle_spin_nosummary"]
    # comparable scenarios still get ratios; set-only entries sort last
    by_name = {e.name: e for e in report.entries}
    assert by_name["micro_local"].ratio == pytest.approx(1.1)
    assert by_name["leap_on"].ratio is None
    assert by_name["leap_on"].headline == "added (only in B)"
    assert by_name["idle_spin_nosummary"].headline == "removed (only in A)"
    assert "added" in report.headline and "removed" in report.headline
    text = format_diff(report)
    assert "added in B: " in text and "leap_on" in text
    assert "removed in B: idle_spin_nosummary" in text
    # JSON artifact carries the set change for machine consumers (CI)
    doc = report.to_jsonable()
    assert doc["added"] == report.added and doc["removed"] == report.removed


def test_hostperf_diff_fully_disjoint_sets_do_not_raise():
    report = diff_docs(_matrix_doc(["gone"]), _matrix_doc(["fresh"]))
    assert report.added == ["fresh"] and report.removed == ["gone"]
    assert all(e.ratio is None for e in report.entries)
    assert "(nothing to compare)" not in format_diff(report)


def test_diff_files_roundtrip(tmp_path):
    pa = tmp_path / "a.json"
    pb = tmp_path / "b.json"
    pa.write_text(json.dumps(_hostperf_doc()))
    pb.write_text(json.dumps(_hostperf_doc(fault_ev_s=90_000.0)))
    report = diff_files(str(pa), str(pb))
    assert report.entries[0].name == "fault_net"
    assert report.headline.startswith("aggregate")
