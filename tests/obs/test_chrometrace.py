"""Chrome-trace export: JSON schema validity, task lifetime slices."""

import json

from repro.bench.task_microbench import measure_queue
from repro.obs import MetricsRegistry, chrome_trace, write_chrome_trace
from repro.sim.trace import Tracer
from repro.topology import borderline


def _instrumented_run(reps=10):
    machine = borderline()
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    measure_queue(
        machine, machine.all_cores(), label="global", reps=reps,
        registry=registry, tracer=tracer,
    )
    return tracer, registry


def test_chrome_trace_schema_is_valid_json():
    tracer, _ = _instrumented_run()
    doc = chrome_trace(tracer)
    # must survive a JSON round-trip (no stray objects in args)
    doc2 = json.loads(json.dumps(doc))
    assert isinstance(doc2["traceEvents"], list) and doc2["traceEvents"]
    assert doc2["displayTimeUnit"] == "ns"
    for ev in doc2["traceEvents"]:
        assert {"ph", "name", "pid"} <= set(ev)
        if ev["ph"] != "M":  # metadata events carry no timestamp
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0


def test_task_lifetimes_become_duration_slices():
    tracer, _ = _instrumented_run(reps=8)
    doc = chrome_trace(tracer)
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 8  # one per completed bench task
    for s in slices:
        assert s["args"]["queue"] == "q:machine"
        assert s["args"]["complete"] is True
        assert isinstance(s["args"]["core"], int)
    submits = [
        e for e in doc["traceEvents"]
        if e["ph"] == "i" and e["name"].startswith("submit ")
    ]
    assert len(submits) == 8
    # submit marker precedes its task's run slice
    by_name = {s["name"]: s for s in slices}
    for sub in submits:
        task = sub["name"].removeprefix("submit ")
        assert sub["ts"] <= by_name[task]["ts"]


def test_core_tracks_are_named_threads():
    tracer, _ = _instrumented_run()
    doc = chrome_trace(tracer)
    names = [
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert any(n.startswith("core") for n in names)
    # every non-metadata event lands on a declared track
    tids = {
        e["tid"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for ev in doc["traceEvents"]:
        if ev["ph"] != "M":
            assert ev["tid"] in tids


def test_write_chrome_trace_file(tmp_path):
    tracer, _ = _instrumented_run(reps=5)
    out = tmp_path / "trace.json"
    n = write_chrome_trace(str(out), tracer)
    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) == n
    assert doc["otherData"]["recorded"] == len(tracer.records)
    assert doc["otherData"]["dropped"] == 0


def test_empty_tracer_still_valid():
    doc = chrome_trace(Tracer(enabled=True))
    assert json.loads(json.dumps(doc))["traceEvents"][0]["ph"] == "M"


def test_dropped_records_reported():
    t = Tracer(enabled=True, limit=3)
    for i in range(10):
        t.emit(i, "c", "a", f"m{i}")
    doc = chrome_trace(t)
    assert doc["otherData"]["dropped"] == 7
    assert doc["otherData"]["recorded"] == 3


def test_malformed_run_record_clamped_to_zero_length_slice():
    """A run record whose start lies after its end (clock skew, hand-built
    traces) must yield a zero-length slice, never a negative duration."""
    t = Tracer(enabled=True)
    t.emit(100, "pioman", "core0", "completed bad",
           phase="run", task="bad", queue="q:machine", core=0,
           start=500, complete=True)
    doc = chrome_trace(t)
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["dur"] == 0
    assert slices[0]["ts"] == 100 / 1000


def test_write_chrome_trace_compact_and_indented(tmp_path):
    tracer, _ = _instrumented_run(reps=5)
    compact = tmp_path / "compact.json"
    pretty = tmp_path / "pretty.json"
    n1 = write_chrome_trace(str(compact), tracer)           # compact=True default
    n2 = write_chrome_trace(str(pretty), tracer, compact=False)
    assert n1 == n2
    raw_compact = compact.read_text()
    raw_pretty = pretty.read_text()
    # compact form drops all inter-token whitespace; same document either way
    assert len(raw_compact) < len(raw_pretty)
    assert "\n" not in raw_compact.strip()
    assert json.loads(raw_compact) == json.loads(raw_pretty)


def test_meta_stamped_into_other_data(tmp_path):
    tracer, _ = _instrumented_run(reps=3)
    out = tmp_path / "meta.json"
    write_chrome_trace(str(out), tracer, meta={"machine": "borderline", "ncores": 8})
    doc = json.loads(out.read_text())
    assert doc["otherData"]["machine"] == "borderline"
    assert doc["otherData"]["ncores"] == 8
    assert doc["otherData"]["recorded"] == len(tracer.records)
