"""MetricsRegistry: scraping, snapshot/diff round-trips, path stability."""

import pytest

from repro.core.manager import PIOMan
from repro.core.queues import QueueStats
from repro.obs import MetricsRegistry
from repro.sim.engine import Engine
from repro.sync.stats import LockStats
from repro.threads.scheduler import Scheduler
from repro.topology import borderline


# ------------------------------------------------------------- scraping
def test_snapshot_flattens_dataclass_fields_and_dicts():
    reg = MetricsRegistry()
    st = QueueStats(enqueues=3, dequeues=2, dequeued_by={0: 1, 5: 1})
    reg.register("pioman.q:core0", st)
    snap = reg.snapshot()
    assert snap["pioman.q:core0.enqueues"] == 3
    assert snap["pioman.q:core0.dequeued_by.0"] == 1
    assert snap["pioman.q:core0.dequeued_by.5"] == 1


def test_snapshot_includes_numeric_properties():
    reg = MetricsRegistry()
    st = LockStats()
    st.note_acquire(0, contended=False)
    st.note_acquire(1, contended=True, spin_ns=50)
    reg.register("lock", st)
    snap = reg.snapshot()
    assert snap["lock.contention_ratio"] == pytest.approx(0.5)
    assert snap["lock.acquires"] == 2
    assert snap["lock.per_core_acquires.1"] == 1


def test_callable_source_and_mapping_source():
    reg = MetricsRegistry()
    reg.register("derived", lambda: {"ratio": 0.25, "nested": {"a": 1}})
    reg.register("plain", {"x": 7})
    snap = reg.snapshot()
    assert snap["derived.ratio"] == 0.25
    assert snap["derived.nested.a"] == 1
    assert snap["plain.x"] == 7


def test_non_numeric_leaves_are_skipped():
    reg = MetricsRegistry()
    reg.register("src", {"name": "q:core0", "count": 1, "obj": object()})
    assert reg.snapshot() == {"src.count": 1}


# -------------------------------------------------------- registration
def test_duplicate_path_rejected_unless_replace():
    reg = MetricsRegistry()
    reg.register("a.b", {"x": 1})
    with pytest.raises(ValueError):
        reg.register("a.b", {"x": 2})
    reg.register("a.b", {"x": 2}, replace=True)
    assert reg.snapshot() == {"a.b.x": 2}
    reg.unregister("a.b")
    assert len(reg) == 0 and "a.b" not in reg


def test_invalid_paths_rejected():
    reg = MetricsRegistry()
    for bad in ("", ".lead", "trail."):
        with pytest.raises(ValueError):
            reg.register(bad, {"x": 1})


# ------------------------------------------------------------- diffing
def test_diff_shows_only_moved_counters():
    reg = MetricsRegistry()
    st = QueueStats()
    reg.register("q", st)
    before = reg.snapshot()
    st.enqueues += 4
    st.lost_races += 1
    after = reg.snapshot()
    delta = MetricsRegistry.diff(before, after)
    assert delta == {"q.enqueues": 4, "q.lost_races": 1}
    assert MetricsRegistry.diff(after, after) == {}


def test_diff_treats_missing_keys_as_zero():
    a = {"x": 3}
    b = {"x": 3, "y": 2}
    assert MetricsRegistry.diff(a, b) == {"y": 2}
    assert MetricsRegistry.diff(b, a) == {"y": -2}


# ----------------------------------------------- dot-path stability
def test_pioman_registration_paths_are_stable():
    """The dot-paths below are a public contract — regression gates and
    dashboards key on them.  Renaming any of these is an API change."""
    machine = borderline()
    engine = Engine()
    reg = MetricsRegistry()
    sched = Scheduler(machine, engine, registry=reg)
    PIOMan(machine, engine, sched, registry=reg)
    snap = reg.snapshot()
    expected = [
        "pioman.submits",
        "pioman.tasks_completed",
        "pioman.schedule_passes",
        "pioman.q:machine.lost_races",
        "pioman.q:machine.lock.contention_ratio",
        "pioman.q:machine.lock.mem.invalidations",
        "pioman.q:machine.mem.reads",
        "pioman.q:core#0.enqueues",
        "pioman.q:chip#0.lock.acquires",
        "sched.node0.core0.busy_ns",
        "sched.node0.core0.keypoints.idle",
    ]
    for path in expected:
        assert path in snap, f"missing stable path {path}"


def test_report_groups_by_top_segment():
    reg = MetricsRegistry()
    reg.register("pioman", {"submits": 2})
    reg.register("sched.node0", {"busy": 10})
    text = reg.report()
    assert "== pioman ==" in text and "== sched ==" in text
    assert "submits" in text
    assert MetricsRegistry().report() == "(no metrics registered)"


def test_invalid_paths_rejected_extended():
    reg = MetricsRegistry()
    for bad in ("a..b", " lead", "trail ", "a. .b", "\tq"):
        with pytest.raises(ValueError):
            reg.register(bad, {"x": 1})
    # a path that is merely unusual is fine
    reg.register("q:machine.lock", {"x": 1})


def test_unregister_unknown_path_is_noop():
    reg = MetricsRegistry()
    reg.register("a", {"x": 1})
    reg.unregister("nope")
    assert "a" in reg and len(reg) == 1


def test_diff_with_float_valued_derived_metrics():
    reg = MetricsRegistry()
    st = LockStats()
    st.note_acquire(0, contended=False)
    reg.register("lock", st)
    before = reg.snapshot()
    st.note_acquire(1, contended=True, spin_ns=80)
    after = reg.snapshot()
    delta = MetricsRegistry.diff(before, after)
    assert delta["lock.acquires"] == 1
    assert delta["lock.contention_ratio"] == pytest.approx(0.5)
    assert "lock.uncontended" not in delta  # unchanged counters omitted


def test_report_orders_groups_and_entries_by_topology():
    """Satellite (c): report headers follow machine topology (core < chip
    < node < global), not lexicographic order; dot-paths are untouched."""
    reg = MetricsRegistry()
    reg.register("pioman.q:machine", {"v": 1})
    reg.register("pioman.q:chip#1", {"v": 1})
    reg.register("pioman.q:chip#0", {"v": 1})
    reg.register("pioman.q:core#10", {"v": 1})
    reg.register("pioman.q:core#2", {"v": 1})
    reg.register("sched.node0", {"busy": 1})
    text = reg.report()
    # pioman group: cores (numeric order) before chips before machine
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    order = [ln.split(" ")[0] for ln in lines if ln.startswith("q:")]
    assert order == [
        "q:core#2.v",
        "q:core#10.v",
        "q:chip#0.v",
        "q:chip#1.v",
        "q:machine.v",
    ]
    assert lines.index("== pioman ==") < lines.index("== sched ==")
    snap = reg.snapshot()
    assert "pioman.q:core#10.v" in snap  # paths themselves unchanged
