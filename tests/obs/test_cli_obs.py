"""Bench CLI observability flags: --metrics-out / --trace-out artifacts."""

import json

from repro.bench.cli import main
from repro.obs import MetricsRegistry


def test_cli_emits_metrics_and_trace(tmp_path, capsys):
    m_out = tmp_path / "m.json"
    t_out = tmp_path / "t.json"
    rc = main(
        [
            "table1", "--reps", "10",
            "--metrics-out", str(m_out),
            "--trace-out", str(t_out),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert str(m_out) in out and str(t_out) in out

    metrics = json.loads(m_out.read_text())
    snap = metrics["metrics"]
    # the acceptance triple: per-queue lost_races, per-lock contention
    # ratio, per-core execution shares
    assert any(k.endswith(".lost_races") for k in snap)
    assert any(k.endswith(".lock.contention_ratio") for k in snap)
    shares = {k: v for k, v in snap.items() if ".shares." in k}
    assert shares and abs(sum(shares.values()) - 1.0) < 1e-9

    trace = json.loads(t_out.read_text())
    assert trace["traceEvents"]
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_cli_metrics_without_table_target_runs_dedicated_pass(tmp_path, capsys):
    m_out = tmp_path / "m.json"
    rc = main(["fig5", "--points", "2", "--metrics-out", str(m_out)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "dedicated" in out
    snap = json.loads(m_out.read_text())["metrics"]
    assert any(k.startswith("pioman.q:") for k in snap)


def test_cli_snapshot_diff_round_trip(tmp_path, capsys):
    """Two instrumented runs diff cleanly through MetricsRegistry.diff."""
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    main(["table1", "--reps", "5", "--metrics-out", str(a)])
    main(["table1", "--reps", "10", "--metrics-out", str(b)])
    capsys.readouterr()
    snap_a = json.loads(a.read_text())["metrics"]
    snap_b = json.loads(b.read_text())["metrics"]
    delta = MetricsRegistry.diff(snap_a, snap_b)
    # more reps -> strictly more submits; unchanged zero counters omitted
    assert delta["pioman.submits"] == 5
    assert all(v != 0 for v in delta.values())
