"""PIO-I/O with several devices per node and mixed waits."""

from repro.core.manager import PIOMan
from repro.pioio.device import RAMDISK, SSD, BlockDevice
from repro.pioio.manager import PIOIo
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.instructions import Compute
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline


def test_two_devices_two_managers_one_pioman():
    """Mirrors the paper's multi-NIC story: one task manager progresses
    several pollable devices concurrently."""
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(9))
    pio = PIOMan(m, eng, sched)
    fast = PIOIo(pio, BlockDevice(eng, RAMDISK, name="fast"))
    slow = PIOIo(pio, BlockDevice(eng, SSD, name="slow"))
    out = {}

    def body(ctx):
        r_fast = yield from fast.aio_read(ctx.core_id, 0, 4096)
        r_slow = yield from slow.aio_read(ctx.core_id, 0, 4096)
        yield from fast.wait(ctx.core_id, r_fast)
        out["fast_done"] = ctx.now
        yield from slow.wait(ctx.core_id, r_slow)
        out["slow_done"] = ctx.now

    sched.spawn(body, 0)
    eng.run()
    assert out["fast_done"] < out["slow_done"]
    assert fast.reaped == 1 and slow.reaped == 1


def test_io_interleaved_with_compute_bursts():
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(9))
    pio = PIOMan(m, eng, sched)
    aio = PIOIo(pio, BlockDevice(eng, SSD))
    completed = []

    def body(ctx):
        for round_no in range(3):
            reqs = []
            for i in range(2):
                r = yield from aio.aio_write(ctx.core_id, i * 4096, 4096)
                reqs.append(r)
            yield Compute(500_000)
            yield from aio.wait_all(ctx.core_id, reqs)
            completed.append(round_no)

    sched.spawn(body, 0)
    eng.run()
    assert completed == [0, 1, 2]
    assert aio.pending_count() == 0
