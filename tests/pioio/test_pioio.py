"""PIO-I/O: device service model and PIOMan-driven completion reaping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.manager import PIOMan
from repro.pioio.device import RAMDISK, SSD, BlockDevice, DeviceSpec
from repro.pioio.manager import PIOIo
from repro.sim.engine import Engine
from repro.sim.rng import Rng
from repro.threads.instructions import Compute
from repro.threads.scheduler import Scheduler
from repro.topology.builder import borderline


def _world(spec=RAMDISK, seed=6):
    m = borderline()
    eng = Engine()
    sched = Scheduler(m, eng, rng=Rng(seed))
    pio = PIOMan(m, eng, sched)
    dev = BlockDevice(eng, spec)
    aio = PIOIo(pio, dev)
    return m, eng, sched, aio, dev


# ------------------------------------------------------------- device
def test_device_rejects_bad_ops():
    eng = Engine()
    dev = BlockDevice(eng, RAMDISK)
    with pytest.raises(ValueError):
        dev.submit("erase", 0, 10)
    with pytest.raises(ValueError):
        dev.submit("read", 0, 0)


def test_device_service_time_model():
    eng = Engine()
    dev = BlockDevice(eng, SSD)
    dev.submit("read", 0, 1024 * 1024)
    eng.run()
    expect = SSD.op_latency_ns + 1024 * 1024 * 1000 // SSD.bytes_per_us
    assert eng.now == expect
    ops = dev.poll()
    assert len(ops) == 1 and ops[0].complete_ns == expect


def test_device_queue_depth_serializes():
    spec = DeviceSpec(name="d1", op_latency_ns=1000, bytes_per_us=1000, queue_depth=1)
    eng = Engine()
    dev = BlockDevice(eng, spec)
    dev.submit("read", 0, 1000)
    dev.submit("read", 0, 1000)
    eng.run()
    done = sorted(op.complete_ns for op in dev.poll())
    assert done[1] >= done[0] + 1000  # second waited for the first


def test_device_depth_overlaps_latency_not_bandwidth():
    spec = DeviceSpec(name="d4", op_latency_ns=10_000, bytes_per_us=1000, queue_depth=4)
    eng = Engine()
    dev = BlockDevice(eng, spec)
    for _ in range(4):
        dev.submit("read", 0, 1000)  # 1 us transfer each
    eng.run()
    times = sorted(op.complete_ns for op in dev.poll())
    # latency paid once (overlapped), transfers serialized on the channel
    assert times[0] == 10_000 + 1_000
    assert times[3] == 10_000 + 4 * 1_000
    # far better than fully serial (4 x 11 us)
    assert times[3] < 4 * 11_000


def test_device_cq_listener():
    eng = Engine()
    dev = BlockDevice(eng, RAMDISK)
    hits = []
    dev.on_cq_write = lambda d, op: hits.append(op.op_id)
    op = dev.submit("write", 0, 64)
    eng.run()
    assert hits == [op.op_id]


def test_device_counters():
    eng = Engine()
    dev = BlockDevice(eng, RAMDISK)
    dev.submit("read", 0, 100)
    dev.submit("write", 0, 200)
    eng.run()
    assert dev.ops_submitted == 2 and dev.ops_completed == 2
    assert dev.bytes_moved == 300
    assert dev.pending() == 0


# ------------------------------------------------------------- manager
def test_aio_read_blocking_wait():
    m, eng, sched, aio, dev = _world()
    out = {}

    def body(ctx):
        req = yield from aio.aio_read(ctx.core_id, 0, 4096)
        yield from aio.wait(ctx.core_id, req)
        out["done"] = req.done
        out["t"] = ctx.now

    sched.spawn(body, 0)
    eng.run()
    assert out["done"] is True
    assert out["t"] >= RAMDISK.op_latency_ns


def test_io_overlaps_computation():
    """Submitting then computing: the poll task on a sibling core reaps
    the completion while this thread is busy, so the final wait is free."""
    m, eng, sched, aio, dev = _world(spec=SSD)
    out = {}
    COMPUTE = 2_000_000  # 2 ms >> SSD latency

    def body(ctx):
        reqs = []
        for i in range(4):
            r = yield from aio.aio_read(ctx.core_id, i * 4096, 4096)
            reqs.append(r)
        yield Compute(COMPUTE)
        t0 = ctx.now
        yield from aio.wait_all(ctx.core_id, reqs)
        out["wait_cost"] = ctx.now - t0
        out["total"] = ctx.now

    sched.spawn(body, 0)
    eng.run()
    assert out["wait_cost"] < 10_000, "I/O must already be reaped"
    assert out["total"] < COMPUTE * 1.05


def test_poll_task_retires_and_restarts():
    m, eng, sched, aio, dev = _world()

    def body(ctx):
        r1 = yield from aio.aio_read(ctx.core_id, 0, 512)
        yield from aio.wait(ctx.core_id, r1)
        assert aio._poll_task is None  # retired after the queue drained
        r2 = yield from aio.aio_write(ctx.core_id, 0, 512)
        yield from aio.wait(ctx.core_id, r2)
        return True

    t = sched.spawn(body, 0)
    eng.run()
    assert t.result is True
    assert aio.pending_count() == 0 and aio.reaped == 2


def test_wait_spin_mode():
    m, eng, sched, aio, dev = _world()
    out = {}

    def body(ctx):
        req = yield from aio.aio_read(ctx.core_id, 0, 2048)
        yield from aio.wait(ctx.core_id, req, mode="spin")
        out["done"] = req.done

    sched.spawn(body, 0)
    eng.run()
    assert out["done"]


def test_wait_unknown_mode():
    m, eng, sched, aio, dev = _world()

    def body(ctx):
        req = yield from aio.aio_read(ctx.core_id, 0, 2048)
        yield from aio.wait(ctx.core_id, req, mode="nope")

    sched.spawn(body, 0)
    with pytest.raises(ValueError):
        eng.run()


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["read", "write"]),
                  st.integers(min_value=1, max_value=256 * 1024)),
        min_size=1,
        max_size=10,
    )
)
def test_property_every_op_completes_once(ops):
    m, eng, sched, aio, dev = _world()
    done = []

    def body(ctx):
        reqs = []
        for kind, size in ops:
            if kind == "read":
                r = yield from aio.aio_read(ctx.core_id, 0, size)
            else:
                r = yield from aio.aio_write(ctx.core_id, 0, size)
            reqs.append(r)
        yield from aio.wait_all(ctx.core_id, reqs)
        done.extend(r.op.op_id for r in reqs if r.done)

    sched.spawn(body, 0)
    eng.run()
    assert len(done) == len(ops)
    assert len(set(done)) == len(ops)
    assert dev.bytes_moved == sum(size for _, size in ops)
