"""Importable job targets for the repro.par failure-path tests.

Workers resolve targets by dotted path, so everything a test job runs
must live at module level in an importable module — this one.
"""

from __future__ import annotations

import os
import time


def echo(value):
    """The identity job: returns its argument."""
    return value


def add(a, b):
    return a + b


def pid():
    """The process id the job actually ran in."""
    return os.getpid()


def boom(message="kaboom"):
    """A job that raises — a deterministic in-band failure."""
    raise ValueError(message)


def sleepy(seconds=60.0):
    """A job that hangs long enough to trip any sane timeout."""
    time.sleep(seconds)
    return "overslept"


def crash(exit_code=3):
    """A job whose worker dies without reporting (simulates a segfault /
    OOM kill): ``os._exit`` skips all cleanup, so the pipe closes empty."""
    os._exit(exit_code)


def crash_once_then(value, sentinel):
    """Crash on the first attempt, succeed on the retry.

    ``sentinel`` is a path: absent -> create it and die; present ->
    return ``value``.  Deterministic across processes because the file
    system carries the attempt count.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("attempt 1\n")
        os._exit(9)
    return value


def unpicklable():
    """Returns something pickle rejects (a lambda)."""
    return lambda x: x


def sleepy_echo(value, seconds=0.05):
    """Sleep briefly, then return — finishes well inside any sane limit
    (used to prove a finished job is never mislabelled a timeout)."""
    time.sleep(seconds)
    return value


def sleep_then_crash(seconds=0.4, exit_code=7):
    """Outlive the deadline, then die without reporting: the wedged-then-
    crashed worker the crash-at-deadline terminal path is about."""
    time.sleep(seconds)
    os._exit(exit_code)


class Counter:
    """A stateful ShardPool target: state that must survive across calls
    is the whole point of the pool."""

    def __init__(self, start=0):
        self.value = start

    def bump(self, by=1):
        self.value += by
        return self.value

    def get(self):
        return self.value

    def where(self):
        return os.getpid()

    def boom(self, message="window error"):
        raise RuntimeError(message)

    def nap(self, seconds):
        time.sleep(seconds)
        return "rested"

    def opaque(self):
        return lambda x: x  # unpicklable on purpose


def make_counter(start=0):
    """ShardPool spec target returning the live state object."""
    return Counter(start)

