"""repro.par pool semantics: ordering, fallback, and every failure path
(timeout, crash + bounded retry, in-band exception, unpicklable result)."""

import os

import pytest

from repro.par import (
    JobFailure,
    JobSpec,
    derive_seed,
    has_fork,
    resolve_jobs,
    resolve_target,
    run_jobs,
    run_jobs_strict,
)

HELPERS = "tests.par.jobhelpers"

needs_fork = pytest.mark.skipif(not has_fork(), reason="platform lacks fork")


def _echo_specs(n):
    return [
        JobSpec(f"echo{i}", f"{HELPERS}:echo", {"value": i}) for i in range(n)
    ]


# ----------------------------------------------------------------------
# spec plumbing
# ----------------------------------------------------------------------
def test_derive_seed_is_stable_and_key_sensitive():
    assert derive_seed(7, "a") == derive_seed(7, "a")
    assert derive_seed(7, "a") != derive_seed(7, "b")
    assert derive_seed(7, "a") != derive_seed(8, "a")
    assert 0 <= derive_seed(7, "a") < 2**32


def test_resolve_target_validates():
    assert resolve_target(f"{HELPERS}:echo")(value=3) == 3
    with pytest.raises(ValueError, match="module:callable"):
        resolve_target("no-colon")
    with pytest.raises(ValueError, match="no attribute"):
        resolve_target(f"{HELPERS}:nonexistent")


def test_duplicate_job_names_rejected():
    specs = [
        JobSpec("same", f"{HELPERS}:echo", {"value": 1}),
        JobSpec("same", f"{HELPERS}:echo", {"value": 2}),
    ]
    with pytest.raises(ValueError, match="duplicate"):
        run_jobs(specs, jobs=2)


# ----------------------------------------------------------------------
# jobs-knob resolution and workers stamping
# ----------------------------------------------------------------------
def test_resolve_jobs_auto_means_every_cpu():
    ncpu = os.cpu_count() or 1
    assert resolve_jobs(0) == ncpu
    assert resolve_jobs(None) == ncpu
    assert resolve_jobs("auto") == ncpu
    assert resolve_jobs("AUTO") == ncpu
    assert resolve_jobs(" 0 ") == ncpu
    assert resolve_jobs("") == ncpu


def test_resolve_jobs_passes_positive_ints_through():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs("3") == 3


def test_resolve_jobs_rejects_garbage():
    with pytest.raises(ValueError):
        resolve_jobs(-2)
    with pytest.raises(ValueError):
        resolve_jobs("many")


def test_serial_results_stamp_workers_1():
    results = run_jobs(_echo_specs(3), jobs=1)
    assert [r.workers for r in results] == [1, 1, 1]


@needs_fork
def test_parallel_results_stamp_resolved_workers():
    # 8 specs, jobs=3: the batch really ran under 3 workers
    results = run_jobs(_echo_specs(8), jobs=3)
    assert {r.workers for r in results} == {3}
    # the cap is min(jobs, len(specs)) — callers see the truth, not the ask
    results = run_jobs(_echo_specs(2), jobs=16)
    assert {r.workers for r in results} == {2}


@needs_fork
def test_jobs_auto_runs_parallel_and_stamps_cpu_count():
    ncpu = os.cpu_count() or 1
    results = run_jobs(_echo_specs(3), jobs="auto")
    want = min(ncpu, 3) if ncpu > 1 else 1
    assert {r.workers for r in results} == {want}
    assert [r.value for r in results] == [0, 1, 2]


# ----------------------------------------------------------------------
# ordering and fallback
# ----------------------------------------------------------------------
@needs_fork
def test_results_come_back_in_spec_order():
    results = run_jobs(_echo_specs(8), jobs=4)
    assert [r.value for r in results] == list(range(8))
    assert [r.index for r in results] == list(range(8))
    assert all(r.ok and r.parallel for r in results)


@needs_fork
def test_parallel_runs_use_distinct_worker_processes():
    specs = [JobSpec(f"pid{i}", f"{HELPERS}:pid", {}) for i in range(4)]
    results = run_jobs(specs, jobs=4)
    pids = {r.value for r in results}
    assert os.getpid() not in pids
    assert len(pids) == 4  # one fresh process per job, no reuse


def test_jobs_1_falls_back_to_in_process_serial():
    results = run_jobs(
        [JobSpec("p", f"{HELPERS}:pid", {})] + _echo_specs(2), jobs=1
    )
    assert results[0].value == os.getpid()
    assert [r.value for r in results[1:]] == [0, 1]
    assert all(not r.parallel and r.pid is None for r in results)


def test_force_serial_overrides_parallel_request():
    specs = [JobSpec(f"pid{i}", f"{HELPERS}:pid", {}) for i in range(3)]
    results = run_jobs(specs, jobs=3, force_serial=True)
    assert {r.value for r in results} == {os.getpid()}
    assert all(not r.parallel for r in results)


def test_single_spec_runs_in_process():
    (result,) = run_jobs([JobSpec("one", f"{HELPERS}:add", {"a": 2, "b": 3})], jobs=8)
    assert result.ok and result.value == 5 and not result.parallel


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------
@needs_fork
def test_worker_timeout_is_reported_and_others_survive():
    specs = [
        JobSpec("fast", f"{HELPERS}:echo", {"value": "ok"}),
        JobSpec("hung", f"{HELPERS}:sleepy", {"seconds": 60}, timeout_s=0.3),
    ]
    results = run_jobs(specs, jobs=2, timeout_s=30)
    assert results[0].ok and results[0].value == "ok"
    assert not results[1].ok
    assert "timed out after 0.3s" in results[1].error


@needs_fork
def test_timeout_is_single_shot_even_with_retry_budget():
    """A timeout must never be retried: the retry budget is for crashes.

    Before the fix a reaped worker looked exactly like a crashed one (EOF
    on the pipe), so a hung job with ``crash_retries=3`` got killed and
    relaunched four times — each time with a *fresh* full time budget,
    quadrupling the intended wall-clock limit."""
    import time

    t0 = time.monotonic()
    specs = [
        JobSpec("hung", f"{HELPERS}:sleepy", {"seconds": 60}, timeout_s=0.3),
    ] + _echo_specs(1)
    results = run_jobs(specs, jobs=2, crash_retries=3)
    elapsed = time.monotonic() - t0
    assert not results[0].ok
    assert "timed out" in results[0].error or "deadline" in results[0].error
    assert results[0].attempts == 1  # one shot, no relaunch
    assert results[1].ok
    assert elapsed < 5.0  # nowhere near 4 x 0.3s + reap slack per attempt


@needs_fork
def test_crash_at_deadline_is_terminal_not_retried():
    """A worker that outlives its deadline and then dies is a timeout,
    not a retryable crash — relaunching would grant a fresh budget."""
    specs = [
        JobSpec(
            "wedged", f"{HELPERS}:sleep_then_crash",
            {"seconds": 10, "exit_code": 7}, timeout_s=0.2,
        ),
    ] + _echo_specs(1)
    results = run_jobs(specs, jobs=2, crash_retries=3)
    assert not results[0].ok
    assert results[0].attempts == 1
    assert "timed out" in results[0].error or "deadline" in results[0].error
    assert results[1].ok and results[1].value == 0


@needs_fork
def test_finished_job_is_drained_not_discarded_at_deadline(monkeypatch):
    """A result that lands in the pipe by the deadline is a result.

    Simulate a parent that never notices readiness (``wait`` always times
    out): the only way the finished jobs can complete is the last-chance
    ``poll()`` drain at deadline-reap time.  Before the fix they were
    reported as timeouts with the finished value thrown away."""
    import time
    import types

    from repro.par import pool as pool_mod

    def blind_wait(conns, timeout=None):
        # behave like a wait that never sees readiness, but don't busy-spin
        time.sleep(0.02 if timeout is None else min(timeout, 0.02))
        return []

    # replace the pool's *module reference*, not connection.wait itself —
    # Connection.poll() routes through the real wait and must keep working
    monkeypatch.setattr(
        pool_mod, "mp_connection", types.SimpleNamespace(wait=blind_wait)
    )
    specs = [
        JobSpec(f"quick{i}", f"{HELPERS}:sleepy_echo",
                {"value": i, "seconds": 0.01}, timeout_s=0.3)
        for i in range(2)
    ]
    results = run_jobs(specs, jobs=2)
    for i, r in enumerate(results):
        assert r.ok, r.error
        assert r.value == i
        assert r.parallel


@needs_fork
def test_worker_crash_is_retried_once_then_succeeds(tmp_path):
    sentinel = tmp_path / "attempt.marker"
    specs = [
        JobSpec(
            "flaky",
            f"{HELPERS}:crash_once_then",
            {"value": "recovered", "sentinel": str(sentinel)},
        )
    ] + _echo_specs(1)
    results = run_jobs(specs, jobs=2)
    assert results[0].ok
    assert results[0].value == "recovered"
    assert results[0].attempts == 2
    assert sentinel.exists()


@needs_fork
def test_worker_crash_beyond_retry_budget_fails():
    specs = [JobSpec("dead", f"{HELPERS}:crash", {"exit_code": 5})] + _echo_specs(1)
    results = run_jobs(specs, jobs=2, crash_retries=1)
    assert not results[0].ok
    assert "crashed" in results[0].error
    assert results[0].attempts == 2
    assert results[1].ok  # the healthy job is unaffected


@needs_fork
def test_exception_in_job_is_not_retried():
    specs = [JobSpec("raises", f"{HELPERS}:boom", {"message": "nope"})] + _echo_specs(1)
    results = run_jobs(specs, jobs=2)
    assert not results[0].ok
    assert "ValueError: nope" in results[0].error
    assert results[0].attempts == 1


def test_exception_in_serial_fallback_is_captured_not_raised():
    specs = [JobSpec("raises", f"{HELPERS}:boom", {})] + _echo_specs(1)
    results = run_jobs(specs, jobs=1)
    assert not results[0].ok and "ValueError" in results[0].error
    assert results[1].ok


@needs_fork
def test_unpicklable_result_reported_in_band():
    specs = [JobSpec("bad", f"{HELPERS}:unpicklable", {})] + _echo_specs(1)
    results = run_jobs(specs, jobs=2)
    assert not results[0].ok
    assert "not picklable" in results[0].error


def test_run_jobs_strict_raises_with_every_failure_listed():
    specs = [
        JobSpec("ok", f"{HELPERS}:echo", {"value": 1}),
        JobSpec("bad1", f"{HELPERS}:boom", {"message": "first"}),
        JobSpec("bad2", f"{HELPERS}:boom", {"message": "second"}),
    ]
    with pytest.raises(JobFailure) as exc_info:
        run_jobs_strict(specs, jobs=1)
    message = str(exc_info.value)
    assert "bad1" in message and "bad2" in message
    assert len(exc_info.value.failures) == 2


def test_run_jobs_strict_returns_bare_values():
    assert run_jobs_strict(_echo_specs(3), jobs=1) == [0, 1, 2]
