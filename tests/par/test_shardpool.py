"""ShardPool: long-lived stateful workers behind request/reply pipes.

The pool's contracts under test: state persists across calls (serial and
forked identically), scatter fans per-worker arguments out before
collecting any reply, an in-band method exception leaves the worker
alive, and worker death / timeout / construction failure poison the pool
loudly rather than silently rebuilding simulation state.
"""

import pytest

from repro.par import JobSpec, ShardPool
from repro.par.pool import has_fork
from repro.par.shardpool import ShardPoolError

from . import jobhelpers  # noqa: F401  (must be importable in workers)

COUNTER = "tests.par.jobhelpers:make_counter"

needs_fork = pytest.mark.skipif(not has_fork(), reason="platform cannot fork")


def counter_specs(n, start=0):
    return [
        JobSpec(name=f"c{i}", target=COUNTER, kwargs={"start": start + i})
        for i in range(n)
    ]


@pytest.fixture(params=["serial", "forked"])
def mode(request):
    if request.param == "forked" and not has_fork():
        pytest.skip("platform cannot fork")
    return request.param == "serial"


class TestCalls:
    def test_state_persists_across_calls(self, mode):
        with ShardPool(counter_specs(3), serial=mode) as pool:
            assert pool.broadcast("get") == [0, 1, 2]
            assert pool.broadcast("bump") == [1, 2, 3]
            assert pool.broadcast("bump", 10) == [11, 12, 13]
            assert pool.call(1, "get") == 12

    def test_scatter_sends_per_worker_arguments(self, mode):
        with ShardPool(counter_specs(3), serial=mode) as pool:
            assert pool.scatter("bump", [(5,), (6,), (7,)]) == [5, 7, 9]
            assert pool.scatter(
                "bump", [(), (), ()],
                [{"by": 100}, {"by": 200}, {"by": 300}],
            ) == [105, 207, 309]

    def test_scatter_rejects_wrong_arity(self, mode):
        with ShardPool(counter_specs(2), serial=mode) as pool:
            with pytest.raises(ValueError, match="argument tuples"):
                pool.scatter("bump", [(1,)])

    def test_method_exception_is_in_band_and_worker_survives(self, mode):
        with ShardPool(counter_specs(2), serial=mode) as pool:
            pool.broadcast("bump")
            with pytest.raises((ShardPoolError, RuntimeError), match="window error"):
                pool.call(0, "boom")
            # the worker kept its state and keeps serving
            assert pool.broadcast("get") == [1, 2]


@needs_fork
class TestForkedSpecifics:
    def test_workers_are_distinct_processes(self):
        import os

        with ShardPool(counter_specs(3)) as pool:
            pids = pool.broadcast("where")
            assert len(set(pids)) == 3
            assert os.getpid() not in pids
            assert pool.pids == pids

    def test_serial_pool_reports_no_pids(self):
        with ShardPool(counter_specs(2), serial=True) as pool:
            assert pool.pids == [None, None]

    def test_unpicklable_reply_is_reported_in_band(self):
        with ShardPool(counter_specs(1)) as pool:
            with pytest.raises(ShardPoolError, match="not picklable"):
                pool.call(0, "opaque")
            assert pool.broadcast("get") == [0]  # still alive

    def test_timeout_poisons_the_pool(self):
        with ShardPool(counter_specs(2), timeout_s=0.3) as pool:
            with pytest.raises(ShardPoolError, match="timed out"):
                pool.broadcast("nap", 30.0)
            with pytest.raises(ShardPoolError, match="poisoned"):
                pool.broadcast("get")

    def test_construction_failure_raises_not_first_window(self):
        specs = [
            JobSpec(name="ok", target=COUNTER),
            JobSpec(name="bad", target="tests.par.jobhelpers:boom"),
        ]
        with pytest.raises(ShardPoolError, match="failed to build"):
            ShardPool(specs)


class TestLifecycle:
    def test_rejects_empty_and_duplicate_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardPool([])
        with pytest.raises(ValueError, match="duplicate"):
            ShardPool(counter_specs(1) * 2, serial=True)

    def test_closed_pool_refuses_calls(self, mode):
        pool = ShardPool(counter_specs(1), serial=mode)
        pool.close()
        with pytest.raises(ShardPoolError, match="closed"):
            pool.broadcast("get")
        pool.close()  # idempotent
