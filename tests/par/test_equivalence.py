"""Serial/parallel equivalence: the core contract of repro.par.

``--jobs N`` must be a pure wall-clock optimization — same scenario
fingerprints, same merged metrics, same report text as serial execution,
for any worker count and any completion order.
"""

import json
import re
import time

import pytest

from repro.bench.ablations import run_ablation_suite
from repro.bench.cli import main as bench_main
from repro.bench.hostperf import compare_fingerprints, run_host_perf
from repro.bench.scalability import run_scalability
from repro.bench.targets import to_jsonable
from repro.par import JobSpec, has_fork, run_jobs

pytestmark = pytest.mark.skipif(not has_fork(), reason="platform lacks fork")

#: process-global debug ids (task/request/frame "#17") differ between a
#: serial run and a forked worker without reflecting simulation state —
#: the golden determinism test normalizes them the same way
_GLOBAL_ID = re.compile(r"#\d+")


# ----------------------------------------------------------------------
# perf matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [2, 3])
def test_perf_matrix_fingerprints_identical_across_worker_counts(jobs):
    serial = run_host_perf(quick=True, seed=7, jobs=1)
    parallel = run_host_perf(quick=True, seed=7, jobs=jobs)
    assert compare_fingerprints(serial, parallel) == []
    for s, p in zip(serial.scenarios, parallel.scenarios):
        assert s.name == p.name
        assert s.events == p.events
        assert s.virtual_ns == p.virtual_ns
        assert s.fingerprint == p.fingerprint


def test_perf_matrix_out_of_order_completion_merges_canonically():
    """Fast jobs finishing before slow ones must not reorder results."""
    specs = [
        JobSpec("slow", "tests.par.jobhelpers:sleepy", {"seconds": 0.25}),
        JobSpec("fast1", "tests.par.jobhelpers:echo", {"value": "a"}),
        JobSpec("fast2", "tests.par.jobhelpers:echo", {"value": "b"}),
    ]
    t0 = time.perf_counter()
    results = run_jobs(specs, jobs=3)
    assert time.perf_counter() - t0 < 5.0
    assert [r.name for r in results] == ["slow", "fast1", "fast2"]
    assert [r.value for r in results] == ["overslept", "a", "b"]


# ----------------------------------------------------------------------
# bench CLI surface
# ----------------------------------------------------------------------
def _run_cli(argv, tmp_path, capsys, tag):
    json_out = tmp_path / f"{tag}.json"
    metrics_out = tmp_path / f"{tag}_metrics.json"
    trace_out = tmp_path / f"{tag}_trace.json"
    rc = bench_main(
        argv
        + [
            "--json", str(json_out),
            "--metrics-out", str(metrics_out),
            "--trace-out", str(trace_out),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    # the artifact paths differ by construction; strip those lines
    report = "\n".join(
        line for line in out.splitlines() if not line.startswith("wrote ")
        and "wrote " not in line
    )
    return (
        report,
        json.loads(json_out.read_text()),
        json.loads(metrics_out.read_text())["metrics"],
        _GLOBAL_ID.sub("#", trace_out.read_text()),
    )


def test_cli_jobs2_report_json_metrics_and_trace_match_serial(tmp_path, capsys):
    argv = ["table1", "fig5", "--reps", "8", "--points", "2"]
    ser_report, ser_json, ser_metrics, ser_trace = _run_cli(
        argv, tmp_path, capsys, "serial"
    )
    par_report, par_json, par_metrics, par_trace = _run_cli(
        argv + ["--jobs", "2"], tmp_path, capsys, "par"
    )
    assert par_report == ser_report
    assert par_json == ser_json
    assert par_metrics == ser_metrics
    assert par_trace == ser_trace

    # the byte-identity above must not be vacuous for causal edges:
    # both fan-outs record them, with intact args, on remapped pids
    def edge_events(trace_text):
        doc = json.loads(trace_text)
        return [
            e for e in doc["traceEvents"]
            if (e.get("args") or {}).get("edge")
        ]

    ser_edges = edge_events(ser_trace)
    par_edges = edge_events(par_trace)
    assert len(ser_edges) > 0
    assert ser_edges == par_edges
    for ev in ser_edges[:20]:
        assert {"edge", "cause", "effect", "start"} <= set(ev["args"])


# ----------------------------------------------------------------------
# leg-level fan-out: ablations and the scalability sweep
# ----------------------------------------------------------------------
def test_ablation_suite_parallel_identical_to_serial():
    serial = run_ablation_suite(bursts=12, reps=25, jobs=1)
    parallel = run_ablation_suite(bursts=12, reps=25, jobs=2)
    assert to_jsonable(serial) == to_jsonable(parallel)
    assert serial.format() == parallel.format()


def test_scalability_sweep_parallel_identical_to_serial():
    shapes = ((2, 2), (2, 4))
    serial = run_scalability(shapes, reps=20, seed=21, jobs=1)
    parallel = run_scalability(shapes, reps=20, seed=21, jobs=2)
    assert to_jsonable(serial) == to_jsonable(parallel)
    assert serial.format() == parallel.format()
