"""Baseline MPI models: correctness plus the two signature behaviours
(progress only inside calls; RDMA-read rendezvous)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.mpi.baseline import MVAPICHLike, OpenMPILike
from repro.threads.instructions import Compute


def _world(impl=MVAPICHLike, nnodes=2):
    cl = Cluster(nnodes, seed=4)
    mpi = impl(cl)
    return cl, mpi


@pytest.mark.parametrize("impl", [MVAPICHLike, OpenMPILike])
def test_eager_roundtrip(impl):
    cl, mpi = _world(impl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 0, 32, payload=b"base")

    def r(ctx):
        req = yield from c1.recv(ctx.core_id, 0, 0)
        out["p"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=50_000_000)
    assert out["p"] == b"base"


@pytest.mark.parametrize("impl", [MVAPICHLike, OpenMPILike])
def test_rendezvous_uses_rdma_read(impl):
    cl, mpi = _world(impl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        req = yield from c0.isend(ctx.core_id, 1, 2, 256 * 1024, payload=b"R")
        yield from c0.wait(ctx.core_id, req)
        out["sent"] = True

    def r(ctx):
        req = yield from c1.irecv(ctx.core_id, 0, 2)
        yield from c1.wait(ctx.core_id, req)
        out["p"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=500_000_000)
    assert out["p"] == b"R" and out["sent"]
    # the receiver pulled the body with an RDMA read from the sender NIC
    assert mpi.states[1].nic.stats.rdma_reads_issued == 1
    assert mpi.states[0].nic.stats.rdma_reads_served == 1


def test_unexpected_eager():
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 5, 16, payload=b"early")

    def r(ctx):
        yield Compute(100_000)
        req = yield from c1.recv(ctx.core_id, 0, 5)
        out["p"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=100_000_000)
    assert out["p"] == b"early"


def test_no_progress_while_receiver_computes():
    """The baseline's defining flaw: an arrived RTS sits unhandled until
    the receiver re-enters the library."""
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    stamps = {}
    size = 512 * 1024
    compute_ns = 2_000_000

    def s(ctx):
        req = yield from c0.isend(ctx.core_id, 1, 1, size, payload=b"big")
        yield from c0.wait(ctx.core_id, req)
        stamps["send_done"] = ctx.now

    def r(ctx):
        req = yield from c1.irecv(ctx.core_id, 0, 1)
        yield Compute(compute_ns)  # receiver busy: nothing progresses
        t0 = ctx.now
        yield from c1.wait(ctx.core_id, req)
        stamps["wait_took"] = ctx.now - t0

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=1_000_000_000)
    wire = size * 1000 // mpi.states[0].nic.driver.bytes_per_us
    # the whole body still had to move after the compute finished
    assert stamps["wait_took"] > 0.8 * wire
    assert stamps["send_done"] > compute_ns


def test_fifo_ordering_per_flow():
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    got = []

    def s(ctx):
        for i in range(5):
            yield from c0.send(ctx.core_id, 1, 3, 16, payload=i)

    def r(ctx):
        for _ in range(5):
            req = yield from c1.recv(ctx.core_id, 0, 3)
            got.append(req.payload)

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=200_000_000)
    assert got == [0, 1, 2, 3, 4]


def test_openmpi_marked_mt_unstable():
    assert OpenMPILike.mt_stable is False
    assert MVAPICHLike.mt_stable is True


def test_eager_thresholds_differ():
    assert MVAPICHLike.eager_threshold != OpenMPILike.eager_threshold


def test_global_lock_is_per_node():
    cl, mpi = _world()
    assert mpi.states[0].lock is not mpi.states[1].lock
