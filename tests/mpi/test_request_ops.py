"""test / waitall / waitany / sendrecv across both MPI backends."""

import pytest

from repro.cluster.cluster import Cluster
from repro.mpi import MadMPI, MVAPICHLike
from repro.threads.instructions import Compute


def _pair(impl=MadMPI, seed=7):
    cl = Cluster(2, seed=seed)
    mpi = impl(cl)
    return cl, mpi.comm(0), mpi.comm(1)


@pytest.mark.parametrize("impl", [MadMPI, MVAPICHLike])
def test_test_reports_completion(impl):
    cl, c0, c1 = _pair(impl)
    out = {}

    def s(ctx):
        req = yield from c0.isend(ctx.core_id, 1, 0, 64, payload=b"x")
        # eager send completes quickly; poll until test() says done
        for _ in range(200):
            done = yield from c0.test(ctx.core_id, req)
            if done:
                out["tested_done"] = True
                return
            yield Compute(1_000)

    def r(ctx):
        req = yield from c1.recv(ctx.core_id, 0, 0)
        out["recv"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=100_000_000)
    assert out.get("tested_done") and out["recv"] == b"x"


def test_test_is_nonblocking_before_completion():
    cl, c0, c1 = _pair()
    out = {}

    def s(ctx):
        req = yield from c0.isend(ctx.core_id, 1, 0, 256 * 1024, payload=b"big")
        t0 = ctx.now
        done = yield from c0.test(ctx.core_id, req)
        out["first_test"] = done
        out["test_cost"] = ctx.now - t0
        yield from c0.wait(ctx.core_id, req)

    def r(ctx):
        yield Compute(50_000)  # ensure the rendezvous is still in flight
        yield from c1.recv(ctx.core_id, 0, 0)

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=500_000_000)
    assert out["first_test"] is False
    assert out["test_cost"] < 5_000


@pytest.mark.parametrize("impl", [MadMPI, MVAPICHLike])
def test_waitall(impl):
    cl, c0, c1 = _pair(impl)
    out = {}

    def s(ctx):
        reqs = []
        for i in range(5):
            r = yield from c0.isend(ctx.core_id, 1, i, 2_000, payload=i)
            reqs.append(r)
        yield from c0.waitall(ctx.core_id, reqs)
        out["all_sent"] = True

    def r(ctx):
        vals = []
        for i in range(5):
            req = yield from c1.recv(ctx.core_id, 0, i)
            vals.append(req.payload)
        out["vals"] = vals

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=200_000_000)
    assert out["all_sent"] and out["vals"] == list(range(5))


@pytest.mark.parametrize("impl", [MadMPI, MVAPICHLike])
def test_waitany_returns_first_completed(impl):
    cl, c0, c1 = _pair(impl)
    out = {}

    def r(ctx):
        # two receives; the sender answers tag 1 first, tag 0 much later
        reqs = []
        for tag in (0, 1):
            req = yield from c1.irecv(ctx.core_id, 0, tag)
            reqs.append(req)
        idx = yield from c1.waitany(ctx.core_id, reqs)
        out["first_idx"] = idx
        out["first_at"] = ctx.now
        yield from c1.waitall(ctx.core_id, reqs)
        out["all_at"] = ctx.now

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 1, 64, payload=b"fast")
        yield Compute(300_000)
        yield from c0.send(ctx.core_id, 1, 0, 64, payload=b"slow")

    cl.nodes[1].scheduler.spawn(r, 0)
    cl.nodes[0].scheduler.spawn(s, 0)
    cl.run(until=200_000_000)
    assert out["first_idx"] == 1
    assert out["all_at"] - out["first_at"] > 200_000


def test_waitany_immediate_when_already_done():
    cl, c0, c1 = _pair()
    out = {}

    def r(ctx):
        req = yield from c1.irecv(ctx.core_id, 0, 0)
        yield from c1.wait(ctx.core_id, req)  # complete it first
        idx = yield from c1.waitany(ctx.core_id, [req])
        out["idx"] = idx

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 0, 16, payload=b"z")

    cl.nodes[1].scheduler.spawn(r, 0)
    cl.nodes[0].scheduler.spawn(s, 0)
    cl.run(until=100_000_000)
    assert out["idx"] == 0


def test_waitany_rejects_empty():
    cl, c0, c1 = _pair()

    def r(ctx):
        yield from c1.waitany(ctx.core_id, [])

    cl.nodes[1].scheduler.spawn(r, 0)
    with pytest.raises(ValueError):
        cl.run(until=10_000_000)


@pytest.mark.parametrize("impl", [MadMPI, MVAPICHLike])
def test_sendrecv_crossing(impl):
    """Two ranks sendrecv to each other simultaneously: deadlock-free."""
    cl = Cluster(2, seed=8)
    mpi = impl(cl)
    out = {}

    def make(rank):
        comm = mpi.comm(rank)
        peer = 1 - rank

        def body(ctx):
            req = yield from comm.sendrecv(
                ctx.core_id, peer, 0, 128 * 1024, peer, 0,
                payload=("from", rank),
            )
            out[rank] = req.payload

        return body

    for r in range(2):
        cl.nodes[r].scheduler.spawn(make(r), 0)
    cl.run(until=500_000_000)
    assert out == {0: ("from", 1), 1: ("from", 0)}
