"""Collectives: correctness across rank counts, roots and backends."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.mpi import MadMPI, MVAPICHLike, collectives


def _run_collective(nranks, body_factory, impl=MadMPI, until=2_000_000_000, seed=5):
    """Spawn one main thread per rank running body_factory(rank, comm)."""
    cl = Cluster(nranks, seed=seed)
    mpi = impl(cl)
    results = {}

    def make(rank):
        comm = mpi.comm(rank)

        def body(ctx):
            res = yield from body_factory(ctx, rank, comm)
            results[rank] = res

        return body

    for r in range(nranks):
        cl.nodes[r].scheduler.spawn(make(r), 0, name=f"rank{r}")
    cl.run(until=until)
    assert len(results) == nranks, f"only {sorted(results)} finished"
    return results


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 8])
def test_barrier_completes(nranks):
    def body(ctx, rank, comm):
        yield from collectives.barrier(comm, ctx.core_id, rank, nranks)
        return ctx.now

    results = _run_collective(nranks, body)
    assert len(results) == nranks


def test_barrier_actually_synchronizes():
    """A rank that enters late must hold everyone back."""
    from repro.threads.instructions import Compute

    nranks = 4
    LATE = 500_000

    def body(ctx, rank, comm):
        if rank == 2:
            yield Compute(LATE)
        yield from collectives.barrier(comm, ctx.core_id, rank, nranks)
        return ctx.now

    results = _run_collective(nranks, body)
    assert min(results.values()) >= LATE


@pytest.mark.parametrize("nranks", [2, 3, 4, 7, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_to_all(nranks, root):
    if root >= nranks:
        pytest.skip("root outside communicator")

    def body(ctx, rank, comm):
        value = ("payload", 42) if rank == root else None
        res = yield from collectives.bcast(
            comm, ctx.core_id, rank, nranks, value, root=root
        )
        return res

    results = _run_collective(nranks, body)
    assert all(v == ("payload", 42) for v in results.values())


@pytest.mark.parametrize("nranks", [2, 4, 6, 8])
def test_reduce_sums_on_root(nranks):
    def body(ctx, rank, comm):
        res = yield from collectives.reduce(
            comm, ctx.core_id, rank, nranks, rank + 1, operator.add
        )
        return res

    results = _run_collective(nranks, body)
    expect = nranks * (nranks + 1) // 2
    assert results[0] == expect
    assert all(v is None for r, v in results.items() if r != 0)


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_allreduce_everyone_gets_result(nranks):
    def body(ctx, rank, comm):
        res = yield from collectives.allreduce(
            comm, ctx.core_id, rank, nranks, rank + 1, operator.add
        )
        return res

    results = _run_collective(nranks, body)
    expect = nranks * (nranks + 1) // 2
    assert all(v == expect for v in results.values())


def test_allreduce_max():
    nranks = 5

    def body(ctx, rank, comm):
        res = yield from collectives.allreduce(
            comm, ctx.core_id, rank, nranks, (rank * 7) % 5, max
        )
        return res

    results = _run_collective(nranks, body)
    assert set(results.values()) == {4}


@pytest.mark.parametrize("nranks", [2, 4, 6])
def test_gather_ordered_by_rank(nranks):
    def body(ctx, rank, comm):
        res = yield from collectives.gather(
            comm, ctx.core_id, rank, nranks, f"r{rank}"
        )
        return res

    results = _run_collective(nranks, body)
    assert results[0] == [f"r{i}" for i in range(nranks)]


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_scatter_each_gets_own_slot(nranks):
    def body(ctx, rank, comm):
        values = [f"v{i}" for i in range(nranks)] if rank == 0 else None
        res = yield from collectives.scatter(
            comm, ctx.core_id, rank, nranks, values
        )
        return res

    results = _run_collective(nranks, body)
    assert results == {r: f"v{r}" for r in range(nranks)}


@pytest.mark.parametrize("nranks", [2, 3, 4])
def test_alltoall_full_exchange(nranks):
    def body(ctx, rank, comm):
        values = [(rank, dst) for dst in range(nranks)]
        res = yield from collectives.alltoall(
            comm, ctx.core_id, rank, nranks, values
        )
        return res

    results = _run_collective(nranks, body)
    for r in range(nranks):
        assert results[r] == [(src, r) for src in range(nranks)]


def test_collectives_work_over_baseline_mpi():
    nranks = 4

    def body(ctx, rank, comm):
        res = yield from collectives.allreduce(
            comm, ctx.core_id, rank, nranks, rank, operator.add
        )
        return res

    results = _run_collective(nranks, body, impl=MVAPICHLike)
    assert all(v == 6 for v in results.values())


def test_back_to_back_barriers():
    nranks = 4

    def body(ctx, rank, comm):
        for _ in range(3):
            yield from collectives.barrier(comm, ctx.core_id, rank, nranks)
        return True

    results = _run_collective(nranks, body)
    assert all(results.values())


@settings(max_examples=6, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=6, max_size=6),
)
def test_property_allreduce_matches_local_sum(nranks, values):
    vals = values[:nranks]

    def body(ctx, rank, comm):
        res = yield from collectives.allreduce(
            comm, ctx.core_id, rank, nranks, vals[rank], operator.add
        )
        return res

    results = _run_collective(nranks, body)
    assert all(v == sum(vals) for v in results.values())


def test_two_collectives_with_distinct_ctxtags():
    """Concurrent collective 'contexts' do not cross-match."""
    nranks = 4

    def body(ctx, rank, comm):
        a = yield from collectives.allreduce(
            comm, ctx.core_id, rank, nranks, rank, operator.add, ctxtag=20
        )
        b = yield from collectives.allreduce(
            comm, ctx.core_id, rank, nranks, rank * 10, operator.add, ctxtag=40
        )
        return (a, b)

    results = _run_collective(nranks, body)
    assert all(v == (6, 60) for v in results.values())


def test_bcast_of_large_payload_uses_rendezvous():
    nranks = 3
    big = 512 * 1024

    def body(ctx, rank, comm):
        value = b"B" * 64 if rank == 0 else None
        res = yield from collectives.bcast(
            comm, ctx.core_id, rank, nranks, value, size=big
        )
        return res

    results = _run_collective(nranks, body)
    assert all(v == b"B" * 64 for v in results.values())
