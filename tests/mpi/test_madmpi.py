"""Mad-MPI: API semantics over the simulated cluster."""

import pytest

from repro.cluster.cluster import Cluster
from repro.mpi.madmpi import ANY_SOURCE, ANY_TAG, MadMPI
from repro.threads.instructions import Compute


def _world(nnodes=2, **kw):
    cl = Cluster(nnodes, seed=3)
    mpi = MadMPI(cl, **kw)
    return cl, mpi


def test_blocking_send_recv():
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 0, 32, payload=b"msg")

    def r(ctx):
        req = yield from c1.recv(ctx.core_id, 0, 0)
        out["p"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=50_000_000)
    assert out["p"] == b"msg"


def test_isend_irecv_wait():
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        req = yield from c0.isend(ctx.core_id, 1, 7, 64 * 1024, payload=b"nb")
        yield Compute(5_000)
        yield from c0.wait(ctx.core_id, req)
        out["send_done"] = True

    def r(ctx):
        req = yield from c1.irecv(ctx.core_id, 0, 7)
        yield from c1.wait(ctx.core_id, req)
        out["p"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=100_000_000)
    assert out == {"send_done": True, "p": b"nb"}


def test_wildcards_reexported():
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 9, 8, payload=b"x")

    def r(ctx):
        req = yield from c1.recv(ctx.core_id, ANY_SOURCE, ANY_TAG)
        out["src"], out["tag"] = req.src, req.recv_tag

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=50_000_000)
    assert out == {"src": 0, "tag": 9}


def test_three_rank_ring():
    cl, mpi = _world(nnodes=3)
    comms = [mpi.comm(r) for r in range(3)]
    hops = []

    def make(rank):
        def body(ctx):
            nxt, prv = (rank + 1) % 3, (rank - 1) % 3
            if rank == 0:
                yield from comms[0].send(ctx.core_id, nxt, 0, 16, payload=[0])
                req = yield from comms[0].recv(ctx.core_id, prv, 0)
                hops.append(req.payload)
            else:
                req = yield from comms[rank].recv(ctx.core_id, prv, 0)
                yield from comms[rank].send(
                    ctx.core_id, nxt, 0, 16, payload=req.payload + [rank]
                )

        return body

    for r in range(3):
        cl.nodes[r].scheduler.spawn(make(r), 0)
    cl.run(until=100_000_000)
    assert hops == [[0, 1, 2]]


def test_mt_stable_flag():
    assert MadMPI.mt_stable is True
    assert MadMPI.name == "PIOMan"


def test_many_threads_per_node():
    """8 receiver threads across cores, each gets its tagged message."""
    cl, mpi = _world()
    c0, c1 = mpi.comm(0), mpi.comm(1)
    got = {}

    def sender(ctx):
        for tid in range(8):
            yield from c0.send(ctx.core_id, 1, tid, 8, payload=tid * 10)

    def recv_body(tid):
        def body(ctx):
            req = yield from c1.recv(ctx.core_id, 0, tid)
            got[tid] = req.payload

        return body

    for tid in range(8):
        cl.nodes[1].scheduler.spawn(recv_body(tid), tid % 8, name=f"r{tid}")
    cl.nodes[0].scheduler.spawn(sender, 0)
    cl.run(until=200_000_000)
    assert got == {tid: tid * 10 for tid in range(8)}
