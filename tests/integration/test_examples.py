"""The fast examples must run end-to-end (the slow latency/overlap demos
are exercised by the benchmark suite instead)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = _run("quickstart.py", capsys)
    assert "pinned ran on: 9" in out
    assert "poll attempts: 3" in out
    assert "execution shares by core" in out


def test_io_offload_example(capsys):
    out = _run("io_offload.py", capsys)
    assert out.count("I/O fully hidden behind computation: True") == 2


def test_multirail_aggregation_example(capsys):
    out = _run("multirail_aggregation.py", capsys)
    assert "aggregated_wrappers=12" in out
    assert "chunks=2" in out
    assert "x faster" in out


def test_comm_io_pipeline_example(capsys):
    out = _run("comm_io_pipeline.py", capsys)
    assert "pipeline achieved" in out
    # pipelining must beat the serial phases
    import re

    m = re.search(r"\((\d+\.\d+)x vs running", out)
    assert m and float(m.group(1)) > 1.2
