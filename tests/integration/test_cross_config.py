"""Cross-configuration smoke: kwak clusters, true-spin mode, tracing."""

from repro.bench.overlap import run_overlap_once
from repro.cluster.cluster import Cluster
from repro.mpi import MadMPI, MVAPICHLike
from repro.sim.rng import Rng
from repro.sim.trace import Tracer
from repro.threads.scheduler import Scheduler
from repro.topology import kwak


def test_overlap_on_kwak_machines():
    """The receiver-side separation holds on the 16-core NUMA host too."""
    comp = 60_000
    pioman = run_overlap_once(
        MadMPI, "receiver", 32 * 1024, comp, machine_factory=kwak, reps=2
    )
    base = run_overlap_once(
        MVAPICHLike, "receiver", 32 * 1024, comp, machine_factory=kwak, reps=2
    )
    assert pioman.ratio > base.ratio + 0.1
    assert pioman.ratio > 0.85


def test_mpi_roundtrip_under_true_spin():
    """The literal spin-polling mode carries a full MPI exchange."""
    cl = Cluster(2, seed=21)
    for node in cl.nodes:
        node.scheduler.true_spin = True
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    out = {}

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 0, 64 * 1024, payload=b"spin")

    def r(ctx):
        req = yield from c1.recv(ctx.core_id, 0, 0)
        out["p"] = req.payload

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=100_000_000)
    assert out["p"] == b"spin"


def test_scheduler_trace_events():
    tracer = Tracer(enabled=True)
    cl = Cluster(2, seed=22, tracer=tracer)
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 0, 64, payload=b"t")

    def r(ctx):
        yield from c1.recv(ctx.core_id, 0, 0)

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=100_000_000)
    sched_events = [rec.message for rec in tracer.select("sched")]
    assert any(m.startswith("finish") for m in sched_events)
