"""Determinism: identical seeds produce identical virtual outcomes."""

from repro.bench.latency import run_latency_once
from repro.bench.task_microbench import measure_queue
from repro.cluster.cluster import Cluster
from repro.mpi import MadMPI
from repro.topology import CpuSet, borderline


def test_microbench_reproducible():
    m = borderline()
    a = measure_queue(m, m.all_cores(), reps=40, seed=7)
    b = measure_queue(m, m.all_cores(), reps=40, seed=7)
    assert a.mean_ns == b.mean_ns
    assert a.shares == b.shares


def test_microbench_seed_sensitivity():
    m = borderline()
    a = measure_queue(m, m.all_cores(), reps=40, seed=7)
    b = measure_queue(m, m.all_cores(), reps=40, seed=8)
    # different probe phases -> different (but close) results
    assert a.mean_ns != b.mean_ns


def test_latency_bench_reproducible():
    a = run_latency_once(MadMPI, 2, iters_per_thread=2, warmup=1, seed=5)
    b = run_latency_once(MadMPI, 2, iters_per_thread=2, warmup=1, seed=5)
    assert a.mean_one_way_ns == b.mean_one_way_ns


def test_cluster_event_counts_reproducible():
    def run():
        cl = Cluster(2, seed=11)
        mpi = MadMPI(cl)
        c0, c1 = mpi.comm(0), mpi.comm(1)

        def s(ctx):
            yield from c0.send(ctx.core_id, 1, 0, 64 * 1024, payload=b"d")

        def r(ctx):
            yield from c1.recv(ctx.core_id, 0, 0)

        cl.nodes[0].scheduler.spawn(s, 0)
        cl.nodes[1].scheduler.spawn(r, 0)
        cl.run(until=100_000_000)
        return cl.engine.fired, cl.engine.now

    assert run() == run()
