"""Fast integration checks of the paper's qualitative results.

These are scaled-down versions of the benchmark assertions so that
``pytest tests/`` alone validates the reproduction's headline claims.
"""

import pytest

from repro.bench.latency import run_latency_once
from repro.bench.overlap import run_overlap_once
from repro.bench.task_microbench import measure_queue, run_task_microbench
from repro.mpi import MadMPI, MVAPICHLike
from repro.topology import CpuSet, borderline, kwak


@pytest.fixture(scope="module")
def kwak_rows():
    return run_task_microbench(kwak(), reps=80, seed=1)


def test_hierarchy_levels_ordered(kwak_rows):
    """per-core local < per-core remote < global (Tables I/II)."""
    res = kwak_rows
    local = res.per_core[0].mean_ns
    remote = res.per_core[8].mean_ns
    glob = res.global_row.mean_ns
    assert local < remote < glob
    assert glob > 8 * local


def test_remote_numa_penalty_about_a_microsecond(kwak_rows):
    res = kwak_rows
    gap = res.per_core[8].mean_ns - res.per_core[1].mean_ns
    assert 500 < gap < 2_500


def test_global_queue_unbalanced_pickup(kwak_rows):
    shares = kwak_rows.global_row.shares
    node_share = {n: 0.0 for n in range(4)}
    for core, share in shares.items():
        node_share[core // 4] += share
    expected = {
        n: len([c for c in range(n * 4, n * 4 + 4) if c != 0]) / 15.0
        for n in range(4)
    }
    assert max(node_share[n] / expected[n] for n in range(4)) > 1.15


def test_per_core_queue_isolation():
    """Tasks for one core never contend with other cores' queues."""
    m = borderline()
    row = measure_queue(m, CpuSet.single(3), reps=60, seed=2)
    assert row.shares == {3: 1.0}


def test_latency_flat_for_pioman_growing_for_baseline():
    p1 = run_latency_once(MadMPI, 1, iters_per_thread=2, warmup=1)
    p16 = run_latency_once(MadMPI, 16, iters_per_thread=2, warmup=1)
    m1 = run_latency_once(MVAPICHLike, 1, iters_per_thread=2, warmup=1)
    m16 = run_latency_once(MVAPICHLike, 16, iters_per_thread=2, warmup=1)
    assert p16.mean_one_way_ns < 1.5 * p1.mean_one_way_ns
    assert m16.mean_one_way_ns > 2 * m1.mean_one_way_ns


def test_receiver_overlap_separates_implementations():
    comp = 60_000  # ~2x the 32KB wire time
    pioman = run_overlap_once(MadMPI, "receiver", 32 * 1024, comp, reps=2)
    base = run_overlap_once(MVAPICHLike, "receiver", 32 * 1024, comp, reps=2)
    assert pioman.ratio > base.ratio + 0.15
    assert pioman.ratio > 0.85


def test_sender_overlap_works_for_everyone():
    comp = 60_000
    pioman = run_overlap_once(MadMPI, "sender", 32 * 1024, comp, reps=2)
    base = run_overlap_once(MVAPICHLike, "sender", 32 * 1024, comp, reps=2)
    assert pioman.ratio > 0.85 and base.ratio > 0.85
