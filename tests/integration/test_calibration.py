"""Calibration guard: measured-vs-paper ratios must stay in band.

The latency constants in the machine specs were fitted once against the
paper's uncontended rows (docs/INTERNALS.md §5); everything contended is
emergent.  These bands pin both against regressions: if a scheduler or
memory-model change silently shifts the physics, this file fails before
the benchmark suite does.
"""

import pytest

from repro.bench.paper_targets import targets_for
from repro.bench.task_microbench import run_task_microbench
from repro.topology import borderline, kwak


@pytest.fixture(scope="module")
def results():
    return {
        "borderline": run_task_microbench(borderline(), reps=150, seed=1),
        "kwak": run_task_microbench(kwak(), reps=150, seed=1),
    }


# (machine, row label, allowed measured/paper band)
BANDS = [
    # fitted rows: tight
    ("borderline", "core#0", (0.85, 1.15)),
    ("kwak", "core#0", (0.85, 1.15)),
    ("kwak", "core#8", (0.85, 1.25)),  # remote NUMA
    # emergent rows: shape bands
    ("borderline", "core#4", (0.9, 1.4)),
    ("borderline", "chip#1", (0.6, 1.3)),
    ("borderline", "global", (0.5, 1.3)),
    ("kwak", "core#1", (0.9, 1.6)),
    ("kwak", "cache#1", (0.6, 1.3)),
    ("kwak", "global", (0.6, 1.5)),
]


@pytest.mark.parametrize("machine_name,label,band", BANDS)
def test_row_within_band(results, machine_name, label, band):
    res = results[machine_name]
    paper = targets_for(machine_name)[label]
    measured = res.row_by_label(label).mean_ns
    ratio = measured / paper
    lo, hi = band
    assert lo <= ratio <= hi, (
        f"{machine_name}/{label}: measured {measured:.0f} ns vs paper "
        f"{paper} ns -> ratio {ratio:.2f} outside [{lo}, {hi}]"
    )


def test_kwak_vs_borderline_global_ratio(results):
    """Paper: 13585/4720 = 2.88x growth from 8 to 16 cores."""
    ratio = (
        results["kwak"].global_row.mean_ns
        / results["borderline"].global_row.mean_ns
    )
    assert 1.8 <= ratio <= 5.0, f"global-queue growth ratio {ratio:.2f}"
