"""Multi-node traffic patterns through the full PIOMan/NewMadeleine stack."""

import pytest

from repro.cluster.cluster import Cluster
from repro.mpi import MadMPI
from repro.mpi.madmpi import ANY_SOURCE
from repro.sim.report import full_report
from repro.threads.instructions import Compute


def test_all_to_one_fan_in():
    """Seven senders, one receiver with wildcard source."""
    n = 8
    cl = Cluster(n, seed=12)
    mpi = MadMPI(cl)
    got = []

    def sender(rank):
        comm = mpi.comm(rank)

        def body(ctx):
            yield from comm.send(ctx.core_id, 0, 3, 4 * 1024, payload=rank)

        return body

    def receiver(ctx):
        comm = mpi.comm(0)
        for _ in range(n - 1):
            req = yield from comm.recv(ctx.core_id, ANY_SOURCE, 3)
            got.append(req.payload)

    for r in range(1, n):
        cl.nodes[r].scheduler.spawn(sender(r), 0)
    cl.nodes[0].scheduler.spawn(receiver, 0)
    cl.run(until=500_000_000)
    assert sorted(got) == list(range(1, n))


def test_one_to_all_fan_out():
    n = 6
    cl = Cluster(n, seed=13)
    mpi = MadMPI(cl)
    got = {}

    def sender(ctx):
        comm = mpi.comm(0)
        reqs = []
        for dst in range(1, n):
            r = yield from comm.isend(ctx.core_id, dst, dst, 64 * 1024, payload=dst * 3)
            reqs.append(r)
        for r in reqs:
            yield from comm.wait(ctx.core_id, r)

    def receiver(rank):
        comm = mpi.comm(rank)

        def body(ctx):
            req = yield from comm.recv(ctx.core_id, 0, rank)
            got[rank] = req.payload

        return body

    cl.nodes[0].scheduler.spawn(sender, 0)
    for r in range(1, n):
        cl.nodes[r].scheduler.spawn(receiver(r), 0)
    cl.run(until=500_000_000)
    assert got == {r: r * 3 for r in range(1, n)}


def test_bidirectional_exchange_large():
    """Simultaneous rendezvous in both directions must not deadlock
    (both posted non-blocking before waiting)."""
    cl = Cluster(2, seed=14)
    mpi = MadMPI(cl)
    out = {}

    def make(rank):
        comm = mpi.comm(rank)
        peer = 1 - rank

        def body(ctx):
            sreq = yield from comm.isend(ctx.core_id, peer, 1, 512 * 1024, payload=rank)
            rreq = yield from comm.irecv(ctx.core_id, peer, 1)
            yield from comm.wait(ctx.core_id, rreq)
            yield from comm.wait(ctx.core_id, sreq)
            out[rank] = rreq.payload

        return body

    for r in range(2):
        cl.nodes[r].scheduler.spawn(make(r), 0)
    cl.run(until=500_000_000)
    assert out == {0: 1, 1: 0}


def test_pipeline_through_middle_node():
    """0 -> 1 -> 2 relay with transformation at the middle hop."""
    cl = Cluster(3, seed=15)
    mpi = MadMPI(cl)
    out = {}

    def src(ctx):
        comm = mpi.comm(0)
        for i in range(4):
            yield from comm.send(ctx.core_id, 1, 0, 32 * 1024, payload=i)

    def relay(ctx):
        comm = mpi.comm(1)
        for _ in range(4):
            req = yield from comm.recv(ctx.core_id, 0, 0)
            yield from comm.send(ctx.core_id, 2, 0, 32 * 1024, payload=req.payload * 10)

    def sink(ctx):
        comm = mpi.comm(2)
        vals = []
        for _ in range(4):
            req = yield from comm.recv(ctx.core_id, 1, 0)
            vals.append(req.payload)
        out["vals"] = vals

    cl.nodes[0].scheduler.spawn(src, 0)
    cl.nodes[1].scheduler.spawn(relay, 0)
    cl.nodes[2].scheduler.spawn(sink, 0)
    cl.run(until=500_000_000)
    assert out["vals"] == [0, 10, 20, 30]


def test_report_renders_for_cluster_node():
    cl = Cluster(2, seed=16)
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)

    def s(ctx):
        yield from c0.send(ctx.core_id, 1, 0, 128 * 1024, payload=b"x")

    def r(ctx):
        yield from c1.recv(ctx.core_id, 0, 0)

    cl.nodes[0].scheduler.spawn(s, 0)
    cl.nodes[1].scheduler.spawn(r, 0)
    cl.run(until=200_000_000)
    text = full_report(cl.nodes[1].scheduler, cl.nodes[1].pioman)
    assert "core utilization" in text and "task queues" in text
    # the rendezvous work showed up as task executions somewhere
    assert cl.nodes[1].pioman.stats.executions > 0


def test_threads_and_messages_interleave_on_one_node():
    """Compute threads plus communication threads sharing cores."""
    cl = Cluster(2, seed=17)
    mpi = MadMPI(cl)
    c0, c1 = mpi.comm(0), mpi.comm(1)
    done = []

    def computer(ctx):
        for _ in range(5):
            yield Compute(100_000)
        done.append("compute")

    def chatter(ctx):
        for i in range(5):
            yield from c0.send(ctx.core_id, 1, i, 8 * 1024, payload=i)
        done.append("chat")

    def receiver(ctx):
        for i in range(5):
            yield from c1.recv(ctx.core_id, 0, i)
        done.append("recv")

    cl.nodes[0].scheduler.spawn(computer, 0)
    cl.nodes[0].scheduler.spawn(chatter, 0)  # same core as the computer
    cl.nodes[1].scheduler.spawn(receiver, 0)
    cl.run(until=500_000_000)
    assert sorted(done) == ["chat", "compute", "recv"]
